// Protocols: side-by-side comparison of the Lotka–Volterra majority
// protocols with the prior-art baselines discussed in §2.2 of the paper —
// the Angluin et al. 3-state approximate majority population protocol, the
// Draief–Vojnović 4-state exact majority protocol, and the Condon et al.
// chemical reaction networks.
//
// For one population size, the example sweeps the initial gap and prints the
// success probability of every protocol, making the paper's taxonomy
// visible: protocols whose cancellations are "self-destructive-like"
// (double-B, heavy-B, Cho) track the LV-SD curve and decide from tiny gaps,
// while "non-self-destructive-like" ones (single-B, 3-state AM, Andaur)
// track LV-NSD and need gaps near sqrt(n).
//
// Run with: go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/protocols"
)

func main() {
	const (
		n      = 512
		trials = 1500
	)

	entries := []struct {
		short string
		proto consensus.Protocol
	}{
		{"LV-SD", consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), Label: "LV-SD"}},
		{"LV-NSD", consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive), Label: "LV-NSD"}},
		{"Cho", protocols.NewChoProtocol(1, 1)},
		{"Andaur", protocols.AndaurProtocol{Beta: 1, Alpha: 1, ResourceCap: n}},
		{"dbl-B", protocols.CondonProtocol{Variant: protocols.DoubleB}},
		{"hvy-B", protocols.CondonProtocol{Variant: protocols.HeavyB}},
		{"sgl-B", protocols.CondonProtocol{Variant: protocols.SingleB}},
		{"3stAM", protocols.NewThreeStateAM()},
		{"4stEX", protocols.NewFourStateExact()},
	}

	fmt.Printf("success probability by initial gap, n = %d (%d trials/cell)\n\n", n, trials)
	fmt.Printf("%6s", "gap")
	for _, e := range entries {
		fmt.Printf("  %6s", e.short)
	}
	fmt.Println()

	for gap := 2; gap <= 128; gap *= 2 {
		fmt.Printf("%6d", gap)
		for i, e := range entries {
			est, err := consensus.EstimateWinProbability(e.proto, n, gap, consensus.EstimateOptions{
				Trials: trials,
				Seed:   uint64(gap*100 + i),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.3f", est.P())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading the table: LV-SD, Cho, dbl-B and hvy-B (self-destructive-like")
	fmt.Println("cancellation) saturate within a polylog-size gap; LV-NSD, Andaur,")
	fmt.Println("sgl-B and 3stAM (non-self-destructive-like) need gaps near sqrt(n).")
	fmt.Println("4stEX is exact: correct for every positive gap, but needs Theta(n^2)")
	fmt.Println("interactions — the time/robustness trade-off of §2.2.")
}
