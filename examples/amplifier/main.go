// Amplifier: the paper's motivating synthetic-biology use case (§1.1) — a
// majority-consensus layer as a differential signal amplifier.
//
// An upstream, noisy biosensor sub-circuit splits a founding population of n
// cells between reporter species X0 and X1 with a per-cell bias p slightly
// above 1/2 toward the correct readout. On its own, the raw population split
// is a weak, noisy signal. Feeding it into an engineered interference-
// competition layer amplifies it: the community fights until only one
// species remains, and with self-destructive competition the survivor is
// almost always the majority — even when the initial difference is tiny.
//
// This example measures end-to-end readout fidelity (probability the
// surviving species matches the upstream signal) for the two competition
// mechanisms the paper contrasts.
//
// Run with: go run ./examples/amplifier
package main

import (
	"fmt"
	"log"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func main() {
	const (
		n      = 2000 // founding population size
		trials = 2000
	)
	sd := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	nsd := lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)

	fmt.Printf("founding population n = %d, %d trials per cell\n", n, trials)
	fmt.Printf("%-10s  %-22s  %-22s  %s\n", "bias p", "fidelity SD", "fidelity NSD", "mean |gap| from sensor")
	for _, bias := range []float64{0.51, 0.53, 0.55, 0.60} {
		fidSD, gapMean, err := fidelity(sd, n, bias, trials, 1000+uint64(bias*100))
		if err != nil {
			log.Fatal(err)
		}
		fidNSD, _, err := fidelity(nsd, n, bias, trials, 2000+uint64(bias*100))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f  %-22s  %-22s  %.1f\n", bias, fidSD, fidNSD, gapMean)
	}
	fmt.Println()
	fmt.Println("Self-destructive competition amplifies even a 51% sensor bias to a")
	fmt.Println("near-certain readout, because its majority-consensus threshold is")
	fmt.Println("polylogarithmic (Theorem 14). Non-self-destructive competition needs a")
	fmt.Println("gap on the order of sqrt(n) (Theorem 19), so weak biases stay noisy.")
}

// fidelity runs end-to-end trials: sample the upstream sensor split, run the
// competition layer, and score whether the survivor matches the signal.
func fidelity(params lv.Params, n int, bias float64, trials int, seed uint64) (stats.BernoulliEstimate, float64, error) {
	src := rng.New(seed)
	correct := 0
	var gapAcc stats.Running
	for i := 0; i < trials; i++ {
		// The upstream sub-circuit: each founding cell independently
		// commits to the correct reporter with probability bias.
		x0 := src.Binomial(n, bias)
		x1 := n - x0
		gap := x0 - x1
		if gap < 0 {
			gap = -gap
		}
		gapAcc.Add(float64(gap))
		if x0 == 0 || x1 == 0 {
			// The sensor itself already reached consensus.
			if x0 > 0 {
				correct++
			}
			continue
		}
		out, err := lv.Run(params, lv.State{X0: x0, X1: x1}, src, lv.RunOptions{})
		if err != nil {
			return stats.BernoulliEstimate{}, 0, err
		}
		// The readout is correct when species 0 (the one the sensor
		// biases toward) survives.
		if out.Consensus && out.Winner == 0 {
			correct++
		}
	}
	est, err := stats.WilsonInterval(correct, trials, stats.Z99)
	if err != nil {
		return stats.BernoulliEstimate{}, 0, err
	}
	return est, gapAcc.Mean(), nil
}
