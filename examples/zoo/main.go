// Zoo: every majority-consensus mechanism in this repository, measured on
// the same input through the shared consensus.Protocol interface.
//
// All protocols get the same task: population n = 256, initial gap Δ = 16
// (the √n scale — large enough that drift-based mechanisms should succeed,
// small enough to expose the weak ones). The table that prints is the
// repository's one-look summary of the paper's landscape:
//
//   - ecological LV chains (growing population, the paper's contribution),
//   - static-population protocols (population protocols, gossip dynamics,
//     the Moran process), and
//   - the chemostat hybrid (explicit resource).
//
// Run with: go run ./examples/zoo
package main

import (
	"fmt"
	"log"

	"lvmajority/internal/consensus"
	"lvmajority/internal/exploit"
	"lvmajority/internal/gossip"
	"lvmajority/internal/lv"
	"lvmajority/internal/moran"
	"lvmajority/internal/protocols"
)

func main() {
	const (
		n      = 256
		delta  = 16
		trials = 1000
	)

	chemostat := exploit.Params{Lambda: float64(n) + 10, Mu: 1, Beta: 0.1, Delta: 1, R0: 10}
	zoo := []struct {
		family string
		proto  consensus.Protocol
	}{
		{"ecological LV", consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), Label: "LV self-destructive"}},
		{"ecological LV", consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive), Label: "LV non-self-destructive"}},
		{"ecological LV", consensus.LVProtocol{Params: lv.Neutral(1, 1, 0, 1, lv.SelfDestructive), Label: "LV intraspecific only"}},
		{"population protocol", protocols.NewThreeStateAM()},
		{"population protocol", protocols.NewFourStateExact()},
		{"population protocol", protocols.NewTernarySignaling()},
		{"gossip (synchronous)", &gossip.Protocol{Dynamics: gossip.Voter{}}},
		{"gossip (synchronous)", &gossip.Protocol{Dynamics: gossip.TwoChoices{}}},
		{"gossip (synchronous)", &gossip.Protocol{Dynamics: gossip.ThreeMajority{}}},
		{"gossip (synchronous)", &gossip.Protocol{Dynamics: gossip.Undecided{}}},
		{"population genetics", &moran.Protocol{Fitness: 1}},
		{"resource-consumer", &exploit.Protocol{Params: chemostat}},
	}

	fmt.Printf("majority consensus at n=%d, gap=%d (%d trials each; 95%% Wilson CI)\n\n", n, delta, trials)
	fmt.Printf("%-22s %-40s %s\n", "family", "protocol", "rho")
	for _, entry := range zoo {
		est, err := consensus.EstimateWinProbability(entry.proto, n, delta, consensus.EstimateOptions{
			Trials: trials,
			Seed:   7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-40s %.3f [%.3f, %.3f]\n",
			entry.family, entry.proto.Name(), est.P(), est.Lo, est.Hi)
	}

	fmt.Println("\nreading the table: the SD Lotka-Volterra chain and the exact population")
	fmt.Println("protocol decide correctly essentially always at this gap; drift-based")
	fmt.Println("gossip dynamics mostly succeed; driftless mechanisms (voter, Moran,")
	fmt.Println("intraspecific-only LV, bare chemostat) hover near the a/n baseline.")
}
