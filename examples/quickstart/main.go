// Quickstart: describe runs of the paper's two-species stochastic
// Lotka–Volterra chain declaratively with the scenario API — one
// serializable Spec per workload, one Runner for all of them — then
// estimate the majority-consensus probability ρ and search the empirical
// threshold Ψ(n).
//
// Everything here is "reproducible as data": each Spec prints as the exact
// JSON the CLIs accept via -spec and cmd/serve accepts via POST /v1/runs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"lvmajority/internal/scenario"
)

func main() {
	// The model, as data: a neutral community with self-destructive
	// interference competition (model (1) of the paper) — birth rate
	// β = 1, death rate δ = 1, interspecific competition α₀ = α₁ = 1, no
	// intraspecific competition.
	model := &scenario.Model{Kind: scenario.ModelLV, LV: &scenario.LVModel{
		Beta: 1, Death: 1,
		Alpha0: 1, Alpha1: 1,
		Competition: "sd",
		Label:       "quickstart",
	}}

	// One Runner executes every Spec; the CLIs and cmd/serve are thin
	// front-ends over exactly this call.
	runner := &scenario.Runner{}
	ctx := context.Background()

	// --- batch simulation: 1000 runs of 600 vs 400 cells ---------------
	sim := scenario.New(scenario.TaskSimulate)
	sim.Model = model
	sim.Seed = 42
	sim.Simulate = &scenario.SimulateSpec{Runs: 1000, A: 600, B: 400}

	res, err := runner.Run(ctx, sim)
	if err != nil {
		log.Fatal(err)
	}
	batch := res.Simulate.LV
	fmt.Println("--- batch simulation ---")
	fmt.Printf("runs:                %d (unresolved %d)\n", batch.Runs, batch.Unresolved)
	fmt.Printf("majority wins:       %d\n", batch.Wins)
	fmt.Printf("consensus time T(S): mean %.0f reactions\n", batch.Steps.Mean())
	fmt.Printf("bad events J(S):     mean %.1f\n", batch.Bad.Mean())

	// --- ρ estimate: n = 1000, gap Δ₀ = 20 -----------------------------
	est := scenario.New(scenario.TaskEstimate)
	est.Model = model
	est.Seed = 7
	est.Estimate = &scenario.EstimateSpec{N: 1000, Delta: 20, Trials: 5000}

	res, err = runner.Run(ctx, est)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- Monte-Carlo estimate ---")
	fmt.Printf("rho(n=1000, gap=20) = %s\n", res.Estimate)

	// --- threshold search: the smallest gap reaching 1 − 1/n -----------
	thr := scenario.New(scenario.TaskThreshold)
	thr.Model = model
	thr.Seed = 11
	thr.Threshold = &scenario.ThresholdSpec{N: 1000, Trials: 3000}

	res, err = runner.Run(ctx, thr)
	if err != nil {
		log.Fatal(err)
	}
	out := res.Threshold
	fmt.Println("\n--- threshold search ---")
	fmt.Printf("threshold Psi(1000) at target %.4f: gap %d (%d gaps probed)\n",
		out.Target, out.Threshold, len(out.Evaluations))
	fmt.Println("the paper proves this gap is only polylogarithmic in n for")
	fmt.Println("self-destructive competition (Theorem 14) — compare with the")
	fmt.Println("sqrt(n)-scale gap NSD competition needs (Theorem 18/19).")

	// Every run above is data. This is the threshold Spec as the JSON the
	// CLIs replay with -spec and cmd/serve accepts via POST /v1/runs:
	fmt.Println("\n--- the threshold run, as a Spec ---")
	if err := scenario.WriteSpecs(os.Stdout, []scenario.Spec{thr}); err != nil {
		log.Fatal(err)
	}

	// Full provenance rides along: every Result embeds a run manifest.
	m := res.Manifests[0]
	fmt.Printf("\nprovenance: seed %d, %s %s, wall time %v\n",
		m.Seed, m.Module, m.ModuleVersion, m.WallTime())
}
