// Quickstart: simulate the paper's two-species stochastic Lotka–Volterra
// chain, watch it reach consensus, and estimate the majority-consensus
// probability ρ for a given initial gap.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

func main() {
	// A neutral community with self-destructive interference competition
	// (model (1) of the paper): birth rate β = 1, death rate δ = 1,
	// interspecific competition α₀ = α₁ = 1, no intraspecific
	// competition.
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)

	// One run: 60 majority cells vs 40 minority cells.
	src := rng.New(42)
	out, err := lv.Run(params, lv.State{X0: 60, X1: 40}, src, lv.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- single run ---")
	fmt.Printf("consensus reached:   %v\n", out.Consensus)
	fmt.Printf("winner:              species %d (majority won: %v)\n", out.Winner, out.MajorityWon)
	fmt.Printf("consensus time T(S): %d reactions\n", out.Steps)
	fmt.Printf("individual events:   %d, competitive events: %d\n", out.Individual, out.Competitive)
	fmt.Printf("bad events J(S):     %d (individual events that shrank the gap)\n", out.BadNonCompetitive)

	// Estimate ρ for a population of n = 1000 with initial gap Δ₀ = 20,
	// using the parallel Monte-Carlo estimator.
	protocol := consensus.LVProtocol{Params: params, Label: "quickstart"}
	est, err := consensus.EstimateWinProbability(protocol, 1000, 20, consensus.EstimateOptions{
		Trials: 5000,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- Monte-Carlo estimate ---")
	fmt.Printf("rho(n=1000, gap=20) = %s\n", est)

	// Find the empirical majority-consensus threshold Ψ(n): the smallest
	// gap whose success probability reaches 1 − 1/n.
	res, err := consensus.FindThreshold(protocol, 1000, consensus.ThresholdOptions{
		Trials: 3000,
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- threshold search ---")
	fmt.Printf("threshold Psi(1000) at target %.4f: gap %d (%d gaps probed)\n",
		res.Target, res.Threshold, len(res.Evaluations))
	fmt.Println("the paper proves this gap is only polylogarithmic in n for")
	fmt.Println("self-destructive competition (Theorem 14) — compare with the")
	fmt.Println("sqrt(n)-scale gap NSD competition needs (Theorem 18/19).")
}
