// Chemostat: majority sensing in a bioreactor with explicit nutrient flow.
//
// The paper's models treat competition as the only interaction and study
// the exponential growth phase. This example moves one step closer to a
// real bioreactor (the §1.6 future-work direction): two engineered strains
// compete for a shared nutrient that flows into the vessel and washes out
// (exploitative competition), and the designer can additionally program
// interference competition between the strains.
//
// The run shows the design lesson measured by the E-EXPLOIT experiment:
// nutrient competition alone barely amplifies the majority signal — the
// strains drift like a voter model — while layering engineered interference
// (a lysis bacteriocin, i.e. self-destructive competition) on top of the
// same chemostat turns it into a reliable majority sensor.
//
// Run with: go run ./examples/chemostat
package main

import (
	"fmt"
	"log"

	"lvmajority/internal/crn"
	"lvmajority/internal/exploit"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func main() {
	// A vessel sized for ~180 cells at equilibrium: inflow λ, washout μ,
	// consumption-driven division β, death δ.
	base := exploit.Params{Lambda: 190, Mu: 1, Beta: 0.1, Delta: 1, R0: 10}
	engineered := base
	engineered.Alpha = [2]float64{0.5, 0.5}
	engineered.Competition = lv.SelfDestructive

	fmt.Printf("chemostat: carrying capacity x* = %.0f cells, resource equilibrium R* = %.0f\n\n",
		base.CarryingCapacity(), base.ResourceEquilibrium(true))

	// Print the exact reaction network of the engineered design in the
	// shareable text format (readable back by cmd/crnrun).
	net, err := exploit.Network(engineered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engineered design, reaction network:")
	fmt.Print(crn.Format(net))
	fmt.Println()

	// Sense a 60/40 split of an initial inoculum of 100 cells.
	const (
		a, b   = 60, 40
		trials = 400
	)
	for _, design := range []struct {
		name   string
		params exploit.Params
	}{
		{"nutrient competition only ", base},
		{"nutrient + SD interference", engineered},
	} {
		src := rng.New(42)
		wins := 0
		var steps stats.Running
		for i := 0; i < trials; i++ {
			out, err := exploit.Run(design.params, a, b, src, exploit.RunOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if !out.Consensus {
				log.Fatalf("%s: run %d did not resolve", design.name, i)
			}
			if out.MajorityWon {
				wins++
			}
			steps.Add(float64(out.Steps))
		}
		est, err := stats.WilsonInterval(wins, trials, stats.Z95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: majority wins %s  (mean %.0f reactions to exclusion)\n",
			design.name, est, steps.Mean())
	}

	fmt.Println("\nlesson: the shared nutrient induces a carrying capacity but no signal")
	fmt.Println("amplification; programmed interference competition supplies the decision.")
}
