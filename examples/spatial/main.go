// Spatial: explores the paper's future-work question (§1.6–1.7) — does the
// self-destructive amplifier survive when the well-mixed assumption breaks?
//
// The population is split across demes on a ring; individuals migrate
// between neighboring demes at a per-capita rate m. L = 1 is the paper's
// well-mixed model. The example sweeps fragmentation and migration and
// prints the success probability at a fixed polylog-scale gap, then shows
// one spatial trajectory.
//
// Run with: go run ./examples/spatial
package main

import (
	"fmt"
	"log"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/spatial"
)

func main() {
	const (
		n      = 512
		trials = 1000
	)
	gap := consensus.MatchParity(n, 20) // ~log2(n)^2/4, the polylog scale
	local := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)

	fmt.Printf("SD amplifier, n = %d, gap = %d, ring topology (%d trials/cell)\n\n", n, gap, trials)
	fmt.Printf("%8s", "demes")
	migrations := []float64{0.1, 1, 10}
	for _, m := range migrations {
		fmt.Printf("  m=%-6g", m)
	}
	fmt.Println()

	for _, sites := range []int{1, 4, 16, 32} {
		fmt.Printf("%8d", sites)
		for _, m := range migrations {
			p := spatial.Protocol{
				Spatial: spatial.Params{
					Local:     local,
					Sites:     sites,
					Migration: m,
					Topology:  spatial.Cycle,
				},
			}
			est, err := consensus.EstimateWinProbability(p, n, gap, consensus.EstimateOptions{
				Trials: trials,
				Seed:   uint64(sites*1000) + uint64(m*10),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8.3f", est.P())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading the table: the well-mixed amplifier (1 deme) is nearly perfect")
	fmt.Println("at this polylog gap. Fragmenting the consortium into weakly-coupled")
	fmt.Println("demes makes each deme resolve almost independently from a per-deme gap")
	fmt.Println("of ~1, so global accuracy decays; faster migration restores the")
	fmt.Println("well-mixed behaviour. The paper's trade-offs are robust to mild")
	fmt.Println("spatial structure but not to strong fragmentation.")

	// One spatial run, deme by deme.
	fmt.Println("\none run, 8 demes, m = 1, per-deme final states:")
	sys, err := spatial.NewSystem(spatial.Params{
		Local: local, Sites: 8, Migration: 1, Topology: spatial.Cycle,
	}, initialDemes(8, n, gap), rng.New(99))
	if err != nil {
		log.Fatal(err)
	}
	for !sys.GlobalState().Consensus() {
		if !sys.Step() {
			break
		}
	}
	for d := 0; d < 8; d++ {
		s := sys.Deme(d)
		fmt.Printf("  deme %d: (%d, %d)\n", d, s.X0, s.X1)
	}
	g := sys.GlobalState()
	fmt.Printf("global winner: species %d after %d events\n", g.Winner(), sys.Steps())
}

// initialDemes spreads a majority of (n+gap)/2 and minority of (n−gap)/2
// individuals round-robin across demes.
func initialDemes(sites, n, gap int) []lv.State {
	demes := make([]lv.State, sites)
	a := (n + gap) / 2
	b := n - a
	for i := 0; i < a; i++ {
		demes[i%sites].X0++
	}
	for i := 0; i < b; i++ {
		demes[i%sites].X1++
	}
	return demes
}
