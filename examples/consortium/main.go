// Consortium: a design study for an engineered two-strain microbial
// consortium, illustrating the computational trade-offs the paper's §1.6
// highlights.
//
// A bioengineer wants the consortium to act as a majority-consensus module
// and must choose the competition mechanism to program into the strains
// (e.g. lysis-released bacteriocins = self-destructive, contact-dependent
// killing = non-self-destructive) and decide whether intraspecific
// competition can be tolerated. This example evaluates each candidate
// design three ways:
//
//  1. the deterministic ODE model (Eq. 4) that standard bioengineering
//     practice would use — which predicts the majority always wins;
//  2. the stochastic chain at realistic (finite) population sizes; and
//  3. the paper's theory, row by row of Table 1.
//
// Run with: go run ./examples/consortium
package main

import (
	"fmt"
	"log"

	"lvmajority/internal/lv"
	"lvmajority/internal/ode"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// design is one candidate genetic design for the consortium.
type design struct {
	name   string
	params lv.Params
	theory string
}

func main() {
	designs := []design{
		{
			name:   "A: lysis bacteriocin (SD, interspecific only)",
			params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
			theory: "threshold O(log^2 n) — Theorem 14",
		},
		{
			name:   "B: contact killing (NSD, interspecific only)",
			params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive),
			theory: "threshold Theta~(sqrt n) — Theorems 18/19",
		},
		{
			name: "C: lysis bacteriocin, no self/non-self discrimination (SD, alpha=gamma)",
			params: lv.Params{
				Beta: 1, Delta: 1,
				Alpha:       [2]float64{0.5, 0.5},
				Gamma:       [2]float64{1, 1},
				Competition: lv.SelfDestructive,
			},
			theory: "rho = a/(a+b), threshold ~ n — Theorem 20",
		},
		{
			name:   "D: self-targeting only (intraspecific only)",
			params: lv.Neutral(1, 1, 0, 1, lv.SelfDestructive),
			theory: "no threshold exists — Theorem 25",
		},
	}

	const (
		n      = 1024
		gap    = 32 // the modest input difference the upstream circuit can supply
		trials = 3000
	)
	a := (n + gap) / 2
	b := n - a

	fmt.Printf("consortium size n = %d, input gap = %d (a = %d, b = %d)\n\n", n, gap, a, b)

	// What the deterministic ODE model says: for every design with
	// alpha' > gamma', the initial majority wins, full stop.
	fmt.Println("deterministic ODE (Eq. 4) predictions:")
	for _, d := range designs {
		verdict, err := odeVerdict(d.params, a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-68s %s\n", d.name, verdict)
	}

	fmt.Println("\nstochastic chain at finite n (what a real consortium does):")
	fmt.Printf("  %-68s %-24s %s\n", "design", "P[correct readout]", "theory (Table 1)")
	for i, d := range designs {
		est, err := measure(d.params, a, b, trials, 100+uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-68s %-24s %s\n", d.name, est.String(), d.theory)
	}

	fmt.Println()
	fmt.Println("Design A is the only one that turns a 3% input difference into a")
	fmt.Println("reliable readout at this scale; the deterministic model cannot see any")
	fmt.Println("of these distinctions (it declares every design perfect). This is the")
	fmt.Println("trade-off of §1.6: self-destructive interference is the best amplifier")
	fmt.Println("but costs the killer cell its life, and losing self/non-self")
	fmt.Println("discrimination (design C) or inter-strain targeting (design D)")
	fmt.Println("destroys the amplifier entirely.")
}

// odeVerdict integrates the deterministic counterpart of the design.
func odeVerdict(p lv.Params, a, b int) (string, error) {
	// Eq. (4): r = beta−delta, alpha' is the total interspecific
	// constant, gamma' the per-species intraspecific constant.
	sys := ode.LotkaVolterra{
		R:          p.Beta - p.Delta,
		AlphaPrime: alphaPrime(p),
		GammaPrime: p.Gamma[0],
	}
	if sys.AlphaPrime <= sys.GammaPrime {
		return "coexistence/diffusion (alpha' <= gamma': no winner)", nil
	}
	res, err := sys.DeterministicWinner(float64(a), float64(b), 1e-9, 1e7)
	if err != nil {
		return "", err
	}
	if res.Winner == 0 {
		return "majority always wins (deterministically)", nil
	}
	return fmt.Sprintf("winner %d", res.Winner), nil
}

// alphaPrime maps the stochastic parameters onto Eq. (4)'s alpha'.
func alphaPrime(p lv.Params) float64 {
	if p.Competition == lv.SelfDestructive {
		return p.AlphaSum()
	}
	return p.Alpha[0]
}

// measure estimates the probability that species 0 (the input majority) is
// the sole survivor.
func measure(p lv.Params, a, b, trials int, seed uint64) (stats.BernoulliEstimate, error) {
	src := rng.New(seed)
	wins := 0
	for i := 0; i < trials; i++ {
		out, err := lv.Run(p, lv.State{X0: a, X1: b}, src, lv.RunOptions{})
		if err != nil {
			return stats.BernoulliEstimate{}, err
		}
		if out.Consensus && out.Winner == 0 {
			wins++
		}
	}
	return stats.WilsonInterval(wins, trials, stats.Z99)
}
