// Journal: crash-safe accounting of queued and running runs.
//
// With -journal DIR, the server persists one small JSON file per live run
// (run-<id>.json) from submission until the run reaches a terminal status.
// On restart the directory is replayed: runs that were still queued are
// re-enqueued with their original ID, spec and submission time; runs that
// were mid-execution cannot be resumed (their engine state died with the
// process) and are registered as failed with the "interrupted" detail, so a
// client polling GET /v1/runs/{id} sees an honest terminal state instead of
// a 404. Journal I/O is best-effort: a write failure is logged and the run
// proceeds — the journal must never make a healthy server lose work.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/ioretry"
	"lvmajority/internal/progress"
	"lvmajority/internal/scenario"
)

// journalRetry is the backoff policy for journal writes. Deterministic seed,
// like every other stream in the repository.
var journalRetry = ioretry.Policy{Seed: 0x10a7a1}

// journalEntry is the persisted view of a live run: exactly the fields needed
// to re-register it after a restart.
type journalEntry struct {
	ID        int           `json:"id"`
	Status    runStatus     `json:"status"`
	Spec      scenario.Spec `json:"spec"`
	Submitted string        `json:"submitted,omitempty"`
	Started   string        `json:"started,omitempty"`
}

// journal persists live-run entries under one directory. A nil *journal is
// the disabled state: record and remove are no-ops, so call sites never
// branch on whether journaling is configured.
type journal struct {
	dir    string
	logger *log.Logger
}

func (j *journal) path(id int) string {
	return filepath.Join(j.dir, fmt.Sprintf("run-%d.json", id))
}

// record persists (or refreshes) the entry for a live run. Callers hold the
// server's mu, which serializes writes per run ID. Failures are logged, not
// returned: journaling degrades, execution does not.
func (j *journal) record(r *run) {
	if j == nil {
		return
	}
	data, err := json.MarshalIndent(journalEntry{
		ID: r.ID, Status: r.Status, Spec: r.Spec,
		Submitted: r.Submitted, Started: r.Started,
	}, "", "  ")
	if err != nil {
		j.logger.Printf("journal: marshal run %d: %v", r.ID, err)
		return
	}
	err = ioretry.Do(journalRetry, func() error {
		if err := faultpoint.Hit(faultpoint.JournalWrite); err != nil {
			return err
		}
		return writeFileAtomic(j.path(r.ID), data)
	})
	if err != nil {
		j.logger.Printf("journal: record run %d: %v (run unaffected)", r.ID, err)
	}
}

// remove deletes a run's entry once it reaches a terminal status.
func (j *journal) remove(id int) {
	if j == nil {
		return
	}
	if err := os.Remove(j.path(id)); err != nil && !os.IsNotExist(err) {
		j.logger.Printf("journal: remove run %d: %v", id, err)
	}
}

// writeFileAtomic writes data via a temp file in the same directory, fsyncs,
// and renames over the destination, so readers (and the recovery scan) only
// ever see complete entries.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// attachJournal enables journaling under dir and replays any entries a
// previous process left behind. It must be called after newServer and before
// the listener accepts traffic: recovered queued runs go straight onto the
// worker queue. Unreadable entries are quarantined (renamed *.corrupt) and
// logged, never fatal — a half-written file from a crash mid-write must not
// keep the server from starting.
func (s *server) attachJournal(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j := &journal{dir: dir, logger: s.logger}

	paths, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var entries []journalEntry
	for _, path := range paths {
		data, err := os.ReadFile(path)
		var e journalEntry
		if err == nil {
			err = json.Unmarshal(data, &e)
		}
		if err == nil && e.ID <= 0 {
			err = fmt.Errorf("non-positive run id %d", e.ID)
		}
		if err != nil {
			quarantined := path + ".corrupt"
			os.Rename(path, quarantined)
			s.logger.Printf("journal: quarantined unreadable entry %s: %v", filepath.Base(path), err)
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].ID < entries[b].ID })

	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
	for _, e := range entries {
		if _, exists := s.runs[e.ID]; exists {
			s.logger.Printf("journal: entry for run %d collides with a live run; dropping", e.ID)
			j.remove(e.ID)
			continue
		}
		if e.ID >= s.nextID {
			s.nextID = e.ID + 1
		}
		r := &run{ID: e.ID, Spec: e.Spec, Submitted: e.Submitted, Started: e.Started, events: progress.NewBroadcaster()}
		switch e.Status {
		case statusQueued:
			// The previous process never started this run, so re-running it
			// is safe and loses nothing: the spec is deterministic in itself.
			r.Status = statusQueued
			select {
			case s.queue <- r:
				s.runs[r.ID] = r
				s.order = append(s.order, r.ID)
				j.record(r)
				r.events.Publish(progress.Event{Kind: progress.KindPhase, Scope: runScope(r.ID), Phase: string(statusQueued)})
				s.logger.Printf("journal: re-enqueued run %d (%s task)", r.ID, r.Spec.Task)
				continue
			default:
				// A shrunken queue cannot hold the backlog; fall through to
				// an honest terminal state rather than blocking startup.
				s.registerInterruptedLocked(r, "journal recovery: queue full")
			}
		default:
			// Running (or any unknown status from a newer format): the
			// engine state died with the old process, so the only honest
			// outcome is failed(interrupted).
			s.registerInterruptedLocked(r, "interrupted by server restart")
		}
		j.remove(r.ID)
	}
	if n := len(entries); n > 0 {
		s.logger.Printf("journal: recovered %d entr%s from %s", n, map[bool]string{true: "y", false: "ies"}[n == 1], dir)
	}
	return nil
}

// registerInterruptedLocked registers a recovered run in a terminal failed
// state with the interrupted detail. Callers hold s.mu.
func (s *server) registerInterruptedLocked(r *run, reason string) {
	r.Status = statusFailed
	r.Error = reason
	r.Detail = progress.DetailInterrupted
	r.Finished = now()
	s.runs[r.ID] = r
	s.order = append(s.order, r.ID)
	r.events.Publish(progress.Event{Kind: progress.KindPhase, Scope: runScope(r.ID), Phase: string(statusFailed), Err: r.Error, Detail: r.Detail})
	r.events.Close()
	s.logger.Printf("journal: run %d marked failed (%s)", r.ID, reason)
}
