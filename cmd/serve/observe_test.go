package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lvmajority/internal/progress"
	"lvmajority/internal/scenario"
)

// streamEvents subscribes to a run's SSE endpoint and collects events until
// stop returns true, the stream closes, or the timeout elapses. Frames are
// checked for coherence: the SSE event name must equal the payload's kind.
func streamEvents(t *testing.T, ts *httptest.Server, id int, stop func(progress.Event) bool, timeout time.Duration) []progress.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/runs/%d/events", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var events []progress.Event
	var name, data string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if data != "" {
				var e progress.Event
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					t.Fatalf("bad SSE payload %q: %v", data, err)
				}
				if string(e.Kind) != name {
					t.Errorf("SSE event name %q disagrees with payload kind %q", name, e.Kind)
				}
				events = append(events, e)
				if stop != nil && stop(e) {
					return events
				}
			}
			name, data = "", ""
		}
	}
	return events
}

// terminalPhase matches the run's terminal lifecycle event.
func terminalPhase(id int) func(progress.Event) bool {
	return func(e progress.Event) bool {
		return e.Kind == progress.KindPhase && e.Scope == runScope(id) && terminalStatus(runStatus(e.Phase))
	}
}

// sseSpec is slow enough to subscribe to mid-run but finishes in seconds:
// one medium population, serial, with enough trials for many snapshots.
func sseSpec() scenario.Spec {
	spec := scenario.New(scenario.TaskEstimate)
	spec.Model = &scenario.Model{Kind: scenario.ModelLV, LV: &scenario.LVModel{
		Beta: 1, Death: 1, Alpha0: 1, Alpha1: 1, Competition: "sd", Label: "lv-sd",
	}}
	spec.Seed = 11
	spec.Workers = 1
	spec.Estimate = &scenario.EstimateSpec{N: 256, Delta: 16, Trials: 4000}
	return spec
}

// TestEventsStreamEndToEnd is the SSE acceptance test: a subscriber attached
// while the run is live sees the lifecycle in order (queued, running, done),
// strictly increasing trial counters per stream, a running estimate, and a
// terminal event that agrees with GET /v1/runs/{id}.
func TestEventsStreamEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, 1, 4)
	s.throttle = time.Millisecond

	code, created := postSpec(t, ts, sseSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	id := int(created["id"].(float64))
	events := streamEvents(t, ts, id, terminalPhase(id), 60*time.Second)
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}

	var phases []string
	trials := 0
	type streamKey struct {
		scope    string
		n, delta int
	}
	last := map[streamKey]int64{}
	var lastEstimate *progress.Event
	for _, e := range events {
		switch e.Kind {
		case progress.KindPhase:
			if e.Scope == runScope(id) {
				phases = append(phases, e.Phase)
			}
		case progress.KindTrials:
			trials++
			k := streamKey{e.Scope, e.N, e.Delta}
			if e.Done <= last[k] {
				t.Fatalf("trial counter regressed: %d after %d in stream %+v", e.Done, last[k], k)
			}
			last[k] = e.Done
		case progress.KindEstimate:
			cp := e
			lastEstimate = &cp
		}
	}
	want := []string{string(statusQueued), string(statusRunning), string(statusDone)}
	if fmt.Sprint(phases) != fmt.Sprint(want) {
		t.Errorf("lifecycle phases %v, want %v", phases, want)
	}
	if trials == 0 {
		t.Error("no trials snapshots on the stream")
	}

	r := waitForRun(t, ts, id, 10*time.Second)
	if r.Status != statusDone {
		t.Fatalf("run finished %s: %s", r.Status, r.Error)
	}
	final := events[len(events)-1]
	if final.Phase != string(r.Status) {
		t.Errorf("terminal event phase %q, run status %q", final.Phase, r.Status)
	}
	if lastEstimate == nil || lastEstimate.Estimate == nil {
		t.Fatal("no running estimate on the stream")
	}
	if *lastEstimate.Estimate != *r.Result.Estimate {
		t.Errorf("last streamed estimate %+v, run result %+v", *lastEstimate.Estimate, *r.Result.Estimate)
	}
}

// TestEventsLateSubscriberGetsTerminalEvent: subscribing after the run has
// finished still yields a stream that replays and ends with the terminal
// phase — the documented "the stream always ends with a terminal event"
// guarantee, including the synthesized path.
func TestEventsLateSubscriberGetsTerminalEvent(t *testing.T) {
	_, ts := newTestServer(t, 1, 4)
	code, created := postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	id := int(created["id"].(float64))
	if r := waitForRun(t, ts, id, 30*time.Second); r.Status != statusDone {
		t.Fatalf("run finished %s", r.Status)
	}
	// stop == nil: read until the server closes the stream.
	events := streamEvents(t, ts, id, nil, 10*time.Second)
	if len(events) == 0 {
		t.Fatal("late subscriber saw no events")
	}
	final := events[len(events)-1]
	if final.Kind != progress.KindPhase || final.Phase != string(statusDone) {
		t.Errorf("late stream ends with %+v, want done phase", final)
	}
}

// TestEventsHeartbeat: an idle stream stays alive through synthesized
// heartbeat events at the server's interval.
func TestEventsHeartbeat(t *testing.T) {
	s, ts := newTestServer(t, 1, 1)
	s.heartbeat = 25 * time.Millisecond

	code, created := postSpec(t, ts, slowSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	id := int(created["id"].(float64))
	events := streamEvents(t, ts, id, func(e progress.Event) bool {
		return e.Kind == progress.KindHeartbeat
	}, 20*time.Second)
	if len(events) == 0 || events[len(events)-1].Kind != progress.KindHeartbeat {
		t.Fatal("no heartbeat on an idle stream")
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%d", ts.URL, id), nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// TestEventsClientDisconnect: dropping an SSE client releases its
// subscription — the handler returns and the broadcaster reaps the channel,
// so watching a run cannot leak goroutines.
func TestEventsClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, 1, 1)

	code, created := postSpec(t, ts, slowSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	id := int(created["id"].(float64))
	s.mu.Lock()
	b := s.runs[id].events
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/runs/%d/events", ts.URL, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	resp.Body.Close()
	for b.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnected client still subscribed (%d live)", b.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	del, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%d", ts.URL, id), nil)
	if dresp, err := http.DefaultClient.Do(del); err == nil {
		dresp.Body.Close()
	}
}

// TestCancelLifecycleMatrix pins DELETE /v1/runs/{id} to its documented
// matrix: 404 for unknown runs, 200 for queued and running runs, 409 for any
// finished run — including a second cancel of an already-cancelled run.
func TestCancelLifecycleMatrix(t *testing.T) {
	s, ts := newTestServer(t, 1, 4)

	// Seed runs directly in each lifecycle state: the matrix is about the
	// handler's response to state, not about how the state was reached
	// (the end-to-end cancel paths are covered elsewhere).
	cancelCalled := false
	seed := func(st runStatus, cancel context.CancelFunc) int {
		s.mu.Lock()
		defer s.mu.Unlock()
		id := s.nextID
		s.nextID++
		r := &run{ID: id, Status: st, Spec: estimateSpec(), Submitted: now(), cancel: cancel, events: progress.NewBroadcaster()}
		s.runs[id] = r
		s.order = append(s.order, id)
		return id
	}
	del := func(id int) (int, run) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%d", ts.URL, id), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var r run
		json.NewDecoder(resp.Body).Decode(&r)
		return resp.StatusCode, r
	}

	queuedID := seed(statusQueued, nil)
	runningID := seed(statusRunning, func() { cancelCalled = true })
	doneID := seed(statusDone, nil)
	failedID := seed(statusFailed, nil)
	cancelledID := seed(statusCancelled, nil)

	for _, tc := range []struct {
		name string
		id   int
		want int
	}{
		{"unknown", 9999, http.StatusNotFound},
		{"queued", queuedID, http.StatusOK},
		{"double-cancel", queuedID, http.StatusConflict},
		{"running", runningID, http.StatusOK},
		{"done", doneID, http.StatusConflict},
		{"failed", failedID, http.StatusConflict},
		{"cancelled", cancelledID, http.StatusConflict},
	} {
		code, view := del(tc.id)
		if code != tc.want {
			t.Errorf("%s: DELETE status %d, want %d", tc.name, code, tc.want)
		}
		if tc.name == "queued" && view.Status != statusCancelled {
			t.Errorf("cancelled queued run reports status %s", view.Status)
		}
	}
	if !cancelCalled {
		t.Error("cancelling a running run never invoked its context cancel")
	}
}

// TestMetricsEndpoint: /metrics speaks the Prometheus text format and
// carries every documented family, with run and duration counters that
// reflect completed work and kernel gauges from the benchmark trajectory.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, 1, 4)
	s.kernelBench = map[string]float64{"batch": 11.7}

	code, created := postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	id := int(created["id"].(float64))
	if r := waitForRun(t, ts, id, 30*time.Second); r.Status != statusDone {
		t.Fatalf("run finished %s", r.Status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()

	for _, want := range []string{
		"# TYPE lvmajority_build_info gauge",
		"lvmajority_build_info{version=\"",
		"lvmajority_queue_depth 0",
		"lvmajority_queue_capacity 4",
		"# TYPE lvmajority_runs gauge",
		`lvmajority_runs{status="done"} 1`,
		`lvmajority_runs{status="running"} 0`,
		"# TYPE lvmajority_sweep_cache_hits_total counter",
		"lvmajority_sweep_cache_misses_total",
		"lvmajority_sweep_cache_entries",
		"# TYPE lvmajority_run_duration_seconds summary",
		`lvmajority_run_duration_seconds{quantile="0.5"}`,
		"lvmajority_run_duration_seconds_count 1",
		`lvmajority_kernel_ns_per_event{kernel="batch"} 11.7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestLoadKernelBench: the committed trajectory yields labelled gauges and
// a missing file degrades to none.
func TestLoadKernelBench(t *testing.T) {
	got := loadKernelBench("../../results/bench/BENCH_kernel.json")
	if len(got) == 0 {
		t.Fatal("committed benchmark trajectory yields no kernel gauges")
	}
	for label, v := range got {
		if strings.Contains(label, "/") || v <= 0 {
			t.Errorf("bad kernel gauge %q=%v", label, v)
		}
	}
	if loadKernelBench("no/such/file.json") != nil {
		t.Error("missing trajectory should yield no gauges")
	}
}
