// Command serve is the HTTP facade over the declarative run API
// (internal/scenario): the first network-serving layer of the system. It
// accepts the same Specs the six CLIs print with -dump-spec, executes them
// on a bounded worker queue against one process-wide probe cache, and
// returns typed results embedding full run-manifest provenance — so a run
// over HTTP is exactly as reproducible as a run in a shell.
//
//	POST   /v1/runs              submit a Spec; returns {id, status} (202)
//	GET    /v1/runs              list run summaries
//	GET    /v1/runs/{id}         status, the spec, and (when done) the result
//	GET    /v1/runs/{id}/events  live progress as Server-Sent Events
//	DELETE /v1/runs/{id}         cancel a queued or running run (409 once finished)
//	GET    /v1/experiments       the experiment registry
//	GET    /v1/healthz           liveness, build version, queue and cache stats
//	GET    /metrics              Prometheus text exposition
//
// Specs that touch the server's filesystem (file cache policies, CSV or
// manifest output directories, the report task) are rejected with 422 —
// a remote caller must not direct the serving process's disk. Cancellation
// is real: every run executes under its own context, and Monte-Carlo tasks
// abort between trials when it is cancelled.
//
// Example:
//
//	serve -addr :8080 -runners 2 -queue 64 &
//	experiments -dump-spec T1-SD | curl -s -d @- localhost:8080/v1/runs
//	curl -s localhost:8080/v1/runs/1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"lvmajority/internal/experiment"
	"lvmajority/internal/fabric"
	"lvmajority/internal/progress"
	"lvmajority/internal/scenario"
	"lvmajority/internal/stats"
	"lvmajority/internal/sweep"
)

func main() {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		runners  = fs.Int("runners", 2, "concurrent run executors")
		queue    = fs.Int("queue", 64, "maximum queued (not yet running) runs; further submissions get 503")
		history  = fs.Int("history", 1024, "finished runs retained for GET /v1/runs/{id}; the oldest are evicted beyond this")
		maxBody  = fs.Int64("max-body", 1<<20, "maximum request body size in bytes")
		bench    = fs.String("bench-trajectory", "results/bench/BENCH_kernel.json", "benchmark trajectory backing the kernel ns/event gauges on /metrics; missing file disables them")
		journal  = fs.String("journal", "", "directory persisting queued/running run specs across restarts; empty disables the journal")
		fleet    = fs.Bool("fleet", false, "act as a fabric coordinator: accept worker registrations, shard Monte-Carlo windows across the fleet, and serve the shared probe cache at /fabric/v1/cache")
		shardTr  = fs.Int("shard-trials", 0, "largest trial window dispatched as one fleet shard (0 = default); never changes results")
		lease    = fs.Duration("lease", 0, "fleet worker lease TTL (0 = default)")
		showVers = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *showVers {
		fmt.Println(scenario.Version())
		return
	}

	logger := log.New(os.Stderr, "serve: ", log.LstdFlags)
	srv := newServer(*runners, *queue, *maxBody, logger)
	srv.history = *history
	srv.kernelBench = loadKernelBench(*bench)
	if *journal != "" {
		if err := srv.attachJournal(*journal); err != nil {
			logger.Fatal(err)
		}
	}
	if *fleet {
		// The coordinator shares the runner's probe cache (fleet pushes land
		// where local sweeps look) and the journal directory (worker
		// registrations recover alongside run specs).
		coord, err := fabric.New(fabric.Config{
			ShardTrials: *shardTr,
			LeaseTTL:    *lease,
			Cache:       srv.runner.Cache,
			JournalDir:  *journal,
			Logger:      logger,
		})
		if err != nil {
			logger.Fatal(err)
		}
		srv.fleet = coord
		srv.runner.Probes = coord.Probes()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s (%d runners, queue %d, %s)", ln.Addr(), *runners, *queue, scenario.Version())

	httpSrv := &http.Server{Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		srv.stop()
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	srv.wait()
}

// runStatus is the lifecycle of one submitted run.
type runStatus string

const (
	statusQueued    runStatus = "queued"
	statusRunning   runStatus = "running"
	statusDone      runStatus = "done"
	statusFailed    runStatus = "failed"
	statusCancelled runStatus = "cancelled"
)

// run is one submitted spec and its lifecycle.
type run struct {
	ID     int              `json:"id"`
	Status runStatus        `json:"status"`
	Spec   scenario.Spec    `json:"spec"`
	Result *scenario.Result `json:"result,omitempty"`
	Error  string           `json:"error,omitempty"`
	// Detail classifies a failure ("panic", "timeout", "interrupted") so
	// clients can distinguish failure modes without parsing Error.
	Detail string `json:"detail,omitempty"`
	// Submitted, Started and Finished are RFC 3339 UTC timestamps; empty
	// until the run reaches that stage.
	Submitted string `json:"submitted,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`

	cancel context.CancelFunc
	// events carries the run's progress stream from submission to terminal
	// state; SSE subscribers attach to it at any point in the lifecycle and
	// get the bounded replay plus live events. It is created at submission
	// and closed exactly once, when the run reaches a terminal status.
	events *progress.Broadcaster
}

// summary is the list-endpoint view of a run.
type summary struct {
	ID        int       `json:"id"`
	Status    runStatus `json:"status"`
	Task      string    `json:"task"`
	Submitted string    `json:"submitted,omitempty"`
	Finished  string    `json:"finished,omitempty"`
}

// server executes submitted specs on a bounded worker pool.
type server struct {
	runner  *scenario.Runner
	logger  *log.Logger
	maxBody int64
	// history bounds how many finished runs are retained; beyond it the
	// oldest finished runs (and their results) are evicted so memory
	// stays bounded under sustained traffic. Queued and running runs are
	// never evicted.
	history int

	mu     sync.Mutex
	runs   map[int]*run
	order  []int
	nextID int

	queue    chan *run
	baseCtx  context.Context
	stopBase context.CancelFunc
	workers  sync.WaitGroup
	// journal persists queued/running run specs so a crashed or restarted
	// server can account for them; nil (the default) disables journaling.
	// Its methods are nil-safe. Guarded by mu wherever runs are mutated.
	journal *journal

	// heartbeat is the SSE idle-tick interval and throttle the minimum gap
	// between forwarded trial snapshots per stream; tests shrink both.
	heartbeat time.Duration
	throttle  time.Duration
	// durations sketches the wall time of finished runs for the /metrics
	// summary; durSum tracks the exact total alongside it. Guarded by mu.
	durations *stats.QuantileSketch
	durSum    float64
	// kernelBench is the per-kernel ns/event gauge set, loaded once at
	// startup from the committed benchmark trajectory (may be empty).
	kernelBench map[string]float64
	// fleet is the fabric coordinator in -fleet mode; nil otherwise. When
	// set, the runner's probe estimates shard across registered workers and
	// the /fabric/v1 endpoints are mounted.
	fleet *fabric.Coordinator
}

// newServer builds a server with its worker pool started.
func newServer(runners, queueDepth int, maxBody int64, logger *log.Logger) *server {
	if runners < 1 {
		runners = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	baseCtx, stopBase := context.WithCancel(context.Background())
	s := &server{
		runner:   &scenario.Runner{Cache: sweep.NewCache(), Log: logger.Writer()},
		logger:   logger,
		maxBody:  maxBody,
		history:  1024,
		runs:     make(map[int]*run),
		nextID:   1,
		queue:    make(chan *run, queueDepth),
		baseCtx:  baseCtx,
		stopBase: stopBase,

		heartbeat: 15 * time.Second,
		throttle:  100 * time.Millisecond,
		durations: stats.NewQuantileSketch(0),
	}
	for i := 0; i < runners; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// stop cancels every in-flight run and stops accepting queued work.
func (s *server) stop() {
	s.stopBase()
	close(s.queue)
}

// wait blocks until the workers have drained.
func (s *server) wait() { s.workers.Wait() }

func (s *server) worker() {
	defer s.workers.Done()
	for r := range s.queue {
		s.execute(r)
	}
}

func (s *server) execute(r *run) {
	s.mu.Lock()
	if r.Status != statusQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	r.Status = statusRunning
	r.Started = now()
	r.cancel = cancel
	spec := r.Spec
	s.journal.record(r)
	s.mu.Unlock()
	defer cancel()
	r.events.Publish(progress.Event{Kind: progress.KindPhase, Scope: runScope(r.ID), Phase: string(statusRunning)})

	// Engine events flow into the run's broadcaster through a throttle so
	// every SSE subscriber sees strictly increasing trial counters.
	started := time.Now()
	res, err := s.runner.RunWithProgress(ctx, spec, progress.Throttled(r.events.Publish, s.throttle))
	elapsed := time.Since(started).Seconds()

	s.mu.Lock()
	r.Finished = now()
	r.cancel = nil
	switch {
	case err == nil:
		r.Status = statusDone
		r.Result = res
	case errors.Is(err, context.Canceled):
		r.Status = statusCancelled
		r.Error = err.Error()
		r.Detail = scenario.FailureDetail(err)
	default:
		r.Status = statusFailed
		r.Error = err.Error()
		r.Detail = scenario.FailureDetail(err)
	}
	s.journal.remove(r.ID)
	terminal := progress.Event{Kind: progress.KindPhase, Scope: runScope(r.ID), Phase: string(r.Status), Err: r.Error, Detail: r.Detail}
	s.durations.Add(elapsed)
	s.durSum += elapsed
	s.evictLocked()
	s.logger.Printf("run %d %s (%s task)", r.ID, r.Status, r.Spec.Task)
	s.mu.Unlock()
	r.events.Publish(terminal)
	r.events.Close()
}

// evictLocked drops the oldest finished runs beyond the history bound so
// retained results cannot grow without bound. Callers hold s.mu.
func (s *server) evictLocked() {
	finished := 0
	for _, id := range s.order {
		switch s.runs[id].Status {
		case statusDone, statusFailed, statusCancelled:
			finished++
		}
	}
	if finished <= s.history {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		r := s.runs[id]
		evictable := r.Status == statusDone || r.Status == statusFailed || r.Status == statusCancelled
		if evictable && finished > s.history {
			delete(s.runs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func now() string { return time.Now().UTC().Format(time.RFC3339) }

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.fleet != nil {
		s.fleet.Routes(mux)
	}
	return mux
}

// httpError is the uniform JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	// A client that disconnected mid-POST gets nothing enqueued on its
	// behalf: the spec may have arrived truncated, and nobody is left to
	// read the run ID, so executing it would only burn worker time.
	if err := req.Context().Err(); err != nil {
		s.logger.Printf("submit aborted: client disconnected: %v", err)
		return
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if paths := spec.LocalPaths(); len(paths) > 0 {
		httpError(w, http.StatusUnprocessableEntity,
			"spec touches the server's filesystem (%s); use the CLIs for file-writing runs", strings.Join(paths, ", "))
		return
	}
	if spec.Task == scenario.TaskReport {
		httpError(w, http.StatusUnprocessableEntity, "the report task is CLI-only")
		return
	}
	if spec.Cache != nil && spec.Cache.Policy == scenario.CacheRemote {
		// The serving process IS the remote cache: submitted runs use the
		// shared cache directly, and a spec pointing the server at another
		// cache URL would make run results depend on an outside service.
		httpError(w, http.StatusUnprocessableEntity,
			"the remote cache policy is for CLI and worker runs; submitted runs share the server's cache (use policy \"shared\")")
		return
	}

	// Registration and the non-blocking enqueue happen under one lock so a
	// worker can never observe (or mutate) a run the submitter still reads.
	s.mu.Lock()
	r := &run{ID: s.nextID, Status: statusQueued, Spec: spec, Submitted: now(), events: progress.NewBroadcaster()}
	select {
	case s.queue <- r:
	default:
		s.mu.Unlock()
		// Queue pressure is transient by construction (bounded queue,
		// draining workers); tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "queue full (%d queued); retry later", cap(s.queue))
		return
	}
	s.nextID++
	s.runs[r.ID] = r
	s.order = append(s.order, r.ID)
	s.journal.record(r)
	id := r.ID
	// Published before the lock is released: a worker that dequeues the run
	// publishes "running" only after it takes s.mu, so the stream always
	// opens with the queued phase.
	r.events.Publish(progress.Event{Kind: progress.KindPhase, Scope: runScope(id), Phase: string(statusQueued)})
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     id,
		"status": statusQueued,
		"url":    fmt.Sprintf("/v1/runs/%d", id),
	})
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]summary, 0, len(s.order))
	for _, id := range s.order {
		r := s.runs[id]
		out = append(out, summary{
			ID: r.ID, Status: r.Status, Task: string(r.Spec.Task),
			Submitted: r.Submitted, Finished: r.Finished,
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": out})
}

func (s *server) lookup(w http.ResponseWriter, req *http.Request) *run {
	var id int
	if _, err := fmt.Sscanf(req.PathValue("id"), "%d", &id); err != nil {
		httpError(w, http.StatusBadRequest, "bad run id %q", req.PathValue("id"))
		return nil
	}
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r == nil {
		httpError(w, http.StatusNotFound, "no run %d", id)
		return nil
	}
	return r
}

func (s *server) handleGet(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	s.mu.Lock()
	view := *r
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, &view)
}

// handleCancel cancels a live run. The lifecycle matrix is strict: unknown
// runs are 404 (from lookup), finished runs — done, failed, already
// cancelled — are 409 so a caller can distinguish "I stopped it" from "it
// was already over", and only queued or running runs answer 200.
func (s *server) handleCancel(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	s.mu.Lock()
	var terminal *progress.Event
	switch r.Status {
	case statusQueued:
		r.Status = statusCancelled
		r.Finished = now()
		s.journal.remove(r.ID)
		terminal = &progress.Event{Kind: progress.KindPhase, Scope: runScope(r.ID), Phase: string(statusCancelled)}
		s.evictLocked()
	case statusRunning:
		if r.cancel != nil {
			r.cancel()
		}
	default: // done, failed, cancelled: nothing left to cancel
		st := r.Status
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "run %d already %s", r.ID, st)
		return
	}
	view := *r
	s.mu.Unlock()
	if terminal != nil {
		r.events.Publish(*terminal)
		r.events.Close()
	}
	writeJSON(w, http.StatusOK, &view)
}

func (s *server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		ID        string `json:"id"`
		Title     string `json:"title"`
		Artifact  string `json:"artifact"`
		QuickGrid string `json:"quick_grid"`
		FullGrid  string `json:"full_grid"`
	}
	var out []entry
	for _, e := range experiment.All() {
		out = append(out, entry{e.ID, e.Title, e.Artifact, e.QuickGrid, e.FullGrid})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[runStatus]int{}
	for _, r := range s.runs {
		counts[r.Status]++
	}
	s.mu.Unlock()
	hits, misses := s.runner.Cache.Counters()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"version":    scenario.Version(),
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"runs": map[string]int{
			"queued":    counts[statusQueued],
			"running":   counts[statusRunning],
			"done":      counts[statusDone],
			"failed":    counts[statusFailed],
			"cancelled": counts[statusCancelled],
		},
		"cache": map[string]any{
			"entries": s.runner.Cache.Len(),
			"hits":    hits,
			"misses":  misses,
		},
	})
}
