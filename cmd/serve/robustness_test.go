package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/progress"
	"lvmajority/internal/testutil"
)

// journalFiles lists the live run-*.json entries under dir.
func journalFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "run-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func cancelRun(t *testing.T, ts *httptest.Server, id int) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestSubmitRetryAfterOnQueueFull: the 503 on queue overflow carries a
// Retry-After header, since queue pressure is transient by construction.
func TestSubmitRetryAfterOnQueueFull(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)

	// Occupy the single runner, then fill the one queue slot.
	code, created := postSpec(t, ts, slowSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	runningID := int(created["id"].(float64))
	code, created = postSpec(t, ts, slowSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("queued POST status %d", code)
	}
	queuedID := int(created["id"].(float64))

	data, err := json.Marshal(slowSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow POST status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("503 response has no Retry-After header")
	}

	cancelRun(t, ts, queuedID)
	cancelRun(t, ts, runningID)
	waitForRun(t, ts, runningID, 60*time.Second)
}

// TestSubmitDisconnectedClientAborts: a POST whose client vanished before
// the handler ran enqueues nothing — the spec may be truncated and nobody
// is left to read the run ID.
func TestSubmitDisconnectedClientAborts(t *testing.T) {
	s, _ := newTestServer(t, 1, 4)

	data, err := json.Marshal(estimateSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest(http.MethodPost, "/v1/runs", bytes.NewReader(data)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handleSubmit(rec, req)

	s.mu.Lock()
	registered := len(s.runs)
	s.mu.Unlock()
	if registered != 0 {
		t.Errorf("disconnected POST registered %d runs, want 0", registered)
	}
}

// TestJournalLifecycle: a journaled run has an on-disk entry exactly while
// it is live — present when queued or running, gone at any terminal state,
// whether it finished or was cancelled.
func TestJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, 1, 4)
	if err := s.attachJournal(dir); err != nil {
		t.Fatal(err)
	}

	// Occupy the runner so the next submission stays observably queued.
	code, created := postSpec(t, ts, slowSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	slowID := int(created["id"].(float64))
	code, created = postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("queued POST status %d", code)
	}
	queuedID := int(created["id"].(float64))

	testutil.WaitFor(t, 5*time.Second, func() bool {
		return len(journalFiles(t, dir)) == 2
	}, "both live runs journaled (have %d entries)", len(journalFiles(t, dir)))

	// The queued entry round-trips: it holds the exact spec and ID.
	var e journalEntry
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("run-%d.json", queuedID)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.ID != queuedID || e.Status != statusQueued || e.Spec.Task != estimateSpec().Task {
		t.Errorf("journal entry %+v does not match the queued run %d", e, queuedID)
	}

	cancelRun(t, ts, queuedID)
	if r := waitForRun(t, ts, queuedID, 10*time.Second); r.Status != statusCancelled {
		t.Fatalf("queued run finished %s, want cancelled", r.Status)
	}
	cancelRun(t, ts, slowID)
	waitForRun(t, ts, slowID, 60*time.Second)
	testutil.WaitFor(t, 5*time.Second, func() bool {
		return len(journalFiles(t, dir)) == 0
	}, "journal entries removed at terminal state: %v", journalFiles(t, dir))
}

// TestJournalRestartRecovery: replaying a journal left by a dead process
// re-enqueues runs that never started (same ID, same spec — re-running them
// is safe because specs are deterministic), reports runs that died
// mid-execution as failed(interrupted), quarantines unreadable entries, and
// moves the ID counter past everything recovered.
func TestJournalRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, v any) {
		t.Helper()
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("run-5.json", journalEntry{ID: 5, Status: statusQueued, Spec: estimateSpec(), Submitted: "2026-08-07T00:00:00Z"})
	write("run-7.json", journalEntry{ID: 7, Status: statusRunning, Spec: estimateSpec(), Submitted: "2026-08-07T00:00:01Z", Started: "2026-08-07T00:00:02Z"})
	if err := os.WriteFile(filepath.Join(dir, "run-3.json"), []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, 1, 4)
	if err := s.attachJournal(dir); err != nil {
		t.Fatal(err)
	}

	// The mid-execution run is already terminal: failed, interrupted.
	var interrupted run
	if code := getJSON(t, ts, "/v1/runs/7", &interrupted); code != http.StatusOK {
		t.Fatalf("GET recovered run 7: status %d", code)
	}
	if interrupted.Status != statusFailed || interrupted.Detail != progress.DetailInterrupted {
		t.Errorf("mid-execution run recovered as %s/%s, want failed/%s",
			interrupted.Status, interrupted.Detail, progress.DetailInterrupted)
	}

	// The queued run re-executes to completion under its original ID.
	if r := waitForRun(t, ts, 5, 30*time.Second); r.Status != statusDone || r.Result == nil || r.Result.Estimate == nil {
		t.Errorf("re-enqueued run finished %s (%s) with result %v", r.Status, r.Error, r.Result)
	}

	// The torn entry was quarantined, not fatal.
	if _, err := os.Stat(filepath.Join(dir, "run-3.json.corrupt")); err != nil {
		t.Errorf("torn journal entry not quarantined: %v", err)
	}

	// New submissions get IDs above everything recovered.
	code, created := postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery POST status %d", code)
	}
	if id := int(created["id"].(float64)); id != 8 {
		t.Errorf("post-recovery run got id %d, want 8 (past recovered id 7)", id)
	}
	waitForRun(t, ts, 8, 30*time.Second)
	testutil.WaitFor(t, 5*time.Second, func() bool {
		return len(journalFiles(t, dir)) == 0
	}, "journal drained after recovery: %v", journalFiles(t, dir))
}

// TestChaosServeEnginePanic: a panic deep in the Monte-Carlo engine fails
// only the run it hit — the response classifies it, the server stays
// healthy, and the next submission succeeds.
func TestChaosServeEnginePanic(t *testing.T) {
	_, ts := newTestServer(t, 1, 4)

	faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{
		Site: faultpoint.TrialStart, After: 10, Mode: faultpoint.ModePanic, Msg: "chaos",
	}))
	defer faultpoint.Disarm()

	code, created := postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	id := int(created["id"].(float64))
	r := waitForRun(t, ts, id, 30*time.Second)
	if r.Status != statusFailed {
		t.Fatalf("run with injected panic finished %s, want failed", r.Status)
	}
	if r.Detail != progress.DetailPanic {
		t.Errorf("failed run detail %q, want %q", r.Detail, progress.DetailPanic)
	}
	if r.Error == "" {
		t.Error("failed run carries no error message")
	}

	// The server survived: healthz answers and a clean run completes.
	faultpoint.Disarm()
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts, "/v1/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz after panic: status %d, %+v", code, health)
	}
	code, created = postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("post-panic POST status %d", code)
	}
	if r := waitForRun(t, ts, int(created["id"].(float64)), 30*time.Second); r.Status != statusDone {
		t.Errorf("post-panic run finished %s (%s), want done", r.Status, r.Error)
	}
}

// TestChaosJournalWriteFault: persistent journal-write failures degrade the
// journal, never the runs — submissions are accepted and complete with
// correct results while every journal write fails.
func TestChaosJournalWriteFault(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, 1, 4)
	if err := s.attachJournal(dir); err != nil {
		t.Fatal(err)
	}

	plan := faultpoint.NewPlan(faultpoint.Rule{
		Site: faultpoint.JournalWrite, Times: 1 << 20, Mode: faultpoint.ModeError, Msg: "disk gone",
	})
	faultpoint.Arm(plan)
	defer faultpoint.Disarm()

	code, created := postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d with journal down", code)
	}
	id := int(created["id"].(float64))
	if r := waitForRun(t, ts, id, 30*time.Second); r.Status != statusDone || r.Result == nil {
		t.Errorf("run finished %s (%s) with journal down, want done", r.Status, r.Error)
	}
	if plan.Triggered() == 0 {
		t.Error("no journal faults injected; the test exercised nothing")
	}
	if files := journalFiles(t, dir); len(files) != 0 {
		t.Errorf("failed journal writes left entries: %v", files)
	}
}
