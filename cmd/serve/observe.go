package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"lvmajority/internal/benchgate"
	"lvmajority/internal/progress"
	"lvmajority/internal/scenario"
)

// This file is the server's observability surface: the per-run SSE event
// stream and the Prometheus /metrics endpoint. Both read the same
// progress.Broadcaster the run's execution publishes into, so what an
// operator watches is exactly what the engines emitted — and because hooks
// are observation-only by construction, watching a run cannot change it.

// runScope names a run's lifecycle events in the stream.
func runScope(id int) string { return fmt.Sprintf("run-%d", id) }

// terminalStatus reports whether st ends a run's lifecycle.
func terminalStatus(st runStatus) bool {
	return st == statusDone || st == statusFailed || st == statusCancelled
}

// handleEvents streams a run's progress as Server-Sent Events: first the
// broadcaster's bounded replay (so a subscriber joining mid-run sees the
// lifecycle so far), then live events, with heartbeats while idle. Each SSE
// message's event field is the progress kind and its data field the Event as
// JSON. Trial counters are strictly increasing per (scope, n, delta) stream
// — the publisher is throttled — and the stream always ends with a terminal
// phase event (done, failed, or cancelled) matching GET /v1/runs/{id}, even
// if the subscriber's buffer overflowed: the handler synthesizes it from the
// run record when the broadcaster closes without one.
func (s *server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	s.mu.Lock()
	b := r.events
	id := r.ID
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancelSub := b.Subscribe()
	defer cancelSub()
	heartbeat := time.NewTicker(s.heartbeat)
	defer heartbeat.Stop()

	sawTerminal := false
	for {
		select {
		case <-req.Context().Done():
			return
		case e, open := <-ch:
			if !open {
				if !sawTerminal {
					s.mu.Lock()
					st := r.Status
					errMsg := r.Error
					s.mu.Unlock()
					writeSSE(w, progress.Event{
						Kind: progress.KindPhase, Scope: runScope(id),
						Phase: string(st), Err: errMsg,
					})
					fl.Flush()
				}
				return
			}
			if e.Kind == progress.KindPhase && e.Scope == runScope(id) && terminalStatus(runStatus(e.Phase)) {
				sawTerminal = true
			}
			writeSSE(w, e)
			fl.Flush()
		case <-heartbeat.C:
			writeSSE(w, progress.Event{Kind: progress.KindHeartbeat, Scope: runScope(id)})
			fl.Flush()
		}
	}
}

// writeSSE writes one Server-Sent Event frame.
func writeSSE(w http.ResponseWriter, e progress.Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind, data)
}

// handleMetrics exposes fleet health in the Prometheus text format, written
// by hand since the server takes no dependencies beyond the standard
// library: build info, queue depth against capacity, runs by state, sweep
// probe-cache traffic, run-duration quantiles from the merging digest, and
// per-kernel ns/event from the committed benchmark trajectory.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[runStatus]int{}
	for _, r := range s.runs {
		counts[r.Status]++
	}
	type q struct {
		label string
		value float64
	}
	var quantiles []q
	for _, p := range []struct {
		label string
		v     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
		if v, err := s.durations.Quantile(p.v); err == nil {
			quantiles = append(quantiles, q{p.label, v})
		}
	}
	durSum, durCount := s.durSum, int64(s.durations.N())
	s.mu.Unlock()
	hits, misses := s.runner.Cache.Counters()

	var sb strings.Builder
	family := func(name, help, typ string) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	family("lvmajority_build_info", "Build metadata; constant 1.", "gauge")
	fmt.Fprintf(&sb, "lvmajority_build_info{version=%q,go=%q} 1\n", scenario.Version(), runtime.Version())

	family("lvmajority_queue_depth", "Runs queued and not yet started.", "gauge")
	fmt.Fprintf(&sb, "lvmajority_queue_depth %d\n", counts[statusQueued])
	family("lvmajority_queue_capacity", "Maximum queued runs before submissions get 503.", "gauge")
	fmt.Fprintf(&sb, "lvmajority_queue_capacity %d\n", cap(s.queue))

	family("lvmajority_runs", "Retained runs by lifecycle state.", "gauge")
	for _, st := range []runStatus{statusQueued, statusRunning, statusDone, statusFailed, statusCancelled} {
		fmt.Fprintf(&sb, "lvmajority_runs{status=%q} %d\n", st, counts[st])
	}

	family("lvmajority_sweep_cache_hits_total", "Threshold probes served from the shared probe cache.", "counter")
	fmt.Fprintf(&sb, "lvmajority_sweep_cache_hits_total %d\n", hits)
	family("lvmajority_sweep_cache_misses_total", "Threshold probes that ran fresh trials.", "counter")
	fmt.Fprintf(&sb, "lvmajority_sweep_cache_misses_total %d\n", misses)
	family("lvmajority_sweep_cache_entries", "Settled probes retained in the shared probe cache.", "gauge")
	fmt.Fprintf(&sb, "lvmajority_sweep_cache_entries %d\n", s.runner.Cache.Len())

	family("lvmajority_run_duration_seconds", "Wall time of finished runs (merging quantile sketch).", "summary")
	for _, p := range quantiles {
		fmt.Fprintf(&sb, "lvmajority_run_duration_seconds{quantile=%q} %g\n", p.label, p.value)
	}
	fmt.Fprintf(&sb, "lvmajority_run_duration_seconds_sum %g\n", durSum)
	fmt.Fprintf(&sb, "lvmajority_run_duration_seconds_count %d\n", durCount)

	if s.fleet != nil {
		st := s.fleet.FleetStats()
		family("lvmajority_fleet_workers", "Registered fabric workers by lease state.", "gauge")
		fmt.Fprintf(&sb, "lvmajority_fleet_workers{state=\"live\"} %d\n", st.WorkersLive)
		fmt.Fprintf(&sb, "lvmajority_fleet_workers{state=\"expired\"} %d\n", st.WorkersExpired)
		family("lvmajority_fleet_shards_in_flight", "Trial windows currently dispatched to workers.", "gauge")
		fmt.Fprintf(&sb, "lvmajority_fleet_shards_in_flight %d\n", st.InFlightShards)
		family("lvmajority_fleet_shards_dispatched_total", "Trial windows dispatched to fabric workers.", "counter")
		fmt.Fprintf(&sb, "lvmajority_fleet_shards_dispatched_total %d\n", st.ShardsDispatched)
		family("lvmajority_fleet_shards_local_total", "Trial windows executed locally because no worker was available.", "counter")
		fmt.Fprintf(&sb, "lvmajority_fleet_shards_local_total %d\n", st.ShardsLocal)
		family("lvmajority_fleet_reassignments_total", "Shards reassigned after a worker failed mid-window.", "counter")
		fmt.Fprintf(&sb, "lvmajority_fleet_reassignments_total %d\n", st.Reassignments)
		family("lvmajority_fleet_evictions_total", "Workers dropped on failure or lease expiry.", "counter")
		fmt.Fprintf(&sb, "lvmajority_fleet_evictions_total %d\n", st.Evictions)
		family("lvmajority_fleet_remote_cache_hits_total", "Remote cache fetches answered 304 Not Modified.", "counter")
		fmt.Fprintf(&sb, "lvmajority_fleet_remote_cache_hits_total %d\n", st.CacheHits)
		family("lvmajority_fleet_remote_cache_misses_total", "Remote cache fetches that shipped a full snapshot.", "counter")
		fmt.Fprintf(&sb, "lvmajority_fleet_remote_cache_misses_total %d\n", st.CacheMisses)
		family("lvmajority_fleet_remote_cache_merged_total", "Probe entries merged from worker cache pushes.", "counter")
		fmt.Fprintf(&sb, "lvmajority_fleet_remote_cache_merged_total %d\n", st.CacheMerges)
	}

	if len(s.kernelBench) > 0 {
		family("lvmajority_kernel_ns_per_event", "Per-event cost of the population kernels from the committed benchmark trajectory.", "gauge")
		names := make([]string, 0, len(s.kernelBench))
		for name := range s.kernelBench {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&sb, "lvmajority_kernel_ns_per_event{kernel=%q} %g\n", name, s.kernelBench[name])
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, sb.String())
}

// loadKernelBench maps the newest benchmark-trajectory record to metric
// labels: "BenchmarkPopulationKernel/batch" becomes kernel="batch". A
// missing or malformed trajectory yields no kernel family — the server must
// come up on machines that never ran the benchmarks.
func loadKernelBench(path string) map[string]float64 {
	t, err := benchgate.Load(path)
	if err != nil {
		return nil
	}
	out := make(map[string]float64)
	for name, m := range t.Latest().Benchmarks {
		if m.NsPerEvent == nil {
			continue
		}
		label := name
		if i := strings.LastIndex(name, "/"); i >= 0 {
			label = name[i+1:]
		}
		out[label] = *m.NsPerEvent
	}
	return out
}
