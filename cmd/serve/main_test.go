package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lvmajority/internal/scenario"
	"lvmajority/internal/testutil"
)

// newTestServer starts a server on httptest and tears it down with the
// test. The goroutine-leak check registers first so it runs after the
// teardown cleanup: every worker, SSE subscription and broadcaster the test
// spawned must have unwound by then.
func newTestServer(t *testing.T, runners, queueDepth int) (*server, *httptest.Server) {
	t.Helper()
	testutil.CheckGoroutineLeaks(t)
	s := newServer(runners, queueDepth, 1<<20, log.New(io.Discard, "", 0))
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.stop()
		s.wait()
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec scenario.Spec) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return postBody(t, ts, data)
}

func postBody(t *testing.T, ts *httptest.Server, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// waitForRun polls a run until it leaves the queued/running states.
func waitForRun(t *testing.T, ts *httptest.Server, id int, timeout time.Duration) run {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var r run
		if code := getJSON(t, ts, fmt.Sprintf("/v1/runs/%d", id), &r); code != http.StatusOK {
			t.Fatalf("GET run %d: status %d", id, code)
		}
		if r.Status != statusQueued && r.Status != statusRunning {
			return r
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %d still %s after %v", id, r.Status, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func estimateSpec() scenario.Spec {
	spec := scenario.New(scenario.TaskEstimate)
	spec.Model = &scenario.Model{Kind: scenario.ModelLV, LV: &scenario.LVModel{
		Beta: 1, Death: 1, Alpha0: 1, Alpha1: 1, Competition: "sd", Label: "lv-sd",
	}}
	spec.Seed = 7
	spec.Estimate = &scenario.EstimateSpec{N: 100, Delta: 20, Trials: 300}
	return spec
}

func TestHealthzAndExperiments(t *testing.T) {
	_, ts := newTestServer(t, 1, 4)

	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if code := getJSON(t, ts, "/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || !strings.Contains(health.Version, "lvmajority") {
		t.Errorf("healthz = %+v", health)
	}

	var exps struct {
		Experiments []struct {
			ID    string `json:"id"`
			Title string `json:"title"`
		} `json:"experiments"`
	}
	if code := getJSON(t, ts, "/v1/experiments", &exps); code != http.StatusOK {
		t.Fatalf("experiments status %d", code)
	}
	if len(exps.Experiments) < 20 {
		t.Errorf("registry lists %d experiments", len(exps.Experiments))
	}
	found := false
	for _, e := range exps.Experiments {
		if e.ID == "T1-SD" {
			found = true
		}
	}
	if !found {
		t.Error("T1-SD missing from /v1/experiments")
	}
}

func TestSubmitEstimateEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, 2, 8)

	code, created := postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %v", code, created)
	}
	id := int(created["id"].(float64))
	r := waitForRun(t, ts, id, 30*time.Second)
	if r.Status != statusDone {
		t.Fatalf("run finished %s: %s", r.Status, r.Error)
	}
	if r.Result == nil || r.Result.Estimate == nil {
		t.Fatal("done run has no estimate result")
	}

	// The HTTP path must return exactly what a local Runner computes.
	local, err := (&scenario.Runner{}).Run(context.Background(), estimateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if *r.Result.Estimate != *local.Estimate {
		t.Errorf("server estimate %v, local %v", *r.Result.Estimate, *local.Estimate)
	}
	if len(r.Result.Manifests) != 1 || r.Result.Manifests[0].ExperimentID != "RUN-estimate" {
		t.Errorf("server result manifests malformed: %+v", r.Result.Manifests)
	}

	var list struct {
		Runs []summary `json:"runs"`
	}
	if code := getJSON(t, ts, "/v1/runs", &list); code != http.StatusOK || len(list.Runs) != 1 {
		t.Errorf("list status %d, %d runs", code, len(list.Runs))
	}
}

// TestServeT1SDMatchesExperimentsCLI is the acceptance criterion: a T1-SD
// quick Spec over HTTP must return the same manifest tables as
// cmd/experiments (whose path is pinned byte-identically to the local
// Runner and the committed record by the scenario golden tests).
func TestServeT1SDMatchesExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full T1-SD quick grid; skipped with -short")
	}
	_, ts := newTestServer(t, 1, 4)

	spec := scenario.New(scenario.TaskExperiment)
	spec.Seed = 20240506
	spec.Experiment = &scenario.ExperimentSpec{ID: "T1-SD"}
	spec.Cache = &scenario.CacheSpec{Policy: scenario.CacheShared}

	code, created := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %v", code, created)
	}
	id := int(created["id"].(float64))
	r := waitForRun(t, ts, id, 5*time.Minute)
	if r.Status != statusDone {
		t.Fatalf("run finished %s: %s", r.Status, r.Error)
	}

	local, err := (&scenario.Runner{}).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	gotTables, err := json.Marshal(r.Result.Manifests[0].Tables)
	if err != nil {
		t.Fatal(err)
	}
	wantTables, err := json.Marshal(local.Manifests[0].Tables)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotTables) != string(wantTables) {
		t.Errorf("server tables differ from local runner:\n%s\nvs\n%s", gotTables, wantTables)
	}
}

func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, 1, 4)

	if code, _ := postBody(t, ts, []byte("{not json")); code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", code)
	}
	if code, _ := postBody(t, ts, []byte(`{"version":1,"task":"estimate","bogus":true}`)); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}

	fileCache := estimateSpec()
	fileCache.Task = scenario.TaskSweep
	fileCache.Estimate = nil
	fileCache.Sweep = &scenario.SweepSpec{Grid: []int{64}}
	fileCache.Cache = &scenario.CacheSpec{Policy: scenario.CacheFile, Path: "/tmp/probes.json"}
	if code, body := postSpec(t, ts, fileCache); code != http.StatusUnprocessableEntity {
		t.Errorf("file-cache spec: status %d (%v)", code, body)
	}

	csvOut := scenario.New(scenario.TaskExperiment)
	csvOut.Experiment = &scenario.ExperimentSpec{ID: "E-DOM", CSVDir: "out"}
	if code, _ := postSpec(t, ts, csvOut); code != http.StatusUnprocessableEntity {
		t.Errorf("csv-writing spec accepted")
	}

	reportSpec := scenario.New(scenario.TaskReport)
	reportSpec.Report = &scenario.ReportSpec{Design: "DESIGN.md"}
	if code, _ := postSpec(t, ts, reportSpec); code != http.StatusUnprocessableEntity {
		t.Errorf("report task accepted")
	}

	resp, err := http.Get(ts.URL + "/v1/runs/999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing run: status %d", resp.StatusCode)
	}
}

// TestCancelExperimentTask: cancellation must reach inside a registered
// experiment's Monte-Carlo loops (experiment.Config.Interrupt), not just
// the scenario-level tasks.
func TestCancelExperimentTask(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a multi-second experiment; skipped with -short")
	}
	_, ts := newTestServer(t, 1, 4)

	spec := scenario.New(scenario.TaskExperiment)
	spec.Seed = 20240506
	spec.Experiment = &scenario.ExperimentSpec{ID: "T1-NSD"}
	code, created := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	id := int(created["id"].(float64))
	deadline := time.Now().Add(30 * time.Second)
	for {
		var r run
		getJSON(t, ts, fmt.Sprintf("/v1/runs/%d", id), &r)
		if r.Status == statusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never started (status %s)", r.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let it get into the Monte-Carlo loops
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r := waitForRun(t, ts, id, 60*time.Second); r.Status != statusCancelled {
		t.Errorf("experiment run finished %s (%s), want cancelled", r.Status, r.Error)
	}
}

// TestHistoryEviction: finished runs beyond the -history bound are
// evicted, oldest first, so retained results stay bounded.
func TestHistoryEviction(t *testing.T) {
	s, ts := newTestServer(t, 1, 8)
	s.history = 2

	var ids []int
	for i := 0; i < 4; i++ {
		code, created := postSpec(t, ts, estimateSpec())
		if code != http.StatusAccepted {
			t.Fatalf("POST %d: status %d", i, code)
		}
		id := int(created["id"].(float64))
		ids = append(ids, id)
		if r := waitForRun(t, ts, id, 30*time.Second); r.Status != statusDone {
			t.Fatalf("run %d finished %s", id, r.Status)
		}
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%d", ts.URL, ids[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest run still retained: status %d", resp.StatusCode)
	}
	if r := waitForRun(t, ts, ids[3], time.Second); r.Status != statusDone {
		t.Errorf("newest run evicted")
	}
	var list struct {
		Runs []summary `json:"runs"`
	}
	getJSON(t, ts, "/v1/runs", &list)
	if len(list.Runs) != 2 {
		t.Errorf("list retains %d runs, want 2", len(list.Runs))
	}
}

// slowSweepSpec is a run long enough to observe running/queued states.
func slowSweepSpec() scenario.Spec {
	spec := scenario.New(scenario.TaskSweep)
	spec.Model = &scenario.Model{Kind: scenario.ModelLV, LV: &scenario.LVModel{
		Beta: 1, Death: 1, Alpha0: 1, Alpha1: 1, Competition: "nsd", Label: "lv-nsd",
	}}
	spec.Seed = 1
	spec.Workers = 1
	spec.Sweep = &scenario.SweepSpec{Grid: []int{2048, 4096, 8192}, Trials: 8000}
	return spec
}

func TestCancelAndQueueBounds(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)

	// Occupy the single runner.
	code, created := postSpec(t, ts, slowSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	runningID := int(created["id"].(float64))
	deadline := time.Now().Add(30 * time.Second)
	for {
		var r run
		getJSON(t, ts, fmt.Sprintf("/v1/runs/%d", runningID), &r)
		if r.Status == statusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %d never started (status %s)", runningID, r.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fill the queue buffer, then overflow it.
	code, created = postSpec(t, ts, slowSweepSpec())
	if code != http.StatusAccepted {
		t.Fatalf("queued POST status %d", code)
	}
	queuedID := int(created["id"].(float64))
	code, body := postSpec(t, ts, slowSweepSpec())
	if code != http.StatusServiceUnavailable {
		t.Errorf("overflow POST status %d (%v)", code, body)
	}

	// Cancel the queued run: it must finish cancelled without running.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%d", ts.URL, queuedID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r := waitForRun(t, ts, queuedID, 10*time.Second); r.Status != statusCancelled {
		t.Errorf("queued run finished %s, want cancelled", r.Status)
	}

	// Cancel the running run: the per-run context must abort it between
	// trials.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/runs/%d", ts.URL, runningID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r := waitForRun(t, ts, runningID, 60*time.Second); r.Status != statusCancelled {
		t.Errorf("running run finished %s (%s), want cancelled", r.Status, r.Error)
	}
}
