package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lvmajority/internal/fabric"
	"lvmajority/internal/scenario"
	"lvmajority/internal/testutil"
)

// newFleetTestServer starts a server in -fleet mode plus n fabric workers,
// each registered through the real HTTP registration endpoint — the same
// wiring `serve -fleet` does in main.
func newFleetTestServer(t *testing.T, n int) (*server, *httptest.Server) {
	t.Helper()
	testutil.CheckGoroutineLeaks(t)
	s := newServer(2, 16, 1<<20, log.New(io.Discard, "", 0))
	coord, err := fabric.New(fabric.Config{ShardTrials: 64, Cache: s.runner.Cache})
	if err != nil {
		t.Fatal(err)
	}
	s.fleet = coord
	s.runner.Probes = coord.Probes()
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.stop()
		s.wait()
	})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("flt-%d", i)
		mux := http.NewServeMux()
		// The advertise URL is a placeholder: registration below carries the
		// httptest listener's real URL, which only exists after Routes is
		// served.
		w, err := fabric.NewWorker(fabric.WorkerConfig{ID: id, Coordinator: ts.URL, AdvertiseURL: "http://unused.invalid"})
		if err != nil {
			t.Fatal(err)
		}
		w.Routes(mux)
		ws := httptest.NewServer(mux)
		t.Cleanup(ws.Close)
		info, err := json.Marshal(fabric.WorkerInfo{ID: id, URL: ws.URL, Cores: 2})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/fabric/v1/workers", "application/json", strings.NewReader(string(info)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("worker registration answered %s", resp.Status)
		}
	}
	return s, ts
}

// TestFleetModeEndToEnd submits the same spec to a plain server and a
// 2-worker fleet server: the results must be byte-identical, the work must
// actually have been sharded, and the fleet metric families must reflect
// it.
func TestFleetModeEndToEnd(t *testing.T) {
	spec := estimateSpec()

	_, plain := newTestServer(t, 2, 16)
	code, out := postSpec(t, plain, spec)
	if code != http.StatusAccepted {
		t.Fatalf("plain submit: status %d %v", code, out)
	}
	want := waitForRun(t, plain, int(out["id"].(float64)), 30*time.Second)
	if want.Status != statusDone {
		t.Fatalf("plain run %s: %s", want.Status, want.Error)
	}

	_, fleet := newFleetTestServer(t, 2)
	code, out = postSpec(t, fleet, spec)
	if code != http.StatusAccepted {
		t.Fatalf("fleet submit: status %d %v", code, out)
	}
	got := waitForRun(t, fleet, int(out["id"].(float64)), 30*time.Second)
	if got.Status != statusDone {
		t.Fatalf("fleet run %s: %s", got.Status, got.Error)
	}

	wantEst, err := json.Marshal(want.Result.Estimate)
	if err != nil {
		t.Fatal(err)
	}
	gotEst, err := json.Marshal(got.Result.Estimate)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotEst) != string(wantEst) {
		t.Errorf("fleet estimate differs from plain server:\n%s\nvs\n%s", gotEst, wantEst)
	}

	resp, err := http.Get(fleet.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`lvmajority_fleet_workers{state="live"} 2`,
		`lvmajority_fleet_workers{state="expired"} 0`,
		"lvmajority_fleet_shards_in_flight 0",
		"lvmajority_fleet_reassignments_total 0",
		"lvmajority_fleet_remote_cache_hits_total 0",
		"lvmajority_fleet_remote_cache_misses_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The run above must have been sharded across the fleet, not run
	// locally.
	if !strings.Contains(metrics, "lvmajority_fleet_shards_local_total 0") {
		t.Error("fleet fell back to local execution with live workers")
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "lvmajority_fleet_shards_dispatched_total ") &&
			strings.TrimPrefix(line, "lvmajority_fleet_shards_dispatched_total ") == "0" {
			t.Error("no shards dispatched: the fleet did nothing")
		}
	}

	// A plain server exposes no fleet families at all.
	resp, err = http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "lvmajority_fleet_") {
		t.Error("non-fleet server exposes fleet metric families")
	}
}

// TestSubmitRejectsRemoteCachePolicy: a submitted spec must not point the
// server at an outside cache server; the server's own cache is the shared
// one.
func TestSubmitRejectsRemoteCachePolicy(t *testing.T) {
	_, ts := newTestServer(t, 1, 4)
	spec := estimateSpec()
	spec.Cache = &scenario.CacheSpec{Policy: scenario.CacheRemote, URL: "http://cache.invalid/fabric/v1/cache"}
	code, out := postSpec(t, ts, spec)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("remote-cache spec: status %d %v, want 422", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "remote cache") {
		t.Errorf("error %q does not explain the rejection", msg)
	}
}

// TestFleetWorkerDeregister: DELETE unregisters a worker; runs keep working
// against the remaining fleet.
func TestFleetWorkerDeregister(t *testing.T) {
	s, ts := newFleetTestServer(t, 2)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/fabric/v1/workers/flt-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister answered %s", resp.Status)
	}
	if st := s.fleet.FleetStats(); st.WorkersLive != 1 {
		t.Fatalf("%d live workers after deregister, want 1", st.WorkersLive)
	}
	code, out := postSpec(t, ts, estimateSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit after deregister: status %d %v", code, out)
	}
	r := waitForRun(t, ts, int(out["id"].(float64)), 30*time.Second)
	if r.Status != statusDone {
		t.Fatalf("run after deregister %s: %s", r.Status, r.Error)
	}
}
