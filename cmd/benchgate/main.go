// Command benchgate maintains and enforces the committed benchmark
// trajectory under results/bench/. The trajectory files record one entry
// per PR, so the repository's performance history is reviewable like any
// other artifact, and CI can hold new code to the committed numbers.
//
// Three modes, all reading `go test -bench` text output on stdin:
//
//	benchgate -snapshot out.json
//	    Parse the benchmark output into a standalone JSON snapshot
//	    (a CI artifact, not the committed trajectory).
//
//	benchgate -update results/bench/BENCH_kernel.json -pr 6 -note "..."
//	    Append one record to the committed trajectory. Run on a quiet
//	    dev machine with a real -benchtime, not in CI.
//
//	benchgate -check results/bench/BENCH_kernel.json \
//	    -baseline BenchmarkPopulationKernel/batch -max-regress 0.25 \
//	    -zero-alloc BenchmarkPopulationKernel/lockstep
//	    Gate the current output against the latest committed record:
//	      - every gated benchmark in the committed record must appear in
//	        the current output, and every current benchmark sharing the
//	        baseline's prefix must appear in the committed record (adding
//	        a kernel without recording its trajectory entry fails CI);
//	      - with -baseline, each benchmark's ns/event is normalized by
//	        the same run's baseline before comparison, and the check
//	        fails when the normalized cost regresses by more than
//	        -max-regress versus the committed record. Absolute ns/event
//	        is never compared across machines — CI runners differ by far
//	        more than any real regression;
//	      - benchmarks named in -zero-alloc must report 0 allocs/op.
package main

import (
	"fmt"
	"os"

	"lvmajority/internal/benchgate"
)

func main() {
	if err := benchgate.Main(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
