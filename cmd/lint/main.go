// Command lint runs the repository's determinism lint suite
// (internal/lint): detrand, maporder, interrupt, hotpath, and speclock —
// the analyzers that mechanically enforce the byte-identity, cancellation,
// 0-alloc, and schema-lock invariants the results rest on.
//
// It runs two ways:
//
//	lint ./...                          # standalone, like go vet's front-end
//	go vet -vettool=$(pwd)/lintbin ./... # as a unit checker under go vet
//
// The vettool mode implements the go vet unit-checker protocol (the same
// .cfg contract golang.org/x/tools/go/analysis/unitchecker speaks): go vet
// invokes the tool once per package with a JSON config naming the sources
// and the export data of every dependency. `lint help` prints the suite;
// `lint help <analyzer>` prints one analyzer's contract.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"lvmajority/internal/lint"
	"lvmajority/internal/lint/loader"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// go vet probes the tool for the analyzer flags it accepts; the
		// suite exposes none.
		fmt.Println("[]")
		return
	}
	if len(args) > 0 && args[0] == "help" {
		printHelp(args[1:])
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion implements the -V=full handshake go vet uses to fingerprint
// a vettool for its action cache: name, version, and a content hash of the
// binary itself.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%x\n", name, h[:16])
}

func printHelp(args []string) {
	if len(args) == 0 {
		fmt.Println("lint: the determinism lint suite for this repository")
		fmt.Println()
		fmt.Println("usage: lint [packages]   (or: go vet -vettool=lint [packages])")
		fmt.Println()
		for _, a := range lint.Suite() {
			fmt.Printf("  %-10s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Println()
		fmt.Println("suppress one finding with: //lint:ignore <analyzer> <reason>")
		return
	}
	for _, a := range lint.Suite() {
		if a.Name == args[0] {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "lint: unknown analyzer %q\n", args[0])
	os.Exit(2)
}

// runStandalone loads the pattern set like the go vet front-end would
// (tests included) and prints every finding.
func runStandalone(patterns []string) int {
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 1
	}
	seen := make(map[string]bool)
	failed := false
	for _, p := range pkgs {
		diags, err := lint.RunPackage(p.Fset, p.Files, p.Types, p.Info, lint.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 1
		}
		for _, d := range diags {
			line := d.String()
			if seen[line] {
				continue
			}
			seen[line] = true
			fmt.Fprintln(os.Stderr, line)
			failed = true
		}
	}
	if failed {
		return 2
	}
	return 0
}

// vetConfig is the JSON configuration go vet hands a unit checker; the
// field set mirrors golang.org/x/tools/go/analysis/unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standalone                bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package under the go vet protocol: parse the
// listed sources, type-check against the provided export data, run the
// suite, and record the (empty) fact set at VetxOutput so go vet can cache
// the action.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite passes no facts between packages, but go vet requires the
	// output file to exist to cache the action.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "lint:", err)
				os.Exit(1)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 1
		}
		files = append(files, f)
	}
	info := loader.NewInfo()
	tconf := &types.Config{
		Importer:  loader.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile),
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	if tconf.Sizes == nil {
		tconf.Sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := lint.RunPackage(fset, files, pkg, info, lint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].String() < diags[j].String() })
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}
