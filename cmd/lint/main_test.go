package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolInterruptRegression rebuilds the vettool and proves the bug
// class PR 5 fixed by hand-audit — an option literal dropping an available
// Interrupt — now fails `go vet -vettool` mechanically: a scratch module
// reintroducing the omission is rejected, and threading the interrupt
// through the same literal makes the run pass.
func TestVetToolInterruptRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and vets a scratch module")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "lintbin")
	build := exec.Command("go", "build", "-o", bin, "./cmd/lint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	scratch := t.TempDir()
	writeFile(t, filepath.Join(scratch, "go.mod"), "module scratch\n\ngo 1.24\n")

	const dropped = `package scratch

import "context"

type Options struct {
	Trials    int
	Interrupt func() error
}

func Run(opts Options) int { return opts.Trials }

func Estimate(ctx context.Context) int {
	_ = ctx
	return Run(Options{Trials: 100})
}
`
	writeFile(t, filepath.Join(scratch, "scratch.go"), dropped)
	out, err := runVet(t, scratch, bin)
	if err == nil {
		t.Fatalf("go vet passed on a literal that drops an available Interrupt:\n%s", out)
	}
	if !strings.Contains(out, "leaves Interrupt unset") {
		t.Fatalf("go vet failed for the wrong reason:\n%s", out)
	}

	threaded := strings.Replace(dropped,
		"Options{Trials: 100}",
		"Options{Trials: 100, Interrupt: ctx.Err}", 1)
	writeFile(t, filepath.Join(scratch, "scratch.go"), threaded)
	if out, err := runVet(t, scratch, bin); err != nil {
		t.Fatalf("go vet failed on the threaded variant: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runVet(t *testing.T, dir, vettool string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+vettool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}
