// Command worker is a fabric fleet member: it registers with a coordinator
// (cmd/serve -fleet), heartbeats to keep its lease, and executes the trial
// shards the coordinator dispatches to POST /fabric/v1/shards. A shard's
// result is a pure function of its request — trial i draws randomness only
// from its own stream keyed by the trial index — so any number of workers,
// joining and leaving at any time, yields estimates byte-identical to a
// single-process run.
//
//	worker -coordinator http://coord:8080 -addr :9090
//
// The advertised URL defaults to the listen address with a loopback host;
// set -advertise when the coordinator reaches this machine by another name.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lvmajority/internal/fabric"
	"lvmajority/internal/scenario"
)

func main() {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "http://127.0.0.1:8080", "coordinator base URL")
		addr        = fs.String("addr", ":9090", "listen address for shard requests")
		advertise   = fs.String("advertise", "", "base URL the coordinator uses to reach this worker (default: the listen address on loopback)")
		id          = fs.String("id", "", "worker id (default: w-<pid>)")
		cores       = fs.Int("cores", 0, "advertised parallelism (0 = GOMAXPROCS); never changes results")
		heartbeat   = fs.Duration("heartbeat", 0, "lease-renewal interval (0 = a third of the coordinator's lease TTL)")
		showVers    = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *showVers {
		fmt.Println(scenario.Version())
		return
	}
	logger := log.New(os.Stderr, "worker: ", log.LstdFlags)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	if *id == "" {
		*id = fmt.Sprintf("w-%d", os.Getpid())
	}
	if *advertise == "" {
		*advertise = advertiseURL(ln.Addr().String())
	}

	w, err := fabric.NewWorker(fabric.WorkerConfig{
		ID:           *id,
		Coordinator:  *coordinator,
		AdvertiseURL: *advertise,
		Cores:        *cores,
		Heartbeat:    *heartbeat,
		Logger:       logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	mux := http.NewServeMux()
	w.Routes(mux)
	httpSrv := &http.Server{Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	go func() {
		<-ctx.Done()
		logger.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	logger.Printf("worker %s serving on %s, advertising %s (%s)", *id, ln.Addr(), *advertise, scenario.Version())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		logger.Fatal(err)
	}
}

// advertiseURL derives the default advertised URL from the bound listen
// address: an unspecified host becomes loopback, since the default only
// makes sense for single-machine fleets anyway.
func advertiseURL(bound string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return "http://" + bound
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	if strings.Contains(host, ":") {
		host = "[" + host + "]"
	}
	return fmt.Sprintf("http://%s:%s", host, port)
}
