// Command lvsim simulates trajectories of the two-species stochastic
// Lotka–Volterra chains from the paper and prints either a per-event trace
// or the aggregate outcome statistics of a batch of runs.
//
// Examples:
//
//	lvsim -a 60 -b 40 -competition sd -trace
//	lvsim -a 600 -b 400 -competition nsd -runs 1000
//	lvsim -a 60 -b 40 -alpha0 0.5 -alpha1 1.5 -gamma0 0.2 -gamma1 0.2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lvmajority/internal/lv"
	"lvmajority/internal/mc"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
	"lvmajority/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lvsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lvsim", flag.ContinueOnError)
	var (
		a           = fs.Int("a", 60, "initial count of species 0 (the majority by convention)")
		b           = fs.Int("b", 40, "initial count of species 1")
		beta        = fs.Float64("beta", 1, "per-capita birth rate")
		delta       = fs.Float64("delta", 1, "per-capita death rate")
		alpha0      = fs.Float64("alpha0", 1, "interspecific competition rate initiated by species 0")
		alpha1      = fs.Float64("alpha1", 1, "interspecific competition rate initiated by species 1")
		gamma0      = fs.Float64("gamma0", 0, "intraspecific competition rate of species 0")
		gamma1      = fs.Float64("gamma1", 0, "intraspecific competition rate of species 1")
		competition = fs.String("competition", "sd", `competition model: "sd" (self-destructive) or "nsd"`)
		runs        = fs.Int("runs", 1, "number of independent runs")
		seed        = fs.Uint64("seed", 1, "random seed")
		workers     = fs.Int("workers", 0, "parallel workers for batch runs (0 = GOMAXPROCS); never changes the results")
		traceRun    = fs.Bool("trace", false, "print each reaction of the first run")
		plot        = fs.Bool("plot", false, "draw an ASCII chart of the first run's trajectory")
		maxSteps    = fs.Int("max-steps", 0, "step budget per run (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var comp lv.Competition
	switch *competition {
	case "sd":
		comp = lv.SelfDestructive
	case "nsd":
		comp = lv.NonSelfDestructive
	default:
		return fmt.Errorf("unknown competition model %q (want sd or nsd)", *competition)
	}
	params := lv.Params{
		Beta: *beta, Delta: *delta,
		Alpha:       [2]float64{*alpha0, *alpha1},
		Gamma:       [2]float64{*gamma0, *gamma1},
		Competition: comp,
	}
	if err := params.Validate(); err != nil {
		return err
	}
	initial := lv.State{X0: *a, X1: *b}
	if err := initial.Validate(); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("need at least one run, got %d", *runs)
	}

	src := rng.New(*seed)
	if *plot {
		if err := plotRun(w, params, initial, src, *maxSteps); err != nil {
			return err
		}
		if *runs == 1 && !*traceRun {
			return nil
		}
	}
	if *traceRun {
		if err := printTrace(w, params, initial, src, *maxSteps); err != nil {
			return err
		}
		if *runs == 1 {
			return nil
		}
	}
	return batchRuns(w, params, initial, *seed, *workers, *runs, *maxSteps)
}

// plotRun simulates one run while recording the trajectory and draws it.
func plotRun(w io.Writer, params lv.Params, initial lv.State, src *rng.Source, maxSteps int) error {
	chain, err := lv.NewChain(params, initial, src)
	if err != nil {
		return err
	}
	chain.SetTrackTime(true)
	tr := trace.NewTrajectory(2048)
	tr.Add(0, initial.X0, initial.X1)
	budget := maxSteps
	if budget <= 0 {
		budget = lv.DefaultMaxSteps
	}
	for !chain.State().Consensus() && chain.Steps() < budget {
		if _, ok := chain.Step(); !ok {
			break
		}
		s := chain.State()
		tr.Add(chain.Time(), s.X0, s.X1)
	}
	fmt.Fprintf(w, "# %s, one trajectory (%d reactions)\n", params, chain.Steps())
	return tr.RenderASCII(w, 100, 20)
}

// printTrace prints one run event by event.
func printTrace(w io.Writer, params lv.Params, initial lv.State, src *rng.Source, maxSteps int) error {
	chain, err := lv.NewChain(params, initial, src)
	if err != nil {
		return err
	}
	chain.SetTrackTime(true)
	fmt.Fprintf(w, "# %s\n", params)
	fmt.Fprintf(w, "%8s  %-8s  %6s  %6s  %10s\n", "step", "event", "x0", "x1", "time")
	fmt.Fprintf(w, "%8d  %-8s  %6d  %6d  %10.4f\n", 0, "init", initial.X0, initial.X1, 0.0)
	budget := maxSteps
	if budget <= 0 {
		budget = lv.DefaultMaxSteps
	}
	for !chain.State().Consensus() && chain.Steps() < budget {
		kind, ok := chain.Step()
		if !ok {
			fmt.Fprintf(w, "# chain absorbed with zero propensity\n")
			break
		}
		s := chain.State()
		fmt.Fprintf(w, "%8d  %-8s  %6d  %6d  %10.4f\n", chain.Steps(), kind, s.X0, s.X1, chain.Time())
	}
	final := chain.State()
	fmt.Fprintf(w, "# final state (%d, %d), winner %d after %d steps\n",
		final.X0, final.X1, final.Winner(), chain.Steps())
	return nil
}

// batchRuns aggregates outcome statistics over many runs, replicated on
// the shared mc worker pool with deterministic per-run streams.
func batchRuns(w io.Writer, params lv.Params, initial lv.State, seed uint64, workers, runs, maxSteps int) error {
	outs, err := mc.Run(mc.Options{Replicates: runs, Workers: workers, Seed: seed},
		func(_ int, src *rng.Source) (lv.Outcome, error) {
			return lv.Run(params, initial, src, lv.RunOptions{MaxSteps: maxSteps})
		})
	if err != nil {
		return err
	}
	var (
		wins, doubleExtinctions, unresolved int
		steps, individual, competitive, bad stats.Running
	)
	for _, out := range outs {
		if !out.Consensus {
			unresolved++
			continue
		}
		if out.MajorityWon {
			wins++
		}
		if out.Winner == -1 {
			doubleExtinctions++
		}
		steps.Add(float64(out.Steps))
		individual.Add(float64(out.Individual))
		competitive.Add(float64(out.Competitive))
		bad.Add(float64(out.BadNonCompetitive))
	}

	fmt.Fprintf(w, "model:               %s\n", params)
	fmt.Fprintf(w, "initial state:       (%d, %d), gap %d, total %d\n",
		initial.X0, initial.X1, initial.AbsGap(), initial.Total())
	fmt.Fprintf(w, "runs:                %d\n", runs)
	decided := runs - unresolved
	if decided > 0 {
		est, err := stats.WilsonInterval(wins, runs, stats.Z99)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "majority wins:       %s\n", est)
		fmt.Fprintf(w, "double extinctions:  %d\n", doubleExtinctions)
		fmt.Fprintf(w, "consensus time T(S): %s\n", &steps)
		fmt.Fprintf(w, "individual events:   %s\n", &individual)
		fmt.Fprintf(w, "competitive events:  %s\n", &competitive)
		fmt.Fprintf(w, "bad events J(S):     %s\n", &bad)
	}
	if unresolved > 0 {
		fmt.Fprintf(w, "unresolved runs:     %d (step budget exhausted)\n", unresolved)
	}
	return nil
}
