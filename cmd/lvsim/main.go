// Command lvsim simulates trajectories of the two-species stochastic
// Lotka–Volterra chains from the paper and prints either a per-event trace
// or the aggregate outcome statistics of a batch of runs.
//
// The command is a thin front-end over the declarative run API
// (internal/scenario): the flags are parsed into a simulate Spec whose
// batch statistics scenario.Runner computes on the shared mc worker pool;
// the -trace and -plot renderings of the first run stay in the front-end.
// Print the spec with -dump-spec; replay one with -spec.
//
// Examples:
//
//	lvsim -a 60 -b 40 -competition sd -trace
//	lvsim -a 600 -b 400 -competition nsd -runs 1000
//	lvsim -a 60 -b 40 -alpha0 0.5 -alpha1 1.5 -gamma0 0.2 -gamma1 0.2
//	lvsim -a 600 -b 400 -runs 1000 -dump-spec > run.json; lvsim -spec run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/scenario"
	"lvmajority/internal/stats"
	"lvmajority/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lvsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lvsim", flag.ContinueOnError)
	var (
		a           = fs.Int("a", 60, "initial count of species 0 (the majority by convention)")
		b           = fs.Int("b", 40, "initial count of species 1")
		beta        = fs.Float64("beta", 1, "per-capita birth rate")
		delta       = fs.Float64("delta", 1, "per-capita death rate")
		alpha0      = fs.Float64("alpha0", 1, "interspecific competition rate initiated by species 0")
		alpha1      = fs.Float64("alpha1", 1, "interspecific competition rate initiated by species 1")
		gamma0      = fs.Float64("gamma0", 0, "intraspecific competition rate of species 0")
		gamma1      = fs.Float64("gamma1", 0, "intraspecific competition rate of species 1")
		competition = fs.String("competition", "sd", `competition model: "sd" (self-destructive) or "nsd"`)
		runs        = fs.Int("runs", 1, "number of independent runs")
		traceRun    = fs.Bool("trace", false, "print each reaction of the first run")
		plot        = fs.Bool("plot", false, "draw an ASCII chart of the first run's trajectory")
		maxSteps    = fs.Int("max-steps", 0, "step budget per run (0 = default)")
	)
	common := scenario.RegisterRun(fs, 1)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.ShowVersion {
		_, err := fmt.Fprintln(w, scenario.Version())
		return err
	}

	specs, err := common.Specs(fs, func() ([]scenario.Spec, error) {
		if *runs < 1 {
			return nil, fmt.Errorf("need at least one run, got %d", *runs)
		}
		spec := scenario.New(scenario.TaskSimulate)
		spec.Model = &scenario.Model{Kind: scenario.ModelLV, LV: &scenario.LVModel{
			Beta: *beta, Death: *delta,
			Alpha0: *alpha0, Alpha1: *alpha1,
			Gamma0: *gamma0, Gamma1: *gamma1,
			Competition: *competition,
		}}
		spec.Seed = common.Seed
		spec.Workers = common.Workers
		spec.Simulate = &scenario.SimulateSpec{
			Runs: *runs, A: *a, B: *b,
			MaxSteps: *maxSteps,
			Trace:    *traceRun, Plot: *plot,
		}
		return []scenario.Spec{spec}, nil
	})
	if err != nil {
		return err
	}
	if common.DumpSpec {
		return scenario.WriteSpecs(w, specs)
	}
	if len(specs) != 1 || specs[0].Task != scenario.TaskSimulate ||
		specs[0].Model == nil || specs[0].Model.Kind != scenario.ModelLV {
		return fmt.Errorf("lvsim runs a single LV simulate spec")
	}
	spec := specs[0]
	if err := spec.Validate(); err != nil {
		return err
	}

	params, err := spec.Model.LV.Params()
	if err != nil {
		return err
	}
	initial := lv.State{X0: spec.Simulate.A, X1: spec.Simulate.B}
	if err := initial.Validate(); err != nil {
		return err
	}

	// The first-run renderings consume one sequential stream rooted at the
	// seed, exactly as they always have; the batch below draws from
	// index-keyed per-run streams, so the two never interact.
	src := rng.New(spec.Seed)
	if spec.Simulate.Plot {
		if err := plotRun(w, params, initial, src, spec.Simulate.MaxSteps); err != nil {
			return err
		}
		if spec.Simulate.Runs == 1 && !spec.Simulate.Trace {
			return nil
		}
	}
	if spec.Simulate.Trace {
		if err := printTrace(w, params, initial, src, spec.Simulate.MaxSteps); err != nil {
			return err
		}
		if spec.Simulate.Runs == 1 {
			return nil
		}
	}

	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	return renderBatch(w, res.Simulate.LV)
}

// plotRun simulates one run while recording the trajectory and draws it.
func plotRun(w io.Writer, params lv.Params, initial lv.State, src *rng.Source, maxSteps int) error {
	chain, err := lv.NewChain(params, initial, src)
	if err != nil {
		return err
	}
	chain.SetTrackTime(true)
	tr := trace.NewTrajectory(2048)
	tr.Add(0, initial.X0, initial.X1)
	budget := maxSteps
	if budget <= 0 {
		budget = lv.DefaultMaxSteps
	}
	for !chain.State().Consensus() && chain.Steps() < budget {
		if _, ok := chain.Step(); !ok {
			break
		}
		s := chain.State()
		tr.Add(chain.Time(), s.X0, s.X1)
	}
	fmt.Fprintf(w, "# %s, one trajectory (%d reactions)\n", params, chain.Steps())
	return tr.RenderASCII(w, 100, 20)
}

// printTrace prints one run event by event.
func printTrace(w io.Writer, params lv.Params, initial lv.State, src *rng.Source, maxSteps int) error {
	chain, err := lv.NewChain(params, initial, src)
	if err != nil {
		return err
	}
	chain.SetTrackTime(true)
	fmt.Fprintf(w, "# %s\n", params)
	fmt.Fprintf(w, "%8s  %-8s  %6s  %6s  %10s\n", "step", "event", "x0", "x1", "time")
	fmt.Fprintf(w, "%8d  %-8s  %6d  %6d  %10.4f\n", 0, "init", initial.X0, initial.X1, 0.0)
	budget := maxSteps
	if budget <= 0 {
		budget = lv.DefaultMaxSteps
	}
	for !chain.State().Consensus() && chain.Steps() < budget {
		kind, ok := chain.Step()
		if !ok {
			fmt.Fprintf(w, "# chain absorbed with zero propensity\n")
			break
		}
		s := chain.State()
		fmt.Fprintf(w, "%8d  %-8s  %6d  %6d  %10.4f\n", chain.Steps(), kind, s.X0, s.X1, chain.Time())
	}
	final := chain.State()
	fmt.Fprintf(w, "# final state (%d, %d), winner %d after %d steps\n",
		final.X0, final.X1, final.Winner(), chain.Steps())
	return nil
}

// renderBatch prints the batch statistics in the command's historical
// format.
func renderBatch(w io.Writer, batch *scenario.LVBatch) error {
	fmt.Fprintf(w, "model:               %s\n", batch.Params)
	fmt.Fprintf(w, "initial state:       (%d, %d), gap %d, total %d\n",
		batch.Initial.X0, batch.Initial.X1, batch.Initial.AbsGap(), batch.Initial.Total())
	fmt.Fprintf(w, "runs:                %d\n", batch.Runs)
	decided := batch.Runs - batch.Unresolved
	if decided > 0 {
		est, err := stats.WilsonInterval(batch.Wins, batch.Runs, stats.Z99)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "majority wins:       %s\n", est)
		fmt.Fprintf(w, "double extinctions:  %d\n", batch.DoubleExtinctions)
		fmt.Fprintf(w, "consensus time T(S): %s\n", &batch.Steps)
		fmt.Fprintf(w, "individual events:   %s\n", &batch.Individual)
		fmt.Fprintf(w, "competitive events:  %s\n", &batch.Competitive)
		fmt.Fprintf(w, "bad events J(S):     %s\n", &batch.Bad)
	}
	if batch.Unresolved > 0 {
		fmt.Fprintf(w, "unresolved runs:     %d (step budget exhausted)\n", batch.Unresolved)
	}
	return nil
}
