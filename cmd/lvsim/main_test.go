package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDumpSpecReplay: -dump-spec followed by -spec must replay the
// identical run.
func TestDumpSpecReplay(t *testing.T) {
	args := []string{"-a", "30", "-b", "20", "-runs", "50", "-seed", "7"}

	var direct strings.Builder
	if err := run(args, &direct); err != nil {
		t.Fatal(err)
	}
	var dumped strings.Builder
	if err := run(append(args, "-dump-spec"), &dumped); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(dumped.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed strings.Builder
	if err := run([]string{"-spec", path}, &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != direct.String() {
		t.Errorf("spec replay differs:\n--- direct\n%s--- replayed\n%s", direct.String(), replayed.String())
	}
	if err := run([]string{"-spec", path, "-runs", "3"}, &strings.Builder{}); err == nil {
		t.Error("-spec with -runs accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-version"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lvmajority") {
		t.Errorf("version output %q", b.String())
	}
}

func TestRunBatch(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-a", "30", "-b", "20", "-runs", "50", "-seed", "7"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"majority wins:", "consensus time T(S):", "bad events J(S):"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTrace(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-a", "5", "-b", "3", "-trace", "-seed", "3"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "init") || !strings.Contains(out, "final state") {
		t.Errorf("trace output malformed:\n%s", out)
	}
}

func TestRunPlot(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-a", "40", "-b", "30", "-plot", "-seed", "3"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "one trajectory") {
		t.Errorf("plot output malformed:\n%s", b.String())
	}
}

func TestRunNSD(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-a", "20", "-b", "10", "-competition", "nsd", "-runs", "20"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-competition", "bogus"},
		{"-a", "-1"},
		{"-beta", "-2"},
		{"-runs", "0"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) did not error", args)
		}
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	// Birth-only chain cannot reach consensus: the budget must surface
	// unresolved runs without hanging.
	var b strings.Builder
	err := run([]string{"-a", "5", "-b", "5", "-delta", "0", "-alpha0", "0", "-alpha1", "0", "-runs", "3", "-max-steps", "100"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "unresolved runs") {
		t.Errorf("output missing unresolved-run report:\n%s", b.String())
	}
}
