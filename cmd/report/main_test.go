package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lvmajority/internal/experiment"
	"lvmajority/internal/report"
)

// writeTestManifest saves one small valid manifest and returns its path.
func writeTestManifest(t *testing.T, dir, id string) string {
	t.Helper()
	tbl := &experiment.Table{
		Title:   id + ": demo table",
		Columns: []string{"n", "rho"},
	}
	tbl.AddRow(256, 0.75)
	m := &report.Manifest{
		SchemaVersion: report.SchemaVersion,
		ExperimentID:  id,
		Title:         "Demo " + id,
		Artifact:      "Section 0",
		Grid:          "quick",
		Seed:          1,
		Workers:       1,
		GoVersion:     "go1.24.0",
		Module:        "lvmajority",
		ModuleVersion: "test",
		Tables:        []*experiment.Table{tbl},
	}
	path := filepath.Join(dir, report.Filename(id))
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDumpSpecReplay: -dump-spec followed by -spec must replay the
// identical invocation (here: rendering a manifest to stdout).
func TestDumpSpecReplay(t *testing.T) {
	dir := t.TempDir()
	manifest := writeTestManifest(t, dir, "E-DEMO")
	args := []string{"-render", "ascii", manifest}

	var direct strings.Builder
	if err := run(args, &direct); err != nil {
		t.Fatal(err)
	}
	var dumped strings.Builder
	if err := run([]string{"-render", "ascii", "-dump-spec", manifest}, &dumped); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(dumped.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed strings.Builder
	if err := run([]string{"-spec", path}, &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != direct.String() {
		t.Errorf("spec replay differs:\n--- direct\n%s--- replayed\n%s", direct.String(), replayed.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-version"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lvmajority") {
		t.Errorf("version output %q", b.String())
	}
}

func TestRunDesign(t *testing.T) {
	out := filepath.Join(t.TempDir(), "DESIGN.md")
	var b strings.Builder
	if err := run([]string{"-design", out}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range experiment.All() {
		if !strings.Contains(string(data), "| "+e.ID+" |") {
			t.Errorf("DESIGN.md missing %s", e.ID)
		}
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Errorf("no confirmation printed: %q", b.String())
	}
}

func TestRunExperiments(t *testing.T) {
	manifests := t.TempDir()
	writeTestManifest(t, manifests, "T1-SD")
	writeTestManifest(t, manifests, "E-SEP")
	out := filepath.Join(t.TempDir(), "EXPERIMENTS.md")
	if err := run([]string{"-experiments", out, "-manifests", manifests}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// Registry order: T1-SD before E-SEP regardless of file order.
	sd := strings.Index(string(data), "## T1-SD")
	sep := strings.Index(string(data), "## E-SEP")
	if sd < 0 || sep < 0 || sd > sep {
		t.Errorf("sections missing or misordered (T1-SD at %d, E-SEP at %d)", sd, sep)
	}
}

func TestRunRender(t *testing.T) {
	path := writeTestManifest(t, t.TempDir(), "T-DEMO")

	var ascii strings.Builder
	if err := run([]string{"-render", "ascii", path}, &ascii); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "### T-DEMO — Demo T-DEMO") {
		t.Errorf("ascii render malformed:\n%s", ascii.String())
	}

	var md strings.Builder
	if err := run([]string{"-render", "md", path}, &md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| 256 | 0.7500 |") {
		t.Errorf("markdown render malformed:\n%s", md.String())
	}

	csvDir := t.TempDir()
	if err := run([]string{"-render", "csv", "-o", csvDir, path}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(csvDir, "T-DEMO_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "n,rho\n") {
		t.Errorf("csv render malformed: %q", data)
	}
}

func TestRunErrors(t *testing.T) {
	manifest := writeTestManifest(t, t.TempDir(), "T-DEMO")
	for name, args := range map[string][]string{
		"no work":             {},
		"bad flag":            {"-definitely-not-a-flag"},
		"render no args":      {"-render", "ascii"},
		"render bad format":   {"-render", "nope", manifest},
		"render csv no out":   {"-render", "csv", manifest},
		"render plus design":  {"-render", "ascii", "-design", "x.md", manifest},
		"missing manifests":   {"-experiments", "out.md", "-manifests", filepath.Join(t.TempDir(), "nope")},
		"render missing file": {"-render", "ascii", filepath.Join(t.TempDir(), "nope.json")},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
