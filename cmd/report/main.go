// Command report generates the repository's result documentation and
// re-renders saved run manifests (see internal/report):
//
//	report -design DESIGN.md
//	    Generate the experiment index from the registry
//	    (internal/experiment.All()). CI regenerates this file and fails
//	    on drift, so it can never fall out of sync with the code.
//
//	report -experiments EXPERIMENTS.md -manifests results/manifests
//	    Generate the recorded-results document from a directory of run
//	    manifests written by cmd/experiments -report.
//
//	report -render ascii|md manifest.json
//	    Re-render one manifest to stdout. The ascii form is byte-identical
//	    to the cmd/experiments output that produced the manifest.
//
//	report -render csv -o DIR manifest.json
//	    Re-write the manifest's per-table CSV files, byte-identical to
//	    cmd/experiments -csv.
//
// A single invocation may combine -design and -experiments; -render is
// exclusive.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lvmajority/internal/experiment"
	"lvmajority/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		design      = fs.String("design", "", "write the generated DESIGN.md (experiment index) to this file")
		experiments = fs.String("experiments", "", "write the generated EXPERIMENTS.md (recorded results) to this file")
		manifests   = fs.String("manifests", "results/manifests", "manifest directory -experiments reads")
		render      = fs.String("render", "", "re-render one manifest: ascii, md, or csv")
		out         = fs.String("o", "", "output directory for -render csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *render != "" {
		if *design != "" || *experiments != "" {
			return fmt.Errorf("-render cannot be combined with -design/-experiments")
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("-render needs exactly one manifest file argument")
		}
		m, err := report.Load(fs.Arg(0))
		if err != nil {
			return err
		}
		switch *render {
		case "ascii":
			return m.RenderASCII(w)
		case "md", "markdown":
			return m.RenderMarkdown(w)
		case "csv":
			if *out == "" {
				return fmt.Errorf("-render csv needs -o DIR")
			}
			return m.WriteCSVDir(*out)
		default:
			return fmt.Errorf("unknown -render format %q (want ascii, md, or csv)", *render)
		}
	}

	if *design == "" && *experiments == "" {
		return fmt.Errorf("nothing to do: pass -design FILE, -experiments FILE, or -render FORMAT manifest.json")
	}
	if *design != "" {
		if err := report.WriteAtomic(*design, func(f io.Writer) error {
			return report.WriteDesign(f, experiment.All())
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d experiments)\n", *design, len(experiment.All()))
	}
	if *experiments != "" {
		ms, err := report.LoadDir(*manifests)
		if err != nil {
			return err
		}
		if err := report.WriteAtomic(*experiments, func(f io.Writer) error {
			return report.WriteExperiments(f, ms)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d manifests)\n", *experiments, len(ms))
	}
	return nil
}
