// Command report generates the repository's result documentation and
// re-renders saved run manifests (see internal/report):
//
//	report -design DESIGN.md
//	    Generate the experiment index from the registry
//	    (internal/experiment.All()). CI regenerates this file and fails
//	    on drift, so it can never fall out of sync with the code.
//
//	report -experiments EXPERIMENTS.md -manifests results/manifests
//	    Generate the recorded-results document from a directory of run
//	    manifests written by cmd/experiments -report.
//
//	report -render ascii|md manifest.json
//	    Re-render one manifest to stdout. The ascii form is byte-identical
//	    to the cmd/experiments output that produced the manifest.
//
//	report -render csv -o DIR manifest.json
//	    Re-write the manifest's per-table CSV files, byte-identical to
//	    cmd/experiments -csv.
//
// A single invocation may combine -design and -experiments; -render is
// exclusive. Like every CLI in this repository, report is a thin front-end
// over the declarative run API (internal/scenario): the flags become a
// report Spec, printable with -dump-spec and replayable with -spec.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"lvmajority/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		design      = fs.String("design", "", "write the generated DESIGN.md (experiment index) to this file")
		experiments = fs.String("experiments", "", "write the generated EXPERIMENTS.md (recorded results) to this file")
		manifests   = fs.String("manifests", "results/manifests", "manifest directory -experiments reads")
		render      = fs.String("render", "", "re-render one manifest: ascii, md, or csv")
		out         = fs.String("o", "", "output directory for -render csv")
	)
	common := scenario.RegisterSpec(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.ShowVersion {
		_, err := fmt.Fprintln(w, scenario.Version())
		return err
	}

	specs, err := common.Specs(fs, func() ([]scenario.Spec, error) {
		spec := scenario.New(scenario.TaskReport)
		spec.Report = &scenario.ReportSpec{
			Design: *design,
			Render: *render,
			Out:    *out,
		}
		if *experiments != "" {
			spec.Report.Experiments = *experiments
			spec.Report.Manifests = *manifests
		}
		if *render != "" {
			if *design != "" || *experiments != "" {
				return nil, fmt.Errorf("-render cannot be combined with -design/-experiments")
			}
			if fs.NArg() != 1 {
				return nil, fmt.Errorf("-render needs exactly one manifest file argument")
			}
			spec.Report.Manifest = fs.Arg(0)
		} else if *design == "" && *experiments == "" {
			return nil, fmt.Errorf("nothing to do: pass -design FILE, -experiments FILE, or -render FORMAT manifest.json")
		}
		return []scenario.Spec{spec}, nil
	})
	if err != nil {
		return err
	}
	if common.DumpSpec {
		return scenario.WriteSpecs(w, specs)
	}
	if len(specs) != 1 || specs[0].Task != scenario.TaskReport {
		return fmt.Errorf("report runs a single report spec")
	}

	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), specs[0])
	if err != nil {
		return err
	}
	if len(res.Report.Rendered) > 0 {
		_, err := w.Write(res.Report.Rendered)
		return err
	}
	if res.Report.DesignWritten != "" {
		fmt.Fprintf(w, "wrote %s (%d experiments)\n", res.Report.DesignWritten, res.Report.ExperimentCount)
	}
	if res.Report.ExperimentsWritten != "" {
		fmt.Fprintf(w, "wrote %s (%d manifests)\n", res.Report.ExperimentsWritten, res.Report.ManifestCount)
	}
	return nil
}
