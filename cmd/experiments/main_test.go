package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"T1-SD", "T1-NSD", "E-DOM", "E-GAMMA"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-q", "NOPE"}, &b); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	// E-DOM is the cheapest registered experiment.
	if err := run([]string{"-q", "-csv", dir, "E-DOM"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E-DOM") || !strings.Contains(out, "finished in") {
		t.Errorf("output malformed:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("no CSV files written")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("CSV %s is empty", e.Name())
		}
	}
}

func TestRunCacheFlag(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "probes.json")
	var b strings.Builder
	// E-DOM issues no threshold probes, so this only exercises the
	// cache plumbing cheaply.
	if err := run([]string{"-q", "-cache", cache, "E-DOM"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestRunCorruptCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "probes.json")
	if err := os.WriteFile(cache, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-q", "-cache", cache, "E-DOM"}, &b); err == nil {
		t.Error("corrupt cache accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("T1-SD"); got != "T1-SD" {
		t.Errorf("sanitize(T1-SD) = %q", got)
	}
	if got := sanitize("a/b c"); got != "a_b_c" {
		t.Errorf("sanitize(a/b c) = %q", got)
	}
}
