package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lvmajority/internal/report"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, id := range []string{"T1-SD", "T1-NSD", "E-DOM", "E-GAMMA"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-q", "NOPE"}, &b); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	// E-DOM is the cheapest registered experiment.
	if err := run([]string{"-q", "-csv", dir, "E-DOM"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E-DOM") || !strings.Contains(out, "finished in") {
		t.Errorf("output malformed:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("no CSV files written")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("CSV %s is empty", e.Name())
		}
	}
}

// TestDumpSpecReplay: -dump-spec followed by -spec must replay the
// identical run (the timing footer is wall-clock and excluded).
func TestDumpSpecReplay(t *testing.T) {
	args := []string{"-q", "E-DOM"}

	var direct strings.Builder
	if err := run(args, &direct); err != nil {
		t.Fatal(err)
	}

	var dumped strings.Builder
	if err := run([]string{"-q", "-dump-spec", "E-DOM"}, &dumped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dumped.String(), `"task": "experiment"`) {
		t.Fatalf("dump-spec output malformed:\n%s", dumped.String())
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(dumped.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed strings.Builder
	if err := run([]string{"-q", "-spec", path}, &replayed); err != nil {
		t.Fatal(err)
	}
	if got, want := stripTiming(replayed.String()), stripTiming(direct.String()); got != want {
		t.Errorf("spec replay differs:\n--- direct\n%s--- replayed\n%s", want, got)
	}

	// -spec combined with a run flag is a contradiction, not a merge.
	if err := run([]string{"-spec", path, "-seed", "9"}, &strings.Builder{}); err == nil {
		t.Error("-spec with -seed accepted")
	}
}

// stripTiming removes the wall-clock "finished in" footers, the only
// run-to-run nondeterminism in the output.
func stripTiming(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "### ") && strings.Contains(line, " finished in ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

func TestRunCacheFlag(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "probes.json")
	var b strings.Builder
	// E-DOM issues no threshold probes, so this only exercises the
	// cache plumbing cheaply.
	if err := run([]string{"-q", "-cache", cache, "E-DOM"}, &b); err != nil {
		t.Fatal(err)
	}
}

// TestRunCorruptCache: a corrupt probe cache is quarantined (*.corrupt)
// and the run proceeds from an empty cache — persistence degrades, results
// do not.
func TestRunCorruptCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "probes.json")
	if err := os.WriteFile(cache, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-q", "-cache", cache, "E-DOM"}, &b); err != nil {
		t.Errorf("corrupt cache failed the run: %v", err)
	}
	if _, err := os.Stat(cache + ".corrupt"); err != nil {
		t.Errorf("corrupt cache not quarantined: %v", err)
	}
}

// TestRunReportManifestRoundTrip is the acceptance check for the results
// pipeline: a manifest written by -report must re-render to the CLI's
// ASCII and CSV output byte-identically, and must record the run's
// provenance.
func TestRunReportManifestRoundTrip(t *testing.T) {
	manifestDir := t.TempDir()
	csvDir := t.TempDir()
	var b strings.Builder
	// E-DOM is the cheapest registered experiment.
	if err := run([]string{"-q", "-seed", "7", "-workers", "2", "-report", manifestDir, "-csv", csvDir, "E-DOM"}, &b); err != nil {
		t.Fatal(err)
	}

	m, err := report.Load(filepath.Join(manifestDir, report.Filename("E-DOM")))
	if err != nil {
		t.Fatal(err)
	}

	// Provenance: seed, grid, workers, wall time, cache counts.
	if m.ExperimentID != "E-DOM" || m.Seed != 7 || m.Workers != 2 || m.Grid != "quick" {
		t.Errorf("manifest provenance wrong: %+v", m)
	}
	if m.WallTimeNS <= 0 {
		t.Errorf("manifest wall time not recorded: %d", m.WallTimeNS)
	}
	if m.SweepCacheHits != 0 || m.SweepCacheMisses != 0 {
		// E-DOM issues no threshold probes, so both deltas must be zero
		// (and present, not garbage).
		t.Errorf("sweep cache counts = %d/%d, want 0/0 for E-DOM", m.SweepCacheHits, m.SweepCacheMisses)
	}
	if m.GoVersion == "" || m.Module == "" || m.GeneratedAt == "" {
		t.Errorf("toolchain provenance incomplete: %+v", m)
	}

	// ASCII round trip: re-rendering the manifest must reproduce the
	// CLI's stdout byte-for-byte.
	var rendered strings.Builder
	if err := m.RenderASCII(&rendered); err != nil {
		t.Fatal(err)
	}
	if rendered.String() != b.String() {
		t.Errorf("manifest ASCII render differs from CLI output:\n--- CLI ---\n%s\n--- manifest ---\n%s", b.String(), rendered.String())
	}

	// CSV round trip: the manifest's CSV files must match -csv's.
	renderedCSV := t.TempDir()
	if err := m.WriteCSVDir(renderedCSV); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(csvDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files written by -csv")
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(csvDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(renderedCSV, e.Name()))
		if err != nil {
			t.Fatalf("manifest CSV missing %s: %v", e.Name(), err)
		}
		if string(got) != string(want) {
			t.Errorf("CSV %s differs between -csv and manifest render", e.Name())
		}
	}
}
