// Command experiments regenerates the paper's evaluation artifacts: Table 1
// of the paper (six competition regimes) plus the per-theorem validation
// experiments indexed in DESIGN.md §3 (generated from the registry by
// cmd/report). Run with no arguments to execute everything at the quick
// effort level, or name experiment IDs.
//
// With -report DIR, every run also writes a JSON run manifest
// (internal/report) recording the result tables with typed cells plus full
// provenance: seed, grid level, workers, wall time, sweep-cache hit/miss
// counts, and toolchain versions. Manifests are the source the recorded
// EXPERIMENTS.md is generated from, and re-rendering one reproduces this
// command's output byte-for-byte (see cmd/report -render).
//
// Examples:
//
//	experiments                       # run all, quick grids
//	experiments -full T1-SD T1-NSD    # heavier grids, two experiments
//	experiments -list
//	experiments -csv out/ E-SEP       # also write CSV files
//	experiments -cache probes.json T1-SD   # replay settled threshold probes
//	experiments -report results/manifests  # also write run manifests
//	experiments -cpuprofile cpu.pprof T1-NSD   # profile a heavy run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"lvmajority/internal/experiment"
	"lvmajority/internal/report"
	"lvmajority/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		full      = fs.Bool("full", false, "use the heavier (recorded) parameter grids")
		seed      = fs.Uint64("seed", 20240506, "random seed")
		workers   = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		csvDir    = fs.String("csv", "", "directory to also write per-table CSV files into")
		reportDir = fs.String("report", "", "directory to write one JSON run manifest per experiment into")
		cache     = fs.String("cache", "", "threshold-probe cache file; settled probes are replayed across runs (empty = no cache)")
		quiet     = fs.Bool("q", false, "suppress progress logging")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the selected runs to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(w, "%-10s %s [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return nil
	}

	var selected []experiment.Experiment
	if fs.NArg() == 0 {
		selected = experiment.All()
	} else {
		for _, id := range fs.Args() {
			e, err := experiment.ByID(id)
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	cfg := experiment.Config{
		Seed:    *seed,
		Workers: *workers,
		Full:    *full,
	}
	if *cache != "" {
		c, err := sweep.OpenCache(*cache)
		if err != nil {
			return err
		}
		cfg.Cache = c
	} else if *reportDir != "" {
		// Manifests record sweep-cache hit/miss counts; without a cache
		// file, an in-memory cache makes the accounting meaningful (and
		// replays probes shared between selected experiments) at no
		// behavioural cost — the cache never changes results.
		cfg.Cache = sweep.NewCache()
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating CSV directory: %w", err)
		}
	}

	for _, e := range selected {
		var hits0, misses0 int64
		if cfg.Cache != nil {
			hits0, misses0 = cfg.Cache.Counters()
		}
		// Header before the run (progress cue for long experiments), body
		// after; together they are exactly RenderASCII's output, which is
		// what keeps manifest replay byte-identical.
		if err := report.ASCIIHeader(w, e.ID, e.Title, e.Artifact); err != nil {
			return err
		}
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		info := report.RunInfo{
			Seed:     *seed,
			Workers:  *workers,
			Full:     *full,
			WallTime: time.Since(start),
			Now:      time.Now(),
		}
		if cfg.Cache != nil {
			hits, misses := cfg.Cache.Counters()
			info.CacheHits, info.CacheMisses = hits-hits0, misses-misses0
		}
		m := report.New(e, info, tables)
		if err := m.RenderASCIIBody(w); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := m.WriteCSVDir(*csvDir); err != nil {
				return err
			}
		}
		if *reportDir != "" {
			if err := m.WriteFile(filepath.Join(*reportDir, report.Filename(e.ID))); err != nil {
				return err
			}
		}
	}
	return nil
}
