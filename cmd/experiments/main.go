// Command experiments regenerates the paper's evaluation artifacts: Table 1
// of the paper (six competition regimes) plus the per-theorem validation
// experiments indexed in DESIGN.md §3 (generated from the registry by
// cmd/report). Run with no arguments to execute everything at the quick
// effort level, or name experiment IDs.
//
// The command is a thin front-end over the declarative run API
// (internal/scenario): every selected experiment becomes one experiment
// Spec executed by scenario.Runner. Print the specs with -dump-spec; replay
// them with -spec — the same specs run over HTTP via cmd/serve.
//
// With -report DIR, every run also writes a JSON run manifest
// (internal/report) recording the result tables with typed cells plus full
// provenance: seed, grid level, workers, wall time, sweep-cache hit/miss
// counts, and toolchain versions. Manifests are the source the recorded
// EXPERIMENTS.md is generated from, and re-rendering one reproduces this
// command's output byte-for-byte (see cmd/report -render).
//
// Examples:
//
//	experiments                       # run all, quick grids
//	experiments -full T1-SD T1-NSD    # heavier grids, two experiments
//	experiments -list
//	experiments -csv out/ E-SEP       # also write CSV files
//	experiments -cache probes.json T1-SD   # replay settled threshold probes
//	experiments -report results/manifests  # also write run manifests
//	experiments -dump-spec T1-SD > run.json; experiments -spec run.json
//	experiments -progress T1-NSD      # stream live trial/probe progress to stderr
//	experiments -cpuprofile cpu.pprof T1-NSD   # profile a heavy run
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"lvmajority/internal/experiment"
	"lvmajority/internal/progress"
	"lvmajority/internal/report"
	"lvmajority/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		full      = fs.Bool("full", false, "use the heavier (recorded) parameter grids")
		kernel    = fs.String("kernel", "", "population-protocol event loop: batch, per-event, or lockstep (default batch)")
		csvDir    = fs.String("csv", "", "directory to also write per-table CSV files into")
		reportDir = fs.String("report", "", "directory to write one JSON run manifest per experiment into")
		quiet     = fs.Bool("q", false, "suppress progress logging")
		progFlag  = fs.Bool("progress", false, "stream live progress (trials, estimates, sweep probes) to stderr")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the selected runs to this file")
	)
	common := scenario.RegisterRun(fs, 20240506)
	cachePath := scenario.RegisterCache(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.ShowVersion {
		_, err := fmt.Fprintln(w, scenario.Version())
		return err
	}
	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(w, "%-10s %s [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return nil
	}

	specs, err := common.Specs(fs, func() ([]scenario.Spec, error) {
		var ids []string
		if fs.NArg() == 0 {
			for _, e := range experiment.All() {
				ids = append(ids, e.ID)
			}
		} else {
			for _, id := range fs.Args() {
				if _, err := experiment.ByID(id); err != nil {
					return nil, err
				}
				ids = append(ids, id)
			}
		}
		// Cache policy: an explicit -cache file wins; otherwise -report
		// selects the runner's shared in-memory cache so the manifests'
		// hit/miss accounting is meaningful (and probes shared between
		// selected experiments are replayed) at no behavioural cost — the
		// cache never changes results.
		var cache *scenario.CacheSpec
		switch {
		case *cachePath != "":
			cache = scenario.FileCache(*cachePath)
		case *reportDir != "":
			cache = &scenario.CacheSpec{Policy: scenario.CacheShared}
		}
		specs := make([]scenario.Spec, 0, len(ids))
		for _, id := range ids {
			spec := scenario.New(scenario.TaskExperiment)
			spec.Seed = common.Seed
			spec.Workers = common.Workers
			spec.Cache = cache
			spec.Experiment = &scenario.ExperimentSpec{
				ID:        id,
				Full:      *full,
				Kernel:    *kernel,
				CSVDir:    *csvDir,
				ReportDir: *reportDir,
			}
			specs = append(specs, spec)
		}
		return specs, nil
	}, "q", "progress", "cpuprofile")
	if err != nil {
		return err
	}
	if common.DumpSpec {
		return scenario.WriteSpecs(w, specs)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	runner := &scenario.Runner{}
	if !*quiet {
		runner.Log = os.Stderr
	}
	if *progFlag {
		// Observation-only by contract: the hook changes zero result bytes
		// (held to that by the scenario golden tests), so -progress is safe
		// on reproduction runs. Throttled keeps trial lines readable.
		runner.Progress = progress.Throttled(progress.Renderer(os.Stderr), 250*time.Millisecond)
	}
	for _, spec := range specs {
		if spec.Task != scenario.TaskExperiment {
			return fmt.Errorf("experiments runs experiment specs, got task %q", spec.Task)
		}
		e, err := experiment.ByID(spec.Experiment.ID)
		if err != nil {
			return err
		}
		// Header before the run (progress cue for long experiments), body
		// after; together they are exactly RenderASCII's output, which is
		// what keeps manifest replay byte-identical.
		if err := report.ASCIIHeader(w, e.ID, e.Title, e.Artifact); err != nil {
			return err
		}
		res, err := runner.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		for _, m := range res.Manifests {
			if err := m.RenderASCIIBody(w); err != nil {
				return err
			}
		}
		if err := res.WriteArtifacts(); err != nil {
			return err
		}
	}
	return nil
}
