// Command experiments regenerates the paper's evaluation artifacts: Table 1
// of the paper (six competition regimes) plus the per-theorem validation
// experiments indexed in DESIGN.md. Run with no arguments to execute
// everything at the quick effort level, or name experiment IDs.
//
// Examples:
//
//	experiments                       # run all, quick grids
//	experiments -full T1-SD T1-NSD    # heavier grids, two experiments
//	experiments -list
//	experiments -csv out/ E-SEP       # also write CSV files
//	experiments -cache probes.json T1-SD   # replay settled threshold probes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lvmajority/internal/experiment"
	"lvmajority/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		full    = fs.Bool("full", false, "use the heavier (recorded) parameter grids")
		seed    = fs.Uint64("seed", 20240506, "random seed")
		workers = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		csvDir  = fs.String("csv", "", "directory to also write per-table CSV files into")
		cache   = fs.String("cache", "", "threshold-probe cache file; settled probes are replayed across runs (empty = no cache)")
		quiet   = fs.Bool("q", false, "suppress progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(w, "%-10s %s [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return nil
	}

	var selected []experiment.Experiment
	if fs.NArg() == 0 {
		selected = experiment.All()
	} else {
		for _, id := range fs.Args() {
			e, err := experiment.ByID(id)
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	cfg := experiment.Config{
		Seed:    *seed,
		Workers: *workers,
		Full:    *full,
	}
	if *cache != "" {
		c, err := sweep.OpenCache(*cache)
		if err != nil {
			return err
		}
		cfg.Cache = c
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating CSV directory: %w", err)
		}
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Fprintf(w, "\n### %s — %s\n### artifact: %s\n\n", e.ID, e.Title, e.Artifact)
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for i, tbl := range tables {
			if err := tbl.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", sanitize(e.ID), i)
				if err := writeCSVFile(filepath.Join(*csvDir, name), tbl); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(w, "### %s finished in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
}

func writeCSVFile(path string, tbl *experiment.Table) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	defer func() {
		if closeErr := f.Close(); closeErr != nil && err == nil {
			err = closeErr
		}
	}()
	return tbl.WriteCSV(f)
}
