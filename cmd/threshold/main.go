// Command threshold estimates the empirical majority-consensus threshold
// Ψ(n) — the smallest initial gap reaching success probability 1 − 1/n —
// for a chosen protocol over a range of population sizes, and fits the
// scaling exponent. This regenerates the rows of Table 1 of the paper for
// a single protocol.
//
// The curve is computed on the internal/sweep engine: each search is
// warm-started from the previous population size's threshold, gaps are
// probed with the early-stopping sequential estimator, and -cache persists
// settled probes so a re-run replays them without spending trials.
//
// Examples:
//
//	threshold -protocol lv-sd -n 256,1024,4096
//	threshold -protocol lv-nsd -n 1024 -trials 8000
//	threshold -protocol 3-state-am -n 512
//	threshold -protocol lv-sd -n 256,512,1024 -cache psi.cache.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lvmajority/internal/consensus"
	"lvmajority/internal/exploit"
	"lvmajority/internal/gossip"
	"lvmajority/internal/lv"
	"lvmajority/internal/moran"
	"lvmajority/internal/protocols"
	"lvmajority/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "threshold:", err)
		os.Exit(1)
	}
}

// protocolByName builds the requested protocol.
func protocolByName(name string) (consensus.Protocol, error) {
	switch name {
	case "lv-sd":
		return consensus.LVProtocol{
			Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
			Label:  "lv-sd",
		}, nil
	case "lv-nsd":
		return consensus.LVProtocol{
			Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive),
			Label:  "lv-nsd",
		}, nil
	case "cho":
		return protocols.NewChoProtocol(1, 1), nil
	case "andaur":
		return protocols.AndaurProtocol{Beta: 1, Alpha: 1, ResourceCap: 1 << 20}, nil
	case "condon-single-b":
		return protocols.CondonProtocol{Variant: protocols.SingleB}, nil
	case "condon-double-b":
		return protocols.CondonProtocol{Variant: protocols.DoubleB}, nil
	case "condon-heavy-b":
		return protocols.CondonProtocol{Variant: protocols.HeavyB}, nil
	case "condon-tri":
		return protocols.CondonProtocol{Variant: protocols.TriMajority}, nil
	case "3-state-am":
		return protocols.NewThreeStateAM(), nil
	case "4-state-exact":
		return protocols.NewFourStateExact(), nil
	case "ternary":
		return protocols.NewTernarySignaling(), nil
	case "voter":
		return &gossip.Protocol{Dynamics: gossip.Voter{}}, nil
	case "two-choices":
		return &gossip.Protocol{Dynamics: gossip.TwoChoices{}}, nil
	case "3-majority":
		return &gossip.Protocol{Dynamics: gossip.ThreeMajority{}}, nil
	case "usd":
		return &gossip.Protocol{Dynamics: gossip.Undecided{}}, nil
	case "moran":
		return &moran.Protocol{Fitness: 1}, nil
	case "chemostat":
		return &exploit.Protocol{
			Params: exploit.Params{Lambda: 200, Mu: 1, Beta: 0.1, Delta: 1, R0: 10},
		}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (try lv-sd, lv-nsd, cho, andaur, condon-single-b, condon-double-b, condon-heavy-b, condon-tri, 3-state-am, 4-state-exact, ternary, voter, two-choices, 3-majority, usd, moran, chemostat)", name)
	}
}

func parseNs(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	ns := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad population size %q: %w", p, err)
		}
		if v < 4 {
			return nil, fmt.Errorf("population size %d too small", v)
		}
		ns = append(ns, v)
	}
	return ns, nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("threshold", flag.ContinueOnError)
	var (
		protoName   = fs.String("protocol", "lv-sd", "protocol to measure")
		nSpec       = fs.String("n", "256,512,1024,2048", "comma-separated population sizes")
		trials      = fs.Int("trials", 0, "Monte-Carlo trials per probed gap (0 = 2n capped at 8000)")
		target      = fs.Float64("target", 0, "success probability target (0 = 1-1/n)")
		workers     = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		lanes       = fs.Int("lanes", 1, "concurrent per-n searches sharing the worker budget")
		seed        = fs.Uint64("seed", 1, "random seed")
		verbose     = fs.Bool("v", false, "print every probed gap")
		cold        = fs.Bool("cold", false, "disable warm-started brackets (every n searched from scratch)")
		noEarlyStop = fs.Bool("no-earlystop", false, "disable the early-stopping sequential estimator")
		cachePath   = fs.String("cache", "", "probe cache file; settled probes are replayed across runs (empty = no cache)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto, err := protocolByName(*protoName)
	if err != nil {
		return err
	}
	ns, err := parseNs(*nSpec)
	if err != nil {
		return err
	}
	cache, err := sweep.OpenCache(*cachePath)
	if err != nil {
		return err
	}

	res, err := sweep.Run(proto, sweep.Options{
		Grid:   ns,
		Target: *target,
		TrialsFor: func(n int) int {
			if *trials > 0 {
				return *trials
			}
			tr := 2 * n
			if tr > 8000 {
				tr = 8000
			}
			if tr < 1000 {
				tr = 1000
			}
			return tr
		},
		Workers:     *workers,
		Lanes:       *lanes,
		Seed:        *seed, // per-n seed defaults to Seed + n
		Cold:        *cold,
		NoEarlyStop: *noEarlyStop,
		Cache:       cache,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "protocol: %s\n", res.Protocol)
	fmt.Fprintf(w, "%8s  %10s  %10s  %14s  %14s\n", "n", "target", "threshold", "thr/log2(n)^2", "thr/sqrt(n)")
	for _, pt := range res.Points {
		if *verbose {
			for _, ev := range pt.Evaluations {
				fmt.Fprintf(w, "  probe n=%d delta=%d rho=%s\n", pt.N, ev.Delta, ev.Estimate)
			}
		}
		if !pt.Found {
			fmt.Fprintf(w, "%8d  %10.6f  %10s  %14s  %14s\n", pt.N, pt.Target, "not found", "-", "-")
			continue
		}
		fn := float64(pt.N)
		fmt.Fprintf(w, "%8d  %10.6f  %10d  %14.4f  %14.4f\n",
			pt.N, pt.Target, pt.Threshold,
			float64(pt.Threshold)/consensus.ShapeLog2(fn),
			float64(pt.Threshold)/consensus.ShapeSqrt(fn))
	}
	fmt.Fprintf(w, "probes: %d (%d fresh, %d cached)\n", res.Probes, res.EstimatorCalls, res.CacheHits)

	if fit, err := consensus.FitCurve(res.Curve()); err == nil {
		fmt.Fprintf(w, "scaling fit: %s\n", fit)
	}
	return nil
}
