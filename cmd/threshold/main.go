// Command threshold estimates the empirical majority-consensus threshold
// Ψ(n) — the smallest initial gap reaching success probability 1 − 1/n —
// for a chosen protocol over a range of population sizes, and fits the
// scaling exponent. This regenerates the rows of Table 1 of the paper for
// a single protocol.
//
// The command is a thin front-end over the declarative run API
// (internal/scenario): the flags are parsed into a sweep Spec executed by
// scenario.Runner on the internal/sweep engine — searches warm-started from
// the previous population size's threshold, gaps probed with the
// early-stopping sequential estimator, and -cache persisting settled probes
// so a re-run replays them without spending trials. Print the spec with
// -dump-spec; replay one with -spec.
//
// Examples:
//
//	threshold -protocol lv-sd -n 256,1024,4096
//	threshold -protocol lv-nsd -n 1024 -trials 8000
//	threshold -protocol 3-state-am -n 512
//	threshold -protocol lv-sd -n 256,512,1024 -cache psi.cache.json
//	threshold -protocol lv-sd -n 256,512 -dump-spec > run.json
//	threshold -spec run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lvmajority/internal/consensus"
	"lvmajority/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "threshold:", err)
		os.Exit(1)
	}
}

func parseNs(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	ns := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad population size %q: %w", p, err)
		}
		if v < 4 {
			return nil, fmt.Errorf("population size %d too small", v)
		}
		ns = append(ns, v)
	}
	return ns, nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("threshold", flag.ContinueOnError)
	var (
		protoName   = fs.String("protocol", "lv-sd", "protocol to measure")
		kernel      = fs.String("kernel", "", "population-protocol event loop: batch, per-event, or lockstep (default batch)")
		nSpec       = fs.String("n", "256,512,1024,2048", "comma-separated population sizes")
		trials      = fs.Int("trials", 0, "Monte-Carlo trials per probed gap (0 = 2n capped at 8000)")
		target      = fs.Float64("target", 0, "success probability target (0 = 1-1/n)")
		lanes       = fs.Int("lanes", 1, "concurrent per-n searches sharing the worker budget")
		verbose     = fs.Bool("v", false, "print every probed gap")
		cold        = fs.Bool("cold", false, "disable warm-started brackets (every n searched from scratch)")
		noEarlyStop = fs.Bool("no-earlystop", false, "disable the early-stopping sequential estimator")
	)
	common := scenario.RegisterRun(fs, 1)
	cachePath := scenario.RegisterCache(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.ShowVersion {
		_, err := fmt.Fprintln(w, scenario.Version())
		return err
	}

	specs, err := common.Specs(fs, func() ([]scenario.Spec, error) {
		ns, err := parseNs(*nSpec)
		if err != nil {
			return nil, err
		}
		spec := scenario.New(scenario.TaskSweep)
		spec.Model = &scenario.Model{
			Kind:     scenario.ModelProtocol,
			Protocol: &scenario.ProtocolModel{Name: *protoName, Kernel: *kernel},
		}
		spec.Seed = common.Seed
		spec.Workers = common.Workers
		spec.Cache = scenario.FileCache(*cachePath)
		spec.Sweep = &scenario.SweepSpec{
			Grid:        ns,
			Trials:      *trials,
			Target:      *target,
			Lanes:       *lanes,
			Cold:        *cold,
			NoEarlyStop: *noEarlyStop,
			Verbose:     *verbose,
		}
		return []scenario.Spec{spec}, nil
	})
	if err != nil {
		return err
	}
	if common.DumpSpec {
		return scenario.WriteSpecs(w, specs)
	}
	if len(specs) != 1 || specs[0].Task != scenario.TaskSweep {
		return fmt.Errorf("threshold runs a single sweep spec, got %d spec(s) of task %q", len(specs), specs[0].Task)
	}

	runner := &scenario.Runner{}
	result, err := runner.Run(context.Background(), specs[0])
	if err != nil {
		return err
	}
	return render(w, specs[0], result)
}

// render prints the sweep result in the command's historical format.
func render(w io.Writer, spec scenario.Spec, result *scenario.Result) error {
	res := result.Sweep
	fmt.Fprintf(w, "protocol: %s\n", res.Protocol)
	fmt.Fprintf(w, "%8s  %10s  %10s  %14s  %14s\n", "n", "target", "threshold", "thr/log2(n)^2", "thr/sqrt(n)")
	for _, pt := range res.Points {
		if spec.Sweep.Verbose {
			for _, ev := range pt.Evaluations {
				fmt.Fprintf(w, "  probe n=%d delta=%d rho=%s\n", pt.N, ev.Delta, ev.Estimate)
			}
		}
		if !pt.Found {
			fmt.Fprintf(w, "%8d  %10.6f  %10s  %14s  %14s\n", pt.N, pt.Target, "not found", "-", "-")
			continue
		}
		fn := float64(pt.N)
		fmt.Fprintf(w, "%8d  %10.6f  %10d  %14.4f  %14.4f\n",
			pt.N, pt.Target, pt.Threshold,
			float64(pt.Threshold)/consensus.ShapeLog2(fn),
			float64(pt.Threshold)/consensus.ShapeSqrt(fn))
	}
	fmt.Fprintf(w, "probes: %d (%d fresh, %d cached)\n", res.Probes, res.EstimatorCalls, res.CacheHits)

	if fit, err := consensus.FitCurve(res.Curve()); err == nil {
		fmt.Fprintf(w, "scaling fit: %s\n", fit)
	}
	return nil
}
