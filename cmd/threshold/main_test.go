package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lvmajority/internal/scenario"
)

func TestProtocolRegistryNames(t *testing.T) {
	// The historical CLI names must all survive the move into the shared
	// scenario registry.
	known := []string{
		"lv-sd", "lv-nsd", "cho", "andaur",
		"condon-single-b", "condon-double-b", "condon-heavy-b", "condon-tri",
		"3-state-am", "4-state-exact", "ternary",
		"voter", "two-choices", "3-majority", "usd", "moran", "chemostat",
	}
	for _, name := range known {
		p, err := scenario.ProtocolByName(name)
		if err != nil {
			t.Errorf("ProtocolByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("protocol %q has empty name", name)
		}
	}
	if _, err := scenario.ProtocolByName("bogus"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestDumpSpecReplay is the reproducibility-as-data acceptance check:
// -dump-spec followed by -spec must replay the identical run.
func TestDumpSpecReplay(t *testing.T) {
	args := []string{"-protocol", "lv-sd", "-n", "64,96", "-trials", "200"}

	var direct strings.Builder
	if err := run(args, &direct); err != nil {
		t.Fatal(err)
	}

	var dumped strings.Builder
	if err := run(append(args, "-dump-spec"), &dumped); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(dumped.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed strings.Builder
	if err := run([]string{"-spec", path}, &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != direct.String() {
		t.Errorf("spec replay differs:\n--- direct\n%s--- replayed\n%s", direct.String(), replayed.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-version"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lvmajority") {
		t.Errorf("version output %q", b.String())
	}
}

func TestParseNs(t *testing.T) {
	ns, err := parseNs("64, 128,256")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 || ns[0] != 64 || ns[2] != 256 {
		t.Errorf("parseNs = %v", ns)
	}
	if _, err := parseNs("64,abc"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseNs("2"); err == nil {
		t.Error("tiny n accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "lv-sd", "-n", "64", "-trials", "200", "-v"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "protocol:") || !strings.Contains(out, "probe n=64") {
		t.Errorf("output malformed:\n%s", out)
	}
}

func TestRunCacheReplay(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "probes.json")
	args := []string{"-protocol", "lv-sd", "-n", "64,96", "-trials", "200", "-cache", cache}

	var first strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(first.String(), "(0 fresh") {
		t.Fatalf("first run reported no fresh probes:\n%s", first.String())
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	var second strings.Builder
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "(0 fresh") {
		t.Errorf("second run against a warm cache ran fresh probes:\n%s", second.String())
	}
	// The replayed run must print the identical curve (only the probe
	// accounting line differs).
	if got, want := stripProbeLine(second.String()), stripProbeLine(first.String()); got != want {
		t.Errorf("cached run output differs:\n--- first\n%s--- second\n%s", want, got)
	}
}

func stripProbeLine(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "probes:") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestRunCorruptCache: a corrupt probe cache is quarantined (*.corrupt)
// and the run proceeds from an empty cache — persistence degrades, results
// do not.
func TestRunCorruptCache(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "probes.json")
	if err := os.WriteFile(cache, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-n", "64", "-trials", "50", "-cache", cache}, &b); err != nil {
		t.Errorf("corrupt cache failed the run: %v", err)
	}
	if _, err := os.Stat(cache + ".corrupt"); err != nil {
		t.Errorf("corrupt cache not quarantined: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-protocol", "bogus"},
		{"-n", "xyz"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) did not error", args)
		}
	}
}
