// Command rho computes exact majority-consensus probabilities ρ(a, b) and
// expected consensus times for the two-species Lotka–Volterra chains by
// solving the first-step recurrence (Eq. 8 of the paper) on a truncated
// grid — no Monte-Carlo sampling error.
//
// Examples:
//
//	rho -a 10 -b 5 -competition sd -gamma0 1 -gamma1 1 -alpha0 0.5 -alpha1 0.5
//	rho -table 8 -competition nsd
//	rho -a 10 -b 5 -tie 0.5 -steps
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lvmajority/internal/crn"
	"lvmajority/internal/exact"
	"lvmajority/internal/lv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rho:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rho", flag.ContinueOnError)
	var (
		a           = fs.Int("a", 10, "count of species 0")
		b           = fs.Int("b", 5, "count of species 1")
		beta        = fs.Float64("beta", 1, "per-capita birth rate")
		delta       = fs.Float64("delta", 1, "per-capita death rate")
		alpha0      = fs.Float64("alpha0", 1, "interspecific rate initiated by species 0")
		alpha1      = fs.Float64("alpha1", 1, "interspecific rate initiated by species 1")
		gamma0      = fs.Float64("gamma0", 0, "intraspecific rate of species 0")
		gamma1      = fs.Float64("gamma1", 0, "intraspecific rate of species 1")
		competition = fs.String("competition", "sd", `competition model: "sd" or "nsd"`)
		tie         = fs.Float64("tie", 0, "value of the double-extinction state (0 = paper-strict, 0.5 = fair tiebreak)")
		max         = fs.Int("max", 0, "grid ceiling (0 = 4*(a+b)+40)")
		table       = fs.Int("table", 0, "if > 0, print the full rho table up to this count instead of one state")
		steps       = fs.Bool("steps", false, "also compute the expected consensus time")
		networkPath = fs.String("network", "", "solve this two-species network file (internal/crn text format) instead of the LV rate flags")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ceiling := *max
	if ceiling <= 0 {
		ceiling = 4*(*a+*b) + 40
		if *table > 0 && 4**table+40 > ceiling {
			ceiling = 4**table + 40
		}
	}
	opts := exact.Options{Max: ceiling, TieValue: *tie}

	var (
		sol   *exact.Solution
		err   error
		label string
	)
	if *networkPath != "" {
		data, err2 := os.ReadFile(*networkPath)
		if err2 != nil {
			return err2
		}
		net, err2 := crn.Parse(string(data))
		if err2 != nil {
			return err2
		}
		label = fmt.Sprintf("network %s (%d reactions)", *networkPath, net.NumReactions())
		if *steps {
			sol, err = exact.SolveNetworkWithSteps(net, opts)
		} else {
			sol, err = exact.SolveNetwork(net, opts)
		}
	} else {
		var comp lv.Competition
		switch *competition {
		case "sd":
			comp = lv.SelfDestructive
		case "nsd":
			comp = lv.NonSelfDestructive
		default:
			return fmt.Errorf("unknown competition model %q", *competition)
		}
		params := lv.Params{
			Beta: *beta, Delta: *delta,
			Alpha:       [2]float64{*alpha0, *alpha1},
			Gamma:       [2]float64{*gamma0, *gamma1},
			Competition: comp,
		}
		label = params.String()
		if *steps {
			sol, err = exact.SolveWithSteps(params, opts)
		} else {
			sol, err = exact.Solve(params, opts)
		}
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "# %s, tie value %g, grid ceiling %d\n", label, *tie, ceiling)
	if *table > 0 {
		fmt.Fprintf(w, "%6s", "a\\b")
		for bb := 1; bb <= *table; bb++ {
			fmt.Fprintf(w, "  %7d", bb)
		}
		fmt.Fprintln(w)
		for aa := 1; aa <= *table; aa++ {
			fmt.Fprintf(w, "%6d", aa)
			for bb := 1; bb <= *table; bb++ {
				v, err := sol.Rho(aa, bb)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %7.4f", v)
			}
			fmt.Fprintln(w)
		}
		return nil
	}

	v, err := sol.Rho(*a, *b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rho(%d, %d) = %.6f\n", *a, *b, v)
	fmt.Fprintf(w, "a/(a+b)    = %.6f\n", float64(*a)/float64(*a+*b))
	if *steps {
		s, err := sol.Steps(*a, *b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "E[T(%d, %d)] = %.4f reactions\n", *a, *b, s)
	}
	return nil
}
