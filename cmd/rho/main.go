// Command rho computes exact majority-consensus probabilities ρ(a, b) and
// expected consensus times for the two-species Lotka–Volterra chains by
// solving the first-step recurrence (Eq. 8 of the paper) on a truncated
// grid — no Monte-Carlo sampling error.
//
// The command is a thin front-end over the declarative run API
// (internal/scenario): the flags are parsed into an exact Spec (a -network
// file is inlined, so the spec is self-contained) that scenario.Runner
// solves. Print the spec with -dump-spec; replay one with -spec.
//
// Examples:
//
//	rho -a 10 -b 5 -competition sd -gamma0 1 -gamma1 1 -alpha0 0.5 -alpha1 0.5
//	rho -table 8 -competition nsd
//	rho -a 10 -b 5 -tie 0.5 -steps
//	rho -a 10 -b 5 -dump-spec > run.json; rho -spec run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"lvmajority/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rho:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rho", flag.ContinueOnError)
	var (
		a           = fs.Int("a", 10, "count of species 0")
		b           = fs.Int("b", 5, "count of species 1")
		beta        = fs.Float64("beta", 1, "per-capita birth rate")
		delta       = fs.Float64("delta", 1, "per-capita death rate")
		alpha0      = fs.Float64("alpha0", 1, "interspecific rate initiated by species 0")
		alpha1      = fs.Float64("alpha1", 1, "interspecific rate initiated by species 1")
		gamma0      = fs.Float64("gamma0", 0, "intraspecific rate of species 0")
		gamma1      = fs.Float64("gamma1", 0, "intraspecific rate of species 1")
		competition = fs.String("competition", "sd", `competition model: "sd" or "nsd"`)
		tie         = fs.Float64("tie", 0, "value of the double-extinction state (0 = paper-strict, 0.5 = fair tiebreak)")
		max         = fs.Int("max", 0, "grid ceiling (0 = 4*(a+b)+40)")
		table       = fs.Int("table", 0, "if > 0, print the full rho table up to this count instead of one state")
		steps       = fs.Bool("steps", false, "also compute the expected consensus time")
		networkPath = fs.String("network", "", "solve this two-species network file (internal/crn text format) instead of the LV rate flags")
	)
	common := scenario.RegisterSpec(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.ShowVersion {
		_, err := fmt.Fprintln(w, scenario.Version())
		return err
	}

	specs, err := common.Specs(fs, func() ([]scenario.Spec, error) {
		spec := scenario.New(scenario.TaskExact)
		if *networkPath != "" {
			data, err := os.ReadFile(*networkPath)
			if err != nil {
				return nil, err
			}
			spec.Model = &scenario.Model{Kind: scenario.ModelCRN, CRN: &scenario.CRNModel{Text: string(data)}}
		} else {
			spec.Model = &scenario.Model{Kind: scenario.ModelLV, LV: &scenario.LVModel{
				Beta: *beta, Death: *delta,
				Alpha0: *alpha0, Alpha1: *alpha1,
				Gamma0: *gamma0, Gamma1: *gamma1,
				Competition: *competition,
			}}
		}
		spec.Exact = &scenario.ExactSpec{
			A: *a, B: *b,
			Tie: *tie, Max: *max, Table: *table, Steps: *steps,
		}
		return []scenario.Spec{spec}, nil
	})
	if err != nil {
		return err
	}
	if common.DumpSpec {
		return scenario.WriteSpecs(w, specs)
	}
	if len(specs) != 1 || specs[0].Task != scenario.TaskExact {
		return fmt.Errorf("rho runs a single exact spec")
	}
	spec := specs[0]

	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	return render(w, spec, res.Exact)
}

// render prints the exact solution in the command's historical format.
func render(w io.Writer, spec scenario.Spec, res *scenario.ExactResult) error {
	e := spec.Exact
	fmt.Fprintf(w, "# %s, tie value %g, grid ceiling %d\n", res.Label, e.Tie, res.Ceiling)
	if e.Table > 0 {
		fmt.Fprintf(w, "%6s", "a\\b")
		for bb := 1; bb <= e.Table; bb++ {
			fmt.Fprintf(w, "  %7d", bb)
		}
		fmt.Fprintln(w)
		for aa := 1; aa <= e.Table; aa++ {
			fmt.Fprintf(w, "%6d", aa)
			for bb := 1; bb <= e.Table; bb++ {
				v, err := res.Solution.Rho(aa, bb)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %7.4f", v)
			}
			fmt.Fprintln(w)
		}
		return nil
	}

	v, err := res.Solution.Rho(e.A, e.B)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "rho(%d, %d) = %.6f\n", e.A, e.B, v)
	fmt.Fprintf(w, "a/(a+b)    = %.6f\n", float64(e.A)/float64(e.A+e.B))
	if e.Steps {
		s, err := res.Solution.Steps(e.A, e.B)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "E[T(%d, %d)] = %.4f reactions\n", e.A, e.B, s)
	}
	return nil
}
