package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleState(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-a", "10", "-b", "5",
		"-alpha0", "0.5", "-alpha1", "0.5",
		"-gamma0", "1", "-gamma1", "1",
		"-tie", "0.5", "-steps",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Theorem 20 regime: exact 2/3.
	if !strings.Contains(out, "rho(10, 5) = 0.666") {
		t.Errorf("output missing exact value:\n%s", out)
	}
	if !strings.Contains(out, "E[T(10, 5)]") {
		t.Errorf("output missing expected time:\n%s", out)
	}
}

func TestRunTable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-table", "4", "-competition", "nsd"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a\\b") {
		t.Errorf("table output malformed:\n%s", out)
	}
	// Diagonal of a neutral chain: 0.5 everywhere.
	if !strings.Contains(out, "0.5000") {
		t.Errorf("table missing the neutral diagonal:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-competition", "bogus"},
		{"-tie", "2"},
		{"-beta", "-1"},
		{"-zzz"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) did not error", args)
		}
	}
}

func TestRunWithNetworkFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nn.crn")
	// Non-neutral NSD chain: minority (X1) reproduces twice as fast.
	text := `species: X0 X1
X0 -> 2 X0 @ 1
X1 -> 2 X1 @ 2
X0 -> 0 @ 1
X1 -> 0 @ 1
X0 + X1 -> X0 @ 1
X1 + X0 -> X1 @ 1
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-network", path, "-a", "10", "-b", "5", "-max", "50"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rho(10, 5)") || !strings.Contains(out, "network") {
		t.Errorf("network solve output malformed:\n%s", out)
	}
}

// TestDumpSpecReplay: -dump-spec followed by -spec must replay the
// identical run.
func TestDumpSpecReplay(t *testing.T) {
	args := []string{"-a", "10", "-b", "5", "-gamma0", "1", "-gamma1", "1", "-tie", "0.5", "-steps"}

	var direct strings.Builder
	if err := run(args, &direct); err != nil {
		t.Fatal(err)
	}
	var dumped strings.Builder
	if err := run(append(args, "-dump-spec"), &dumped); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(dumped.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed strings.Builder
	if err := run([]string{"-spec", path}, &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != direct.String() {
		t.Errorf("spec replay differs:\n--- direct\n%s--- replayed\n%s", direct.String(), replayed.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-version"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lvmajority") {
		t.Errorf("version output %q", b.String())
	}
}

func TestRunWithNetworkErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-network", "/nonexistent.crn"}, &b); err == nil {
		t.Error("missing network file accepted")
	}
	path := filepath.Join(t.TempDir(), "three.crn")
	if err := os.WriteFile(path, []byte("A + B -> C @ 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-network", path}, &b); err == nil {
		t.Error("three-species network accepted")
	}
}
