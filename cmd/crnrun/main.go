// Command crnrun simulates an arbitrary chemical reaction network described
// in the text format of internal/crn (see -help for the grammar). It runs
// stochastic simulation from a given initial state and prints either a
// per-reaction trace or batch statistics of the final state.
//
// The command is a thin front-end over the declarative run API
// (internal/scenario): the network text is inlined into a simulate Spec —
// so the spec is self-contained — whose batch statistics scenario.Runner
// computes with the selected internal/sim engine (-engine direct, nrm, or
// leap); the -trace rendering of the first run stays in the front-end.
// Print the spec with -dump-spec; replay one with -spec.
//
// Examples:
//
//	crnrun -network lv-sd.crn -init "X0=60,X1=40" -runs 1000
//	crnrun -network lv-sd.crn -init "X0=60,X1=40" -trace
//	crnrun -network big.crn -init "X0=500" -runs 100 -engine nrm
//	echo 'X -> 2 X @ 1
//	X -> 0 @ 1.1' | crnrun -init "X=100"
//
// The network file format, one reaction per line, with optional comments:
//
//	species: X0 X1          # optional explicit declaration
//	X0 -> 2 X0 @ 1          # birth at rate 1
//	X0 + X1 -> 0 @ 0.5      # both die on contact
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lvmajority/internal/crn"
	"lvmajority/internal/rng"
	"lvmajority/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("crnrun", flag.ContinueOnError)
	var (
		networkPath = fs.String("network", "", "path to the network file (default: read from stdin)")
		initText    = fs.String("init", "", `initial counts, e.g. "X0=60,X1=40" (unlisted species start at 0)`)
		runs        = fs.Int("runs", 1, "number of independent runs")
		engine      = fs.String("engine", "direct", `simulation engine: "direct" (exact SSA), "nrm" (next-reaction method), or "leap" (tau-leaping)`)
		maxSteps    = fs.Int("max-steps", 10_000_000, "reaction budget per run")
		maxTime     = fs.Float64("max-time", 0, "simulated-time budget per run (0 = unlimited)")
		traceRun    = fs.Bool("trace", false, "print each reaction of the first run")
		echo        = fs.Bool("echo", false, "print the parsed network before simulating")
	)
	common := scenario.RegisterRun(fs, 1)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if common.ShowVersion {
		_, err := fmt.Fprintln(w, scenario.Version())
		return err
	}

	specs, err := common.Specs(fs, func() ([]scenario.Spec, error) {
		if *runs < 1 {
			return nil, fmt.Errorf("need at least one run, got %d", *runs)
		}
		text, err := readNetworkText(*networkPath, stdin)
		if err != nil {
			return nil, err
		}
		net, err := crn.Parse(text)
		if err != nil {
			return nil, err
		}
		init, err := parseInit(net, *initText)
		if err != nil {
			return nil, err
		}
		engineName := *engine
		if engineName == "direct" {
			engineName = "" // the spec's default; keeps dumps minimal
		}
		spec := scenario.New(scenario.TaskSimulate)
		spec.Model = &scenario.Model{Kind: scenario.ModelCRN, CRN: &scenario.CRNModel{
			Text:   text,
			Engine: engineName,
		}}
		spec.Seed = common.Seed
		spec.Workers = common.Workers
		spec.Simulate = &scenario.SimulateSpec{
			Runs: *runs, Init: init,
			MaxSteps: *maxSteps, MaxTime: *maxTime,
			Trace: *traceRun, Echo: *echo,
		}
		return []scenario.Spec{spec}, nil
	})
	if err != nil {
		return err
	}
	if common.DumpSpec {
		return scenario.WriteSpecs(w, specs)
	}
	if len(specs) != 1 || specs[0].Task != scenario.TaskSimulate ||
		specs[0].Model == nil || specs[0].Model.Kind != scenario.ModelCRN {
		return fmt.Errorf("crnrun runs a single CRN simulate spec")
	}
	spec := specs[0]
	if err := spec.Validate(); err != nil {
		return err
	}

	net, err := crn.Parse(spec.Model.CRN.Text)
	if err != nil {
		return err
	}
	if spec.Simulate.Echo {
		fmt.Fprint(w, crn.Format(net))
		fmt.Fprintln(w)
	}
	if spec.Simulate.Trace {
		initial, err := scenario.InitialState(net, spec.Simulate.Init)
		if err != nil {
			return err
		}
		if err := printTrace(w, net, initial, rng.New(spec.Seed), spec.Simulate.MaxSteps, spec.Simulate.MaxTime); err != nil {
			return err
		}
		if spec.Simulate.Runs == 1 {
			return nil
		}
	}

	runner := &scenario.Runner{}
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	return renderBatch(w, res.Simulate.CRN)
}

// readNetworkText loads the network description from a file or stdin.
func readNetworkText(path string, stdin io.Reader) (string, error) {
	if path == "" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return "", fmt.Errorf("read stdin: %w", err)
		}
		if len(data) == 0 {
			return "", fmt.Errorf("no network: pass -network FILE or pipe a description to stdin")
		}
		return string(data), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// parseInit parses "X0=60,X1=40" into the name-keyed count map a spec
// carries, validating every name against the network.
func parseInit(net *crn.Network, text string) (map[string]int, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	init := make(map[string]int)
	for _, item := range strings.Split(text, ",") {
		name, countText, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return nil, fmt.Errorf(`bad -init item %q (want "NAME=COUNT")`, item)
		}
		name = strings.TrimSpace(name)
		if _, err := net.SpeciesByName(name); err != nil {
			return nil, err
		}
		count, err := strconv.Atoi(strings.TrimSpace(countText))
		if err != nil || count < 0 {
			return nil, fmt.Errorf("bad count %q for species %s", countText, name)
		}
		init[name] = count
	}
	return init, nil
}

// printTrace runs one simulation, printing every reaction.
func printTrace(w io.Writer, net *crn.Network, initial []int, src *rng.Source, maxSteps int, maxTime float64) error {
	sim, err := crn.NewSimulator(net, initial, src)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s  %-24s  %12s  %s\n", "step", "reaction", "time", "state")
	fmt.Fprintf(w, "%8d  %-24s  %12.4f  %s\n", 0, "init", 0.0, formatState(net, initial))
	for sim.Steps() < maxSteps {
		if maxTime > 0 && sim.Time() >= maxTime {
			fmt.Fprintf(w, "# time budget reached\n")
			break
		}
		r, _, err := sim.StepTime()
		if err == crn.ErrExhausted {
			fmt.Fprintf(w, "# chain absorbed (zero total propensity)\n")
			break
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d  %-24s  %12.4f  %s\n",
			sim.Steps(), net.Reaction(r).Name, sim.Time(), formatState(net, sim.State()))
	}
	return nil
}

// renderBatch prints the final-state statistics in the command's historical
// format.
func renderBatch(w io.Writer, batch *scenario.CRNBatch) error {
	fmt.Fprintf(w, "runs:        %d\n", batch.Runs)
	fmt.Fprintf(w, "absorbed:    %d\n", batch.Absorbed)
	fmt.Fprintf(w, "steps:       %s\n", &batch.Steps)
	for s := range batch.Finals {
		fmt.Fprintf(w, "final %-10s %s\n", batch.Net.SpeciesName(crn.Species(s))+":", &batch.Finals[s])
	}
	return nil
}

// formatState renders a state vector as "X0=12 X1=3".
func formatState(net *crn.Network, state []int) string {
	parts := make([]string, len(state))
	for s, c := range state {
		parts[s] = fmt.Sprintf("%s=%d", net.SpeciesName(crn.Species(s)), c)
	}
	return strings.Join(parts, " ")
}
