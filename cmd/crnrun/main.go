// Command crnrun simulates an arbitrary chemical reaction network described
// in the text format of internal/crn (see -help for the grammar). It runs
// exact Gillespie simulation from a given initial state and prints either a
// per-reaction trace or batch statistics of the final state.
//
// Examples:
//
//	crnrun -network lv-sd.crn -init "X0=60,X1=40" -runs 1000
//	crnrun -network lv-sd.crn -init "X0=60,X1=40" -trace
//	echo 'X -> 2 X @ 1
//	X -> 0 @ 1.1' | crnrun -init "X=100"
//
// The network file format, one reaction per line, with optional comments:
//
//	species: X0 X1          # optional explicit declaration
//	X0 -> 2 X0 @ 1          # birth at rate 1
//	X0 + X1 -> 0 @ 0.5      # both die on contact
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lvmajority/internal/crn"
	"lvmajority/internal/mc"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
	"lvmajority/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crnrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("crnrun", flag.ContinueOnError)
	var (
		networkPath = fs.String("network", "", "path to the network file (default: read from stdin)")
		initText    = fs.String("init", "", `initial counts, e.g. "X0=60,X1=40" (unlisted species start at 0)`)
		runs        = fs.Int("runs", 1, "number of independent runs")
		seed        = fs.Uint64("seed", 1, "random seed")
		workers     = fs.Int("workers", 0, "parallel workers for batch runs (0 = GOMAXPROCS); never changes the results")
		maxSteps    = fs.Int("max-steps", 10_000_000, "reaction budget per run")
		maxTime     = fs.Float64("max-time", 0, "simulated-time budget per run (0 = unlimited)")
		traceRun    = fs.Bool("trace", false, "print each reaction of the first run")
		echo        = fs.Bool("echo", false, "print the parsed network before simulating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	text, err := readNetworkText(*networkPath, stdin)
	if err != nil {
		return err
	}
	net, err := crn.Parse(text)
	if err != nil {
		return err
	}
	initial, err := parseInit(net, *initText)
	if err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("need at least one run, got %d", *runs)
	}
	if *echo {
		fmt.Fprint(w, crn.Format(net))
		fmt.Fprintln(w)
	}

	if *traceRun {
		if err := printTrace(w, net, initial, rng.New(*seed), *maxSteps, *maxTime); err != nil {
			return err
		}
		if *runs == 1 {
			return nil
		}
	}
	return batchRuns(w, net, initial, *seed, *workers, *runs, *maxSteps, *maxTime)
}

// readNetworkText loads the network description from a file or stdin.
func readNetworkText(path string, stdin io.Reader) (string, error) {
	if path == "" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return "", fmt.Errorf("read stdin: %w", err)
		}
		if len(data) == 0 {
			return "", fmt.Errorf("no network: pass -network FILE or pipe a description to stdin")
		}
		return string(data), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// parseInit parses "X0=60,X1=40" into a state vector over net's species.
func parseInit(net *crn.Network, text string) ([]int, error) {
	state := make([]int, net.NumSpecies())
	if strings.TrimSpace(text) == "" {
		return state, nil
	}
	for _, item := range strings.Split(text, ",") {
		name, countText, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return nil, fmt.Errorf(`bad -init item %q (want "NAME=COUNT")`, item)
		}
		s, err := net.SpeciesByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		count, err := strconv.Atoi(strings.TrimSpace(countText))
		if err != nil || count < 0 {
			return nil, fmt.Errorf("bad count %q for species %s", countText, name)
		}
		state[s] = count
	}
	return state, nil
}

// printTrace runs one simulation, printing every reaction.
func printTrace(w io.Writer, net *crn.Network, initial []int, src *rng.Source, maxSteps int, maxTime float64) error {
	sim, err := crn.NewSimulator(net, initial, src)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s  %-24s  %12s  %s\n", "step", "reaction", "time", "state")
	fmt.Fprintf(w, "%8d  %-24s  %12.4f  %s\n", 0, "init", 0.0, formatState(net, initial))
	for sim.Steps() < maxSteps {
		if maxTime > 0 && sim.Time() >= maxTime {
			fmt.Fprintf(w, "# time budget reached\n")
			break
		}
		r, _, err := sim.StepTime()
		if err == crn.ErrExhausted {
			fmt.Fprintf(w, "# chain absorbed (zero total propensity)\n")
			break
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d  %-24s  %12.4f  %s\n",
			sim.Steps(), net.Reaction(r).Name, sim.Time(), formatState(net, sim.State()))
	}
	return nil
}

// batchRuns aggregates final-state statistics over many runs. The runs are
// replicated through the shared sim engine and mc worker pool: each worker
// reuses one engine via Reset, and per-run streams are keyed by the run
// index, so the output is identical for every worker count.
func batchRuns(w io.Writer, net *crn.Network, initial []int, seed uint64, workers, runs, maxSteps int, maxTime float64) error {
	clock := sim.JumpChain
	if maxTime > 0 {
		clock = sim.Gillespie
	}
	type final struct {
		steps    int
		absorbed bool
		state    []int
	}
	outs, err := mc.RunEngine(mc.Options{Replicates: runs, Workers: workers, Seed: seed},
		func() (sim.Engine, error) { return sim.NewCRN(net, initial, clock, rng.New(0)) },
		func(_ int, e sim.Engine) (final, error) {
			res, err := sim.Run(e, nil, sim.Limits{MaxSteps: maxSteps, MaxTime: maxTime})
			if err != nil {
				return final{}, err
			}
			return final{
				steps:    res.Steps,
				absorbed: res.Absorbed,
				state:    append([]int(nil), e.State()...),
			}, nil
		})
	if err != nil {
		return err
	}

	finals := make([]stats.Running, net.NumSpecies())
	var steps stats.Running
	absorbed := 0
	for _, out := range outs {
		if out.absorbed {
			absorbed++
		}
		steps.Add(float64(out.steps))
		for s, c := range out.state {
			finals[s].Add(float64(c))
		}
	}
	fmt.Fprintf(w, "runs:        %d\n", runs)
	fmt.Fprintf(w, "absorbed:    %d\n", absorbed)
	fmt.Fprintf(w, "steps:       %s\n", &steps)
	for s := range finals {
		fmt.Fprintf(w, "final %-10s %s\n", net.SpeciesName(crn.Species(s))+":", &finals[s])
	}
	return nil
}

// formatState renders a state vector as "X0=12 X1=3".
func formatState(net *crn.Network, state []int) string {
	parts := make([]string, len(state))
	for s, c := range state {
		parts[s] = fmt.Sprintf("%s=%d", net.SpeciesName(crn.Species(s)), c)
	}
	return strings.Join(parts, " ")
}
