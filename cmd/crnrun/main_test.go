package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const lvSDNetwork = `
species: X0 X1
X0 -> 2 X0 @ 1
X1 -> 2 X1 @ 1
X0 -> 0 @ 1
X1 -> 0 @ 1
X0 + X1 -> 0 @ 0.5
X1 + X0 -> 0 @ 0.5
`

func writeNetworkFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lv.crn")
	if err := os.WriteFile(path, []byte(lvSDNetwork), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBatchFromFile(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-network", writeNetworkFile(t),
		"-init", "X0=30,X1=20",
		"-runs", "20", "-seed", "5",
	}, strings.NewReader(""), &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"runs:        20", "final X0:", "final X1:", "steps:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFromStdin(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-init", "X=5", "-trace", "-seed", "2"},
		strings.NewReader("X -> 0 @ 1\n"), &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "init") || !strings.Contains(out, "absorbed") {
		t.Errorf("trace output malformed:\n%s", out)
	}
	if !strings.Contains(out, "X=0") {
		t.Errorf("pure-death chain did not reach extinction:\n%s", out)
	}
}

func TestRunEcho(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-init", "X=1", "-echo", "-runs", "1"},
		strings.NewReader("X -> 0 @ 1\n"), &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "species: X") {
		t.Errorf("echo missing species directive:\n%s", b.String())
	}
}

func TestRunMaxTime(t *testing.T) {
	var b strings.Builder
	// Birth-only chain never absorbs; the time budget must stop it.
	err := run([]string{"-init", "X=10", "-max-time", "0.5", "-seed", "3"},
		strings.NewReader("X -> 2 X @ 1\n"), &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "absorbed:    0") {
		t.Errorf("birth-only chain reported absorption:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-network", "/nonexistent/net.crn"},
		{"-init", "Y=5"},  // unknown species
		{"-init", "X"},    // malformed init
		{"-init", "X=-3"}, // negative count
		{"-runs", "0", "-init", "X=1"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, strings.NewReader("X -> 0 @ 1\n"), &b); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunEmptyStdin(t *testing.T) {
	var b strings.Builder
	if err := run(nil, strings.NewReader(""), &b); err == nil {
		t.Error("empty stdin accepted")
	}
}
