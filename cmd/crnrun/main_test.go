package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const lvSDNetwork = `
species: X0 X1
X0 -> 2 X0 @ 1
X1 -> 2 X1 @ 1
X0 -> 0 @ 1
X1 -> 0 @ 1
X0 + X1 -> 0 @ 0.5
X1 + X0 -> 0 @ 0.5
`

func writeNetworkFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lv.crn")
	if err := os.WriteFile(path, []byte(lvSDNetwork), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBatchFromFile(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-network", writeNetworkFile(t),
		"-init", "X0=30,X1=20",
		"-runs", "20", "-seed", "5",
	}, strings.NewReader(""), &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"runs:        20", "final X0:", "final X1:", "steps:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFromStdin(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-init", "X=5", "-trace", "-seed", "2"},
		strings.NewReader("X -> 0 @ 1\n"), &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "init") || !strings.Contains(out, "absorbed") {
		t.Errorf("trace output malformed:\n%s", out)
	}
	if !strings.Contains(out, "X=0") {
		t.Errorf("pure-death chain did not reach extinction:\n%s", out)
	}
}

func TestRunEcho(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-init", "X=1", "-echo", "-runs", "1"},
		strings.NewReader("X -> 0 @ 1\n"), &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "species: X") {
		t.Errorf("echo missing species directive:\n%s", b.String())
	}
}

func TestRunMaxTime(t *testing.T) {
	var b strings.Builder
	// Birth-only chain never absorbs; the time budget must stop it.
	err := run([]string{"-init", "X=10", "-max-time", "0.5", "-seed", "3"},
		strings.NewReader("X -> 2 X @ 1\n"), &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "absorbed:    0") {
		t.Errorf("birth-only chain reported absorption:\n%s", b.String())
	}
}

// TestDumpSpecReplay: -dump-spec followed by -spec must replay the
// identical run. The network text is inlined in the spec, so the replay
// reads neither the file nor stdin.
func TestDumpSpecReplay(t *testing.T) {
	args := []string{"-network", writeNetworkFile(t), "-init", "X0=30,X1=20", "-runs", "20", "-seed", "5"}

	var direct strings.Builder
	if err := run(args, strings.NewReader(""), &direct); err != nil {
		t.Fatal(err)
	}
	var dumped strings.Builder
	if err := run(append(args, "-dump-spec"), strings.NewReader(""), &dumped); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, []byte(dumped.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed strings.Builder
	if err := run([]string{"-spec", path}, strings.NewReader(""), &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != direct.String() {
		t.Errorf("spec replay differs:\n--- direct\n%s--- replayed\n%s", direct.String(), replayed.String())
	}
}

// TestEngineSelection drives the NRM and leap engines end to end through
// the spec layer.
func TestEngineSelection(t *testing.T) {
	for _, engine := range []string{"nrm", "leap"} {
		var b strings.Builder
		err := run([]string{"-init", "X=50", "-runs", "10", "-engine", engine, "-seed", "2"},
			strings.NewReader("X -> 0 @ 1\n"), &b)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(b.String(), "runs:        10") {
			t.Errorf("engine %s output malformed:\n%s", engine, b.String())
		}
	}
	var b strings.Builder
	if err := run([]string{"-init", "X=1", "-engine", "warp"}, strings.NewReader("X -> 0 @ 1\n"), &b); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-version"}, strings.NewReader(""), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lvmajority") {
		t.Errorf("version output %q", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-network", "/nonexistent/net.crn"},
		{"-init", "Y=5"},  // unknown species
		{"-init", "X"},    // malformed init
		{"-init", "X=-3"}, // negative count
		{"-runs", "0", "-init", "X=1"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, strings.NewReader("X -> 0 @ 1\n"), &b); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunEmptyStdin(t *testing.T) {
	var b strings.Builder
	if err := run(nil, strings.NewReader(""), &b); err == nil {
		t.Error("empty stdin accepted")
	}
}
