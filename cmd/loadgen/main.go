// Command loadgen benchmarks a serving coordinator: it submits specs from a
// corpus to POST /v1/runs at fixed concurrency levels, polls each run to a
// terminal state, and reports end-to-end latency quantiles (merging
// quantile sketches, internal/stats) and throughput.
//
// Output is go-bench-style lines with custom units so the committed
// trajectory machinery (internal/benchgate) can record and gate it:
//
//	BenchmarkFabricLoad/c=2    32    18500000 p50-ns    41000000 p99-ns    12.41 runs/s
//
// Pipe the output through cmd/benchgate to update or check
// results/bench/BENCH_fabric.json:
//
//	loadgen -server http://127.0.0.1:8080 -specs examples/fleet/specs \
//	  | go run ./cmd/benchgate -update results/bench/BENCH_fabric.json -pr N
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lvmajority/internal/scenario"
	"lvmajority/internal/stats"
)

func main() {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://127.0.0.1:8080", "coordinator base URL (the serve run API)")
		specsDir = fs.String("specs", "examples/fleet/specs", "directory of spec JSON files to submit round-robin")
		levels   = fs.String("levels", "2,8", "comma-separated concurrency levels")
		runs     = fs.Int("runs", 32, "submissions per concurrency level")
		poll     = fs.Duration("poll", 25*time.Millisecond, "status poll interval")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-run completion deadline")
		showVers = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *showVers {
		fmt.Println(scenario.Version())
		return
	}
	logger := log.New(os.Stderr, "loadgen: ", log.LstdFlags)

	specs, err := loadCorpus(*specsDir)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("corpus: %d specs from %s", len(specs), *specsDir)

	client := &http.Client{Timeout: 30 * time.Second}
	for _, lvl := range strings.Split(*levels, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(lvl))
		if err != nil || c < 1 {
			logger.Fatalf("bad concurrency level %q", lvl)
		}
		res, err := runLevel(client, *server, specs, c, *runs, *poll, *timeout)
		if err != nil {
			logger.Fatal(err)
		}
		// The go-bench line format benchgate parses: name, iteration count,
		// then value/unit pairs.
		fmt.Printf("BenchmarkFabricLoad/c=%d \t%8d \t%12.0f p50-ns \t%12.0f p99-ns \t%8.2f runs/s\n",
			c, *runs, res.p50, res.p99, res.throughput)
		logger.Printf("c=%d: %d runs in %.2fs (p50 %.1fms, p99 %.1fms, %.2f runs/s, %d failed)",
			c, *runs, res.wall.Seconds(), res.p50/1e6, res.p99/1e6, res.throughput, res.failed)
		if res.failed > 0 {
			logger.Fatalf("%d of %d runs did not finish cleanly", res.failed, *runs)
		}
	}
}

// loadCorpus reads every spec file in dir (each holding one spec or an
// array) and returns the validated, server-submittable corpus.
func loadCorpus(dir string) ([]scenario.Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var specs []scenario.Spec
	for _, path := range paths {
		loaded, err := scenario.LoadSpecs(path)
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", path, err)
		}
		for _, s := range loaded {
			if paths := s.LocalPaths(); len(paths) > 0 {
				return nil, fmt.Errorf("corpus %s: spec touches local paths %v; the server would reject it", path, paths)
			}
			specs = append(specs, s)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no specs in %s", dir)
	}
	return specs, nil
}

// levelResult aggregates one concurrency level.
type levelResult struct {
	p50, p99   float64 // nanoseconds
	throughput float64 // completed runs per second of wall time
	wall       time.Duration
	failed     int
}

// runLevel submits total specs at concurrency c and waits for each to reach
// a terminal state, sketching end-to-end latency.
func runLevel(client *http.Client, server string, specs []scenario.Spec, c, total int, poll, timeout time.Duration) (levelResult, error) {
	var (
		mu     sync.Mutex
		sketch = stats.NewQuantileSketch(0)
		failed int
		wg     sync.WaitGroup
		jobs   = make(chan int)
	)
	start := time.Now()
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				lat, err := submitAndWait(client, server, specs[job%len(specs)], poll, timeout)
				mu.Lock()
				if err != nil {
					failed++
				} else {
					sketch.Add(float64(lat.Nanoseconds()))
				}
				mu.Unlock()
			}
		}()
	}
	for job := 0; job < total; job++ {
		jobs <- job
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	res := levelResult{wall: wall, failed: failed}
	if n := sketch.N(); n > 0 {
		var err error
		if res.p50, err = sketch.Quantile(0.5); err != nil {
			return res, err
		}
		if res.p99, err = sketch.Quantile(0.99); err != nil {
			return res, err
		}
		res.throughput = n / wall.Seconds()
	}
	return res, nil
}

// submitAndWait POSTs one spec and polls its run to a terminal status,
// returning the submit-to-done latency.
func submitAndWait(client *http.Client, server string, spec scenario.Spec, poll, timeout time.Duration) (time.Duration, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var submitted struct {
		ID  int    `json:"id"`
		URL string `json:"url"`
	}
	// A 503 means transient queue pressure; back off and resubmit — that is
	// the protocol the server documents.
	for {
		resp, err := client.Post(server+"/v1/runs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if time.Since(start) > timeout {
				return 0, fmt.Errorf("submission retried past the %v deadline", timeout)
			}
			time.Sleep(poll)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return 0, fmt.Errorf("submit answered %s: %s", resp.Status, data)
		}
		if err := json.Unmarshal(data, &submitted); err != nil {
			return 0, err
		}
		break
	}

	for {
		if time.Since(start) > timeout {
			return 0, fmt.Errorf("run %d still live past the %v deadline", submitted.ID, timeout)
		}
		resp, err := client.Get(fmt.Sprintf("%s/v1/runs/%d", server, submitted.ID))
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		var run struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(data, &run); err != nil {
			return 0, err
		}
		switch run.Status {
		case "done":
			return time.Since(start), nil
		case "failed", "cancelled":
			return 0, fmt.Errorf("run %d %s: %s", submitted.ID, run.Status, run.Error)
		}
		time.Sleep(poll)
	}
}
