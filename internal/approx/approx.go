// Package approx provides a diffusion (central-limit) approximation of the
// majority-consensus probability ρ built directly on the paper's noise
// decomposition (§1.5): ρ(S) = Pr[F < Δ₀], where F = F_ind + F_comp is the
// net demographic noise accumulated before consensus. Approximating F by a
// centered normal with standard deviation σ turns the paper's qualitative
// picture into a one-parameter quantitative model:
//
//	ρ(Δ) ≈ Φ(Δ/σ),    Ψ(target) ≈ σ · Φ⁻¹(target).
//
// σ is calibrated empirically from pilot simulations started at a tie: under
// self-destructive competition F = F_ind is a short (polylogarithmic-length)
// fair walk, so σ is polylogarithmic in n; under non-self-destructive
// competition the Θ(n) competition events contribute a √n-scale walk. The
// same σ then *predicts* the full ρ-versus-Δ curve and the threshold, which
// the E-DIFF experiment checks against direct Monte-Carlo estimates.
package approx

import (
	"fmt"
	"math"

	"lvmajority/internal/lv"
	"lvmajority/internal/mc"
	"lvmajority/internal/progress"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// Model is a calibrated diffusion approximation of one LV system at one
// population size.
type Model struct {
	// Params are the rates the model was calibrated for.
	Params lv.Params
	// N is the total initial population size used during calibration.
	N int
	// Sigma is the fitted standard deviation of the demographic noise F.
	Sigma float64
	// Pilots is the number of pilot runs used.
	Pilots int
	// MeanF is the empirical mean of F over the pilots, a diagnostic for
	// the zero-drift assumption (it should be near 0 for neutral
	// systems).
	MeanF float64
}

// Rho predicts the majority-consensus probability for an initial gap delta:
// Φ(delta/σ).
func (m Model) Rho(delta float64) float64 {
	if m.Sigma <= 0 {
		// A noiseless system always preserves the initial ordering.
		if delta > 0 {
			return 1
		}
		return 0.5
	}
	return stats.NormalCDF(delta / m.Sigma)
}

// Threshold predicts the smallest gap whose success probability reaches
// target: σ·Φ⁻¹(target), rounded up.
func (m Model) Threshold(target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("approx: target %v outside (0, 1)", target)
	}
	if m.Sigma <= 0 {
		return 1, nil
	}
	return int(math.Ceil(m.Sigma * stats.NormalQuantile(target))), nil
}

// String renders the model compactly.
func (m Model) String() string {
	return fmt.Sprintf("diffusion model(n=%d, sigma=%.2f, pilots=%d)", m.N, m.Sigma, m.Pilots)
}

// CalibrateOptions configures Calibrate.
type CalibrateOptions struct {
	// Pilots is the number of pilot simulations (default 400).
	Pilots int
	// MaxSteps bounds each pilot run (0 means the lv default).
	MaxSteps int
	// Workers is the parallel worker count passed to the mc pool
	// (default GOMAXPROCS). It never affects the calibrated model.
	Workers int
	// Interrupt, when non-nil, is polled between pilots; a non-nil return
	// aborts the calibration with that error (see mc.Options.Interrupt).
	Interrupt func() error
	// Progress, when non-nil, receives pilot-completion snapshots (see
	// mc.Options.Progress). Observation-only.
	Progress progress.Hook
}

// Calibrate estimates σ = sd(F) from pilot runs of the given system started
// at an even split of n individuals (or the closest feasible split for odd
// n). The returned model predicts ρ(Δ) for gaps small compared to n.
//
// The pilots run on the shared mc pool: a root seed is drawn from src and
// each pilot uses its own index-keyed stream, so the model is deterministic
// in (params, n, state of src) regardless of the worker count.
func Calibrate(params lv.Params, n int, src *rng.Source, opts CalibrateOptions) (Model, error) {
	if err := params.Validate(); err != nil {
		return Model{}, err
	}
	if n < 2 {
		return Model{}, fmt.Errorf("approx: population %d too small", n)
	}
	if src == nil {
		return Model{}, fmt.Errorf("approx: nil random source")
	}
	pilots := opts.Pilots
	if pilots <= 0 {
		pilots = 400
	}
	b := n / 2
	initial := lv.State{X0: n - b, X1: b}
	noise, err := mc.Run(mc.Options{
		Replicates: pilots,
		Workers:    opts.Workers,
		Seed:       src.Uint64(),
		Interrupt:  opts.Interrupt,
		Progress:   opts.Progress,
	}, func(i int, src *rng.Source) (float64, error) {
		out, err := lv.Run(params, initial, src, lv.RunOptions{MaxSteps: opts.MaxSteps})
		if err != nil {
			return 0, err
		}
		if !out.Consensus {
			return 0, fmt.Errorf("approx: pilot %d did not reach consensus; raise MaxSteps", i)
		}
		return float64(out.FInd + out.FComp), nil
	})
	if err != nil {
		return Model{}, err
	}
	var acc stats.Running
	for _, f := range noise {
		acc.Add(f)
	}
	return Model{
		Params: params,
		N:      n,
		Sigma:  acc.StdDev(),
		Pilots: pilots,
		MeanF:  acc.Mean(),
	}, nil
}
