package approx

import (
	"math"
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

func TestModelRhoShape(t *testing.T) {
	m := Model{Sigma: 10}
	if got := m.Rho(0); got != 0.5 {
		t.Errorf("Rho(0) = %v, want 0.5", got)
	}
	prev := 0.0
	for delta := -30.0; delta <= 30; delta += 5 {
		cur := m.Rho(delta)
		if cur <= prev {
			t.Fatalf("Rho not strictly increasing at delta=%v", delta)
		}
		prev = cur
	}
	// Symmetry: Rho(x) + Rho(-x) = 1.
	if sum := m.Rho(7) + m.Rho(-7); math.Abs(sum-1) > 1e-12 {
		t.Errorf("Rho symmetry violated: %v", sum)
	}
}

func TestModelRhoDegenerate(t *testing.T) {
	m := Model{Sigma: 0}
	if got := m.Rho(1); got != 1 {
		t.Errorf("noiseless Rho(1) = %v, want 1", got)
	}
	if got := m.Rho(0); got != 0.5 {
		t.Errorf("noiseless Rho(0) = %v, want 0.5", got)
	}
}

func TestModelThreshold(t *testing.T) {
	m := Model{Sigma: 10}
	for _, target := range []float64{0.9, 0.99, 0.999} {
		th, err := m.Threshold(target)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Rho(float64(th)); got < target {
			t.Errorf("Rho(Threshold(%v)) = %v below target", target, got)
		}
		if got := m.Rho(float64(th - 2)); got >= target {
			t.Errorf("threshold %d for target %v is not tight", th, target)
		}
	}
	if _, err := m.Threshold(0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := m.Threshold(1); err == nil {
		t.Error("target 1 accepted")
	}
	if th, err := (Model{Sigma: 0}).Threshold(0.99); err != nil || th != 1 {
		t.Errorf("noiseless threshold = %d, %v; want 1", th, err)
	}
}

func TestCalibrateValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Calibrate(lv.Params{}, 100, src, CalibrateOptions{}); err == nil {
		t.Error("invalid params accepted")
	}
	ok := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	if _, err := Calibrate(ok, 1, src, CalibrateOptions{}); err == nil {
		t.Error("n=1 accepted")
	}
}

// TestCalibrateSeparatesSDFromNSD is the qualitative heart of the package:
// the calibrated noise scale must be polylogarithmic under self-destructive
// competition and √n-scale under non-self-destructive competition, so σ_NSD
// must dwarf σ_SD at moderate n.
func TestCalibrateSeparatesSDFromNSD(t *testing.T) {
	const n = 1024
	src := rng.New(7)
	sd, err := Calibrate(lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), n, src, CalibrateOptions{Pilots: 300})
	if err != nil {
		t.Fatal(err)
	}
	nsd, err := Calibrate(lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive), n, src, CalibrateOptions{Pilots: 300})
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log(float64(n))
	sqrtN := math.Sqrt(float64(n))
	if sd.Sigma > 4*logN {
		t.Errorf("SD sigma %.2f not polylogarithmic (4·ln n = %.2f)", sd.Sigma, 4*logN)
	}
	if nsd.Sigma < 0.3*sqrtN || nsd.Sigma > 3*sqrtN {
		t.Errorf("NSD sigma %.2f not on the √n scale (%.2f)", nsd.Sigma, sqrtN)
	}
	if nsd.Sigma < 5*sd.Sigma {
		t.Errorf("no separation: sigma_NSD %.2f vs sigma_SD %.2f", nsd.Sigma, sd.Sigma)
	}
	// Neutral systems have no drift: mean F should be small relative to
	// the noise scale.
	if math.Abs(nsd.MeanF) > nsd.Sigma {
		t.Errorf("NSD mean F %.2f exceeds one sigma %.2f", nsd.MeanF, nsd.Sigma)
	}
}

// TestModelPredictsMonteCarloRho is the end-to-end accuracy check: the
// calibrated normal approximation must predict the measured ρ(Δ) of the NSD
// system to within a few percentage points at gaps around one sigma.
func TestModelPredictsMonteCarloRho(t *testing.T) {
	const n = 512
	params := lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)
	src := rng.New(17)
	model, err := Calibrate(params, n, src, CalibrateOptions{Pilots: 500})
	if err != nil {
		t.Fatal(err)
	}
	proto := &consensus.LVProtocol{Params: params}
	for _, mult := range []float64{0.5, 1, 2} {
		delta := consensus.MatchParity(n, int(model.Sigma*mult))
		est, err := consensus.EstimateWinProbability(proto, n, delta, consensus.EstimateOptions{
			Trials: 2500, Seed: 23,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := model.Rho(float64(delta))
		if math.Abs(est.P()-want) > 0.06 {
			t.Errorf("delta=%d: predicted rho %.3f, measured %.3f ± [%.3f, %.3f]",
				delta, want, est.P(), est.Lo, est.Hi)
		}
	}
}

func TestModelString(t *testing.T) {
	m := Model{N: 256, Sigma: 12.345, Pilots: 400}
	if got := m.String(); got != "diffusion model(n=256, sigma=12.35, pilots=400)" {
		t.Errorf("String() = %q", got)
	}
}
