package approx_test

import (
	"fmt"

	"lvmajority/internal/approx"
)

// A calibrated diffusion model turns the noise scale σ into predictions:
// the success probability at any gap and the gap needed for any target.
func ExampleModel() {
	m := approx.Model{N: 1024, Sigma: 30}
	fmt.Printf("rho at gap 30 (one sigma): %.3f\n", m.Rho(30))
	fmt.Printf("rho at gap 60 (two sigma): %.3f\n", m.Rho(60))
	threshold, err := m.Threshold(1 - 1.0/1024)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("predicted threshold for 1-1/n: %d\n", threshold)
	// Output:
	// rho at gap 30 (one sigma): 0.841
	// rho at gap 60 (two sigma): 0.977
	// predicted threshold for 1-1/n: 93
}
