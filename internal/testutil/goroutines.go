// Package testutil holds small helpers shared by test suites across the
// repository. It is imported only from _test files.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the helpers need; taking the interface
// keeps testutil importable without the testing package appearing in any
// exported API.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// CheckGoroutineLeaks snapshots the goroutine count and registers a test
// cleanup that fails if, after a settling grace period, more goroutines
// remain than at the snapshot. Call it FIRST in a test (before starting
// servers, pools, or subscriptions) so the cleanup runs last, after every
// other cleanup has torn its resources down.
//
// The check is count-based with retries: goroutines legitimately take a
// moment to unwind after a channel closes or a context cancels, so the
// cleanup polls until the count settles back to the baseline or the
// deadline expires. On failure it dumps all goroutine stacks, which is
// what actually identifies the leaked worker or subscription.
func CheckGoroutineLeaks(t TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutines at cleanup, %d at test start\n%s",
			n, base, goroutineDump())
	})
}

// goroutineDump renders every goroutine stack, trimmed to keep failure
// output readable.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	const maxDump = 16 << 10
	s := string(buf)
	if len(s) > maxDump {
		s = s[:maxDump] + "\n... (stack dump truncated)"
	}
	return s
}

// WaitFor polls cond every 10ms until it returns true or the timeout
// expires, failing the test with msg on expiry. It is the shared
// eventually-consistent assertion of the robustness suites.
func WaitFor(t TB, timeout time.Duration, cond func() bool, msg string, args ...any) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			t.Errorf("condition not met within %v: %s", timeout, strings.TrimSpace(fmt.Sprintf(msg, args...)))
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}
