// Package plurality generalizes the paper's two-species majority-consensus
// question to k competing species: starting from counts x₁ ≥ x₂ ≥ ... ≥ x_k
// with species 0 the plurality, what is the probability that species 0 is
// the sole survivor of the competitive Lotka–Volterra dynamics?
//
// The model extends Eq. (1)/(2) of the paper symmetrically: every species
// reproduces at rate β and dies at rate δ; every ordered pair (i, j), i ≠ j,
// competes at rate α with propensity α·xᵢ·xⱼ (self-destructive: both die;
// non-self-destructive: the victim j dies); intraspecific competition at
// rate γ. The paper studies k = 2; plurality consensus for k > 2 is the
// natural next question its §2.2 relates to (plurality consensus in gossip
// and population-protocol models). This package provides the simulator and
// the measurement; no theorems from the paper apply directly, and the
// experiment harness labels the results as exploration.
package plurality

import (
	"fmt"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// Params configures a k-species competitive LV chain. All species share the
// same rates (the neutral case).
type Params struct {
	// Beta and Delta are the per-capita birth and death rates.
	Beta, Delta float64
	// Alpha is the pairwise interspecific competition rate: each ordered
	// pair (i, j) with i ≠ j reacts with propensity Alpha·xᵢ·xⱼ.
	Alpha float64
	// Gamma is the intraspecific competition rate (propensity
	// Gamma·xᵢ(xᵢ−1)/2).
	Gamma float64
	// Competition selects the interference model, reusing the two-species
	// package's enum.
	Competition lv.Competition
}

// Validate checks the parameters.
func (p Params) Validate() error {
	for _, r := range []float64{p.Beta, p.Delta, p.Alpha, p.Gamma} {
		if r < 0 || r != r {
			return fmt.Errorf("plurality: invalid rate in %+v", p)
		}
	}
	if p.Competition != lv.SelfDestructive && p.Competition != lv.NonSelfDestructive {
		return fmt.Errorf("plurality: unknown competition model %d", p.Competition)
	}
	return nil
}

// Outcome summarizes a run to plurality consensus (single survivor or total
// extinction).
type Outcome struct {
	// Consensus reports whether at most one species remained within the
	// step budget.
	Consensus bool
	// Winner is the surviving species index, or −1 for total extinction
	// or no consensus.
	Winner int
	// PluralityWon reports whether the initial plurality species
	// survived alone.
	PluralityWon bool
	// Steps is the number of reactions fired.
	Steps int
	// Survivors is the number of species alive at the end.
	Survivors int
}

// Run simulates the k-species chain from the given counts until at most one
// species survives (k is len(initial)). Species 0 is taken as the initial
// plurality regardless of ordering; callers put the plurality first.
func Run(p Params, initial []int, src *rng.Source, maxSteps int) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	if len(initial) < 2 {
		return Outcome{}, fmt.Errorf("plurality: need at least 2 species, got %d", len(initial))
	}
	if src == nil {
		return Outcome{}, fmt.Errorf("plurality: nil random source")
	}
	x := make([]float64, len(initial))
	counts := make([]int, len(initial))
	for i, v := range initial {
		if v < 0 {
			return Outcome{}, fmt.Errorf("plurality: negative count %d for species %d", v, i)
		}
		counts[i] = v
		x[i] = float64(v)
	}
	if maxSteps <= 0 {
		maxSteps = lv.DefaultMaxSteps
	}

	alive := 0
	var total float64
	for _, v := range counts {
		if v > 0 {
			alive++
		}
		total += float64(v)
	}

	out := Outcome{Winner: -1}
	for steps := 0; ; steps++ {
		if alive <= 1 {
			out.Consensus = true
			out.Steps = steps
			out.Survivors = alive
			if alive == 1 {
				for i, v := range counts {
					if v > 0 {
						out.Winner = i
					}
				}
			}
			out.PluralityWon = out.Winner == 0
			return out, nil
		}
		if steps >= maxSteps {
			out.Steps = steps
			out.Survivors = alive
			return out, nil
		}

		// Total propensity: individual events β+δ per capita, pairwise
		// interspecific α·Σ_{i≠j} xᵢxⱼ = α·(T² − Σxᵢ²), intraspecific
		// γ·Σ xᵢ(xᵢ−1)/2.
		var sumSq float64
		for i := range counts {
			x[i] = float64(counts[i])
			sumSq += x[i] * x[i]
		}
		indiv := (p.Beta + p.Delta) * total
		inter := p.Alpha * (total*total - sumSq)
		var intra float64
		for _, xi := range x {
			intra += p.Gamma * xi * (xi - 1) / 2
		}
		phi := indiv + inter + intra
		if phi <= 0 {
			out.Steps = steps
			out.Survivors = alive
			return out, nil
		}

		u := src.Float64() * phi
		switch {
		case u < indiv:
			// Individual event: pick species ∝ count, then birth
			// vs death ∝ β vs δ.
			i := pickProportional(counts, total, src)
			if src.Float64()*(p.Beta+p.Delta) < p.Beta {
				counts[i]++
				total++
			} else {
				counts[i]--
				total--
				if counts[i] == 0 {
					alive--
				}
			}
		case u < indiv+inter:
			// Interspecific: pick ordered pair (i, j), i ≠ j, with
			// probability xᵢxⱼ / (T² − Σx²).
			i, j := pickPair(counts, total, src)
			if p.Competition == lv.SelfDestructive {
				counts[i]--
				counts[j]--
				total -= 2
				if counts[i] == 0 {
					alive--
				}
				if counts[j] == 0 {
					alive--
				}
			} else {
				// NSD: the initiator i survives, j dies.
				counts[j]--
				total--
				if counts[j] == 0 {
					alive--
				}
			}
		default:
			// Intraspecific: pick species ∝ xᵢ(xᵢ−1).
			i := pickIntra(counts, src)
			loss := 1
			if p.Competition == lv.SelfDestructive {
				loss = 2
			}
			counts[i] -= loss
			total -= float64(loss)
			if counts[i] == 0 {
				alive--
			}
		}
	}
}

// pickProportional samples an index with probability counts[i]/total.
func pickProportional(counts []int, total float64, src *rng.Source) int {
	u := src.Float64() * total
	acc := 0.0
	last := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		acc += float64(c)
		last = i
		if u < acc {
			return i
		}
	}
	return last
}

// pickPair samples an ordered pair (i, j), i ≠ j, with probability
// proportional to counts[i]·counts[j].
func pickPair(counts []int, total float64, src *rng.Source) (int, int) {
	var sumSq float64
	for _, c := range counts {
		sumSq += float64(c) * float64(c)
	}
	weight := total*total - sumSq
	u := src.Float64() * weight
	acc := 0.0
	lastI, lastJ := 0, 1
	for i, ci := range counts {
		if ci == 0 {
			continue
		}
		row := float64(ci) * (total - float64(ci))
		if row <= 0 {
			continue
		}
		if u >= acc+row {
			acc += row
			continue
		}
		// Within row i: pick j ≠ i proportional to counts[j].
		v := src.Float64() * (total - float64(ci))
		accJ := 0.0
		for j, cj := range counts {
			if j == i || cj == 0 {
				continue
			}
			accJ += float64(cj)
			lastI, lastJ = i, j
			if v < accJ {
				return i, j
			}
		}
		return lastI, lastJ
	}
	return lastI, lastJ
}

// pickIntra samples a species with probability proportional to x(x−1).
func pickIntra(counts []int, src *rng.Source) int {
	var weight float64
	for _, c := range counts {
		weight += float64(c) * float64(c-1)
	}
	u := src.Float64() * weight
	acc := 0.0
	last := 0
	for i, c := range counts {
		w := float64(c) * float64(c-1)
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if u < acc {
			return i
		}
	}
	return last
}

// Protocol adapts the k-species chain to the consensus.Protocol interface:
// the plurality species receives b + delta individuals and the remaining
// k−1 species receive b each, where n = (b + delta) + (k−1)·b (rounded so
// totals match n as closely as the integer constraints allow).
type Protocol struct {
	Params Params
	// K is the number of species (>= 2).
	K int
	// MaxSteps bounds each trial.
	MaxSteps int
}

// Name implements consensus.Protocol.
func (p Protocol) Name() string {
	return fmt.Sprintf("%d-species plurality LV (%s)", p.K, p.Params.Competition)
}

// Trial implements consensus.Protocol.
func (p Protocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if p.K < 2 {
		return false, fmt.Errorf("plurality: K = %d too small", p.K)
	}
	if n < p.K || delta < 0 || delta > n-p.K {
		return false, fmt.Errorf("plurality: infeasible (n=%d, delta=%d, k=%d)", n, delta, p.K)
	}
	// Distribute: minority species get b each, plurality gets b + delta
	// plus any remainder (keeping it the strict plurality).
	b := (n - delta) / p.K
	if b < 1 {
		return false, fmt.Errorf("plurality: gap %d leaves empty minorities (n=%d, k=%d)", delta, n, p.K)
	}
	counts := make([]int, p.K)
	used := 0
	for i := 1; i < p.K; i++ {
		counts[i] = b
		used += b
	}
	counts[0] = n - used
	out, err := Run(p.Params, counts, src, p.MaxSteps)
	if err != nil {
		return false, err
	}
	return out.Consensus && out.PluralityWon, nil
}
