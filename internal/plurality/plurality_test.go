package plurality

import (
	"testing"
	"testing/quick"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

var _ consensus.Protocol = Protocol{}

func sdParams() Params {
	return Params{Beta: 1, Delta: 1, Alpha: 1, Competition: lv.SelfDestructive}
}

func nsdParams() Params {
	return Params{Beta: 1, Delta: 1, Alpha: 1, Competition: lv.NonSelfDestructive}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Beta: -1, Competition: lv.SelfDestructive},
		{Alpha: -0.5, Competition: lv.SelfDestructive},
		{Beta: 1, Delta: 1, Alpha: 1}, // missing competition
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
	if err := sdParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Run(sdParams(), []int{5}, src, 0); err == nil {
		t.Error("single species accepted")
	}
	if _, err := Run(sdParams(), []int{5, -1}, src, 0); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Run(sdParams(), []int{5, 5}, nil, 0); err == nil {
		t.Error("nil source accepted")
	}
}

func TestRunReachesConsensus(t *testing.T) {
	src := rng.New(3)
	for _, params := range []Params{sdParams(), nsdParams()} {
		for trial := 0; trial < 50; trial++ {
			out, err := Run(params, []int{20, 12, 8}, src, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Consensus {
				t.Fatalf("%v: no consensus", params.Competition)
			}
			if out.Survivors > 1 {
				t.Fatalf("consensus with %d survivors", out.Survivors)
			}
			if out.Winner >= 0 && out.Survivors != 1 {
				t.Fatalf("winner %d with %d survivors", out.Winner, out.Survivors)
			}
		}
	}
}

func TestTwoSpeciesMatchesLV(t *testing.T) {
	// k = 2 must reproduce the two-species chain's win probability. The
	// pairwise rate bookkeeping differs: plurality's Alpha covers each
	// *ordered* pair, so Alpha = a matches lv.Neutral alpha = a.
	if testing.Short() {
		t.Skip("statistical test")
	}
	const trials = 6000
	initial := lv.State{X0: 18, X1: 12}

	srcLV := rng.New(7)
	lvWins := 0
	params2 := lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)
	for i := 0; i < trials; i++ {
		out, err := lv.Run(params2, initial, srcLV, lv.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.MajorityWon {
			lvWins++
		}
	}
	srcPl := rng.New(9)
	plWins := 0
	for i := 0; i < trials; i++ {
		out, err := Run(nsdParams(), []int{initial.X0, initial.X1}, srcPl, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.PluralityWon {
			plWins++
		}
	}
	a, err := stats.WilsonInterval(lvWins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stats.WilsonInterval(plWins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lo > b.Hi || b.Lo > a.Hi {
		t.Errorf("k=2 plurality %v differs from lv %v", b, a)
	}
}

func TestSymmetryFromEqualCounts(t *testing.T) {
	// Three species starting equal: each wins about 1/3 of decided runs.
	if testing.Short() {
		t.Skip("statistical test")
	}
	src := rng.New(11)
	const trials = 3000
	wins := make([]int, 3)
	decided := 0
	for i := 0; i < trials; i++ {
		out, err := Run(nsdParams(), []int{15, 15, 15}, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Winner >= 0 {
			wins[out.Winner]++
			decided++
		}
	}
	for s, w := range wins {
		est, err := stats.WilsonInterval(w, decided, stats.Z999)
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo > 1.0/3 || est.Hi < 1.0/3 {
			t.Errorf("species %d win rate %v, CI excludes 1/3", s, est)
		}
	}
}

func TestLargeGapPluralityWins(t *testing.T) {
	src := rng.New(13)
	wins := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		out, err := Run(sdParams(), []int{60, 10, 10}, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.PluralityWon {
			wins++
		}
	}
	if wins < trials*85/100 {
		t.Errorf("overwhelming plurality won only %d/%d", wins, trials)
	}
}

func TestCountsStayNonNegativeProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, kRaw, popRaw uint8, sd bool) bool {
		k := int(kRaw%4) + 2
		pop := int(popRaw%20) + k
		params := nsdParams()
		if sd {
			params = sdParams()
		}
		counts := make([]int, k)
		for i := 0; i < pop; i++ {
			counts[i%k]++
		}
		out, err := Run(params, counts, rng.New(seed), 50000)
		if err != nil {
			return false
		}
		return out.Steps >= 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestProtocolTrial(t *testing.T) {
	p := Protocol{Params: sdParams(), K: 3}
	src := rng.New(17)
	wins := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		won, err := p.Trial(90, 45, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Errorf("plurality protocol with huge gap won only %d/%d", wins, trials)
	}
}

func TestProtocolValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := (Protocol{Params: sdParams(), K: 1}).Trial(10, 2, src); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := (Protocol{Params: sdParams(), K: 3}).Trial(2, 0, src); err == nil {
		t.Error("n < K accepted")
	}
	if _, err := (Protocol{Params: sdParams(), K: 3}).Trial(9, 8, src); err == nil {
		t.Error("gap leaving empty minorities accepted")
	}
	if (Protocol{Params: sdParams(), K: 3}).Name() == "" {
		t.Error("empty name")
	}
}

func TestTotalExtinctionPossible(t *testing.T) {
	// Pure SD competition from (1,1): both die. Winner must be -1 and
	// PluralityWon false.
	p := Params{Alpha: 1, Competition: lv.SelfDestructive}
	out, err := Run(p, []int{1, 1}, rng.New(19), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Consensus || out.Winner != -1 || out.PluralityWon || out.Survivors != 0 {
		t.Errorf("outcome = %+v, want total extinction", out)
	}
}
