package trace

import (
	"strings"
	"testing"
)

func TestTrajectoryRecordsAll(t *testing.T) {
	tr := NewTrajectory(100)
	for i := 0; i < 50; i++ {
		tr.Add(float64(i), i, 50-i)
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d, want 50", tr.Len())
	}
	pts := tr.Points()
	if pts[0] != (Point{Time: 0, X0: 0, X1: 50}) {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[49] != (Point{Time: 49, X0: 49, X1: 1}) {
		t.Errorf("last point = %+v", pts[49])
	}
}

func TestTrajectoryDownsamples(t *testing.T) {
	tr := NewTrajectory(64)
	const total = 100000
	for i := 0; i < total; i++ {
		tr.Add(float64(i), i, 0)
	}
	if tr.Len() > 64 {
		t.Errorf("Len = %d, want <= 64", tr.Len())
	}
	pts := tr.Points()
	// Points must stay time-ordered and span the run.
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("points out of order at %d: %v then %v", i, pts[i-1], pts[i])
		}
	}
	if pts[0].Time != 0 {
		t.Errorf("first kept point at t=%v, want 0", pts[0].Time)
	}
	if pts[len(pts)-1].Time < total/2 {
		t.Errorf("last kept point at t=%v, does not span the run", pts[len(pts)-1].Time)
	}
}

func TestTrajectoryMinimumSize(t *testing.T) {
	tr := NewTrajectory(1)
	for i := 0; i < 100; i++ {
		tr.Add(float64(i), 1, 1)
	}
	if tr.Len() > 16 {
		t.Errorf("Len = %d, want <= 16 (the floor)", tr.Len())
	}
}

func TestPointsIsCopy(t *testing.T) {
	tr := NewTrajectory(16)
	tr.Add(0, 1, 2)
	pts := tr.Points()
	pts[0].X0 = 999
	if tr.Points()[0].X0 != 1 {
		t.Error("Points() exposed internal storage")
	}
}

func TestRenderASCII(t *testing.T) {
	tr := NewTrajectory(100)
	for i := 0; i <= 20; i++ {
		tr.Add(float64(i), 20-i, i)
	}
	var b strings.Builder
	if err := tr.RenderASCII(&b, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("chart missing series markers:\n%s", out)
	}
	if !strings.Contains(out, "max 20") {
		t.Errorf("chart missing max label:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Header + height rows + axis + footer.
	if len(lines) < 13 {
		t.Errorf("chart has %d lines, want >= 13:\n%s", len(lines), out)
	}
}

func TestRenderASCIIErrors(t *testing.T) {
	tr := NewTrajectory(16)
	var b strings.Builder
	if err := tr.RenderASCII(&b, 40, 10); err == nil {
		t.Error("empty trajectory rendered")
	}
	tr.Add(0, 1, 1)
	if err := tr.RenderASCII(&b, 2, 2); err == nil {
		t.Error("tiny chart accepted")
	}
}

func TestRenderASCIIConstantTime(t *testing.T) {
	// All samples at the same instant must not divide by zero.
	tr := NewTrajectory(16)
	tr.Add(1, 3, 4)
	tr.Add(1, 2, 5)
	var b strings.Builder
	if err := tr.RenderASCII(&b, 20, 5); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("Sparkline(nil) = %q", got)
	}
	out := Sparkline([]float64{0, 1, 2, 3, 4})
	if len([]rune(out)) != 5 {
		t.Errorf("sparkline has %d runes, want 5", len([]rune(out)))
	}
	runes := []rune(out)
	if runes[0] != '▁' || runes[4] != '█' {
		t.Errorf("sparkline endpoints wrong: %q", out)
	}
	// All-zero input must not panic or divide by zero.
	flat := Sparkline([]float64{0, 0, 0})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline %q", flat)
	}
}
