// Package trace records population trajectories of the stochastic chains
// and renders them as ASCII charts. It gives the CLIs and examples a way to
// show the logistic growth / competitive-exclusion dynamics the paper
// describes (§1.7) without any plotting dependency.
//
// A Trajectory records (time, counts) points during a run, downsampling
// so memory stays bounded on long trajectories; RenderASCII draws the
// recorded series into a fixed-size ASCII grid, and Sparkline gives the
// one-line form. All of it is presentation only — nothing in the
// measurement pipeline
// (internal/mc, internal/consensus, internal/experiment) depends on them,
// so recording can never perturb an estimate.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one sample of a two-species trajectory.
type Point struct {
	// Time is the continuous time of the sample (or the step index for
	// jump-chain traces).
	Time float64
	// X0 and X1 are the species counts.
	X0, X1 int
}

// Trajectory is a downsampling recorder for two-species trajectories. The
// zero value is not usable; construct with NewTrajectory.
type Trajectory struct {
	maxPoints int
	points    []Point
	// stride controls downsampling: only every stride-th offered sample
	// is kept. It doubles whenever the buffer fills, so the kept points
	// always span the whole run with bounded memory.
	stride  int
	offered int
}

// NewTrajectory creates a recorder keeping at most maxPoints samples
// (minimum 16).
func NewTrajectory(maxPoints int) *Trajectory {
	if maxPoints < 16 {
		maxPoints = 16
	}
	return &Trajectory{maxPoints: maxPoints, stride: 1}
}

// Add offers a sample to the recorder.
func (tr *Trajectory) Add(t float64, x0, x1 int) {
	if tr.offered%tr.stride == 0 {
		if len(tr.points) == tr.maxPoints {
			// Compact: drop every other point and double the
			// stride.
			kept := tr.points[:0]
			for i := 0; i < len(tr.points); i += 2 {
				kept = append(kept, tr.points[i])
			}
			tr.points = kept
			tr.stride *= 2
		}
		tr.points = append(tr.points, Point{Time: t, X0: x0, X1: x1})
	}
	tr.offered++
}

// Points returns the recorded samples in time order. The returned slice is
// a copy.
func (tr *Trajectory) Points() []Point {
	out := make([]Point, len(tr.points))
	copy(out, tr.points)
	return out
}

// Len returns the number of recorded samples.
func (tr *Trajectory) Len() int { return len(tr.points) }

// RenderASCII draws the two species' counts over time as an ASCII chart of
// the given size. Species 0 is drawn with '0', species 1 with '1', and
// overlapping cells with '*'.
func (tr *Trajectory) RenderASCII(w io.Writer, width, height int) error {
	if width < 10 || height < 4 {
		return fmt.Errorf("trace: chart size %dx%d too small", width, height)
	}
	if len(tr.points) == 0 {
		return fmt.Errorf("trace: empty trajectory")
	}
	minT := tr.points[0].Time
	maxT := tr.points[len(tr.points)-1].Time
	maxY := 1
	for _, p := range tr.points {
		if p.X0 > maxY {
			maxY = p.X0
		}
		if p.X1 > maxY {
			maxY = p.X1
		}
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(t float64) int {
		if maxT == minT {
			return 0
		}
		c := int(float64(width-1) * (t - minT) / (maxT - minT))
		return clamp(c, 0, width-1)
	}
	row := func(y int) int {
		r := height - 1 - int(math.Round(float64(height-1)*float64(y)/float64(maxY)))
		return clamp(r, 0, height-1)
	}
	put := func(r, c int, ch byte) {
		switch cur := grid[r][c]; {
		case cur == ' ':
			grid[r][c] = ch
		case cur != ch:
			grid[r][c] = '*'
		}
	}
	for _, p := range tr.points {
		c := col(p.Time)
		put(row(p.X0), c, '0')
		put(row(p.X1), c, '1')
	}

	var b strings.Builder
	fmt.Fprintf(&b, "count (max %d); '0' = species 0, '1' = species 1, '*' = both\n", maxY)
	for _, line := range grid {
		b.WriteString("|")
		b.Write(line)
		b.WriteString("\n")
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	fmt.Fprintf(&b, " t in [%.4g, %.4g]\n", minT, maxT)
	_, err := io.WriteString(w, b.String())
	return err
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sparkline renders a single series of non-negative values as a one-line
// sparkline using eight block heights.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[clamp(idx, 0, len(blocks)-1)])
	}
	return b.String()
}
