// Package report turns experiment runs into durable, machine-readable
// artifacts. It is the repository's results pipeline:
//
//   - A Manifest is the canonical record of one experiment run: full
//     provenance (experiment ID, grid level, seed, worker count, wall
//     time, sweep-cache hit/miss counts, Go and module version) plus
//     every result table serialized losslessly — typed cells, not just
//     rendered strings (see experiment.Cell). cmd/experiments -report
//     writes one manifest per run.
//   - Renderers derive every human-facing form from one manifest:
//     RenderASCII reproduces cmd/experiments' terminal output
//     byte-for-byte, WriteCSVDir reproduces its -csv files, and
//     RenderMarkdown emits the provenance-headed sections that make up
//     EXPERIMENTS.md. Because all of them read the same typed cells, the
//     rendered forms can never disagree with the record.
//   - Generators produce the repository's result documentation from the
//     code itself: WriteDesign derives DESIGN.md (the experiment index)
//     from the experiment registry, and WriteExperiments derives
//     EXPERIMENTS.md (the recorded results) from a directory of
//     manifests. cmd/report is the committed command that invokes them;
//     CI regenerates DESIGN.md and fails on drift, so the generated
//     documents cannot fall out of sync with the registry.
//
// Determinism: a manifest's rendered forms depend only on its contents,
// and the experiment harness's results are bit-identical per seed, so a
// committed manifest is a reproducible claim, not a snapshot.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"lvmajority/internal/experiment"
)

// SchemaVersion identifies the manifest schema. Readers reject manifests
// written by an incompatible future schema instead of misreading them.
const SchemaVersion = 1

// Manifest is the durable record of one experiment run.
type Manifest struct {
	// SchemaVersion is the manifest schema version (SchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// ExperimentID, Title and Artifact identify the registry entry.
	ExperimentID string `json:"experiment_id"`
	Title        string `json:"title"`
	Artifact     string `json:"artifact"`
	// Grid is the effort level the run used: "quick" or "full".
	Grid string `json:"grid"`
	// Seed is the root seed; results are reproducible per seed.
	Seed uint64 `json:"seed"`
	// Workers is the resolved parallel worker count. Results are
	// worker-count independent (the determinism contract), so this is
	// performance provenance only.
	Workers int `json:"workers"`
	// WallTimeNS is the run's wall time in nanoseconds.
	WallTimeNS int64 `json:"wall_time_ns"`
	// SweepCacheHits and SweepCacheMisses count threshold-probe lookups
	// served by, respectively missing, the sweep cache during the run.
	SweepCacheHits   int64 `json:"sweep_cache_hits"`
	SweepCacheMisses int64 `json:"sweep_cache_misses"`
	// GoVersion, Module and ModuleVersion record the toolchain.
	GoVersion     string `json:"go_version"`
	Module        string `json:"module"`
	ModuleVersion string `json:"module_version"`
	// GeneratedAt is the RFC 3339 UTC timestamp of the run, when known.
	GeneratedAt string `json:"generated_at,omitempty"`
	// Tables are the run's result tables with typed cells.
	Tables []*experiment.Table `json:"tables"`
}

// RunInfo carries the per-run provenance New records in a manifest.
type RunInfo struct {
	// Seed is the root seed of the run.
	Seed uint64
	// Workers is the configured worker count; zero resolves to
	// GOMAXPROCS, mirroring experiment.Config.
	Workers int
	// Full selects the heavy (recorded) grids; false means quick.
	Full bool
	// WallTime is the measured wall time of the run.
	WallTime time.Duration
	// CacheHits and CacheMisses are the sweep-cache counter deltas
	// observed across the run (sweep.Cache.Counters).
	CacheHits, CacheMisses int64
	// Now stamps GeneratedAt; the zero time leaves it unset, which
	// golden tests rely on.
	Now time.Time
}

// New assembles the manifest for one completed experiment run.
func New(e experiment.Experiment, info RunInfo, tables []*experiment.Table) *Manifest {
	grid := "quick"
	if info.Full {
		grid = "full"
	}
	workers := info.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	module, version := buildIdentity()
	m := &Manifest{
		SchemaVersion:    SchemaVersion,
		ExperimentID:     e.ID,
		Title:            e.Title,
		Artifact:         e.Artifact,
		Grid:             grid,
		Seed:             info.Seed,
		Workers:          workers,
		WallTimeNS:       info.WallTime.Nanoseconds(),
		SweepCacheHits:   info.CacheHits,
		SweepCacheMisses: info.CacheMisses,
		GoVersion:        runtime.Version(),
		Module:           module,
		ModuleVersion:    version,
		Tables:           tables,
	}
	if !info.Now.IsZero() {
		m.GeneratedAt = info.Now.UTC().Format(time.RFC3339)
	}
	return m
}

// buildIdentity reads the main module's path and version from the embedded
// build info once per process, preferring the VCS revision over the usual
// "(devel)".
var buildIdentity = sync.OnceValues(func() (module, version string) {
	module, version = "lvmajority", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return module, version
	}
	if bi.Main.Path != "" {
		module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	var revision, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if modified == "true" {
			revision += "+dirty"
		}
		version = revision
	}
	return module, version
})

// BuildVersion returns the module path and VCS-stamped version every
// manifest records: the vcs.revision (with a "+dirty" suffix when the tree
// was modified) when the binary carries one, else the module version from
// the build info, else "unknown". The CLIs' -version flags and the server's
// /v1/healthz endpoint report the same identity, so a manifest, a binary,
// and a serving process can always be matched to one another.
func BuildVersion() (module, version string) {
	return buildIdentity()
}

// WallTime returns the recorded wall time.
func (m *Manifest) WallTime() time.Duration {
	return time.Duration(m.WallTimeNS)
}

// Validate checks the structural invariants readers depend on.
func (m *Manifest) Validate() error {
	if m.SchemaVersion != SchemaVersion {
		return fmt.Errorf("report: manifest schema version %d, want %d", m.SchemaVersion, SchemaVersion)
	}
	if m.ExperimentID == "" {
		return fmt.Errorf("report: manifest without experiment id")
	}
	if len(m.Tables) == 0 {
		return fmt.Errorf("report: manifest %s has no tables", m.ExperimentID)
	}
	for _, tbl := range m.Tables {
		if len(tbl.Columns) == 0 {
			return fmt.Errorf("report: manifest %s: table %q has no columns", m.ExperimentID, tbl.Title)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				return fmt.Errorf("report: manifest %s: table %q row has %d cells, want %d",
					m.ExperimentID, tbl.Title, len(row), len(tbl.Columns))
			}
		}
	}
	return nil
}

// SanitizeID maps an experiment ID to the filename-safe form used for
// manifest and CSV files: anything outside [A-Za-z0-9_-] becomes '_'.
func SanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, id)
}

// Filename returns the manifest filename for an experiment ID.
func Filename(id string) string {
	return SanitizeID(id) + ".json"
}

// WriteAtomic writes a file produced by generate atomically: content goes
// to path+".tmp" (creating the directory if needed) and is renamed into
// place only on success; on any failure the temp file is removed. Both
// manifest writes and the cmd/report document generators go through it.
func WriteAtomic(path string, generate func(io.Writer) error) (err error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("report: creating %s: %w", dir, err)
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("report: creating %s: %w", tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = generate(f); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("report: closing %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("report: installing %s: %w", path, err)
	}
	return nil
}

// WriteFile atomically writes the manifest as indented JSON, creating the
// directory if needed.
func (m *Manifest) WriteFile(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("report: encoding manifest %s: %w", m.ExperimentID, err)
	}
	data = append(data, '\n')
	return WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// Load reads and validates one manifest.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("report: corrupt manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return &m, nil
}

// LoadDir loads every *.json manifest under dir, ordered by the experiment
// registry's presentation order; manifests for unknown IDs sort after the
// known ones, alphabetically.
func LoadDir(dir string) ([]*Manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("report: reading manifest directory: %w", err)
	}
	var manifests []*Manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		m, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		manifests = append(manifests, m)
	}
	if len(manifests) == 0 {
		return nil, fmt.Errorf("report: no manifests under %s", dir)
	}
	order := make(map[string]int)
	for i, e := range experiment.All() {
		order[e.ID] = i
	}
	unknown := len(order)
	rank := func(m *Manifest) int {
		if r, ok := order[m.ExperimentID]; ok {
			return r
		}
		return unknown
	}
	sort.SliceStable(manifests, func(i, j int) bool {
		ri, rj := rank(manifests[i]), rank(manifests[j])
		if ri != rj {
			return ri < rj
		}
		return manifests[i].ExperimentID < manifests[j].ExperimentID
	})
	return manifests, nil
}
