package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lvmajority/internal/experiment"
)

// ASCIIHeader writes the "### ID — title / ### artifact:" block that opens
// a per-experiment section. cmd/experiments prints it before the run
// starts (so long experiments show progress) and RenderASCII reuses it, so
// header + RenderASCIIBody concatenate to exactly what RenderASCII emits.
func ASCIIHeader(w io.Writer, id, title, artifact string) error {
	_, err := fmt.Fprintf(w, "\n### %s — %s\n### artifact: %s\n\n", id, title, artifact)
	return err
}

// RenderASCII writes the per-experiment block exactly as cmd/experiments
// prints it: the ID/title/artifact header, every table in aligned ASCII
// form, and the timing footer. cmd/experiments itself renders through
// ASCIIHeader + RenderASCIIBody, so re-rendering a saved manifest
// reproduces the CLI's output byte-for-byte.
func (m *Manifest) RenderASCII(w io.Writer) error {
	if err := ASCIIHeader(w, m.ExperimentID, m.Title, m.Artifact); err != nil {
		return err
	}
	return m.RenderASCIIBody(w)
}

// RenderASCIIBody writes the tables and timing footer of the ASCII block —
// everything after ASCIIHeader.
func (m *Manifest) RenderASCIIBody(w io.Writer) error {
	for _, tbl := range m.Tables {
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "### %s finished in %v\n", m.ExperimentID, m.WallTime().Round(time.Millisecond))
	return err
}

// RenderMarkdown writes the manifest as one EXPERIMENTS.md section: a
// heading, a provenance block, and every table as a Markdown pipe table.
func (m *Manifest) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", experiment.EscapeMarkdownCell(m.ExperimentID), experiment.EscapeMarkdownCell(m.Title)); err != nil {
		return err
	}
	prov := fmt.Sprintf(
		"- **Artifact:** %s\n"+
			"- **Grid:** %s\n"+
			"- **Seed:** %d · **Workers:** %d · **Wall time:** %v\n"+
			"- **Sweep cache:** %d hits / %d misses\n"+
			"- **Toolchain:** %s, %s %s\n",
		experiment.EscapeMarkdownCell(m.Artifact), m.Grid, m.Seed, m.Workers, m.WallTime().Round(time.Millisecond),
		m.SweepCacheHits, m.SweepCacheMisses,
		m.GoVersion, m.Module, m.ModuleVersion)
	if m.GeneratedAt != "" {
		prov += fmt.Sprintf("- **Recorded:** %s\n", m.GeneratedAt)
	}
	if _, err := io.WriteString(w, prov+"\n"); err != nil {
		return err
	}
	for _, tbl := range m.Tables {
		if err := tbl.WriteMarkdown(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVDir writes one CSV file per table into dir, named
// <sanitized-id>_<index>.csv — the same files cmd/experiments -csv writes.
func (m *Manifest) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: creating CSV directory: %w", err)
	}
	for i, tbl := range m.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", SanitizeID(m.ExperimentID), i))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("report: creating %s: %w", path, err)
		}
		err = tbl.WriteCSV(f)
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return fmt.Errorf("report: writing %s: %w", path, err)
		}
	}
	return nil
}
