package report

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"lvmajority/internal/experiment"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedManifest builds a deterministic manifest (no timestamps, no
// environment-dependent provenance) for golden tests.
func fixedManifest() *Manifest {
	curve := &experiment.Table{
		Title:   "T-DEMO: threshold curve",
		Caption: "Demo caption tying the table to the paper artifact.",
		Columns: []string{"n", "target", "threshold", "found"},
	}
	curve.AddRow(256, 0.996094, 18, true)
	curve.AddRow(1024, 0.999023, 30, true)
	curve.AddRow(4096, "not found", "-", false)

	fit := &experiment.Table{
		Title:   "T-DEMO: scaling fit",
		Columns: []string{"exponent k", "constant C", "R^2"},
	}
	fit.AddRow(0.182345, 5.25, 0.9912)

	return &Manifest{
		SchemaVersion:    SchemaVersion,
		ExperimentID:     "T-DEMO",
		Title:            "Demo experiment",
		Artifact:         "Table 1 row 0; Theorem 0",
		Grid:             "quick",
		Seed:             20240506,
		Workers:          8,
		WallTimeNS:       (12*time.Second + 345*time.Millisecond).Nanoseconds(),
		SweepCacheHits:   17,
		SweepCacheMisses: 240,
		GoVersion:        "go1.24.0",
		Module:           "lvmajority",
		ModuleVersion:    "abcdef123456",
		GeneratedAt:      "2026-07-29T00:00:00Z",
		Tables:           []*experiment.Table{curve, fit},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n got:\n%s\n want:\n%s", golden, got, want)
	}
}

func TestNewRecordsProvenance(t *testing.T) {
	e, err := experiment.ByID("E-DOM")
	if err != nil {
		t.Fatal(err)
	}
	tbl := &experiment.Table{Columns: []string{"x"}}
	tbl.AddRow(1)
	now := time.Date(2026, 7, 29, 12, 0, 0, 0, time.UTC)
	m := New(e, RunInfo{
		Seed:        42,
		Workers:     0, // resolves to GOMAXPROCS
		Full:        true,
		WallTime:    3 * time.Second,
		CacheHits:   5,
		CacheMisses: 7,
		Now:         now,
	}, []*experiment.Table{tbl})
	if m.ExperimentID != "E-DOM" || m.Title != e.Title || m.Artifact != e.Artifact {
		t.Errorf("registry fields wrong: %+v", m)
	}
	if m.Grid != "full" || m.Seed != 42 || m.Workers < 1 {
		t.Errorf("run fields wrong: %+v", m)
	}
	if m.WallTime() != 3*time.Second || m.SweepCacheHits != 5 || m.SweepCacheMisses != 7 {
		t.Errorf("accounting wrong: %+v", m)
	}
	if m.GoVersion == "" || m.Module == "" || m.ModuleVersion == "" {
		t.Errorf("toolchain fields empty: %+v", m)
	}
	if m.GeneratedAt != "2026-07-29T12:00:00Z" {
		t.Errorf("GeneratedAt = %q", m.GeneratedAt)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("fresh manifest invalid: %v", err)
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	m := fixedManifest()
	path := filepath.Join(t.TempDir(), Filename(m.ExperimentID))
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Errorf("manifest not lossless:\n want %+v\n got  %+v", m, back)
	}
	render := func(m *Manifest) string {
		var b strings.Builder
		if err := m.RenderASCII(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(back) != render(m) {
		t.Error("ASCII render changed across file round trip")
	}
}

func TestValidateRejects(t *testing.T) {
	for name, corrupt := range map[string]func(*Manifest){
		"schema version": func(m *Manifest) { m.SchemaVersion = 99 },
		"missing id":     func(m *Manifest) { m.ExperimentID = "" },
		"no tables":      func(m *Manifest) { m.Tables = nil },
		"no columns":     func(m *Manifest) { m.Tables[0].Columns = nil },
		"ragged row":     func(m *Manifest) { m.Tables[0].Rows[0] = []string{"just one"} },
	} {
		m := fixedManifest()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: corrupt manifest accepted", name)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt manifest loaded")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing manifest loaded")
	}
}

func TestLoadDirRegistryOrder(t *testing.T) {
	dir := t.TempDir()
	// Write manifests in an order that differs from both alphabetical and
	// registry order; include an unknown ID, which must sort last.
	for _, id := range []string{"E-SEP", "ZZ-UNKNOWN", "T1-SD", "E-DOM"} {
		m := fixedManifest()
		m.ExperimentID = id
		if err := m.WriteFile(filepath.Join(dir, Filename(id))); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, m := range ms {
		got = append(got, m.ExperimentID)
	}
	want := []string{"T1-SD", "E-SEP", "E-DOM", "ZZ-UNKNOWN"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LoadDir order = %v, want %v", got, want)
	}

	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty manifest directory accepted")
	}
}

func TestSanitizeID(t *testing.T) {
	if got := SanitizeID("T1-SD"); got != "T1-SD" {
		t.Errorf("SanitizeID(T1-SD) = %q", got)
	}
	if got := SanitizeID("a/b c"); got != "a_b_c" {
		t.Errorf("SanitizeID(a/b c) = %q", got)
	}
	if got := Filename("E-SEP"); got != "E-SEP.json" {
		t.Errorf("Filename(E-SEP) = %q", got)
	}
}

func TestRenderMarkdownGolden(t *testing.T) {
	var b strings.Builder
	if err := fixedManifest().RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "manifest_markdown.golden", b.String())
}

func TestRenderASCIIGolden(t *testing.T) {
	var b strings.Builder
	if err := fixedManifest().RenderASCII(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "manifest_ascii.golden", b.String())
}

func TestWriteCSVDirMatchesTableCSV(t *testing.T) {
	m := fixedManifest()
	dir := t.TempDir()
	if err := m.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	for i, tbl := range m.Tables {
		var want strings.Builder
		if err := tbl.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, "T-DEMO_"+string(rune('0'+i))+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want.String() {
			t.Errorf("table %d CSV differs", i)
		}
	}
}

// fakeRegistry is a fixed two-entry registry so the DESIGN.md golden does
// not churn with the real one (drift against the real registry is CI's
// docs-sync job, not this test).
func fakeRegistry() []experiment.Experiment {
	return []experiment.Experiment{
		{
			ID:        "T-DEMO",
			Title:     "Demo experiment",
			Artifact:  "Table 1 row 0; Theorem 0",
			QuickGrid: "n in {256..4096}, 1k trials",
			FullGrid:  "n in {256..16384}, 10k trials",
		},
		{
			ID:        "E-PIPE",
			Title:     "Pipe | in title",
			Artifact:  "Section 0",
			QuickGrid: "one cell",
			FullGrid:  "two cells",
		},
	}
}

func TestWriteDesignGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteDesign(&b, fakeRegistry()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "design.md.golden", b.String())
}

// TestWriteDesignRealRegistry sanity-checks the real generated index:
// every registered ID appears, and the godoc-referenced sections exist.
func TestWriteDesignRealRegistry(t *testing.T) {
	var b strings.Builder
	if err := WriteDesign(&b, experiment.All()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, e := range experiment.All() {
		if !strings.Contains(out, "| "+e.ID+" |") {
			t.Errorf("generated DESIGN.md missing experiment %s", e.ID)
		}
	}
	for _, section := range []string{"## §1", "## §2", "## §3", "## §4"} {
		if !strings.Contains(out, section) {
			t.Errorf("generated DESIGN.md missing section %q", section)
		}
	}
	// The package docs cite DESIGN.md §2 for the Andaur reconstruction
	// caveat and §3 for the index; keep those anchors real.
	for _, anchor := range []string{"Andaur et al. reconstruction", "exact constants", "Experiment index"} {
		if !strings.Contains(out, anchor) {
			t.Errorf("generated DESIGN.md missing anchor %q", anchor)
		}
	}
}

func TestWriteExperimentsGolden(t *testing.T) {
	second := fixedManifest()
	second.ExperimentID = "E-PIPE"
	second.Title = "Pipe | in title"
	second.GeneratedAt = ""
	var b strings.Builder
	if err := WriteExperiments(&b, []*Manifest{fixedManifest(), second}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "experiments.md.golden", b.String())

	if err := WriteExperiments(&strings.Builder{}, nil); err == nil {
		t.Error("empty manifest list accepted")
	}
}
