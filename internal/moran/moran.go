// Package moran implements the two-type Moran process, the classical
// fixed-size birth–death model of population genetics, together with its
// exact fixation-probability and absorption-time formulas.
//
// The Moran process is the natural static-population counterpart of the
// paper's Lotka–Volterra chains: in every step one individual reproduces
// (chosen proportionally to fitness) and one individual dies (chosen
// uniformly), so the population size n never changes. Its embedded jump
// chain is a gambler's-ruin random walk with constant up-probability
// r/(1+r), which yields closed forms for the fixation probability and the
// expected number of jumps. The neutral case (r = 1) fixes the initial
// majority with probability exactly a/n — the same martingale behaviour the
// paper proves for LV systems with no competition (Table 1 row 5) and with
// balanced intra/interspecific competition (Theorems 20 and 23) — making
// the package both a baseline protocol and an analytic test oracle.
package moran

import (
	"fmt"
	"math"

	"lvmajority/internal/rng"
)

// Params configures a two-type Moran process.
type Params struct {
	// Fitness is the relative reproductive fitness r of type 0 against
	// type 1 (whose fitness is 1). r = 1 is the neutral process.
	Fitness float64
}

// Validate reports whether the parameters are well formed.
func (p Params) Validate() error {
	if !(p.Fitness > 0) || math.IsInf(p.Fitness, 0) {
		return fmt.Errorf("moran: fitness must be positive and finite, got %v", p.Fitness)
	}
	return nil
}

// Outcome describes one Moran execution run to absorption.
type Outcome struct {
	// Fixed0 reports whether type 0 took over the whole population.
	Fixed0 bool
	// JumpSteps is the number of state-changing steps (one individual
	// replaced by one of the other type).
	JumpSteps int
	// MoranSteps is the total number of Moran steps including holding
	// steps, in which the sampled offspring replaces an individual of
	// its own type and the state does not change.
	MoranSteps int64
}

// maxJumpSteps caps executions as a safety net; the expected number of
// jumps is at most a(n−a) ≤ n²/4, so the cap is never reached in practice.
const maxJumpSteps = 1 << 40

// Chain is a running Moran process, advanced one state-changing (jump)
// step at a time on the embedded jump chain: from any mixed state the next
// state-changing step increments the type-0 count with probability r/(1+r)
// and decrements it otherwise, independent of the state. Holding steps are
// accounted for in aggregate by sampling their geometric counts, so
// MoranSteps has the exact distribution of the full process. A Chain is not
// safe for concurrent use.
type Chain struct {
	params   Params
	n        int
	initialA int

	i          int
	jumpSteps  int
	moranSteps int64
	src        *rng.Source
}

// NewChain creates a Moran chain with population size n and a initial
// individuals of type 0.
func NewChain(p Params, n, a int, src *rng.Source) (*Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 || a < 0 || a > n {
		return nil, fmt.Errorf("moran: invalid initial state a=%d, n=%d", a, n)
	}
	if src == nil {
		return nil, fmt.Errorf("moran: nil random source")
	}
	return &Chain{params: p, n: n, initialA: a, i: a, src: src}, nil
}

// Reset returns the chain to its initial state with a fresh random stream.
func (c *Chain) Reset(src *rng.Source) {
	c.i = c.initialA
	c.jumpSteps = 0
	c.moranSteps = 0
	c.src = src
}

// Count returns the current number of type-0 individuals.
func (c *Chain) Count() int { return c.i }

// N returns the population size.
func (c *Chain) N() int { return c.n }

// JumpSteps returns the number of state-changing steps taken so far.
func (c *Chain) JumpSteps() int { return c.jumpSteps }

// MoranSteps returns the total number of Moran steps so far, including the
// holding steps accounted in aggregate.
func (c *Chain) MoranSteps() int64 { return c.moranSteps }

// Absorbed reports whether one type has fixed, and if so whether it was
// type 0.
func (c *Chain) Absorbed() (done, fixed0 bool) {
	return c.i == 0 || c.i == c.n, c.i == c.n
}

// Step advances the chain by one jump step. It reports whether the type-0
// count went up, and ok = false without changing the state when the chain
// is already absorbed or the jump-step safety cap is exceeded.
func (c *Chain) Step() (up, ok bool) {
	if c.i <= 0 || c.i >= c.n || c.jumpSteps >= maxJumpSteps {
		return false, false
	}
	r := c.params.Fitness
	// Probability that a single Moran step changes the state.
	fi := float64(c.i)
	fn := float64(c.n)
	move := (r + 1) * fi * (fn - fi) / ((r*fi + fn - fi) * fn)
	// Geometric(move) counts the holding steps before the state change;
	// +1 for the changing step itself.
	c.moranSteps += int64(c.src.Geometric(move)) + 1
	c.jumpSteps++
	if c.src.Bernoulli(r / (1 + r)) {
		c.i++
		return true, true
	}
	c.i--
	return false, true
}

// Run simulates the Moran process with population size n starting from a
// individuals of type 0 until one type is fixed.
func Run(p Params, n, a int, src *rng.Source) (Outcome, error) {
	c, err := NewChain(p, n, a, src)
	if err != nil {
		return Outcome{}, err
	}
	for {
		done, fixed0 := c.Absorbed()
		if done {
			return Outcome{Fixed0: fixed0, JumpSteps: c.jumpSteps, MoranSteps: c.moranSteps}, nil
		}
		if _, ok := c.Step(); !ok {
			return Outcome{}, fmt.Errorf("moran: exceeded %d jump steps at n=%d", maxJumpSteps, n)
		}
	}
}

// FixationProbability returns the exact probability that type 0, with
// relative fitness r and initial count a in a population of size n, takes
// over the population: (1 − r^−a) / (1 − r^−n), with the neutral limit a/n.
func FixationProbability(r float64, n, a int) float64 {
	switch {
	case n < 1 || a < 0 || a > n:
		return math.NaN()
	case a == 0:
		return 0
	case a == n:
		return 1
	}
	if r == 1 {
		return float64(a) / float64(n)
	}
	// Compute with expm1/log for numerical stability at r near 1 and
	// for large exponents.
	lr := math.Log(r)
	num := -math.Expm1(-float64(a) * lr)
	den := -math.Expm1(-float64(n) * lr)
	if den == 0 {
		return float64(a) / float64(n)
	}
	return num / den
}

// ExpectedJumpSteps returns the exact expected number of state-changing
// steps before absorption, i.e. the expected duration of the embedded
// gambler's-ruin walk from a with boundaries 0 and n and up-probability
// p = r/(1+r). For the neutral process this is a(n−a).
func ExpectedJumpSteps(r float64, n, a int) float64 {
	if n < 1 || a < 0 || a > n {
		return math.NaN()
	}
	if a == 0 || a == n {
		return 0
	}
	if r == 1 {
		return float64(a) * float64(n-a)
	}
	p := r / (1 + r)
	q := 1 - p
	// Standard biased gambler's-ruin duration:
	//   E[T] = a/(q−p) − n/(q−p) · (1−(q/p)^a)/(1−(q/p)^n).
	ratio := q / p
	fa, fn := float64(a), float64(n)
	frac := -math.Expm1(fa*math.Log(ratio)) / -math.Expm1(fn*math.Log(ratio))
	return fa/(q-p) - fn/(q-p)*frac
}

// Protocol adapts the Moran process to the consensus.Protocol interface:
// a trial starts with a = (n+Δ)/2 individuals of type 0 (the initial
// majority) and succeeds iff type 0 fixes.
type Protocol struct {
	// Fitness is the relative fitness of the initial majority; 1 is
	// neutral.
	Fitness float64
}

// Name implements consensus.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("Moran process (r=%g)", p.Fitness)
}

// Trial implements consensus.Protocol.
func (p *Protocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if n < 2 {
		return false, fmt.Errorf("moran: population %d too small", n)
	}
	if delta < 0 || delta > n-2 || (n-delta)%2 != 0 {
		return false, fmt.Errorf("moran: infeasible gap %d for n=%d", delta, n)
	}
	a := n - (n-delta)/2
	out, err := Run(Params{Fitness: p.Fitness}, n, a, src)
	if err != nil {
		return false, err
	}
	return out.Fixed0, nil
}
