// Package moran implements the two-type Moran process, the classical
// fixed-size birth–death model of population genetics, together with its
// exact fixation-probability and absorption-time formulas.
//
// The Moran process is the natural static-population counterpart of the
// paper's Lotka–Volterra chains: in every step one individual reproduces
// (chosen proportionally to fitness) and one individual dies (chosen
// uniformly), so the population size n never changes. Its embedded jump
// chain is a gambler's-ruin random walk with constant up-probability
// r/(1+r), which yields closed forms for the fixation probability and the
// expected number of jumps. The neutral case (r = 1) fixes the initial
// majority with probability exactly a/n — the same martingale behaviour the
// paper proves for LV systems with no competition (Table 1 row 5) and with
// balanced intra/interspecific competition (Theorems 20 and 23) — making
// the package both a baseline protocol and an analytic test oracle.
package moran

import (
	"fmt"
	"math"

	"lvmajority/internal/rng"
)

// Params configures a two-type Moran process.
type Params struct {
	// Fitness is the relative reproductive fitness r of type 0 against
	// type 1 (whose fitness is 1). r = 1 is the neutral process.
	Fitness float64
}

// Validate reports whether the parameters are well formed.
func (p Params) Validate() error {
	if !(p.Fitness > 0) || math.IsInf(p.Fitness, 0) {
		return fmt.Errorf("moran: fitness must be positive and finite, got %v", p.Fitness)
	}
	return nil
}

// Outcome describes one Moran execution run to absorption.
type Outcome struct {
	// Fixed0 reports whether type 0 took over the whole population.
	Fixed0 bool
	// JumpSteps is the number of state-changing steps (one individual
	// replaced by one of the other type).
	JumpSteps int
	// MoranSteps is the total number of Moran steps including holding
	// steps, in which the sampled offspring replaces an individual of
	// its own type and the state does not change.
	MoranSteps int64
}

// maxJumpSteps caps executions as a safety net; the expected number of
// jumps is at most a(n−a) ≤ n²/4, so the cap is never reached in practice.
const maxJumpSteps = 1 << 40

// Run simulates the Moran process with population size n starting from a
// individuals of type 0 until one type is fixed.
//
// The simulation works on the embedded jump chain: from any mixed state the
// next state-changing step increments the type-0 count with probability
// r/(1+r) and decrements it otherwise, independent of the state. Holding
// steps are accounted for in aggregate by sampling their geometric counts,
// so Outcome.MoranSteps has the exact distribution of the full process.
func Run(p Params, n, a int, src *rng.Source) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	if n < 1 || a < 0 || a > n {
		return Outcome{}, fmt.Errorf("moran: invalid initial state a=%d, n=%d", a, n)
	}
	r := p.Fitness
	up := r / (1 + r)
	out := Outcome{}
	i := a
	for i > 0 && i < n {
		if out.JumpSteps >= maxJumpSteps {
			return Outcome{}, fmt.Errorf("moran: exceeded %d jump steps at n=%d", maxJumpSteps, n)
		}
		// Probability that a single Moran step changes the state.
		fi := float64(i)
		fn := float64(n)
		move := (r + 1) * fi * (fn - fi) / ((r*fi + fn - fi) * fn)
		// Geometric(move) counts the holding steps before the state
		// change; +1 for the changing step itself.
		out.MoranSteps += int64(src.Geometric(move)) + 1
		out.JumpSteps++
		if src.Bernoulli(up) {
			i++
		} else {
			i--
		}
	}
	out.Fixed0 = i == n
	return out, nil
}

// FixationProbability returns the exact probability that type 0, with
// relative fitness r and initial count a in a population of size n, takes
// over the population: (1 − r^−a) / (1 − r^−n), with the neutral limit a/n.
func FixationProbability(r float64, n, a int) float64 {
	switch {
	case n < 1 || a < 0 || a > n:
		return math.NaN()
	case a == 0:
		return 0
	case a == n:
		return 1
	}
	if r == 1 {
		return float64(a) / float64(n)
	}
	// Compute with expm1/log for numerical stability at r near 1 and
	// for large exponents.
	lr := math.Log(r)
	num := -math.Expm1(-float64(a) * lr)
	den := -math.Expm1(-float64(n) * lr)
	if den == 0 {
		return float64(a) / float64(n)
	}
	return num / den
}

// ExpectedJumpSteps returns the exact expected number of state-changing
// steps before absorption, i.e. the expected duration of the embedded
// gambler's-ruin walk from a with boundaries 0 and n and up-probability
// p = r/(1+r). For the neutral process this is a(n−a).
func ExpectedJumpSteps(r float64, n, a int) float64 {
	if n < 1 || a < 0 || a > n {
		return math.NaN()
	}
	if a == 0 || a == n {
		return 0
	}
	if r == 1 {
		return float64(a) * float64(n-a)
	}
	p := r / (1 + r)
	q := 1 - p
	// Standard biased gambler's-ruin duration:
	//   E[T] = a/(q−p) − n/(q−p) · (1−(q/p)^a)/(1−(q/p)^n).
	ratio := q / p
	fa, fn := float64(a), float64(n)
	frac := -math.Expm1(fa*math.Log(ratio)) / -math.Expm1(fn*math.Log(ratio))
	return fa/(q-p) - fn/(q-p)*frac
}

// Protocol adapts the Moran process to the consensus.Protocol interface:
// a trial starts with a = (n+Δ)/2 individuals of type 0 (the initial
// majority) and succeeds iff type 0 fixes.
type Protocol struct {
	// Fitness is the relative fitness of the initial majority; 1 is
	// neutral.
	Fitness float64
}

// Name implements consensus.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("Moran process (r=%g)", p.Fitness)
}

// Trial implements consensus.Protocol.
func (p *Protocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if n < 2 {
		return false, fmt.Errorf("moran: population %d too small", n)
	}
	if delta < 0 || delta > n-2 || (n-delta)%2 != 0 {
		return false, fmt.Errorf("moran: infeasible gap %d for n=%d", delta, n)
	}
	a := n - (n-delta)/2
	out, err := Run(Params{Fitness: p.Fitness}, n, a, src)
	if err != nil {
		return false, err
	}
	return out.Fixed0, nil
}
