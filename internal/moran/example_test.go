package moran_test

import (
	"fmt"

	"lvmajority/internal/moran"
	"lvmajority/internal/rng"
)

// The exact fixation probability: neutral drift gives a/n, while even a 5%
// fitness advantage nearly guarantees fixation from a minority of 10% in a
// population of 500.
func ExampleFixationProbability() {
	fmt.Printf("neutral, a=300/500:      %.3f\n", moran.FixationProbability(1, 500, 300))
	fmt.Printf("r=1.05, a=50/500:        %.3f\n", moran.FixationProbability(1.05, 500, 50))
	// Output:
	// neutral, a=300/500:      0.600
	// r=1.05, a=50/500:        0.913
}

// Simulating one Moran trajectory to absorption.
func ExampleRun() {
	out, err := moran.Run(moran.Params{Fitness: 2}, 100, 30, rng.New(7))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("type 0 fixed: %v\n", out.Fixed0)
	fmt.Printf("jumps <= total steps: %v\n", int64(out.JumpSteps) <= out.MoranSteps)
	// Output:
	// type 0 fixed: true
	// jumps <= total steps: true
}
