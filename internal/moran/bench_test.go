package moran

import (
	"testing"

	"lvmajority/internal/rng"
)

// BenchmarkRunNeutral measures one neutral Moran trajectory to absorption
// at n = 1000 (expected a(n−a) ≈ 250k jump steps from a tie-ish start).
func BenchmarkRunNeutral(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Params{Fitness: 1}, 1000, 500, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSelective measures an r = 1.5 trajectory, which absorbs much
// faster thanks to drift.
func BenchmarkRunSelective(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Params{Fitness: 1.5}, 1000, 500, src); err != nil {
			b.Fatal(err)
		}
	}
}
