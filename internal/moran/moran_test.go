package moran

import (
	"math"
	"testing"
	"testing/quick"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func TestParamsValidate(t *testing.T) {
	for _, r := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := (Params{Fitness: r}).Validate(); err == nil {
			t.Errorf("fitness %v accepted", r)
		}
	}
	if err := (Params{Fitness: 1}).Validate(); err != nil {
		t.Errorf("neutral fitness rejected: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Run(Params{Fitness: 1}, 0, 0, src); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(Params{Fitness: 1}, 10, 11, src); err == nil {
		t.Error("a > n accepted")
	}
	if _, err := Run(Params{Fitness: 1}, 10, -1, src); err == nil {
		t.Error("a < 0 accepted")
	}
}

func TestRunAbsorbingStarts(t *testing.T) {
	src := rng.New(2)
	out, err := Run(Params{Fitness: 1}, 10, 10, src)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fixed0 || out.JumpSteps != 0 || out.MoranSteps != 0 {
		t.Errorf("start at fixation: %+v", out)
	}
	out, err = Run(Params{Fitness: 1}, 10, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fixed0 || out.JumpSteps != 0 {
		t.Errorf("start at extinction: %+v", out)
	}
}

func TestFixationProbabilityBoundaries(t *testing.T) {
	for _, r := range []float64{0.5, 1, 2} {
		if got := FixationProbability(r, 50, 0); got != 0 {
			t.Errorf("r=%g: rho(0) = %g, want 0", r, got)
		}
		if got := FixationProbability(r, 50, 50); got != 1 {
			t.Errorf("r=%g: rho(n) = %g, want 1", r, got)
		}
	}
	if !math.IsNaN(FixationProbability(1, 10, 11)) {
		t.Error("invalid state did not return NaN")
	}
}

func TestFixationProbabilityNeutral(t *testing.T) {
	for _, tc := range []struct{ n, a int }{{10, 3}, {100, 60}, {7, 7}} {
		want := float64(tc.a) / float64(tc.n)
		if got := FixationProbability(1, tc.n, tc.a); math.Abs(got-want) > 1e-12 {
			t.Errorf("neutral rho(%d/%d) = %g, want %g", tc.a, tc.n, got, want)
		}
	}
}

// TestFixationProbabilityContinuityAtNeutral checks that the general
// formula converges to the neutral limit a/n as r → 1, the regime where
// naive evaluation of (1−r^−a)/(1−r^−n) loses all precision.
func TestFixationProbabilityContinuityAtNeutral(t *testing.T) {
	const n, a = 1000, 700
	want := FixationProbability(1, n, a)
	for _, eps := range []float64{1e-6, 1e-9, 1e-12} {
		for _, r := range []float64{1 + eps, 1 - eps} {
			got := FixationProbability(r, n, a)
			if math.Abs(got-want) > 1e-3 {
				t.Errorf("rho(r=%v) = %v, far from neutral %v", r, got, want)
			}
		}
	}
}

// TestFixationProbabilityMonotone checks monotonicity in both the initial
// count and the fitness via testing/quick.
func TestFixationProbabilityMonotone(t *testing.T) {
	inCount := func(seed uint8) bool {
		n := 2 + int(seed%64)
		r := []float64{0.5, 1, 3}[seed%3]
		prev := 0.0
		for a := 0; a <= n; a++ {
			cur := FixationProbability(r, n, a)
			if cur < prev-1e-12 || cur < 0 || cur > 1 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(inCount, nil); err != nil {
		t.Errorf("not monotone in a: %v", err)
	}
	inFitness := func(seed uint8) bool {
		n := 3 + int(seed%40)
		a := 1 + int(seed)%(n-1)
		prev := 0.0
		for _, r := range []float64{0.25, 0.5, 1, 2, 4, 8} {
			cur := FixationProbability(r, n, a)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(inFitness, nil); err != nil {
		t.Errorf("not monotone in r: %v", err)
	}
}

// TestRunMatchesExactFixation verifies the simulator against the closed
// form in neutral, advantageous, and deleterious regimes.
func TestRunMatchesExactFixation(t *testing.T) {
	cases := []struct {
		name string
		r    float64
		n, a int
	}{
		{"neutral", 1, 100, 60},
		{"advantageous", 2, 60, 5},
		{"deleterious", 0.8, 60, 30},
	}
	const trials = 4000
	src := rng.New(77)
	for _, tc := range cases {
		fixed := 0
		for i := 0; i < trials; i++ {
			out, err := Run(Params{Fitness: tc.r}, tc.n, tc.a, src)
			if err != nil {
				t.Fatal(err)
			}
			if out.Fixed0 {
				fixed++
			}
		}
		est, err := stats.WilsonInterval(fixed, trials, stats.Z99)
		if err != nil {
			t.Fatal(err)
		}
		want := FixationProbability(tc.r, tc.n, tc.a)
		if want < est.Lo || want > est.Hi {
			t.Errorf("%s: CI [%.4f, %.4f] misses exact %.4f", tc.name, est.Lo, est.Hi, want)
		}
	}
}

func TestExpectedJumpStepsNeutral(t *testing.T) {
	if got := ExpectedJumpSteps(1, 100, 30); got != 30*70 {
		t.Errorf("neutral expected jumps = %g, want %d", got, 30*70)
	}
	if got := ExpectedJumpSteps(1, 10, 0); got != 0 {
		t.Errorf("absorbed start has expected jumps %g", got)
	}
}

// TestExpectedJumpStepsMatchesSimulation validates the biased
// gambler's-ruin duration formula against the simulator.
func TestExpectedJumpStepsMatchesSimulation(t *testing.T) {
	cases := []struct {
		r    float64
		n, a int
	}{
		{1, 40, 10},
		{2, 40, 10},
		{0.5, 40, 30},
	}
	const trials = 3000
	src := rng.New(88)
	for _, tc := range cases {
		var acc stats.Running
		for i := 0; i < trials; i++ {
			out, err := Run(Params{Fitness: tc.r}, tc.n, tc.a, src)
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(float64(out.JumpSteps))
		}
		want := ExpectedJumpSteps(tc.r, tc.n, tc.a)
		tol := 5 * acc.StdErr()
		if math.Abs(acc.Mean()-want) > tol {
			t.Errorf("r=%g a=%d: mean jumps %.1f vs exact %.1f (tol %.1f)",
				tc.r, tc.a, acc.Mean(), want, tol)
		}
	}
}

// TestMoranStepsDominateJumpSteps checks the holding-step accounting: the
// total step count includes every jump plus a non-negative number of
// holding steps.
func TestMoranStepsDominateJumpSteps(t *testing.T) {
	src := rng.New(9)
	for i := 0; i < 50; i++ {
		out, err := Run(Params{Fitness: 1.5}, 30, 10, src)
		if err != nil {
			t.Fatal(err)
		}
		if out.MoranSteps < int64(out.JumpSteps) {
			t.Fatalf("MoranSteps %d < JumpSteps %d", out.MoranSteps, out.JumpSteps)
		}
	}
}

func TestProtocolValidation(t *testing.T) {
	p := &Protocol{Fitness: 1}
	src := rng.New(1)
	if _, err := p.Trial(1, 0, src); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := p.Trial(100, 3, src); err == nil {
		t.Error("parity violation accepted")
	}
	if _, err := p.Trial(100, 20, src); err != nil {
		t.Errorf("feasible trial rejected: %v", err)
	}
}

// TestProtocolNeutralWinProbability ties the protocol adapter back to the
// closed form: with gap Δ the majority starts at a = (n+Δ)/2 and must win
// with probability a/n — a linear, not high-probability, amplifier, exactly
// like the paper's no-competition LV regime.
func TestProtocolNeutralWinProbability(t *testing.T) {
	const (
		n      = 100
		delta  = 20
		trials = 4000
	)
	p := &Protocol{Fitness: 1}
	src := rng.New(4)
	wins := 0
	for i := 0; i < trials; i++ {
		ok, err := p.Trial(n, delta, src)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			wins++
		}
	}
	est, err := stats.WilsonInterval(wins, trials, stats.Z99)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n+delta) / 2 / float64(n)
	if want < est.Lo || want > est.Hi {
		t.Errorf("CI [%.4f, %.4f] misses a/n = %.4f", est.Lo, est.Hi, want)
	}
}

func TestProtocolDeterministic(t *testing.T) {
	p := &Protocol{Fitness: 1.2}
	for seed := uint64(0); seed < 10; seed++ {
		r1, err1 := p.Trial(200, 10, rng.New(seed))
		r2, err2 := p.Trial(200, 10, rng.New(seed))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1 != r2 {
			t.Fatalf("seed %d: non-deterministic trial", seed)
		}
	}
}
