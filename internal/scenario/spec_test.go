package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleSpecs returns one representative valid spec per task, exercising
// every model kind.
func sampleSpecs() map[string]Spec {
	lvModel := &Model{Kind: ModelLV, LV: &LVModel{
		Beta: 1, Death: 1, Alpha0: 1, Alpha1: 1, Competition: "sd", Label: "lv-sd",
	}}
	protoModel := &Model{Kind: ModelProtocol, Protocol: &ProtocolModel{Name: "3-state-am", Kernel: KernelPerEvent}}
	crnModel := &Model{Kind: ModelCRN, CRN: &CRNModel{Text: "X0 -> 2 X0 @ 1\nX0 + X1 -> 0 @ 1\nX1 -> 2 X1 @ 1\nX0 -> 0 @ 1\nX1 -> 0 @ 1\n"}}

	estimate := New(TaskEstimate)
	estimate.Model = lvModel
	estimate.Seed = 7
	estimate.Estimate = &EstimateSpec{N: 100, Delta: 20, Trials: 500}

	threshold := New(TaskThreshold)
	threshold.Model = protoModel
	threshold.Seed = 11
	threshold.Threshold = &ThresholdSpec{N: 128, Trials: 400}

	sweepSpec := New(TaskSweep)
	sweepSpec.Model = crnModel
	sweepSpec.Seed = 1
	sweepSpec.Workers = 2
	sweepSpec.Cache = &CacheSpec{Policy: CacheMemory}
	sweepSpec.Sweep = &SweepSpec{Grid: []int{64, 128}, Trials: 300, Target: 0.9, Lanes: 2}

	simulate := New(TaskSimulate)
	simulate.Model = lvModel
	simulate.Seed = 1
	simulate.Simulate = &SimulateSpec{Runs: 50, A: 60, B: 40}

	exactSpec := New(TaskExact)
	exactSpec.Model = lvModel
	exactSpec.Exact = &ExactSpec{A: 10, B: 5, Steps: true}

	expSpec := New(TaskExperiment)
	expSpec.Seed = 20240506
	expSpec.Experiment = &ExperimentSpec{ID: "E-DOM"}

	reportSpec := New(TaskReport)
	reportSpec.Report = &ReportSpec{Design: "DESIGN.md"}

	return map[string]Spec{
		"estimate":   estimate,
		"threshold":  threshold,
		"sweep":      sweepSpec,
		"simulate":   simulate,
		"exact":      exactSpec,
		"experiment": expSpec,
		"report":     reportSpec,
	}
}

func TestSpecRoundTripLossless(t *testing.T) {
	for name, spec := range sampleSpecs() {
		t.Run(name, func(t *testing.T) {
			if err := spec.Validate(); err != nil {
				t.Fatalf("sample invalid: %v", err)
			}
			data, err := spec.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("round trip failed: %v\n%s", err, data)
			}
			if !reflect.DeepEqual(spec, back) {
				t.Errorf("round trip not lossless:\nhave %+v\nwant %+v", back, spec)
			}
			// A second trip must be byte-stable (canonical form).
			data2, err := back.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(data2) {
				t.Errorf("re-encoding changed bytes:\n%s\nvs\n%s", data, data2)
			}
		})
	}
}

func TestSpecUnknownFieldRejected(t *testing.T) {
	spec := sampleSpecs()["estimate"]
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Inject an unknown top-level field and an unknown nested field.
	corrupt := strings.Replace(string(data), `"version"`, `"bogus":1,"version"`, 1)
	if _, err := ParseSpec([]byte(corrupt)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	corrupt = strings.Replace(string(data), `"n"`, `"nn":1,"n"`, 1)
	if _, err := ParseSpec([]byte(corrupt)); err == nil {
		t.Error("unknown nested field accepted")
	}
	if _, err := ParseSpec([]byte(string(data) + "{}")); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestSpecVersionRejected(t *testing.T) {
	spec := sampleSpecs()["estimate"]
	spec.Version = SpecVersion + 1
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec(data); err == nil {
		t.Error("future spec version accepted")
	}
}

func TestSpecValidateRejects(t *testing.T) {
	lvModel := &Model{Kind: ModelLV, LV: &LVModel{Beta: 1, Death: 1, Alpha0: 1, Alpha1: 1, Competition: "sd"}}
	cases := map[string]func() Spec{
		"no task options": func() Spec {
			s := New(TaskEstimate)
			s.Model = lvModel
			return s
		},
		"wrong task options": func() Spec {
			s := New(TaskEstimate)
			s.Model = lvModel
			s.Estimate = &EstimateSpec{N: 100, Delta: 20}
			s.Sweep = &SweepSpec{Grid: []int{64}}
			return s
		},
		"missing model": func() Spec {
			s := New(TaskEstimate)
			s.Estimate = &EstimateSpec{N: 100, Delta: 20}
			return s
		},
		"model on experiment": func() Spec {
			s := New(TaskExperiment)
			s.Model = lvModel
			s.Experiment = &ExperimentSpec{ID: "E-DOM"}
			return s
		},
		"parity mismatch": func() Spec {
			s := New(TaskEstimate)
			s.Model = lvModel
			s.Estimate = &EstimateSpec{N: 100, Delta: 19}
			return s
		},
		"bad competition": func() Spec {
			s := New(TaskEstimate)
			s.Model = &Model{Kind: ModelLV, LV: &LVModel{Beta: 1, Death: 1, Alpha0: 1, Alpha1: 1, Competition: "???"}}
			s.Estimate = &EstimateSpec{N: 100, Delta: 20}
			return s
		},
		"unknown protocol": func() Spec {
			s := New(TaskThreshold)
			s.Model = &Model{Kind: ModelProtocol, Protocol: &ProtocolModel{Name: "bogus"}}
			s.Threshold = &ThresholdSpec{N: 128}
			return s
		},
		"unknown kernel": func() Spec {
			s := New(TaskThreshold)
			s.Model = &Model{Kind: ModelProtocol, Protocol: &ProtocolModel{Name: "voter", Kernel: "warp"}}
			s.Threshold = &ThresholdSpec{N: 128}
			return s
		},
		"kernel on non-population protocol": func() Spec {
			// "voter" is a gossip protocol: a valid kernel name still
			// cannot apply, and Validate (not Run) must say so.
			s := New(TaskThreshold)
			s.Model = &Model{Kind: ModelProtocol, Protocol: &ProtocolModel{Name: "voter", Kernel: KernelBatch}}
			s.Threshold = &ThresholdSpec{N: 128}
			return s
		},
		"bad crn text": func() Spec {
			s := New(TaskThreshold)
			s.Model = &Model{Kind: ModelCRN, CRN: &CRNModel{Text: "not a network"}}
			s.Threshold = &ThresholdSpec{N: 128}
			return s
		},
		"bad engine": func() Spec {
			s := New(TaskThreshold)
			s.Model = &Model{Kind: ModelCRN, CRN: &CRNModel{Text: "X -> 0 @ 1\n", Engine: "quantum"}}
			s.Threshold = &ThresholdSpec{N: 128}
			return s
		},
		"empty sweep grid": func() Spec {
			s := New(TaskSweep)
			s.Model = lvModel
			s.Sweep = &SweepSpec{}
			return s
		},
		"cache path without file policy": func() Spec {
			s := New(TaskSweep)
			s.Model = lvModel
			s.Cache = &CacheSpec{Policy: CacheMemory, Path: "x.json"}
			s.Sweep = &SweepSpec{Grid: []int{64}}
			return s
		},
		"file cache without path": func() Spec {
			s := New(TaskSweep)
			s.Model = lvModel
			s.Cache = &CacheSpec{Policy: CacheFile}
			s.Sweep = &SweepSpec{Grid: []int{64}}
			return s
		},
		"simulate zero runs": func() Spec {
			s := New(TaskSimulate)
			s.Model = lvModel
			s.Simulate = &SimulateSpec{A: 10, B: 10}
			return s
		},
		"exact on protocol model": func() Spec {
			s := New(TaskExact)
			s.Model = &Model{Kind: ModelProtocol, Protocol: &ProtocolModel{Name: "voter"}}
			s.Exact = &ExactSpec{A: 5, B: 5}
			return s
		},
		"experiment without id": func() Spec {
			s := New(TaskExperiment)
			s.Experiment = &ExperimentSpec{}
			return s
		},
		"report with nothing to do": func() Spec {
			s := New(TaskReport)
			s.Report = &ReportSpec{}
			return s
		},
		"report render csv without out": func() Spec {
			s := New(TaskReport)
			s.Report = &ReportSpec{Render: "csv", Manifest: "m.json"}
			return s
		},
	}
	for name, build := range cases {
		s := build()
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSpecsArray(t *testing.T) {
	a := sampleSpecs()["estimate"]
	b := sampleSpecs()["simulate"]
	data, err := marshalSpecList([]Spec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Task != TaskEstimate || specs[1].Task != TaskSimulate {
		t.Errorf("parsed %d specs, tasks %v %v", len(specs), specs[0].Task, specs[1].Task)
	}
	if _, err := ParseSpecs([]byte("[]")); err == nil {
		t.Error("empty spec list accepted")
	}
}

func TestLocalPaths(t *testing.T) {
	s := New(TaskExperiment)
	s.Experiment = &ExperimentSpec{ID: "E-DOM", CSVDir: "out", ReportDir: "manifests"}
	s.Cache = &CacheSpec{Policy: CacheFile, Path: "probes.json"}
	got := s.LocalPaths()
	if len(got) != 3 {
		t.Errorf("LocalPaths = %v, want 3 entries", got)
	}
	clean := sampleSpecs()["estimate"]
	if paths := clean.LocalPaths(); len(paths) != 0 {
		t.Errorf("clean spec has local paths %v", paths)
	}
}

func TestProtocolRegistry(t *testing.T) {
	names := ProtocolNames()
	if len(names) != 17 {
		t.Errorf("registry has %d protocols: %v", len(names), names)
	}
	for _, name := range names {
		p, err := ProtocolByName(name)
		if err != nil {
			t.Errorf("ProtocolByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("protocol %q has an empty name", name)
		}
	}
	if _, err := ProtocolByName("bogus"); err == nil {
		t.Error("unknown protocol accepted")
	}
}
