package scenario

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"strings"

	"lvmajority/internal/report"
)

// Common holds the flag values every CLI front-end shares: the seed/worker
// pair that used to be copy-pasted across the six mains, plus the spec
// plumbing (-spec, -dump-spec) and -version. Register the flags with
// RegisterRun or RegisterSpec and resolve the invocation with Specs.
type Common struct {
	// Seed and Workers mirror Spec.Seed and Spec.Workers.
	Seed    uint64
	Workers int
	// SpecPath replays a saved spec file; DumpSpec prints the invocation
	// as a spec instead of running it.
	SpecPath string
	DumpSpec bool
	// ShowVersion prints the build identity and exits.
	ShowVersion bool
}

// RegisterRun registers the full shared flag set — -seed, -workers, -spec,
// -dump-spec, -version — with the CLI's historical seed default.
func RegisterRun(fs *flag.FlagSet, defaultSeed uint64) *Common {
	c := RegisterSpec(fs)
	fs.Uint64Var(&c.Seed, "seed", defaultSeed, "random seed")
	fs.IntVar(&c.Workers, "workers", 0, "parallel workers (0 = GOMAXPROCS); never changes the results")
	return c
}

// RegisterSpec registers only the spec plumbing and -version, for CLIs
// without Monte-Carlo randomness (rho, report).
func RegisterSpec(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.StringVar(&c.SpecPath, "spec", "", "run the scenario.Spec in this JSON file instead of the flags")
	fs.BoolVar(&c.DumpSpec, "dump-spec", false, "print this invocation as a scenario.Spec (JSON) and exit without running")
	fs.BoolVar(&c.ShowVersion, "version", false, "print the build version and exit")
	return c
}

// RegisterCache registers the shared -cache flag (a probe-cache file path
// or cache-server URL) and returns a pointer to its value.
func RegisterCache(fs *flag.FlagSet) *string {
	return fs.String("cache", "", "threshold-probe cache: a file path, or an http(s):// cache-server URL (a coordinator's /fabric/v1/cache); settled probes are replayed across runs (empty = no cache)")
}

// FileCache converts a -cache flag value to the spec cache policy: nil for
// an empty value, the remote policy for an http(s) URL, the file policy
// otherwise.
func FileCache(path string) *CacheSpec {
	if path == "" {
		return nil
	}
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		return &CacheSpec{Policy: CacheRemote, URL: path}
	}
	return &CacheSpec{Policy: CacheFile, Path: path}
}

// Version returns the one-line build identity shared by every CLI's
// -version flag and the server's /v1/healthz: the module, its VCS-stamped
// version (the same value run manifests record), and the Go toolchain.
func Version() string {
	module, version := report.BuildVersion()
	return fmt.Sprintf("%s %s (%s)", module, version, runtime.Version())
}

// Specs resolves a CLI invocation into its run specs: loaded from -spec
// when given, else built from the parsed flags by build. Front-ends call
// it after fs.Parse.
//
// With -spec, any other explicitly-set flag is an error — the spec file is
// the whole invocation — except the spec plumbing itself and the flags the
// CLI names in presentation: flags that cannot affect the run (logging,
// profiling) and therefore combine freely with a replay.
func (c *Common) Specs(fs *flag.FlagSet, build func() ([]Spec, error), presentation ...string) ([]Spec, error) {
	if c.SpecPath == "" {
		return build()
	}
	allowed := map[string]bool{"spec": true, "dump-spec": true, "version": true}
	for _, name := range presentation {
		allowed[name] = true
	}
	var conflict string
	fs.Visit(func(f *flag.Flag) {
		if !allowed[f.Name] {
			conflict = f.Name
		}
	})
	if conflict != "" {
		return nil, fmt.Errorf("-spec replays a saved invocation; drop the conflicting -%s flag", conflict)
	}
	specs, err := LoadSpecs(c.SpecPath)
	if err != nil {
		return nil, err
	}
	return specs, nil
}

// WriteSpecs prints specs in the canonical -dump-spec form: a single
// indented JSON object for one spec, an array for several. ParseSpecs
// accepts both, so dump-then-replay always round-trips.
func WriteSpecs(w io.Writer, specs []Spec) error {
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return err
		}
	}
	var data []byte
	var err error
	if len(specs) == 1 {
		data, err = specs[0].MarshalIndent()
	} else {
		data, err = marshalSpecList(specs)
	}
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
