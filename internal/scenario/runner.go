package scenario

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"lvmajority/internal/consensus"
	"lvmajority/internal/crn"
	"lvmajority/internal/exact"
	"lvmajority/internal/experiment"
	"lvmajority/internal/lv"
	"lvmajority/internal/mc"
	"lvmajority/internal/progress"
	"lvmajority/internal/protocols"
	"lvmajority/internal/report"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
	"lvmajority/internal/stats"
	"lvmajority/internal/sweep"
)

// Runner executes Specs. The zero value is ready to use; a Runner is safe
// for concurrent Run calls, which is how the server executes several
// in-flight runs against one process-wide probe cache.
type Runner struct {
	// Cache is the process-wide probe cache served to specs with the
	// "shared" cache policy. Nil is fine: the first shared-policy run
	// creates it.
	Cache *sweep.Cache
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Now stamps manifests (nil = time.Now). Tests pin it — a Now that
	// returns the zero time leaves manifests unstamped, which is what
	// byte-identity comparisons want.
	Now func() time.Time
	// Progress, when non-nil, receives the observation stream of every
	// run this Runner executes: a phase event per task start and
	// completion, plus the trial, estimate, probe, and point events of the
	// engines underneath, each annotated with the task's scope (the task
	// name, or the experiment ID for experiment tasks). It is the
	// process-wide default; per-run hooks go through RunWithProgress.
	// Observation-only: attaching a hook never changes results.
	Progress progress.Hook
	// Probes, when non-nil, builds the per-gap probe estimator of the
	// estimate, threshold, and sweep tasks in place of the local default —
	// the seam the fabric coordinator uses to shard a probe's trial
	// windows across a worker fleet. The factory must return estimators
	// deterministic in their arguments and byte-equivalent to
	// consensus.DefaultEstimator, which the fabric guarantees by running
	// the same estimator control loop over location-independent window
	// counts. Tasks without probe estimators (simulate, exact, experiment,
	// report) always run locally.
	Probes ProbeFactory

	mu sync.Mutex // guards lazy creation of Cache
}

// ProbeFactory builds the probe estimator for one (model, population,
// target) configuration; see Runner.Probes. The model is the estimator's
// wire-serializable description of p — what a coordinator forwards to its
// workers — and target and earlyStop arrive already resolved.
type ProbeFactory func(model *Model, p consensus.Protocol, n int, target float64, earlyStop bool) consensus.ProbeEstimator

// Result is the typed outcome of one executed Spec. Manifests carry the
// run's tables with full provenance (internal/report) for every computing
// task; the task-specific fields expose the underlying typed values for
// programmatic use and for the CLI front-ends' legacy renderings.
type Result struct {
	// Spec is the executed spec, echoed for self-describing results.
	Spec Spec `json:"spec"`
	// Manifests are the run's provenance-carrying result records: exactly
	// one for every task except report (which produces documents, not
	// tables).
	Manifests []*report.Manifest `json:"manifests,omitempty"`

	// Estimate is set for TaskEstimate.
	Estimate *stats.BernoulliEstimate `json:"estimate,omitempty"`
	// Threshold is set for TaskThreshold.
	Threshold *consensus.ThresholdResult `json:"threshold,omitempty"`
	// Sweep is set for TaskSweep.
	Sweep *sweep.Result `json:"sweep,omitempty"`
	// Simulate is set for TaskSimulate. It holds live accumulators and a
	// parsed network, so it is for in-process consumers only; the
	// manifest tables carry the serializable summary.
	Simulate *SimulateResult `json:"-"`
	// Exact is set for TaskExact (in-process only, like Simulate).
	Exact *ExactResult `json:"-"`
	// Report is set for TaskReport.
	Report *ReportResult `json:"report,omitempty"`
}

// SimulateResult aggregates a batch-simulation run; exactly one of LV and
// CRN is set, matching the model kind.
type SimulateResult struct {
	LV  *LVBatch
	CRN *CRNBatch
}

// LVBatch is the outcome aggregation of a Lotka–Volterra batch, mirroring
// what lvsim has always reported.
type LVBatch struct {
	Params  lv.Params
	Initial lv.State
	Runs    int
	// Wins counts runs the initial majority won; DoubleExtinctions the
	// runs ending with both species dead; Unresolved the runs that
	// exhausted the step budget.
	Wins, DoubleExtinctions, Unresolved int
	// Steps, Individual, Competitive and Bad accumulate the per-run event
	// counts over resolved runs.
	Steps, Individual, Competitive, Bad stats.Running
}

// CRNBatch is the final-state aggregation of a CRN batch, mirroring crnrun.
type CRNBatch struct {
	Net      *crn.Network
	Runs     int
	Absorbed int
	Steps    stats.Running
	// Finals holds one accumulator of final counts per species, in
	// species order.
	Finals []stats.Running
}

// ExactResult carries the exact solver's outcome: the solution grid plus
// the resolved labelling and ceiling.
type ExactResult struct {
	Solution *exact.Solution
	// Label describes the solved model (rate string or network summary).
	Label string
	// Ceiling is the resolved grid ceiling.
	Ceiling int
}

// ReportResult records what a report task produced.
type ReportResult struct {
	// DesignWritten and ExperimentsWritten are the generated files, when
	// requested; ManifestCount and ExperimentCount the inputs behind them.
	DesignWritten      string `json:"design_written,omitempty"`
	ExperimentsWritten string `json:"experiments_written,omitempty"`
	ManifestCount      int    `json:"manifest_count,omitempty"`
	ExperimentCount    int    `json:"experiment_count,omitempty"`
	// Rendered is the re-rendered manifest for the ascii and md render
	// forms (csv writes files instead).
	Rendered []byte `json:"rendered,omitempty"`
}

func (r *Runner) now() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return time.Now()
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// sharedCache returns the process-wide probe cache, creating it on first
// use.
func (r *Runner) sharedCache() *sweep.Cache {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Cache == nil {
		r.Cache = sweep.NewCache()
	}
	return r.Cache
}

// cacheFor resolves the spec's cache policy. save reports whether the run
// must persist the cache when it finishes (the "file" policy).
func (r *Runner) cacheFor(spec *Spec) (cache *sweep.Cache, save bool, err error) {
	if spec.Cache == nil || spec.Cache.Policy == CacheOff {
		return nil, false, nil
	}
	switch spec.Cache.Policy {
	case CacheMemory:
		return sweep.NewCache(), false, nil
	case CacheShared:
		return r.sharedCache(), false, nil
	case CacheFile:
		c, err := sweep.OpenCache(spec.Cache.Path)
		if err != nil {
			return nil, false, err
		}
		return c, true, nil
	case CacheRemote:
		c, err := sweep.OpenRemoteCache(spec.Cache.URL, nil)
		if err != nil {
			return nil, false, err
		}
		return c, true, nil
	default:
		return nil, false, fmt.Errorf("scenario: unknown cache policy %q", spec.Cache.Policy)
	}
}

// Run validates and executes one spec. Cancellation of ctx aborts
// Monte-Carlo tasks — estimate, threshold, sweep, simulate, and experiment
// — between trials; the exact and report tasks (no Monte Carlo) are
// checked at task boundaries only.
func (r *Runner) Run(ctx context.Context, spec Spec) (*Result, error) {
	return r.RunWithProgress(ctx, spec, nil)
}

// RunWithProgress is Run with a per-run observation hook layered over the
// Runner's process-wide one: the server attaches each run's broadcaster
// here while cmd/experiments-style front-ends set Runner.Progress once.
// Events are annotated with the task's scope before they reach either hook.
// Observation-only: results are byte-identical with any hook attached.
func (r *Runner) RunWithProgress(ctx context.Context, spec Spec, hook progress.Hook) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cache, save, err := r.cacheFor(&spec)
	if err != nil {
		return nil, err
	}
	var hits0, misses0 int64
	if cache != nil {
		hits0, misses0 = cache.Counters()
	}
	start := time.Now()

	// The spec's wall-clock budget, when set, bounds the whole task through
	// the same context every Monte-Carlo engine already polls.
	if spec.Timeout != "" {
		d, derr := time.ParseDuration(spec.Timeout)
		if derr != nil {
			return nil, fmt.Errorf("scenario: invalid timeout %q: %w", spec.Timeout, derr)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	hook = scoped(progress.Tee(r.Progress, hook), scopeOf(&spec))
	hook.Emit(progress.Event{Kind: progress.KindPhase, Phase: progress.PhaseStart})

	res := &Result{Spec: spec}
	err = r.dispatch(ctx, &spec, cache, res, hook)
	if err != nil {
		hook.Emit(progress.Event{
			Kind:   progress.KindPhase,
			Phase:  progress.PhaseFailed,
			Err:    err.Error(),
			Detail: FailureDetail(err),
		})
		return nil, err
	}
	hook.Emit(progress.Event{Kind: progress.KindPhase, Phase: progress.PhaseDone})

	// Stamp provenance on every manifest the task assembled.
	for _, m := range res.Manifests {
		m.WallTimeNS = time.Since(start).Nanoseconds()
		if cache != nil {
			hits, misses := cache.Counters()
			m.SweepCacheHits, m.SweepCacheMisses = hits-hits0, misses-misses0
		}
	}
	if save {
		if err := cache.Save(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// dispatch executes the task behind its panic-isolation boundary: a panic
// anywhere in a task — below the mc pools' own recovery, in a solver, in
// report generation — fails the run with a TaskPanicError instead of
// killing the process (and with it, every other in-flight run a server is
// executing).
func (r *Runner) dispatch(ctx context.Context, spec *Spec, cache *sweep.Cache, res *Result, hook progress.Hook) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &TaskPanicError{Task: spec.Task, Value: v, Stack: string(debug.Stack())}
		}
	}()
	switch spec.Task {
	case TaskEstimate:
		return r.runEstimate(ctx, spec, res, hook)
	case TaskThreshold:
		return r.runThreshold(ctx, spec, res, hook)
	case TaskSweep:
		return r.runSweep(ctx, spec, cache, res, hook)
	case TaskSimulate:
		return r.runSimulate(ctx, spec, res, hook)
	case TaskExact:
		return r.runExact(spec, res)
	case TaskExperiment:
		return r.runExperiment(ctx, spec, cache, res, hook)
	case TaskReport:
		return r.runReport(spec, res)
	default:
		return fmt.Errorf("scenario: unknown task %q", spec.Task)
	}
}

// TaskPanicError reports a panic recovered at the task boundary.
type TaskPanicError struct {
	// Task is the task that panicked.
	Task Task
	// Value is the recovered panic value; Stack the goroutine stack at the
	// recovery point.
	Value any
	Stack string
}

func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("scenario: panic in %s task: %v", e.Task, e.Value)
}

// Unwrap exposes a panic value that was itself an error.
func (e *TaskPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// FailureDetail classifies a run failure into the progress Detail classes:
// panic (a recovered engine or task panic), timeout (the spec's deadline
// expired), interrupted (external cancellation), or "" for ordinary errors.
func FailureDetail(err error) string {
	var taskPanic *TaskPanicError
	var trialPanic *mc.TrialPanicError
	switch {
	case errors.As(err, &taskPanic), errors.As(err, &trialPanic):
		return progress.DetailPanic
	case errors.Is(err, context.DeadlineExceeded):
		return progress.DetailTimeout
	case errors.Is(err, context.Canceled):
		return progress.DetailInterrupted
	}
	return ""
}

// scopeOf names a spec's observation stream: the experiment ID for
// experiment tasks, else the task name.
func scopeOf(spec *Spec) string {
	if spec.Task == TaskExperiment && spec.Experiment != nil {
		return spec.Experiment.ID
	}
	return string(spec.Task)
}

// scoped annotates every event that has no scope yet with the task's scope.
// It returns nil for a nil hook, preserving the zero-cost path.
func scoped(h progress.Hook, scope string) progress.Hook {
	if h == nil {
		return nil
	}
	return func(e progress.Event) {
		if e.Scope == "" {
			e.Scope = scope
		}
		h(e)
	}
}

// manifest assembles the provenance record of a scenario task. Wall time
// and cache counters are filled in by Run after the task returns.
func (r *Runner) manifest(id, title, artifact string, spec *Spec, full bool, tables []*experiment.Table) *report.Manifest {
	return report.New(
		experiment.Experiment{ID: id, Title: title, Artifact: artifact},
		report.RunInfo{Seed: spec.Seed, Workers: spec.Workers, Full: full, Now: r.now()},
		tables,
	)
}

func interruptFrom(ctx context.Context) func() error {
	return func() error { return ctx.Err() }
}

func (r *Runner) runEstimate(ctx context.Context, spec *Spec, res *Result, hook progress.Hook) error {
	p, err := spec.Model.BuildProtocol()
	if err != nil {
		return err
	}
	e := spec.Estimate
	opts := consensus.EstimateOptions{
		Trials:    e.Trials,
		Workers:   spec.Workers,
		Seed:      spec.Seed,
		Interrupt: interruptFrom(ctx),
		Progress:  hook,
	}
	// DefaultEstimator dispatches exactly as the direct calls used to:
	// EstimateWithEarlyStop when early-stopping, EstimateWinProbability
	// otherwise — so routing through the estimator seam leaves local
	// results byte-identical.
	estimate := consensus.DefaultEstimator(p, e.N, e.Target, e.EarlyStop)
	if r.Probes != nil {
		estimate = r.Probes(spec.Model, p, e.N, e.Target, e.EarlyStop)
	}
	est, err := estimate(e.Delta, opts)
	if err != nil {
		return err
	}
	res.Estimate = &est

	tbl := &experiment.Table{
		Title:   "Majority-consensus probability estimate",
		Caption: fmt.Sprintf("protocol %s; Wilson interval at 99%%", p.Name()),
		Columns: []string{"n", "delta", "trials", "successes", "rho", "lo", "hi"},
	}
	tbl.AddRow(e.N, e.Delta, est.Trials, est.Successes, est.P(), est.Lo, est.Hi)
	res.Manifests = []*report.Manifest{r.manifest(
		"RUN-estimate", "Monte-Carlo estimate of rho(n, delta)", "scenario API: estimate task",
		spec, false, []*experiment.Table{tbl})}
	return nil
}

func (r *Runner) runThreshold(ctx context.Context, spec *Spec, res *Result, hook progress.Hook) error {
	p, err := spec.Model.BuildProtocol()
	if err != nil {
		return err
	}
	th := spec.Threshold
	var estimator consensus.ProbeEstimator
	if r.Probes != nil {
		// Resolve the target the way FindThreshold will, so the factory
		// sees the value the early-stop comparison actually uses.
		target := th.Target
		if target <= 0 {
			target = 1 - 1/float64(th.N)
		}
		estimator = r.Probes(spec.Model, p, th.N, target, !th.NoEarlyStop)
	}
	out, err := consensus.FindThreshold(p, th.N, consensus.ThresholdOptions{
		Target:    th.Target,
		Trials:    th.Trials,
		Workers:   spec.Workers,
		Seed:      spec.Seed,
		MaxDelta:  th.MaxDelta,
		EarlyStop: !th.NoEarlyStop,
		Hint:      th.Hint,
		Estimator: estimator,
		Interrupt: interruptFrom(ctx),
		Progress:  hook,
	})
	if err != nil {
		return err
	}
	res.Threshold = &out

	tbl := &experiment.Table{
		Title:   "Empirical majority-consensus threshold",
		Caption: fmt.Sprintf("protocol %s", p.Name()),
		Columns: []string{"n", "target", "threshold", "found", "probes"},
	}
	tbl.AddRow(out.N, out.Target, out.Threshold, out.Found, len(out.Evaluations))
	res.Manifests = []*report.Manifest{r.manifest(
		"RUN-threshold", "Threshold search Psi(n) at one population size", "scenario API: threshold task",
		spec, false, []*experiment.Table{tbl})}
	return nil
}

// DefaultSweepTrials is the historical per-population trial rule of the
// threshold CLI, selected by a sweep spec with Trials == 0: twice the
// population, clamped to [1000, 8000].
func DefaultSweepTrials(n int) int {
	tr := 2 * n
	if tr > 8000 {
		tr = 8000
	}
	if tr < 1000 {
		tr = 1000
	}
	return tr
}

func (r *Runner) runSweep(ctx context.Context, spec *Spec, cache *sweep.Cache, res *Result, hook progress.Hook) error {
	p, err := spec.Model.BuildProtocol()
	if err != nil {
		return err
	}
	sw := spec.Sweep
	opts := sweep.Options{
		Grid:        sw.Grid,
		Target:      sw.Target,
		Trials:      sw.Trials,
		Workers:     spec.Workers,
		Lanes:       sw.Lanes,
		Seed:        spec.Seed,
		MaxDelta:    sw.MaxDelta,
		Cold:        sw.Cold,
		NoEarlyStop: sw.NoEarlyStop,
		Cache:       cache,
		Interrupt:   interruptFrom(ctx),
		Progress:    hook,
	}
	if sw.Trials == 0 {
		opts.TrialsFor = DefaultSweepTrials
	}
	if r.Probes != nil {
		model := spec.Model
		opts.Estimator = func(p consensus.Protocol, n int, target float64, earlyStop bool) consensus.ProbeEstimator {
			return r.Probes(model, p, n, target, earlyStop)
		}
	}
	if r.Log != nil {
		opts.Log = r.logf
	}
	out, err := sweep.Run(p, opts)
	if err != nil {
		return err
	}
	res.Sweep = &out

	caption := fmt.Sprintf("protocol %s; %d probes (%d fresh, %d cached)",
		out.Protocol, out.Probes, out.EstimatorCalls, out.CacheHits)
	if fit, err := consensus.FitCurve(out.Curve()); err == nil {
		caption += fmt.Sprintf("; scaling fit: %s", fit)
	}
	tbl := &experiment.Table{
		Title:   "Threshold curve Psi(n)",
		Caption: caption,
		Columns: []string{"n", "target", "threshold", "found", "thr/log2(n)^2", "thr/sqrt(n)"},
	}
	for _, pt := range out.Points {
		if !pt.Found {
			tbl.AddRow(pt.N, pt.Target, -1, false, "-", "-")
			continue
		}
		fn := float64(pt.N)
		tbl.AddRow(pt.N, pt.Target, pt.Threshold, true,
			float64(pt.Threshold)/consensus.ShapeLog2(fn),
			float64(pt.Threshold)/consensus.ShapeSqrt(fn))
	}
	res.Manifests = []*report.Manifest{r.manifest(
		"RUN-sweep", "Threshold curve sweep over a population grid", "scenario API: sweep task",
		spec, false, []*experiment.Table{tbl})}
	return nil
}

func (r *Runner) runSimulate(ctx context.Context, spec *Spec, res *Result, hook progress.Hook) error {
	switch spec.Model.Kind {
	case ModelLV:
		return r.runSimulateLV(ctx, spec, res, hook)
	case ModelCRN:
		return r.runSimulateCRN(ctx, spec, res, hook)
	default:
		return fmt.Errorf("scenario: simulate supports lv and crn models, not %q", spec.Model.Kind)
	}
}

func (r *Runner) runSimulateLV(ctx context.Context, spec *Spec, res *Result, hook progress.Hook) error {
	params, err := spec.Model.LV.Params()
	if err != nil {
		return err
	}
	sm := spec.Simulate
	initial := lv.State{X0: sm.A, X1: sm.B}
	if err := initial.Validate(); err != nil {
		return err
	}
	outs, err := mc.Run(mc.Options{
		Replicates: sm.Runs, Workers: spec.Workers, Seed: spec.Seed,
		Interrupt: interruptFrom(ctx), Progress: hook,
	}, func(_ int, src *rng.Source) (lv.Outcome, error) {
		return lv.Run(params, initial, src, lv.RunOptions{MaxSteps: sm.MaxSteps})
	})
	if err != nil {
		return err
	}
	batch := &LVBatch{Params: params, Initial: initial, Runs: sm.Runs}
	for _, out := range outs {
		if !out.Consensus {
			batch.Unresolved++
			continue
		}
		if out.MajorityWon {
			batch.Wins++
		}
		if out.Winner == -1 {
			batch.DoubleExtinctions++
		}
		batch.Steps.Add(float64(out.Steps))
		batch.Individual.Add(float64(out.Individual))
		batch.Competitive.Add(float64(out.Competitive))
		batch.Bad.Add(float64(out.BadNonCompetitive))
	}
	res.Simulate = &SimulateResult{LV: batch}

	tbl := &experiment.Table{
		Title:   "Batch simulation outcomes",
		Caption: fmt.Sprintf("%s, initial (%d, %d)", params, initial.X0, initial.X1),
		Columns: []string{"metric", "value"},
	}
	tbl.AddRow("runs", batch.Runs)
	tbl.AddRow("majority wins", batch.Wins)
	tbl.AddRow("double extinctions", batch.DoubleExtinctions)
	tbl.AddRow("unresolved", batch.Unresolved)
	tbl.AddRow("mean consensus time T(S)", batch.Steps.Mean())
	tbl.AddRow("mean individual events", batch.Individual.Mean())
	tbl.AddRow("mean competitive events", batch.Competitive.Mean())
	tbl.AddRow("mean bad events J(S)", batch.Bad.Mean())
	res.Manifests = []*report.Manifest{r.manifest(
		"RUN-simulate", "Batch Lotka-Volterra simulation", "scenario API: simulate task",
		spec, false, []*experiment.Table{tbl})}
	return nil
}

func (r *Runner) runSimulateCRN(ctx context.Context, spec *Spec, res *Result, hook progress.Hook) error {
	m := spec.Model.CRN
	net, err := crn.Parse(m.Text)
	if err != nil {
		return err
	}
	sm := spec.Simulate
	initial, err := InitialState(net, sm.Init)
	if err != nil {
		return err
	}
	type final struct {
		steps    int
		absorbed bool
		state    []int
	}
	outs, err := mc.RunEngine(mc.Options{
		Replicates: sm.Runs, Workers: spec.Workers, Seed: spec.Seed,
		Interrupt: interruptFrom(ctx), Progress: hook,
	},
		func() (sim.Engine, error) { return newCRNEngine(net, initial, m.Engine, sm.MaxTime, rng.New(0)) },
		func(_ int, e sim.Engine) (final, error) {
			out, err := sim.Run(e, nil, sim.Limits{MaxSteps: sm.MaxSteps, MaxTime: sm.MaxTime})
			if err != nil {
				return final{}, err
			}
			return final{
				steps:    out.Steps,
				absorbed: out.Absorbed,
				state:    append([]int(nil), e.State()...),
			}, nil
		})
	if err != nil {
		return err
	}
	batch := &CRNBatch{Net: net, Runs: sm.Runs, Finals: make([]stats.Running, net.NumSpecies())}
	for _, out := range outs {
		if out.absorbed {
			batch.Absorbed++
		}
		batch.Steps.Add(float64(out.steps))
		for s, c := range out.state {
			batch.Finals[s].Add(float64(c))
		}
	}
	res.Simulate = &SimulateResult{CRN: batch}

	tbl := &experiment.Table{
		Title:   "Batch simulation final states",
		Caption: fmt.Sprintf("%d-species network, %d reactions", net.NumSpecies(), net.NumReactions()),
		Columns: []string{"metric", "value"},
	}
	tbl.AddRow("runs", batch.Runs)
	tbl.AddRow("absorbed", batch.Absorbed)
	tbl.AddRow("mean steps", batch.Steps.Mean())
	for s := range batch.Finals {
		tbl.AddRow(fmt.Sprintf("mean final %s", net.SpeciesName(crn.Species(s))), batch.Finals[s].Mean())
	}
	res.Manifests = []*report.Manifest{r.manifest(
		"RUN-simulate", "Batch CRN simulation", "scenario API: simulate task",
		spec, false, []*experiment.Table{tbl})}
	return nil
}

// InitialState resolves a name-keyed initial-count map against a network's
// species, with unlisted species at zero. Both the CRN simulate task and
// the crnrun front-end resolve -init through it.
func InitialState(net *crn.Network, init map[string]int) ([]int, error) {
	state := make([]int, net.NumSpecies())
	for name, count := range init {
		s, err := net.SpeciesByName(name)
		if err != nil {
			return nil, err
		}
		if count < 0 {
			return nil, fmt.Errorf("scenario: negative initial count %d for species %s", count, name)
		}
		state[s] = count
	}
	return state, nil
}

// ExactCeiling is the historical grid-ceiling rule of the rho CLI, selected
// by an exact spec with Max == 0: 4·(a+b)+40, raised to 4·table+40 when a
// full table is requested and needs more.
func ExactCeiling(a, b, table int) int {
	ceiling := 4*(a+b) + 40
	if table > 0 && 4*table+40 > ceiling {
		ceiling = 4*table + 40
	}
	return ceiling
}

func (r *Runner) runExact(spec *Spec, res *Result) error {
	e := spec.Exact
	ceiling := e.Max
	if ceiling <= 0 {
		ceiling = ExactCeiling(e.A, e.B, e.Table)
	}
	opts := exact.Options{Max: ceiling, TieValue: e.Tie}

	var (
		sol   *exact.Solution
		label string
		err   error
	)
	switch spec.Model.Kind {
	case ModelLV:
		params, perr := spec.Model.LV.Params()
		if perr != nil {
			return perr
		}
		label = params.String()
		if e.Steps {
			sol, err = exact.SolveWithSteps(params, opts)
		} else {
			sol, err = exact.Solve(params, opts)
		}
	case ModelCRN:
		net, perr := crn.Parse(spec.Model.CRN.Text)
		if perr != nil {
			return perr
		}
		label = fmt.Sprintf("network (%d reactions)", net.NumReactions())
		if e.Steps {
			sol, err = exact.SolveNetworkWithSteps(net, opts)
		} else {
			sol, err = exact.SolveNetwork(net, opts)
		}
	default:
		return fmt.Errorf("scenario: exact supports lv and crn models, not %q", spec.Model.Kind)
	}
	if err != nil {
		return err
	}
	res.Exact = &ExactResult{Solution: sol, Label: label, Ceiling: ceiling}

	var tables []*experiment.Table
	if e.Table > 0 {
		tbl := &experiment.Table{
			Title:   "Exact rho(a, b) table",
			Caption: fmt.Sprintf("%s, tie value %g, grid ceiling %d", label, e.Tie, ceiling),
		}
		tbl.Columns = append(tbl.Columns, "a\\b")
		for bb := 1; bb <= e.Table; bb++ {
			tbl.Columns = append(tbl.Columns, fmt.Sprintf("%d", bb))
		}
		for aa := 1; aa <= e.Table; aa++ {
			row := make([]any, 0, e.Table+1)
			row = append(row, aa)
			for bb := 1; bb <= e.Table; bb++ {
				v, err := sol.Rho(aa, bb)
				if err != nil {
					return err
				}
				row = append(row, v)
			}
			tbl.AddRow(row...)
		}
		tables = append(tables, tbl)
	} else {
		tbl := &experiment.Table{
			Title:   "Exact rho(a, b)",
			Caption: fmt.Sprintf("%s, tie value %g, grid ceiling %d", label, e.Tie, ceiling),
			Columns: []string{"a", "b", "rho", "a/(a+b)"},
		}
		v, err := sol.Rho(e.A, e.B)
		if err != nil {
			return err
		}
		if e.Steps {
			tbl.Columns = append(tbl.Columns, "E[T] reactions")
			s, err := sol.Steps(e.A, e.B)
			if err != nil {
				return err
			}
			tbl.AddRow(e.A, e.B, v, float64(e.A)/float64(e.A+e.B), s)
		} else {
			tbl.AddRow(e.A, e.B, v, float64(e.A)/float64(e.A+e.B))
		}
		tables = append(tables, tbl)
	}
	res.Manifests = []*report.Manifest{r.manifest(
		"RUN-exact", "Exact first-step-recurrence solution", "scenario API: exact task",
		spec, false, tables)}
	return nil
}

func (r *Runner) runExperiment(ctx context.Context, spec *Spec, cache *sweep.Cache, res *Result, hook progress.Hook) error {
	ex, err := experiment.ByID(spec.Experiment.ID)
	if err != nil {
		return err
	}
	kernel, err := protocols.ParseKernel(spec.Experiment.Kernel)
	if err != nil {
		return err
	}
	cfg := experiment.Config{
		Seed:      spec.Seed,
		Workers:   spec.Workers,
		Full:      spec.Experiment.Full,
		Kernel:    kernel,
		Cache:     cache,
		Interrupt: interruptFrom(ctx),
		Log:       r.Log,
		Progress:  hook,
	}
	tables, err := ex.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", ex.ID, err)
	}
	m := report.New(ex, report.RunInfo{
		Seed:    spec.Seed,
		Workers: spec.Workers,
		Full:    spec.Experiment.Full,
		Now:     r.now(),
	}, tables)
	res.Manifests = []*report.Manifest{m}
	return nil
}

// WriteArtifacts persists the side outputs an experiment spec requests
// (CSV directory, manifest directory). The CLI front-end calls it after
// Run so the manifests carry their final wall-time and cache provenance;
// the server refuses specs that request artifacts (LocalPaths).
func (res *Result) WriteArtifacts() error {
	if res.Spec.Experiment == nil {
		return nil
	}
	for _, m := range res.Manifests {
		if dir := res.Spec.Experiment.CSVDir; dir != "" {
			if err := m.WriteCSVDir(dir); err != nil {
				return err
			}
		}
		if dir := res.Spec.Experiment.ReportDir; dir != "" {
			if err := m.WriteFile(filepath.Join(dir, report.Filename(m.ExperimentID))); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Runner) runReport(spec *Spec, res *Result) error {
	rp := spec.Report
	out := &ReportResult{}
	if rp.Render != "" {
		m, err := report.Load(rp.Manifest)
		if err != nil {
			return err
		}
		switch rp.Render {
		case "ascii", "md", "markdown":
			var buf bytes.Buffer
			if rp.Render == "ascii" {
				err = m.RenderASCII(&buf)
			} else {
				err = m.RenderMarkdown(&buf)
			}
			if err != nil {
				return err
			}
			out.Rendered = buf.Bytes()
		case "csv":
			if err := m.WriteCSVDir(rp.Out); err != nil {
				return err
			}
		default:
			return fmt.Errorf("scenario: unknown report render format %q", rp.Render)
		}
		res.Report = out
		return nil
	}
	if rp.Design != "" {
		exps := experiment.All()
		if err := report.WriteAtomic(rp.Design, func(f io.Writer) error {
			return report.WriteDesign(f, exps)
		}); err != nil {
			return err
		}
		out.DesignWritten = rp.Design
		out.ExperimentCount = len(exps)
	}
	if rp.Experiments != "" {
		ms, err := report.LoadDir(rp.Manifests)
		if err != nil {
			return err
		}
		if err := report.WriteAtomic(rp.Experiments, func(f io.Writer) error {
			return report.WriteExperiments(f, ms)
		}); err != nil {
			return err
		}
		out.ExperimentsWritten = rp.Experiments
		out.ManifestCount = len(ms)
	}
	res.Report = out
	return nil
}
