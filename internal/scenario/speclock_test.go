package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSpecLockGolden keeps the speclock analyzer's schema lock honest from
// the other side: every spec in testdata/speclock_golden.json must parse
// strictly (unknown fields rejected), validate, and survive a
// marshal/parse round trip to the same value. The speclock analyzer
// (internal/lint) checks the converse — that every exported Spec field is
// exercised by this file — so the pair pins schema v1 in both directions.
func TestSpecLockGolden(t *testing.T) {
	path := filepath.Join("testdata", "speclock_golden.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		t.Fatalf("golden spec must parse strictly and validate: %v", err)
	}
	if len(specs) < 2 {
		t.Fatalf("golden spec has %d entries; want the full task coverage set", len(specs))
	}
	for i, s := range specs {
		out, err := s.MarshalIndent()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		back, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("spec %d: re-parsing marshalled spec: %v", i, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Errorf("spec %d: round trip changed the value:\nhave %+v\nwant %+v", i, back, s)
		}
	}

	// Every key written in the golden file must be a key the schema still
	// produces: marshal the parsed specs and diff the key sets. A stale
	// key in the golden file would otherwise shadow a renamed field.
	var raw any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	golden := map[string]bool{}
	collectJSONKeys(raw, golden)
	remarshalled, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	var rt any
	if err := json.Unmarshal(remarshalled, &rt); err != nil {
		t.Fatal(err)
	}
	current := map[string]bool{}
	collectJSONKeys(rt, current)
	for key := range golden {
		if !current[key] {
			t.Errorf("golden key %q no longer appears after a parse/marshal round trip: stale schema key?", key)
		}
	}
}

func collectJSONKeys(v any, keys map[string]bool) {
	switch v := v.(type) {
	case map[string]any:
		for k, val := range v {
			keys[k] = true
			collectJSONKeys(val, keys)
		}
	case []any:
		for _, val := range v {
			collectJSONKeys(val, keys)
		}
	}
}
