package scenario

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"lvmajority/internal/experiment"
	"lvmajority/internal/progress"
	"lvmajority/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden spec files")

// defaultExperimentSpec is the canonical spec for one registered experiment
// at the cmd/experiments flag defaults — the spec `experiments -dump-spec
// <id>` prints.
func defaultExperimentSpec(id string) Spec {
	s := New(TaskExperiment)
	s.Seed = 20240506
	s.Experiment = &ExperimentSpec{ID: id}
	return s
}

// TestGoldenSpecs pins one golden spec file per registered experiment ID:
// the canonical experiment spec must match the committed file byte-for-byte
// and survive a strict parse back to the same value. Regenerate with
// `go test ./internal/scenario -run TestGoldenSpecs -update` after an
// intentional schema change.
func TestGoldenSpecs(t *testing.T) {
	for _, e := range experiment.All() {
		t.Run(e.ID, func(t *testing.T) {
			spec := defaultExperimentSpec(e.ID)
			data, err := spec.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "specs", report.SanitizeID(e.ID)+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if string(golden) != string(data) {
				t.Errorf("golden spec drifted:\nhave %swant %s", data, golden)
			}
			back, err := ParseSpec(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, spec) {
				t.Errorf("golden spec round trip not lossless: %+v vs %+v", back, spec)
			}
		})
	}
}

// TestRunnerReproducesCommittedManifests executes every registered
// experiment's golden spec through the Runner and compares the result
// tables (and identifying provenance) against the run manifests committed
// under results/manifests — the record cmd/experiments -report wrote. The
// determinism contract makes this exact: same seed, same grid, same tables
// to the byte. Provenance that legitimately varies between machines and
// runs (wall time, worker count, toolchain, cache traffic, timestamps) is
// excluded.
//
// This is the all-IDs acceptance test tying `experiments <id>` and
// scenario.Runner together; it re-runs the whole quick grid (~1 minute),
// so -short skips it.
//
// The Runner carries a maximally chatty progress hook throughout, making
// this doubly a determinism regression: every committed manifest must
// reproduce byte-for-byte while every trial, estimate, probe, and phase
// event is being observed. A hook that perturbed one RNG draw or reordered
// one probe would surface here as a table diff.
func TestRunnerReproducesCommittedManifests(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs every quick-grid experiment; skipped with -short")
	}
	manifestDir := filepath.Join("..", "..", "results", "manifests")
	var observed atomic.Int64
	kinds := sync.Map{}
	r := &Runner{Now: zeroNow, Progress: func(e progress.Event) {
		observed.Add(1)
		kinds.Store(e.Kind, true)
	}}
	defer func() {
		if observed.Load() == 0 {
			t.Error("chatty hook observed no events: the regression asserts nothing")
		}
		for _, k := range []progress.Kind{progress.KindPhase, progress.KindTrials, progress.KindEstimate, progress.KindProbe} {
			if _, ok := kinds.Load(k); !ok {
				t.Errorf("chatty hook never saw a %s event", k)
			}
		}
	}()
	for _, e := range experiment.All() {
		t.Run(e.ID, func(t *testing.T) {
			recorded, err := report.Load(filepath.Join(manifestDir, report.Filename(e.ID)))
			if err != nil {
				t.Fatalf("no committed manifest: %v", err)
			}
			spec := defaultExperimentSpec(e.ID)
			// The committed record was produced with the shared in-memory
			// cache of `cmd/experiments -report` (satellite of PR 3); the
			// cache never changes tables, so off vs shared is immaterial
			// here — use shared to mirror the recording run.
			spec.Cache = &CacheSpec{Policy: CacheShared}
			res, err := r.Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Manifests[0]
			if got.ExperimentID != recorded.ExperimentID || got.Title != recorded.Title ||
				got.Artifact != recorded.Artifact || got.Grid != recorded.Grid ||
				got.Seed != recorded.Seed {
				t.Errorf("identity mismatch: got %s/%s seed %d grid %s",
					got.ExperimentID, got.Title, got.Seed, got.Grid)
			}
			gotTables, err := json.Marshal(got.Tables)
			if err != nil {
				t.Fatal(err)
			}
			wantTables, err := json.Marshal(recorded.Tables)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotTables) != string(wantTables) {
				t.Errorf("tables differ from the committed record:\n%s\nvs\n%s", gotTables, wantTables)
			}
		})
	}
}
