package scenario

import (
	"context"
	"errors"
	"sync"
	"testing"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/mc"
	"lvmajority/internal/progress"
)

// eventLog collects progress events concurrently-safely for assertions.
type eventLog struct {
	mu     sync.Mutex
	events []progress.Event
}

func (l *eventLog) hook() progress.Hook {
	return func(e progress.Event) {
		l.mu.Lock()
		l.events = append(l.events, e)
		l.mu.Unlock()
	}
}

func (l *eventLog) failedEvent(t *testing.T) progress.Event {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.events {
		if e.Kind == progress.KindPhase && e.Phase == progress.PhaseFailed {
			return e
		}
	}
	t.Fatal("no failed phase event emitted")
	return progress.Event{}
}

// TestRunTimeoutClassified: a spec whose wall-clock budget expires fails
// with context.DeadlineExceeded, and the failed phase event carries the
// timeout detail.
func TestRunTimeoutClassified(t *testing.T) {
	spec := New(TaskSweep)
	spec.Model = lvSDModel()
	spec.Seed = 3
	spec.Timeout = "1ms"
	spec.Sweep = &SweepSpec{Grid: []int{512, 1024, 2048}, Trials: 8000, Target: 0.9}

	var log eventLog
	r := &Runner{Now: zeroNow}
	_, err := r.RunWithProgress(context.Background(), spec, log.hook())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out run returned %v, want DeadlineExceeded", err)
	}
	if got := FailureDetail(err); got != progress.DetailTimeout {
		t.Errorf("FailureDetail = %q, want %q", got, progress.DetailTimeout)
	}
	if e := log.failedEvent(t); e.Detail != progress.DetailTimeout {
		t.Errorf("failed event detail %q, want %q", e.Detail, progress.DetailTimeout)
	}
}

// TestRunCancelClassified: external cancellation is classified as
// interrupted, distinct from a timeout.
func TestRunCancelClassified(t *testing.T) {
	spec := New(TaskSweep)
	spec.Model = lvSDModel()
	spec.Seed = 3
	spec.Sweep = &SweepSpec{Grid: []int{192, 256, 384}, Trials: 4000, Target: 0.9}

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	var log eventLog
	r := &Runner{Now: zeroNow, Progress: func(e progress.Event) {
		// Cancel as soon as the run demonstrably started working.
		if e.Kind == progress.KindTrials {
			once.Do(cancel)
		}
	}}
	defer cancel()
	_, err := r.RunWithProgress(ctx, spec, log.hook())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want Canceled", err)
	}
	if e := log.failedEvent(t); e.Detail != progress.DetailInterrupted {
		t.Errorf("failed event detail %q, want %q", e.Detail, progress.DetailInterrupted)
	}
}

// TestChaosRunEnginePanicClassified: a panic injected at the trial-start
// site — the same path a real engine panic takes — fails the run with a
// structured TrialPanicError and the panic detail; the Runner survives to
// execute the next spec correctly.
func TestChaosRunEnginePanicClassified(t *testing.T) {
	spec := New(TaskEstimate)
	spec.Model = lvSDModel()
	spec.Seed = 7
	spec.Estimate = &EstimateSpec{N: 100, Delta: 20, Trials: 400}

	faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{
		Site: faultpoint.TrialStart, After: 17, Mode: faultpoint.ModePanic, Msg: "chaos",
	}))
	var log eventLog
	r := &Runner{Now: zeroNow}
	_, err := r.RunWithProgress(context.Background(), spec, log.hook())
	faultpoint.Disarm()
	var tp *mc.TrialPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("injected panic surfaced as %v, not TrialPanicError", err)
	}
	if e := log.failedEvent(t); e.Detail != progress.DetailPanic {
		t.Errorf("failed event detail %q, want %q", e.Detail, progress.DetailPanic)
	}

	// The runner is intact: the same spec now runs cleanly.
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("post-panic run failed: %v", err)
	}
	if res.Estimate == nil {
		t.Fatal("post-panic run produced no estimate")
	}
}

// TestTaskPanicRecovered: a panic above the mc pools — here a nil-options
// dereference driven through the dispatch boundary directly — becomes a
// TaskPanicError instead of crashing the process.
func TestTaskPanicRecovered(t *testing.T) {
	r := &Runner{Now: zeroNow}
	// An estimate spec with nil task options panics inside the task body;
	// dispatch must contain it. (Validate rejects this shape, which is
	// exactly why it exercises the last-resort boundary.)
	spec := New(TaskEstimate)
	spec.Model = lvSDModel()
	err := r.dispatch(context.Background(), &spec, nil, &Result{Spec: spec}, nil)
	var tp *TaskPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("task panic surfaced as %v, not TaskPanicError", err)
	}
	if tp.Task != TaskEstimate || tp.Stack == "" {
		t.Errorf("TaskPanicError{Task: %q, stack %d bytes} missing context", tp.Task, len(tp.Stack))
	}
	if FailureDetail(err) != progress.DetailPanic {
		t.Errorf("FailureDetail = %q, want %q", FailureDetail(err), progress.DetailPanic)
	}
}

// TestTimeoutValidation pins the spec-level timeout contract.
func TestTimeoutValidation(t *testing.T) {
	spec := New(TaskEstimate)
	spec.Model = lvSDModel()
	spec.Estimate = &EstimateSpec{N: 64, Delta: 8, Trials: 10}

	spec.Timeout = "90s"
	if err := spec.Validate(); err != nil {
		t.Errorf("valid timeout rejected: %v", err)
	}
	spec.Timeout = "soon"
	if err := spec.Validate(); err == nil {
		t.Error("malformed timeout accepted")
	}
	spec.Timeout = "-1s"
	if err := spec.Validate(); err == nil {
		t.Error("negative timeout accepted")
	}
	spec.Timeout = "0s"
	if err := spec.Validate(); err == nil {
		t.Error("zero timeout accepted")
	}
}
