package scenario

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"lvmajority/internal/consensus"
	"lvmajority/internal/experiment"
	"lvmajority/internal/lv"
	"lvmajority/internal/report"
	"lvmajority/internal/sweep"
)

// zeroNow pins manifests to the unstamped form for byte comparisons.
func zeroNow() time.Time { return time.Time{} }

func lvSDModel() *Model {
	return &Model{Kind: ModelLV, LV: &LVModel{
		Beta: 1, Death: 1, Alpha0: 1, Alpha1: 1, Competition: "sd", Label: "lv-sd",
	}}
}

func TestRunnerEstimateMatchesConsensus(t *testing.T) {
	spec := New(TaskEstimate)
	spec.Model = lvSDModel()
	spec.Seed = 7
	spec.Estimate = &EstimateSpec{N: 100, Delta: 20, Trials: 400}

	r := &Runner{Now: zeroNow}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := consensus.EstimateWinProbability(
		consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), Label: "lv-sd"},
		100, 20, consensus.EstimateOptions{Trials: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if *res.Estimate != want {
		t.Errorf("runner estimate %v, direct estimate %v", *res.Estimate, want)
	}
	if len(res.Manifests) != 1 || len(res.Manifests[0].Tables) != 1 {
		t.Fatalf("estimate result carries %d manifests", len(res.Manifests))
	}
	if res.Manifests[0].ExperimentID != "RUN-estimate" {
		t.Errorf("manifest id %q", res.Manifests[0].ExperimentID)
	}

	// Worker count must never change the estimate.
	spec.Workers = 3
	res3, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if *res3.Estimate != *res.Estimate {
		t.Errorf("estimate depends on workers: %v vs %v", *res3.Estimate, *res.Estimate)
	}
}

func TestRunnerSweepMatchesDirect(t *testing.T) {
	spec := New(TaskSweep)
	spec.Model = &Model{Kind: ModelProtocol, Protocol: &ProtocolModel{Name: "3-state-am"}}
	spec.Seed = 5
	spec.Sweep = &SweepSpec{Grid: []int{64, 96}, Trials: 300, Target: 0.9}

	r := &Runner{Now: zeroNow}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProtocolByName("3-state-am")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(p, sweep.Options{Grid: []int{64, 96}, Trials: 300, Target: 0.9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep.Points) != len(want.Points) {
		t.Fatalf("sweep points %d, want %d", len(res.Sweep.Points), len(want.Points))
	}
	for i := range want.Points {
		if res.Sweep.Points[i].Threshold != want.Points[i].Threshold {
			t.Errorf("n=%d: threshold %d, want %d",
				want.Points[i].N, res.Sweep.Points[i].Threshold, want.Points[i].Threshold)
		}
	}
}

func TestRunnerSimulateLV(t *testing.T) {
	spec := New(TaskSimulate)
	spec.Model = lvSDModel()
	spec.Seed = 1
	spec.Simulate = &SimulateSpec{Runs: 200, A: 60, B: 40}

	r := &Runner{Now: zeroNow}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Simulate.LV
	if b == nil {
		t.Fatal("LV batch missing")
	}
	if b.Runs != 200 || b.Wins <= 0 || b.Wins > 200 {
		t.Errorf("batch wins %d of %d", b.Wins, b.Runs)
	}
	if b.Steps.N() != 200-b.Unresolved {
		t.Errorf("steps accumulator has %d samples, want %d", b.Steps.N(), 200-b.Unresolved)
	}

	// Identical for any worker count.
	spec.Workers = 4
	res4, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Simulate.LV.Wins != b.Wins || res4.Simulate.LV.Steps.Mean() != b.Steps.Mean() {
		t.Error("simulate batch depends on worker count")
	}
}

func TestRunnerSimulateCRNEngines(t *testing.T) {
	text := "X0 -> 2 X0 @ 1\nX0 -> 0 @ 1.1\n"
	for _, engine := range []string{"", EngineDirect, EngineNRM, EngineLeap} {
		spec := New(TaskSimulate)
		spec.Model = &Model{Kind: ModelCRN, CRN: &CRNModel{Text: text, Engine: engine}}
		spec.Seed = 3
		spec.Simulate = &SimulateSpec{Runs: 30, Init: map[string]int{"X0": 50}, MaxSteps: 50_000}

		r := &Runner{Now: zeroNow}
		res, err := r.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		b := res.Simulate.CRN
		if b == nil || b.Runs != 30 {
			t.Fatalf("engine %q: bad batch %+v", engine, b)
		}
		// Subcritical birth-death: most runs should absorb at extinction.
		if b.Absorbed == 0 {
			t.Errorf("engine %q: no run absorbed", engine)
		}
	}
}

func TestRunnerEstimateOnCRNModel(t *testing.T) {
	// The paper's SD chain written as an explicit CRN: species 0 is the
	// majority by convention.
	text := "X0 -> 2 X0 @ 1\nX1 -> 2 X1 @ 1\nX0 -> 0 @ 1\nX1 -> 0 @ 1\nX0 + X1 -> 0 @ 2\n"
	spec := New(TaskEstimate)
	spec.Model = &Model{Kind: ModelCRN, CRN: &CRNModel{Text: text}}
	spec.Seed = 9
	spec.Estimate = &EstimateSpec{N: 60, Delta: 20, Trials: 300}

	r := &Runner{Now: zeroNow}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Estimate.P(); p <= 0.5 || p > 1 {
		t.Errorf("majority win probability %v for a 40-20 start", p)
	}
}

func TestRunnerExact(t *testing.T) {
	spec := New(TaskExact)
	spec.Model = lvSDModel()
	spec.Exact = &ExactSpec{A: 10, B: 5, Steps: true}

	r := &Runner{Now: zeroNow}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Exact.Solution.Rho(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0.5 || v > 1 {
		t.Errorf("rho(10,5) = %v", v)
	}
	if res.Exact.Ceiling != ExactCeiling(10, 5, 0) {
		t.Errorf("ceiling %d, want %d", res.Exact.Ceiling, ExactCeiling(10, 5, 0))
	}
	if len(res.Manifests) != 1 {
		t.Fatal("exact result has no manifest")
	}

	// Table form.
	spec.Exact = &ExactSpec{Table: 4}
	res, err = r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Manifests[0].Tables[0]
	if len(tbl.Columns) != 5 || len(tbl.Rows) != 4 {
		t.Errorf("table shape %dx%d, want 4x5", len(tbl.Rows), len(tbl.Columns))
	}
}

// TestRunnerExperimentManifestMatchesDirect is the acceptance tie: the
// runner's experiment task must produce byte-identical manifests to the
// direct registry path cmd/experiments uses (wall time excepted — it is
// provenance, not a result).
func TestRunnerExperimentManifestMatchesDirect(t *testing.T) {
	spec := New(TaskExperiment)
	spec.Seed = 20240506
	spec.Experiment = &ExperimentSpec{ID: "E-DOM"}

	r := &Runner{Now: zeroNow}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	e, err := experiment.ByID("E-DOM")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(experiment.Config{Seed: 20240506})
	if err != nil {
		t.Fatal(err)
	}
	want := report.New(e, report.RunInfo{Seed: 20240506}, tables)

	got := *res.Manifests[0]
	got.WallTimeNS = 0
	gotJSON, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("runner manifest differs from direct run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

func TestRunnerCachePolicies(t *testing.T) {
	grid := []int{64, 96}
	newSweepSpec := func(cache *CacheSpec) Spec {
		s := New(TaskSweep)
		s.Model = lvSDModel()
		s.Seed = 5
		s.Cache = cache
		s.Sweep = &SweepSpec{Grid: grid, Trials: 200, Target: 0.9}
		return s
	}

	t.Run("file persists", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "probes.json")
		r := &Runner{Now: zeroNow}
		res, err := r.Run(context.Background(), newSweepSpec(&CacheSpec{Policy: CacheFile, Path: path}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Sweep.EstimatorCalls == 0 {
			t.Fatal("cold sweep made no estimator calls")
		}
		res2, err := r.Run(context.Background(), newSweepSpec(&CacheSpec{Policy: CacheFile, Path: path}))
		if err != nil {
			t.Fatal(err)
		}
		if res2.Sweep.EstimatorCalls != 0 {
			t.Errorf("warm file-cache rerun made %d estimator calls", res2.Sweep.EstimatorCalls)
		}
		if res2.Manifests[0].SweepCacheHits == 0 {
			t.Error("manifest records no cache hits on a warm rerun")
		}
	})

	t.Run("shared reused across runs", func(t *testing.T) {
		r := &Runner{Now: zeroNow}
		if _, err := r.Run(context.Background(), newSweepSpec(&CacheSpec{Policy: CacheShared})); err != nil {
			t.Fatal(err)
		}
		res2, err := r.Run(context.Background(), newSweepSpec(&CacheSpec{Policy: CacheShared}))
		if err != nil {
			t.Fatal(err)
		}
		if res2.Sweep.EstimatorCalls != 0 {
			t.Errorf("second shared-cache run made %d estimator calls", res2.Sweep.EstimatorCalls)
		}
	})

	t.Run("memory not reused", func(t *testing.T) {
		r := &Runner{Now: zeroNow}
		res1, err := r.Run(context.Background(), newSweepSpec(&CacheSpec{Policy: CacheMemory}))
		if err != nil {
			t.Fatal(err)
		}
		res2, err := r.Run(context.Background(), newSweepSpec(&CacheSpec{Policy: CacheMemory}))
		if err != nil {
			t.Fatal(err)
		}
		if res2.Sweep.EstimatorCalls != res1.Sweep.EstimatorCalls {
			t.Errorf("memory policy leaked probes between runs: %d vs %d",
				res2.Sweep.EstimatorCalls, res1.Sweep.EstimatorCalls)
		}
	})
}

func TestRunnerCancellation(t *testing.T) {
	spec := New(TaskSweep)
	spec.Model = lvSDModel()
	spec.Seed = 5
	spec.Sweep = &SweepSpec{Grid: []int{256, 512, 1024}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Now: zeroNow}
	if _, err := r.Run(ctx, spec); err == nil {
		t.Error("cancelled sweep returned nil error")
	}

	// Cancellation mid-run: cancel shortly after the run starts.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(ctx2, spec)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if err == nil {
			t.Log("run finished before the cancel landed; nothing to assert")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return within 30s")
	}
}

func TestRunnerReportTask(t *testing.T) {
	dir := t.TempDir()
	spec := New(TaskReport)
	spec.Report = &ReportSpec{Design: filepath.Join(dir, "DESIGN.md")}

	r := &Runner{Now: zeroNow}
	res, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ExperimentCount == 0 || res.Report.DesignWritten == "" {
		t.Errorf("report result %+v", res.Report)
	}
}
