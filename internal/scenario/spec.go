// Package scenario is the repository's declarative run API. Every workload
// the six CLIs (and the cmd/serve HTTP facade) execute is an instance of one
// shape — a model, an engine/kernel choice, a task, a parameter grid, a
// budget, a seed — so it is described by one serializable Spec and executed
// by one Runner:
//
//   - A Spec is a strict, losslessly JSON-round-trippable description of a
//     run: which model (a Lotka–Volterra chain, a registered protocol, a CRN
//     text network, or a registered experiment ID), which task (estimate,
//     threshold, sweep, simulate, exact, experiment, report), and every
//     knob that affects the result — grid, trials, target, seed, workers,
//     cache policy. Unknown fields are rejected, so a spec can never
//     silently mean less than it says.
//   - A Runner executes any valid Spec on the shared internal/mc worker
//     pool, optionally against a process-wide probe cache (internal/sweep),
//     and returns a typed Result embedding internal/report manifests, so
//     every run — CLI or server — carries full provenance.
//
// The CLIs are thin front-ends over this API: each parses its flags into a
// Spec (printable with -dump-spec, replayable with -spec), so any shell
// invocation is reproducible as data, and the same specs run over HTTP via
// cmd/serve.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"lvmajority/internal/protocols"
)

// SpecVersion is the Spec schema version. Parse rejects specs written by an
// incompatible future schema instead of misreading them.
const SpecVersion = 1

// Task selects what a Spec computes.
type Task string

// The tasks a Runner executes.
const (
	// TaskEstimate estimates the majority-consensus probability ρ(n, Δ)
	// for one population size and gap (Monte Carlo, Wilson interval).
	TaskEstimate Task = "estimate"
	// TaskThreshold searches the empirical threshold Ψ(n) for one
	// population size.
	TaskThreshold Task = "threshold"
	// TaskSweep computes a whole threshold curve Ψ(n) over a population
	// grid on the internal/sweep engine (warm starts, probe cache, lanes).
	TaskSweep Task = "sweep"
	// TaskSimulate runs batch simulations of the model from an explicit
	// initial state and aggregates outcome statistics.
	TaskSimulate Task = "simulate"
	// TaskExact solves the first-step recurrence exactly (no Monte Carlo):
	// ρ(a, b) and optionally expected consensus times.
	TaskExact Task = "exact"
	// TaskExperiment runs one registered experiment from the
	// internal/experiment registry.
	TaskExperiment Task = "experiment"
	// TaskReport generates result documentation or re-renders a saved run
	// manifest (the cmd/report workload).
	TaskReport Task = "report"
)

// Spec is the declarative description of one run. Exactly one task-options
// field — the one matching Task — may be set; Model is required for every
// task except experiment and report.
type Spec struct {
	// Version is the schema version (SpecVersion).
	Version int `json:"version"`
	// Task selects what to compute.
	Task Task `json:"task"`
	// Model describes the stochastic model the task runs on.
	Model *Model `json:"model,omitempty"`
	// Seed is the root seed; every result is bit-reproducible per seed.
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the parallel worker budget (0 = GOMAXPROCS). It affects
	// scheduling only, never results.
	Workers int `json:"workers,omitempty"`
	// Timeout is the wall-clock budget for the run as a Go duration string
	// (e.g. "90s", "5m"); empty means no deadline. A run that exceeds it
	// fails with a timeout error — partial results already settled in a
	// persistent cache are kept, so a rerun with a larger budget resumes
	// rather than restarts. Like Workers it can only abort a run, never
	// change a completed run's results.
	Timeout string `json:"timeout,omitempty"`
	// Cache selects the threshold-probe cache policy (nil = off).
	Cache *CacheSpec `json:"cache,omitempty"`

	Estimate   *EstimateSpec   `json:"estimate,omitempty"`
	Threshold  *ThresholdSpec  `json:"threshold,omitempty"`
	Sweep      *SweepSpec      `json:"sweep,omitempty"`
	Simulate   *SimulateSpec   `json:"simulate,omitempty"`
	Exact      *ExactSpec      `json:"exact,omitempty"`
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	Report     *ReportSpec     `json:"report,omitempty"`
}

// Model describes a stochastic model: exactly one of LV, Protocol, or CRN,
// selected by Kind.
type Model struct {
	// Kind is "lv", "protocol", or "crn".
	Kind string `json:"kind"`
	// LV is the two-species Lotka–Volterra chain of the paper.
	LV *LVModel `json:"lv,omitempty"`
	// Protocol names a registered consensus protocol (see ProtocolNames).
	Protocol *ProtocolModel `json:"protocol,omitempty"`
	// CRN is an arbitrary chemical reaction network in the internal/crn
	// text format.
	CRN *CRNModel `json:"crn,omitempty"`
}

// LVModel carries the Lotka–Volterra rate constants. All rates are explicit
// — a spec never relies on implicit defaults, so it means the same thing in
// every version of the code.
type LVModel struct {
	// Beta and Death are the per-capita birth and death rates.
	Beta  float64 `json:"beta"`
	Death float64 `json:"death"`
	// Alpha0 and Alpha1 are the interspecific competition rates initiated
	// by species 0 and 1.
	Alpha0 float64 `json:"alpha0"`
	Alpha1 float64 `json:"alpha1"`
	// Gamma0 and Gamma1 are the intraspecific competition rates.
	Gamma0 float64 `json:"gamma0,omitempty"`
	Gamma1 float64 `json:"gamma1,omitempty"`
	// Competition is "sd" (self-destructive) or "nsd".
	Competition string `json:"competition"`
	// Ties scores double extinction: "" or "loss" (the paper's strict
	// definition) or "coinflip".
	Ties string `json:"ties,omitempty"`
	// MaxSteps bounds each consensus trial (0 = the lv package default).
	MaxSteps int `json:"max_steps,omitempty"`
	// Label overrides the generated protocol name in tables and logs.
	Label string `json:"label,omitempty"`
}

// ProtocolModel names a protocol from the registry (ProtocolNames lists the
// valid names) with an optional kernel override.
type ProtocolModel struct {
	// Name is the registry name, e.g. "lv-sd" or "3-state-am".
	Name string `json:"name"`
	// Kernel overrides the trial event loop of population protocols:
	// "" (the protocol's default), "batch", or "per-event".
	Kernel string `json:"kernel,omitempty"`
}

// CRNModel is an inline chemical reaction network. The network text is
// embedded, not referenced by path, so the spec is self-contained and safe
// to execute server-side.
type CRNModel struct {
	// Text is the network description in the internal/crn text format.
	Text string `json:"text"`
	// Engine selects the simulation engine (internal/sim): "" or "direct"
	// (exact Gillespie SSA), "nrm" (Gibson–Bruck next-reaction method), or
	// "leap" (explicit tau-leaping).
	Engine string `json:"engine,omitempty"`
}

// CacheSpec selects the threshold-probe cache policy of a run.
type CacheSpec struct {
	// Policy is "off", "memory" (fresh in-memory cache for this run),
	// "shared" (the Runner's process-wide cache, shared by every run that
	// asks for it), "file" (persisted at Path), or "remote" (exchanged
	// with the HTTP cache server at URL — typically a fabric coordinator's
	// /fabric/v1/cache endpoint — so a fleet warm-starts from one
	// another's probes). The cache never changes results; it only skips
	// already-settled Monte-Carlo work.
	Policy string `json:"policy"`
	// Path is the cache file for the "file" policy.
	Path string `json:"path,omitempty"`
	// URL is the cache server for the "remote" policy.
	URL string `json:"url,omitempty"`
}

// EstimateSpec parameterizes TaskEstimate.
type EstimateSpec struct {
	// N is the total initial population; Delta the initial gap (same
	// parity as N).
	N     int `json:"n"`
	Delta int `json:"delta"`
	// Trials is the Monte-Carlo budget (0 = 1000).
	Trials int `json:"trials,omitempty"`
	// EarlyStop stops as soon as the Wilson interval settles the
	// comparison against Target (required > 0 when set).
	EarlyStop bool    `json:"early_stop,omitempty"`
	Target    float64 `json:"target,omitempty"`
}

// ThresholdSpec parameterizes TaskThreshold.
type ThresholdSpec struct {
	// N is the total initial population.
	N int `json:"n"`
	// Trials is the per-gap Monte-Carlo budget (0 = 2000).
	Trials int `json:"trials,omitempty"`
	// Target is the success probability defining the threshold (0 =
	// 1 − 1/n, the paper's criterion).
	Target float64 `json:"target,omitempty"`
	// MaxDelta caps the search (0 = n−2).
	MaxDelta int `json:"max_delta,omitempty"`
	// NoEarlyStop disables the sequential estimator (on by default).
	NoEarlyStop bool `json:"no_early_stop,omitempty"`
	// Hint warm-starts the search (0 = cold exponential search).
	Hint int `json:"hint,omitempty"`
}

// SweepSpec parameterizes TaskSweep.
type SweepSpec struct {
	// Grid is the set of population sizes (sorted and deduplicated).
	Grid []int `json:"grid"`
	// Trials is the per-gap budget; 0 selects the historical per-n rule
	// DefaultSweepTrials (2n clamped to [1000, 8000]).
	Trials int `json:"trials,omitempty"`
	// Target is the success probability (0 = 1 − 1/n per point).
	Target float64 `json:"target,omitempty"`
	// Lanes is the number of concurrent per-n searches (0 = 1).
	Lanes int `json:"lanes,omitempty"`
	// MaxDelta caps each search (0 = n−2).
	MaxDelta int `json:"max_delta,omitempty"`
	// Cold disables warm-started brackets.
	Cold bool `json:"cold,omitempty"`
	// NoEarlyStop disables the sequential estimator.
	NoEarlyStop bool `json:"no_early_stop,omitempty"`
	// Verbose asks front-ends to print every probed gap.
	Verbose bool `json:"verbose,omitempty"`
}

// SimulateSpec parameterizes TaskSimulate: batch runs of the model from an
// explicit initial state.
type SimulateSpec struct {
	// Runs is the number of independent runs.
	Runs int `json:"runs"`
	// A and B are the initial species counts for LV models.
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
	// Init maps species names to initial counts for CRN models; unlisted
	// species start at 0.
	Init map[string]int `json:"init,omitempty"`
	// MaxSteps is the per-run event budget. Zero keeps each model's
	// historical semantics: the lv package default for LV chains,
	// unlimited for CRN models (whose front-end defaults the flag to a
	// 10M budget instead).
	MaxSteps int `json:"max_steps,omitempty"`
	// MaxTime is the per-run simulated-time budget for CRN models (0 =
	// unlimited); a positive value switches the engine to the Gillespie
	// clock.
	MaxTime float64 `json:"max_time,omitempty"`
	// Trace, Plot and Echo are presentation directives honoured by the
	// CLI front-ends (per-event trace / ASCII chart of the first run,
	// echo of the parsed network); the Runner's batch statistics ignore
	// them.
	Trace bool `json:"trace,omitempty"`
	Plot  bool `json:"plot,omitempty"`
	Echo  bool `json:"echo,omitempty"`
}

// ExactSpec parameterizes TaskExact: exact solutions of the first-step
// recurrence (Eq. 8 of the paper) on a truncated grid.
type ExactSpec struct {
	// A and B are the species counts to evaluate ρ at.
	A int `json:"a"`
	B int `json:"b"`
	// Tie is the value of the double-extinction state (0 = paper-strict,
	// 0.5 = fair tiebreak).
	Tie float64 `json:"tie,omitempty"`
	// Max is the grid ceiling (0 = the historical rule 4·(a+b)+40,
	// raised to 4·Table+40 when Table is larger).
	Max int `json:"max,omitempty"`
	// Table, when positive, evaluates the full ρ table up to this count
	// instead of the single state.
	Table int `json:"table,omitempty"`
	// Steps also computes expected consensus times.
	Steps bool `json:"steps,omitempty"`
}

// ExperimentSpec parameterizes TaskExperiment.
type ExperimentSpec struct {
	// ID is the registered experiment ID (internal/experiment.ByID).
	ID string `json:"id"`
	// Full selects the heavier recorded grids.
	Full bool `json:"full,omitempty"`
	// CSVDir, when non-empty, also writes per-table CSV files there.
	CSVDir string `json:"csv_dir,omitempty"`
	// ReportDir, when non-empty, also writes the JSON run manifest there.
	ReportDir string `json:"report_dir,omitempty"`
	// Kernel overrides the event loop of the population protocols the
	// experiment measures: "" (default batch), "batch", "per-event", or
	// "lockstep". A performance knob only — the kernels agree in law.
	Kernel string `json:"kernel,omitempty"`
}

// ReportSpec parameterizes TaskReport: documentation generation and
// manifest re-rendering.
type ReportSpec struct {
	// Design, when non-empty, writes the generated DESIGN.md there.
	Design string `json:"design,omitempty"`
	// Experiments, when non-empty, writes the generated EXPERIMENTS.md
	// there, reading manifests from Manifests.
	Experiments string `json:"experiments,omitempty"`
	Manifests   string `json:"manifests,omitempty"`
	// Render re-renders the manifest at Manifest: "ascii", "md", or "csv"
	// (csv writes into Out).
	Render   string `json:"render,omitempty"`
	Manifest string `json:"manifest,omitempty"`
	Out      string `json:"out,omitempty"`
}

// New returns a Spec of the given task with the current schema version.
func New(task Task) Spec {
	return Spec{Version: SpecVersion, Task: task}
}

// Validate checks that the spec is complete and internally consistent: the
// schema version matches, exactly the task-options field matching Task is
// set, the model (when required) is well-formed, and every parameter is in
// range. A valid spec is executable by a Runner.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: spec version %d, want %d", s.Version, SpecVersion)
	}
	set := map[Task]bool{
		TaskEstimate:   s.Estimate != nil,
		TaskThreshold:  s.Threshold != nil,
		TaskSweep:      s.Sweep != nil,
		TaskSimulate:   s.Simulate != nil,
		TaskExact:      s.Exact != nil,
		TaskExperiment: s.Experiment != nil,
		TaskReport:     s.Report != nil,
	}
	if _, known := set[s.Task]; !known {
		return fmt.Errorf("scenario: unknown task %q", s.Task)
	}
	for task, present := range set {
		if present && task != s.Task {
			return fmt.Errorf("scenario: %s options set on a %q spec", task, s.Task)
		}
	}
	if !set[s.Task] {
		return fmt.Errorf("scenario: %s spec without %s options", s.Task, s.Task)
	}
	if s.Workers < 0 {
		return fmt.Errorf("scenario: negative workers %d", s.Workers)
	}
	if s.Timeout != "" {
		d, err := time.ParseDuration(s.Timeout)
		if err != nil {
			return fmt.Errorf("scenario: invalid timeout %q: %w", s.Timeout, err)
		}
		if d <= 0 {
			return fmt.Errorf("scenario: non-positive timeout %q", s.Timeout)
		}
	}
	if err := s.Cache.validate(); err != nil {
		return err
	}

	needModel := s.Task != TaskExperiment && s.Task != TaskReport
	if needModel && s.Model == nil {
		return fmt.Errorf("scenario: %s spec without a model", s.Task)
	}
	if !needModel && s.Model != nil {
		return fmt.Errorf("scenario: %s spec does not take a model", s.Task)
	}
	if s.Model != nil {
		if err := s.Model.validate(); err != nil {
			return err
		}
	}

	switch s.Task {
	case TaskEstimate:
		e := s.Estimate
		if e.N < 3 {
			return fmt.Errorf("scenario: estimate population %d too small", e.N)
		}
		if e.Delta < 0 || e.Delta >= e.N {
			return fmt.Errorf("scenario: estimate gap %d infeasible for n=%d", e.Delta, e.N)
		}
		if (e.N-e.Delta)%2 != 0 {
			return fmt.Errorf("scenario: estimate n=%d and delta=%d have different parity", e.N, e.Delta)
		}
		if e.Trials < 0 {
			return fmt.Errorf("scenario: negative trials %d", e.Trials)
		}
		if e.EarlyStop && (e.Target <= 0 || e.Target >= 1) {
			return fmt.Errorf("scenario: early-stop estimate needs a target in (0, 1), got %v", e.Target)
		}
		if !e.EarlyStop && e.Target != 0 {
			return fmt.Errorf("scenario: estimate target %v without early_stop", e.Target)
		}
	case TaskThreshold:
		th := s.Threshold
		if th.N < 3 {
			return fmt.Errorf("scenario: threshold population %d too small", th.N)
		}
		if th.Trials < 0 || th.MaxDelta < 0 || th.Hint < 0 {
			return fmt.Errorf("scenario: negative threshold parameter")
		}
		if th.Target < 0 || th.Target >= 1 {
			return fmt.Errorf("scenario: threshold target %v outside [0, 1)", th.Target)
		}
	case TaskSweep:
		sw := s.Sweep
		if len(sw.Grid) == 0 {
			return fmt.Errorf("scenario: sweep with an empty population grid")
		}
		for _, n := range sw.Grid {
			if n < 4 {
				return fmt.Errorf("scenario: sweep population %d too small", n)
			}
		}
		if sw.Trials < 0 || sw.Lanes < 0 || sw.MaxDelta < 0 {
			return fmt.Errorf("scenario: negative sweep parameter")
		}
		if sw.Target < 0 || sw.Target >= 1 {
			return fmt.Errorf("scenario: sweep target %v outside [0, 1)", sw.Target)
		}
	case TaskSimulate:
		sm := s.Simulate
		if sm.Runs < 1 {
			return fmt.Errorf("scenario: simulate needs at least one run, got %d", sm.Runs)
		}
		if sm.MaxSteps < 0 || sm.MaxTime < 0 {
			return fmt.Errorf("scenario: negative simulate budget")
		}
		switch s.Model.Kind {
		case ModelLV:
			if sm.A < 0 || sm.B < 0 || sm.A+sm.B == 0 {
				return fmt.Errorf("scenario: infeasible LV initial state (%d, %d)", sm.A, sm.B)
			}
			if len(sm.Init) != 0 {
				return fmt.Errorf("scenario: init map set on an LV simulate spec")
			}
			if sm.MaxTime != 0 {
				return fmt.Errorf("scenario: max_time is not supported by the LV kernel")
			}
			if sm.Echo {
				return fmt.Errorf("scenario: echo set on an LV simulate spec")
			}
		case ModelCRN:
			if sm.A != 0 || sm.B != 0 {
				return fmt.Errorf("scenario: a/b set on a CRN simulate spec (use init)")
			}
			for name, count := range sm.Init {
				if count < 0 {
					return fmt.Errorf("scenario: negative initial count %d for species %s", count, name)
				}
			}
			if sm.Plot {
				return fmt.Errorf("scenario: plot set on a CRN simulate spec")
			}
		default:
			return fmt.Errorf("scenario: simulate supports lv and crn models, not %q", s.Model.Kind)
		}
	case TaskExact:
		e := s.Exact
		if e.Table < 0 || e.Max < 0 {
			return fmt.Errorf("scenario: negative exact parameter")
		}
		if e.Table == 0 && (e.A < 1 || e.B < 1) {
			return fmt.Errorf("scenario: exact state (%d, %d) needs positive counts", e.A, e.B)
		}
		if e.Tie < 0 || e.Tie > 1 {
			return fmt.Errorf("scenario: exact tie value %v outside [0, 1]", e.Tie)
		}
		if s.Model.Kind == ModelProtocol {
			return fmt.Errorf("scenario: exact supports lv and crn models, not %q", s.Model.Kind)
		}
	case TaskExperiment:
		if s.Experiment.ID == "" {
			return fmt.Errorf("scenario: experiment spec without an id")
		}
		if _, err := protocols.ParseKernel(s.Experiment.Kernel); err != nil {
			return err
		}
	case TaskReport:
		r := s.Report
		if r.Render != "" {
			if r.Design != "" || r.Experiments != "" {
				return fmt.Errorf("scenario: report render cannot be combined with design/experiments generation")
			}
			if r.Manifest == "" {
				return fmt.Errorf("scenario: report render without a manifest file")
			}
			switch r.Render {
			case "ascii", "md", "markdown":
			case "csv":
				if r.Out == "" {
					return fmt.Errorf("scenario: report render csv without an output directory")
				}
			default:
				return fmt.Errorf("scenario: unknown report render format %q", r.Render)
			}
		} else if r.Design == "" && r.Experiments == "" {
			return fmt.Errorf("scenario: report spec with nothing to do")
		}
		if r.Experiments != "" && r.Manifests == "" {
			return fmt.Errorf("scenario: report experiments generation without a manifest directory")
		}
	}
	return nil
}

func (c *CacheSpec) validate() error {
	if c == nil {
		return nil
	}
	switch c.Policy {
	case CacheOff, CacheMemory, CacheShared:
		if c.Path != "" {
			return fmt.Errorf("scenario: cache path %q with policy %q", c.Path, c.Policy)
		}
	case CacheFile:
		if c.Path == "" {
			return fmt.Errorf("scenario: file cache policy without a path")
		}
	case CacheRemote:
		if c.Path != "" {
			return fmt.Errorf("scenario: cache path %q with policy %q", c.Path, c.Policy)
		}
		if c.URL == "" {
			return fmt.Errorf("scenario: remote cache policy without a url")
		}
	default:
		return fmt.Errorf("scenario: unknown cache policy %q", c.Policy)
	}
	if c.URL != "" && c.Policy != CacheRemote {
		return fmt.Errorf("scenario: cache url %q with policy %q", c.URL, c.Policy)
	}
	return nil
}

// The cache policies a CacheSpec selects.
const (
	CacheOff    = "off"
	CacheMemory = "memory"
	CacheShared = "shared"
	CacheFile   = "file"
	CacheRemote = "remote"
)

// LocalPaths returns every local-filesystem path the spec would read or
// write when executed: cache files, CSV/manifest output directories, and
// the report task's documents. A network server refuses specs with local
// paths — a remote caller must not direct the serving process's filesystem.
func (s *Spec) LocalPaths() []string {
	var paths []string
	add := func(p string) {
		if p != "" {
			paths = append(paths, p)
		}
	}
	if s.Cache != nil {
		add(s.Cache.Path)
	}
	if s.Experiment != nil {
		add(s.Experiment.CSVDir)
		add(s.Experiment.ReportDir)
	}
	if s.Report != nil {
		add(s.Report.Design)
		add(s.Report.Experiments)
		add(s.Report.Manifests)
		add(s.Report.Manifest)
		add(s.Report.Out)
	}
	return paths
}

// ParseSpec decodes one spec from strict JSON: unknown fields are rejected,
// and the result is validated.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := trailingData(dec); err != nil {
		return Spec{}, err
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSpecs decodes either a single spec object or a JSON array of specs —
// the two forms WriteSpecs emits — strictly, validating every spec.
func ParseSpecs(data []byte) ([]Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var specs []Spec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&specs); err != nil {
			return nil, fmt.Errorf("scenario: parsing spec list: %w", err)
		}
		if err := trailingData(dec); err != nil {
			return nil, err
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("scenario: empty spec list")
		}
		for i := range specs {
			if err := specs[i].Validate(); err != nil {
				return nil, fmt.Errorf("spec %d: %w", i, err)
			}
		}
		return specs, nil
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return []Spec{s}, nil
}

func trailingData(dec *json.Decoder) error {
	if dec.More() {
		return fmt.Errorf("scenario: trailing data after spec")
	}
	return nil
}

// LoadSpecs reads specs from a file (see ParseSpecs).
func LoadSpecs(path string) ([]Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading spec: %w", err)
	}
	return ParseSpecs(data)
}

// MarshalIndent renders the spec as indented JSON with a trailing newline —
// the canonical -dump-spec form.
func (s *Spec) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	return append(data, '\n'), nil
}

// marshalSpecList renders several specs as an indented JSON array with a
// trailing newline.
func marshalSpecList(specs []Spec) ([]byte, error) {
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding specs: %w", err)
	}
	return append(data, '\n'), nil
}
