package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommonSpecsConflict(t *testing.T) {
	dir := t.TempDir()
	spec := sampleSpecs()["estimate"]
	data, err := spec.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	build := func() ([]Spec, error) { t.Fatal("build called despite -spec"); return nil, nil }

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterRun(fs, 1)
	if err := fs.Parse([]string{"-spec", path}); err != nil {
		t.Fatal(err)
	}
	specs, err := c.Specs(fs, build)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Task != TaskEstimate {
		t.Errorf("loaded %d specs, task %v", len(specs), specs[0].Task)
	}

	fs = flag.NewFlagSet("x", flag.ContinueOnError)
	c = RegisterRun(fs, 1)
	if err := fs.Parse([]string{"-spec", path, "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Specs(fs, build); err == nil {
		t.Error("-spec combined with -seed accepted")
	}
}

func TestCommonSpecsBuildsWithoutSpec(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := RegisterRun(fs, 42)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 {
		t.Errorf("default seed %d", c.Seed)
	}
	want := sampleSpecs()["simulate"]
	specs, err := c.Specs(fs, func() ([]Spec, error) { return []Spec{want}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Task != TaskSimulate {
		t.Errorf("build path returned %v", specs)
	}
}

func TestWriteSpecsForms(t *testing.T) {
	one := []Spec{sampleSpecs()["estimate"]}
	var buf bytes.Buffer
	if err := WriteSpecs(&buf, one); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "{") {
		t.Errorf("single spec not an object:\n%s", buf.String())
	}
	back, err := ParseSpecs(buf.Bytes())
	if err != nil || len(back) != 1 {
		t.Fatalf("round trip: %v, %d specs", err, len(back))
	}

	two := []Spec{sampleSpecs()["estimate"], sampleSpecs()["simulate"]}
	buf.Reset()
	if err := WriteSpecs(&buf, two); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "[") {
		t.Errorf("spec list not an array:\n%s", buf.String())
	}
	back, err = ParseSpecs(buf.Bytes())
	if err != nil || len(back) != 2 {
		t.Fatalf("round trip: %v, %d specs", err, len(back))
	}
}

func TestVersionString(t *testing.T) {
	v := Version()
	if !strings.Contains(v, "lvmajority") || !strings.Contains(v, "go1.") {
		t.Errorf("version string %q", v)
	}
}
