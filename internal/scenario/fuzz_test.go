package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecJSON asserts the parser's total-function contract: no byte
// sequence may panic ParseSpec or ParseSpecs — malformed specs fail with an
// error, and anything accepted must survive a validate round trip. The seed
// corpus is every committed golden spec (the experiment and tier-1 specs
// plus the speclock corpus), so the fuzzer starts from the real schema and
// mutates outward.
func FuzzSpecJSON(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "specs", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, filepath.Join("testdata", "speclock_golden.json"))
	if len(seeds) < 2 {
		f.Fatalf("seed corpus too small: %v", seeds)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"task":"estimate"`))
	f.Add([]byte(`[[]]`))
	f.Add([]byte(`{"version":1e999}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are the expected outcome for junk.
		if s, err := ParseSpec(data); err == nil {
			if verr := s.Validate(); verr != nil {
				t.Errorf("ParseSpec accepted a spec Validate rejects: %v", verr)
			}
		}
		if specs, err := ParseSpecs(data); err == nil {
			for i := range specs {
				if verr := specs[i].Validate(); verr != nil {
					t.Errorf("ParseSpecs accepted spec %d that Validate rejects: %v", i, verr)
				}
			}
		}
	})
}
