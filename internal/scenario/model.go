package scenario

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"lvmajority/internal/consensus"
	"lvmajority/internal/crn"
	"lvmajority/internal/exploit"
	"lvmajority/internal/gossip"
	"lvmajority/internal/lv"
	"lvmajority/internal/moran"
	"lvmajority/internal/protocols"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
)

// The model kinds a Spec describes.
const (
	// ModelLV is the paper's two-species Lotka–Volterra chain with
	// explicit rate constants.
	ModelLV = "lv"
	// ModelProtocol is a named protocol from the registry.
	ModelProtocol = "protocol"
	// ModelCRN is an inline chemical reaction network.
	ModelCRN = "crn"
)

// The CRN engines a CRNModel selects (internal/sim).
const (
	EngineDirect = "direct"
	EngineNRM    = "nrm"
	EngineLeap   = "leap"
)

// The population-protocol kernels a ProtocolModel selects.
const (
	KernelBatch    = "batch"
	KernelPerEvent = "per-event"
	KernelLockstep = "lockstep"
)

// validate checks the model's internal consistency.
func (m *Model) validate() error {
	switch m.Kind {
	case ModelLV:
		if m.LV == nil || m.Protocol != nil || m.CRN != nil {
			return fmt.Errorf("scenario: lv model must set exactly the lv field")
		}
		if _, err := m.LV.Params(); err != nil {
			return err
		}
		switch m.LV.Ties {
		case "", "loss", "coinflip":
		default:
			return fmt.Errorf("scenario: unknown ties value %q (want loss or coinflip)", m.LV.Ties)
		}
		if m.LV.MaxSteps < 0 {
			return fmt.Errorf("scenario: negative max_steps %d", m.LV.MaxSteps)
		}
	case ModelProtocol:
		if m.Protocol == nil || m.LV != nil || m.CRN != nil {
			return fmt.Errorf("scenario: protocol model must set exactly the protocol field")
		}
		p, err := ProtocolByName(m.Protocol.Name)
		if err != nil {
			return err
		}
		switch m.Protocol.Kernel {
		case "":
		case KernelBatch, KernelPerEvent, KernelLockstep:
			// A kernel only means something for population protocols;
			// rejecting the mismatch here keeps the contract that a
			// Validate-clean spec is executable (the server answers 400,
			// not a failed run the client must poll to discover).
			if _, ok := p.(*protocols.PopulationProtocol); !ok {
				return fmt.Errorf("scenario: protocol %q is not a population protocol; it has no kernel", m.Protocol.Name)
			}
		default:
			return fmt.Errorf("scenario: unknown kernel %q (want batch, per-event, or lockstep)", m.Protocol.Kernel)
		}
	case ModelCRN:
		if m.CRN == nil || m.LV != nil || m.Protocol != nil {
			return fmt.Errorf("scenario: crn model must set exactly the crn field")
		}
		if _, err := crn.Parse(m.CRN.Text); err != nil {
			return err
		}
		switch m.CRN.Engine {
		case "", EngineDirect, EngineNRM, EngineLeap:
		default:
			return fmt.Errorf("scenario: unknown crn engine %q (want direct, nrm, or leap)", m.CRN.Engine)
		}
	default:
		return fmt.Errorf("scenario: unknown model kind %q (want lv, protocol, or crn)", m.Kind)
	}
	return nil
}

// Params converts the LV model to lv.Params, validating the rates.
func (m *LVModel) Params() (lv.Params, error) {
	var comp lv.Competition
	switch m.Competition {
	case "sd":
		comp = lv.SelfDestructive
	case "nsd":
		comp = lv.NonSelfDestructive
	default:
		return lv.Params{}, fmt.Errorf("scenario: unknown competition model %q (want sd or nsd)", m.Competition)
	}
	p := lv.Params{
		Beta: m.Beta, Delta: m.Death,
		Alpha:       [2]float64{m.Alpha0, m.Alpha1},
		Gamma:       [2]float64{m.Gamma0, m.Gamma1},
		Competition: comp,
	}
	if err := p.Validate(); err != nil {
		return lv.Params{}, err
	}
	return p, nil
}

// LVModelOf is the inverse of LVModel.Params: it describes existing
// lv.Params as a spec model, which is how the lvsim and rho front-ends turn
// their rate flags into a Spec.
func LVModelOf(p lv.Params) *LVModel {
	comp := "sd"
	if p.Competition == lv.NonSelfDestructive {
		comp = "nsd"
	}
	return &LVModel{
		Beta: p.Beta, Death: p.Delta,
		Alpha0: p.Alpha[0], Alpha1: p.Alpha[1],
		Gamma0: p.Gamma[0], Gamma1: p.Gamma[1],
		Competition: comp,
	}
}

// BuildProtocol builds the consensus.Protocol the estimate, threshold, and
// sweep tasks measure. It is exported for the fabric worker, which receives
// a Model over the wire and must build exactly the protocol — including any
// kernel override, which changes how trial streams are consumed — that the
// coordinator's local run would build; every other caller goes through the
// Runner.
func (m *Model) BuildProtocol() (consensus.Protocol, error) {
	switch m.Kind {
	case ModelLV:
		params, err := m.LV.Params()
		if err != nil {
			return nil, err
		}
		ties := consensus.TieIsLoss
		if m.LV.Ties == "coinflip" {
			ties = consensus.TieIsCoinFlip
		}
		return consensus.LVProtocol{
			Params:   params,
			Ties:     ties,
			MaxSteps: m.LV.MaxSteps,
			Label:    m.LV.Label,
		}, nil
	case ModelProtocol:
		p, err := ProtocolByName(m.Protocol.Name)
		if err != nil {
			return nil, err
		}
		if m.Protocol.Kernel != "" {
			pop, ok := p.(*protocols.PopulationProtocol)
			if !ok {
				return nil, fmt.Errorf("scenario: protocol %q is not a population protocol; it has no kernel", m.Protocol.Name)
			}
			kernel, err := protocols.ParseKernel(m.Protocol.Kernel)
			if err != nil {
				return nil, err
			}
			pop.Kernel = kernel
		}
		return p, nil
	case ModelCRN:
		net, err := crn.Parse(m.CRN.Text)
		if err != nil {
			return nil, err
		}
		if net.NumSpecies() != 2 {
			return nil, fmt.Errorf("scenario: consensus tasks need a two-species network, got %d species", net.NumSpecies())
		}
		return &crnProtocol{net: net, engine: m.CRN.Engine, text: m.CRN.Text}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown model kind %q", m.Kind)
	}
}

// crnDefaultMaxSteps bounds a CRN consensus trial, mirroring the crnrun
// batch default.
const crnDefaultMaxSteps = 10_000_000

// crnProtocol adapts a two-species CRN to the consensus.Protocol interface:
// the first declared species is the majority by convention, a trial starts
// from SplitInitial(n, delta), and the majority wins when it alone survives
// at absorption (or at the step budget).
type crnProtocol struct {
	net    *crn.Network
	engine string
	text   string
}

// Name implements consensus.Protocol.
func (p *crnProtocol) Name() string {
	return fmt.Sprintf("crn[%d reactions]", p.net.NumReactions())
}

// CacheKey implements sweep.CacheKeyer: the network text (hashed) and the
// engine identify the dynamics, so editing the network invalidates cached
// probes.
func (p *crnProtocol) CacheKey() string {
	return fmt.Sprintf("crn:%x|engine=%s", sha256.Sum256([]byte(p.text)), p.engine)
}

// Trial implements consensus.Protocol.
func (p *crnProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	a, b, err := consensus.SplitInitial(n, delta)
	if err != nil {
		return false, err
	}
	e, err := newCRNEngine(p.net, []int{a, b}, p.engine, 0, src)
	if err != nil {
		return false, err
	}
	if _, err := sim.Run(e, func(state []int) bool {
		return state[0] == 0 || state[1] == 0
	}, sim.Limits{MaxSteps: crnDefaultMaxSteps}); err != nil {
		return false, err
	}
	s := e.State()
	return s[0] > 0 && s[1] == 0, nil
}

// newCRNEngine builds the internal/sim engine a CRN model selects. A
// positive maxTime switches the direct method to the Gillespie clock (the
// NRM and leap engines always track continuous time).
func newCRNEngine(net *crn.Network, initial []int, engine string, maxTime float64, src *rng.Source) (sim.Engine, error) {
	switch engine {
	case "", EngineDirect:
		clock := sim.JumpChain
		if maxTime > 0 {
			clock = sim.Gillespie
		}
		return sim.NewCRN(net, initial, clock, src)
	case EngineNRM:
		return sim.NewCRNNextReaction(net, initial, src)
	case EngineLeap:
		return sim.NewCRNLeap(net, initial, crn.LeapOptions{}, src)
	default:
		return nil, fmt.Errorf("scenario: unknown crn engine %q", engine)
	}
}

// protocolRegistry maps registry names to constructors. A function rather
// than a package variable keeps the package free of mutable globals, and a
// fresh protocol per call keeps kernel overrides from leaking between runs.
func protocolRegistry() map[string]func() consensus.Protocol {
	return map[string]func() consensus.Protocol{
		"lv-sd": func() consensus.Protocol {
			return consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), Label: "lv-sd"}
		},
		"lv-nsd": func() consensus.Protocol {
			return consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive), Label: "lv-nsd"}
		},
		"cho":    func() consensus.Protocol { return protocols.NewChoProtocol(1, 1) },
		"andaur": func() consensus.Protocol { return protocols.AndaurProtocol{Beta: 1, Alpha: 1, ResourceCap: 1 << 20} },
		"condon-single-b": func() consensus.Protocol {
			return protocols.CondonProtocol{Variant: protocols.SingleB}
		},
		"condon-double-b": func() consensus.Protocol {
			return protocols.CondonProtocol{Variant: protocols.DoubleB}
		},
		"condon-heavy-b": func() consensus.Protocol {
			return protocols.CondonProtocol{Variant: protocols.HeavyB}
		},
		"condon-tri": func() consensus.Protocol {
			return protocols.CondonProtocol{Variant: protocols.TriMajority}
		},
		"3-state-am":    func() consensus.Protocol { return protocols.NewThreeStateAM() },
		"4-state-exact": func() consensus.Protocol { return protocols.NewFourStateExact() },
		"ternary":       func() consensus.Protocol { return protocols.NewTernarySignaling() },
		"voter":         func() consensus.Protocol { return &gossip.Protocol{Dynamics: gossip.Voter{}} },
		"two-choices":   func() consensus.Protocol { return &gossip.Protocol{Dynamics: gossip.TwoChoices{}} },
		"3-majority":    func() consensus.Protocol { return &gossip.Protocol{Dynamics: gossip.ThreeMajority{}} },
		"usd":           func() consensus.Protocol { return &gossip.Protocol{Dynamics: gossip.Undecided{}} },
		"moran":         func() consensus.Protocol { return &moran.Protocol{Fitness: 1} },
		"chemostat": func() consensus.Protocol {
			return &exploit.Protocol{Params: exploit.Params{Lambda: 200, Mu: 1, Beta: 0.1, Delta: 1, R0: 10}}
		},
	}
}

// ProtocolByName builds the named protocol from the registry. This is the
// one protocol name space shared by the threshold CLI, specs, and the
// server.
func ProtocolByName(name string) (consensus.Protocol, error) {
	build, ok := protocolRegistry()[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown protocol %q (known: %v)", name, ProtocolNames())
	}
	return build(), nil
}

// ProtocolNames returns the sorted registry names.
func ProtocolNames() []string {
	reg := protocolRegistry()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
