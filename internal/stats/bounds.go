package stats

import "math"

// The concentration bounds below mirror Lemma 1 and Lemma 2 of the paper.
// The test suite uses them as oracles: empirical tail frequencies of sums of
// independent indicators must not exceed these bounds by more than sampling
// error.

// ChernoffUpper bounds Pr[X >= (1+eps)·mean] for a sum X of independent
// Bernoulli variables with E[X] = mean, per Lemma 1(1):
// exp(−mean·eps²/(2+eps)). It returns 1 for eps <= 0 or mean <= 0 (the bound
// is vacuous there).
func ChernoffUpper(mean, eps float64) float64 {
	if eps <= 0 || mean <= 0 {
		return 1
	}
	return math.Exp(-mean * eps * eps / (2 + eps))
}

// ChernoffLower bounds Pr[X <= (1−eps)·mean] per Lemma 1(2):
// exp(−mean·eps²/2) for 0 < eps < 1. It returns 1 outside that range or for
// mean <= 0.
func ChernoffLower(mean, eps float64) float64 {
	if eps <= 0 || eps >= 1 || mean <= 0 {
		return 1
	}
	return math.Exp(-mean * eps * eps / 2)
}

// HoeffdingTwoSided bounds Pr[|X − E[X]| >= t] for a sum X of n independent
// random variables each confined to [−1, 1]. We implement the standard
// Hoeffding inequality for range width 2: 2·exp(−t²/(2n)). (The paper's
// Lemma 2 prints the exponent −2t²/n, which is the range-[0,1] form; the
// [−1,1] form used here is the valid one and is weaker, so using it as a
// test oracle is safe.) It returns 1 for t <= 0 or n <= 0.
func HoeffdingTwoSided(n int, t float64) float64 {
	if t <= 0 || n <= 0 {
		return 1
	}
	return 2 * math.Exp(-t*t/(2*float64(n)))
}

// NormalTailUpper bounds the standard normal upper tail:
// Pr[Z > x] <= exp(−x²/2) for x >= 0 (a crude but sufficient bound).
// It returns 1 for x < 0.
func NormalTailUpper(x float64) float64 {
	if x < 0 {
		return 1
	}
	return math.Exp(-x * x / 2)
}
