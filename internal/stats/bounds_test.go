package stats

import (
	"math"
	"testing"

	"lvmajority/internal/rng"
)

func TestChernoffUpperVacuous(t *testing.T) {
	if got := ChernoffUpper(10, 0); got != 1 {
		t.Errorf("ChernoffUpper(10, 0) = %v, want 1", got)
	}
	if got := ChernoffUpper(0, 1); got != 1 {
		t.Errorf("ChernoffUpper(0, 1) = %v, want 1", got)
	}
}

func TestChernoffLowerVacuous(t *testing.T) {
	for _, eps := range []float64{0, 1, 2} {
		if got := ChernoffLower(10, eps); got != 1 {
			t.Errorf("ChernoffLower(10, %v) = %v, want 1", eps, got)
		}
	}
}

func TestChernoffBoundsEmpirically(t *testing.T) {
	// Sum of 200 Bernoulli(0.3): mean 60. The empirical tail frequency
	// must not exceed the Chernoff bound noticeably.
	src := rng.New(77)
	const n = 200
	const p = 0.3
	const mean = n * p
	const eps = 0.5
	const trials = 20000
	upperHits, lowerHits := 0, 0
	for tr := 0; tr < trials; tr++ {
		sum := 0
		for i := 0; i < n; i++ {
			if src.Bernoulli(p) {
				sum++
			}
		}
		if float64(sum) >= (1+eps)*mean {
			upperHits++
		}
		if float64(sum) <= (1-eps)*mean {
			lowerHits++
		}
	}
	slack := 3 * math.Sqrt(float64(trials)) / float64(trials)
	if got := float64(upperHits) / trials; got > ChernoffUpper(mean, eps)+slack {
		t.Errorf("upper tail frequency %v exceeds Chernoff bound %v", got, ChernoffUpper(mean, eps))
	}
	if got := float64(lowerHits) / trials; got > ChernoffLower(mean, eps)+slack {
		t.Errorf("lower tail frequency %v exceeds Chernoff bound %v", got, ChernoffLower(mean, eps))
	}
}

func TestHoeffdingVacuous(t *testing.T) {
	if got := HoeffdingTwoSided(10, 0); got != 1 {
		t.Errorf("HoeffdingTwoSided(10, 0) = %v, want 1", got)
	}
	if got := HoeffdingTwoSided(0, 1); got != 1 {
		t.Errorf("HoeffdingTwoSided(0, 1) = %v, want 1", got)
	}
}

func TestHoeffdingEmpirically(t *testing.T) {
	// Sum of n Rademacher variables (in [-1, 1], mean 0).
	src := rng.New(79)
	const n = 100
	const trials = 20000
	for _, tval := range []float64{20, 30} {
		hits := 0
		for tr := 0; tr < trials; tr++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				if src.Bernoulli(0.5) {
					sum++
				} else {
					sum--
				}
			}
			if math.Abs(sum) >= tval {
				hits++
			}
		}
		bound := HoeffdingTwoSided(n, tval)
		got := float64(hits) / trials
		if got > bound+0.01 {
			t.Errorf("t=%v: tail frequency %v exceeds Hoeffding bound %v", tval, got, bound)
		}
	}
}

func TestHoeffdingMonotone(t *testing.T) {
	prev := 2.0
	for _, tval := range []float64{1, 5, 10, 20} {
		b := HoeffdingTwoSided(50, tval)
		if b > prev {
			t.Errorf("bound not monotone in t: %v after %v", b, prev)
		}
		prev = b
	}
}

func TestNormalTailUpper(t *testing.T) {
	if got := NormalTailUpper(-1); got != 1 {
		t.Errorf("NormalTailUpper(-1) = %v, want 1", got)
	}
	if got := NormalTailUpper(0); got != 1 {
		t.Errorf("NormalTailUpper(0) = %v, want 1", got)
	}
	// The bound must actually bound the empirical normal tail.
	src := rng.New(83)
	const trials = 200000
	for _, x := range []float64{1, 2, 3} {
		hits := 0
		for i := 0; i < trials; i++ {
			if src.Norm() > x {
				hits++
			}
		}
		got := float64(hits) / trials
		if got > NormalTailUpper(x) {
			t.Errorf("empirical tail %v at x=%v exceeds bound %v", got, x, NormalTailUpper(x))
		}
	}
}
