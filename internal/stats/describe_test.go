package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("zero-value Running is not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if got := r.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4, so sample variance is 4*8/7.
	if got, want := r.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Variance() != 0 {
		t.Errorf("Variance with one sample = %v, want 0", r.Variance())
	}
	if r.Min() != 3.5 || r.Max() != 3.5 {
		t.Errorf("Min/Max = %v/%v, want 3.5/3.5", r.Min(), r.Max())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, -2, 3.5, 0, 7, -1.25, 9, 2, 2, 8}
	var whole Running
	for _, x := range xs {
		whole.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var a, b Running
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("split %d: Mean = %v, want %v", split, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-10 {
			t.Errorf("split %d: Variance = %v, want %v", split, a.Variance(), whole.Variance())
		}
		if a.Min() != whole.Min() || a.Max() != whole.Max() {
			t.Errorf("split %d: Min/Max = %v/%v, want %v/%v", split, a.Min(), a.Max(), whole.Min(), whole.Max())
		}
	}
}

func TestRunningMergeProperty(t *testing.T) {
	err := quick.Check(func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var merged, whole Running
		var other Running
		for _, x := range xs {
			merged.Add(x)
			whole.Add(x)
		}
		for _, y := range ys {
			other.Add(y)
			whole.Add(y)
		}
		merged.Merge(&other)
		if merged.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(whole.Mean())
		return math.Abs(merged.Mean()-whole.Mean()) < 1e-9*scale
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.125, 1.5},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Quantile modified its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(empty) did not error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("Quantile(q<0) did not error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("Quantile(q>1) did not error")
	}
}

func TestQuantileSingle(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Errorf("Quantile single = %v, %v; want 42, nil", got, err)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v, %v; want 5, nil", got, err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestHarmonicNumber(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{-3, 0},
		{1, 1},
		{2, 1.5},
		{4, 1 + 0.5 + 1.0/3 + 0.25},
	}
	for _, tc := range cases {
		if got := HarmonicNumber(tc.n); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("HarmonicNumber(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	// H_n >= ln n (used by the paper's Lemma 16).
	for _, n := range []int{10, 100, 1000} {
		if got := HarmonicNumber(n); got < math.Log(float64(n)) {
			t.Errorf("H_%d = %v < ln %d = %v", n, got, n, math.Log(float64(n)))
		}
	}
}
