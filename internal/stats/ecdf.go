package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs. The input is copied and may be
// empty; evaluating an empty ECDF returns 0 everywhere.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// At returns F̂(x) = (number of samples <= x) / n.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(idx) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) (float64, error) {
	return Quantile(e.sorted, q)
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic
// sup_x |F̂(x) − Ĝ(x)| between two empirical CDFs. It returns an error if
// either sample is empty.
func KSDistance(f, g *ECDF) (float64, error) {
	if f.N() == 0 || g.N() == 0 {
		return 0, fmt.Errorf("stats: KSDistance of empty sample")
	}
	var d float64
	for _, x := range f.sorted {
		if diff := math.Abs(f.At(x) - g.At(x)); diff > d {
			d = diff
		}
	}
	for _, x := range g.sorted {
		if diff := math.Abs(f.At(x) - g.At(x)); diff > d {
			d = diff
		}
	}
	return d, nil
}

// DominationViolation measures how far f is from being stochastically
// dominated by g: it returns max_x (Ĝ(x) − F̂(x)) over the pooled sample
// points, where domination F ⪯ G means Pr[X_G >= x] >= Pr[X_F >= x] for all
// x, i.e. G's CDF should sit *below* F's everywhere. A value <= ~sampling
// error is consistent with domination; a large positive value refutes it.
// It returns an error if either sample is empty.
func DominationViolation(f, g *ECDF) (float64, error) {
	if f.N() == 0 || g.N() == 0 {
		return 0, fmt.Errorf("stats: DominationViolation of empty sample")
	}
	violation := math.Inf(-1)
	check := func(x float64) {
		if diff := g.At(x) - f.At(x); diff > violation {
			violation = diff
		}
	}
	for _, x := range f.sorted {
		check(x)
	}
	for _, x := range g.sorted {
		check(x)
	}
	return violation, nil
}
