package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the online summary sketches behind the observability
// layer: streaming estimates of order statistics that never materialize the
// sample, so a million-trial run can report running quantiles in O(1)
// memory. Two sketches with different trade-offs:
//
//   - P2 is the p² algorithm (Jain & Chlamtac 1985): one target quantile,
//     five markers, no merging. The cheapest possible running quantile for
//     a single stream.
//   - QuantileSketch is a fixed-k merging digest: bounded centroids over
//     the whole distribution, any quantile queryable, and sketches built on
//     separate workers merge. The server's run-duration summaries use it.
//
// Like everything in this package, the sketches are deterministic: equal
// insertion sequences produce equal states, so they never participate in
// the seed-derivation contract.

// P2 estimates a single quantile of a stream with the p² algorithm: five
// markers (minimum, target quantile, the two intermediate quantiles, and
// maximum) adjusted towards their desired positions after every
// observation, using parabolic interpolation where the height stays
// monotone and linear interpolation otherwise.
//
// The estimate is exact until five observations have arrived and heuristic
// afterwards: the classic error analysis gives relative errors well under a
// percent for smooth distributions, and the property tests in this package
// pin the rank error — |F̂(estimate) − q| — below 0.05 at n = 10⁴ on
// uniform, normal, bimodal, and adversarially sorted inputs. Callers that
// need merging or multiple quantiles use QuantileSketch instead.
type P2 struct {
	q       float64    // target quantile in [0, 1]
	n       int        // observations seen
	heights [5]float64 // marker heights q0..q4 (ascending)
	pos     [5]float64 // actual marker positions (1-based counts)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired-position increments per observation
}

// NewP2 returns a p² estimator of the q-quantile. It returns an error for q
// outside [0, 1].
func NewP2(q float64) (*P2, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("stats: NewP2 with q=%v outside [0, 1]", q)
	}
	p := &P2{q: q}
	p.pos = [5]float64{1, 2, 3, 4, 5}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// N returns the number of observations added.
func (p *P2) N() int { return p.n }

// Q returns the target quantile the estimator tracks.
func (p *P2) Q() float64 { return p.q }

// Add incorporates x into the estimate.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		p.heights[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.heights[:])
		}
		return
	}
	p.n++

	// Locate the cell containing x and clamp the extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.incr[i]
	}

	// Nudge the three interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

// parabolic is the p² piecewise-parabolic height prediction for moving
// marker i by sign (±1) positions.
func (p *P2) parabolic(i int, sign float64) float64 {
	num1 := p.pos[i] - p.pos[i-1] + sign
	num2 := p.pos[i+1] - p.pos[i] - sign
	den := p.pos[i+1] - p.pos[i-1]
	return p.heights[i] + sign/den*(num1*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
		num2*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction along the segment in direction
// sign.
func (p *P2) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return p.heights[i] + sign*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Quantile returns the current estimate of the target quantile, or an
// error when no observations have been added. Below five observations the
// estimate is the exact sample quantile.
func (p *P2) Quantile() (float64, error) {
	if p.n == 0 {
		return 0, fmt.Errorf("stats: P2 quantile of an empty stream")
	}
	if p.n < 5 {
		sorted := append([]float64(nil), p.heights[:p.n]...)
		sort.Float64s(sorted)
		return Quantile(sorted, p.q)
	}
	return p.heights[2], nil
}

// Min and Max return the extreme observations (markers 0 and 4).
func (p *P2) Min() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		m := p.heights[0]
		for _, h := range p.heights[1:p.n] {
			m = math.Min(m, h)
		}
		return m
	}
	return p.heights[0]
}

// Max returns the largest observation added.
func (p *P2) Max() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		m := p.heights[0]
		for _, h := range p.heights[1:p.n] {
			m = math.Max(m, h)
		}
		return m
	}
	return p.heights[4]
}

// centroid is one weighted point of a QuantileSketch.
type centroid struct {
	mean   float64
	weight float64
}

// QuantileSketch is a fixed-size merging digest over a stream: at most k
// centroids (weighted means, sorted) summarize the full distribution, any
// quantile is queryable by interpolating the cumulative weights, and two
// sketches merge by pooling their centroids — merge(a, b) approximates the
// sketch of the concatenated stream, which is what lets per-worker sketches
// combine into one fleet summary.
//
// Error bound: each compaction bins the pooled points into at most k
// equal-weight groups, so one compaction moves any point's rank by at most
// n/k — a rank error of 1/k. Compactions compose, so after the O(n/k)
// compactions of a long stream (or an arbitrary merge tree) the practical
// rank error stays a small multiple of 1/k; the property tests pin it below
// 3/k on uniform, normal, bimodal, and adversarially sorted inputs, and the
// default k = 128 keeps that under 2.5%. Quantile(0) and Quantile(1) are
// exact (the extremes are tracked separately).
//
// The zero value is not ready to use; construct with NewQuantileSketch.
type QuantileSketch struct {
	k         int
	centroids []centroid // sorted by mean, len <= k after compaction
	buf       []centroid // pending points, compacted when full
	n         float64    // total weight
	min, max  float64
}

// DefaultSketchSize is the k used when NewQuantileSketch is given a
// non-positive size: 128 centroids bound the rank error near 2%, in ~4 KB.
const DefaultSketchSize = 128

// NewQuantileSketch returns an empty digest with at most k centroids
// (DefaultSketchSize when k <= 0; the minimum accepted k is 8).
func NewQuantileSketch(k int) *QuantileSketch {
	if k <= 0 {
		k = DefaultSketchSize
	}
	if k < 8 {
		k = 8
	}
	return &QuantileSketch{k: k}
}

// N returns the total weight added (the observation count when every
// observation had weight 1).
func (s *QuantileSketch) N() float64 { return s.n }

// Min and Max return the exact extremes of the stream.
func (s *QuantileSketch) Min() float64 { return s.min }

// Max returns the largest observation added.
func (s *QuantileSketch) Max() float64 { return s.max }

// Add incorporates one observation.
func (s *QuantileSketch) Add(x float64) { s.AddWeighted(x, 1) }

// AddWeighted incorporates an observation with weight w (w <= 0 is
// ignored). NaN observations are ignored: a sketch is an observability
// surface and must not poison itself on one bad sample.
func (s *QuantileSketch) AddWeighted(x, w float64) {
	if w <= 0 || math.IsNaN(x) || math.IsNaN(w) {
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	s.n += w
	s.buf = append(s.buf, centroid{mean: x, weight: w})
	if len(s.buf) >= 4*s.k {
		s.compact()
	}
}

// Merge incorporates other into s; other is unchanged. The result
// approximates the sketch of the union stream within the documented error.
func (s *QuantileSketch) Merge(other *QuantileSketch) {
	if other == nil || other.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = other.min, other.max
	} else {
		s.min = math.Min(s.min, other.min)
		s.max = math.Max(s.max, other.max)
	}
	s.n += other.n
	s.buf = append(s.buf, other.centroids...)
	s.buf = append(s.buf, other.buf...)
	s.compact()
}

// compact pools the pending buffer with the existing centroids and re-bins
// the result into at most k equal-weight centroids. Deterministic: equal
// inputs produce equal states.
func (s *QuantileSketch) compact() {
	if len(s.buf) == 0 {
		return
	}
	pool := append(s.centroids, s.buf...)
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].mean != pool[j].mean {
			return pool[i].mean < pool[j].mean
		}
		return pool[i].weight < pool[j].weight
	})
	var total float64
	for _, c := range pool {
		total += c.weight
	}
	target := total / float64(s.k)
	out := make([]centroid, 0, s.k)
	var accMean, accWeight float64
	flush := func() {
		if accWeight > 0 {
			out = append(out, centroid{mean: accMean / accWeight, weight: accWeight})
			accMean, accWeight = 0, 0
		}
	}
	for _, c := range pool {
		accMean += c.mean * c.weight
		accWeight += c.weight
		if accWeight >= target && len(out) < s.k-1 {
			flush()
		}
	}
	flush()
	s.centroids = out
	s.buf = s.buf[:0]
}

// Quantile returns the estimated q-quantile. It returns an error for an
// empty sketch or q outside [0, 1].
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if s.n == 0 {
		return 0, fmt.Errorf("stats: QuantileSketch quantile of an empty sketch")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: QuantileSketch quantile q=%v outside [0, 1]", q)
	}
	s.compact()
	if q == 0 {
		return s.min, nil
	}
	if q == 1 {
		return s.max, nil
	}
	cs := s.centroids
	rank := q * s.n
	// Each centroid sits at the midpoint of its weight span; interpolate
	// between neighbouring midpoints, anchored by the exact extremes.
	var cum float64
	prevMid, prevMean := 0.0, s.min
	for _, c := range cs {
		mid := cum + c.weight/2
		if rank < mid {
			frac := 0.0
			if mid > prevMid {
				frac = (rank - prevMid) / (mid - prevMid)
			}
			return prevMean + frac*(c.mean-prevMean), nil
		}
		cum += c.weight
		prevMid, prevMean = mid, c.mean
	}
	frac := 0.0
	if s.n > prevMid {
		frac = (rank - prevMid) / (s.n - prevMid)
	}
	return prevMean + frac*(s.max-prevMean), nil
}

// Centroids reports the current summary size; tests use it to assert the
// memory bound holds.
func (s *QuantileSketch) Centroids() int { return len(s.centroids) + len(s.buf) }
