package stats

import (
	"fmt"
	"math"
)

// BernoulliEstimate is a Monte-Carlo estimate of a success probability with
// its Wilson score confidence interval.
type BernoulliEstimate struct {
	Successes int
	Trials    int
	// Lo and Hi bound the true probability at the confidence level the
	// estimate was constructed with.
	Lo, Hi float64
}

// P returns the point estimate successes/trials, or 0 for zero trials.
func (e BernoulliEstimate) P() float64 {
	if e.Trials == 0 {
		return 0
	}
	return float64(e.Successes) / float64(e.Trials)
}

// Width returns Hi − Lo.
func (e BernoulliEstimate) Width() float64 { return e.Hi - e.Lo }

// String renders the estimate for logs and tables.
func (e BernoulliEstimate) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", e.P(), e.Lo, e.Hi, e.Successes, e.Trials)
}

// WilsonInterval returns the Wilson score interval for a binomial proportion
// with the given normal quantile z (z = 1.96 for ~95%, 2.58 for ~99%,
// 3.29 for ~99.9%). It returns an error for non-positive trials, negative
// successes, successes > trials, or non-positive z.
//
// Unlike the Wald interval, Wilson behaves sensibly at the extremes p̂ ∈
// {0, 1}, which matter here because high-probability consensus events produce
// success counts equal or very close to the trial count.
func WilsonInterval(successes, trials int, z float64) (BernoulliEstimate, error) {
	if trials <= 0 {
		return BernoulliEstimate{}, fmt.Errorf("stats: WilsonInterval with %d trials", trials)
	}
	if successes < 0 || successes > trials {
		return BernoulliEstimate{}, fmt.Errorf("stats: WilsonInterval with %d successes of %d trials", successes, trials)
	}
	if z <= 0 {
		return BernoulliEstimate{}, fmt.Errorf("stats: WilsonInterval with non-positive z=%v", z)
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return BernoulliEstimate{Successes: successes, Trials: trials, Lo: lo, Hi: hi}, nil
}

// Z95 and friends are conventional normal quantiles for Wilson intervals.
const (
	Z95  = 1.959964
	Z99  = 2.575829
	Z999 = 3.290527
)
