package stats

import (
	"math"
	"testing"

	"lvmajority/internal/rng"
)

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{100, 1},
	}
	for _, tc := range cases {
		if got := e.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.N() != 0 {
		t.Errorf("N = %d, want 0", e.N())
	}
	if got := e.At(0); got != 0 {
		t.Errorf("At(0) on empty = %v, want 0", got)
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e := NewECDF(xs)
	xs[0] = -100
	if got := e.At(0); got != 0 {
		t.Errorf("ECDF aliased its input: At(0) = %v", got)
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KSDistance(NewECDF(xs), NewECDF(xs))
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("KS distance of identical samples = %v, want 0", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	f := NewECDF([]float64{1, 2, 3})
	g := NewECDF([]float64{10, 11, 12})
	d, err := KSDistance(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("KS distance of disjoint samples = %v, want 1", d)
	}
}

func TestKSDistanceEmptyErrors(t *testing.T) {
	if _, err := KSDistance(NewECDF(nil), NewECDF([]float64{1})); err == nil {
		t.Error("KSDistance with empty sample did not error")
	}
}

func TestKSDistanceSameDistribution(t *testing.T) {
	src := rng.New(101)
	const n = 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = src.Float64()
		b[i] = src.Float64()
	}
	d, err := KSDistance(NewECDF(a), NewECDF(b))
	if err != nil {
		t.Fatal(err)
	}
	// For equal distributions, KS statistic scales like c/sqrt(n); 0.05
	// is a very generous ceiling at n = 5000.
	if d > 0.05 {
		t.Errorf("KS distance between identically distributed samples = %v", d)
	}
}

func TestDominationViolation(t *testing.T) {
	// g = f + 1 pointwise: g strictly dominates f, so violation should be
	// strongly negative or at most 0.
	f := NewECDF([]float64{1, 2, 3, 4})
	g := NewECDF([]float64{2, 3, 4, 5})
	v, err := DominationViolation(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0 {
		t.Errorf("violation = %v for clear domination, want <= 0", v)
	}
	// Reversed: f dominates g, so the violation of "g dominates f" is
	// large.
	v, err = DominationViolation(g, f)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.2 {
		t.Errorf("violation = %v for reversed domination, want large", v)
	}
}

func TestDominationViolationEmptyErrors(t *testing.T) {
	if _, err := DominationViolation(NewECDF(nil), NewECDF([]float64{1})); err == nil {
		t.Error("DominationViolation with empty sample did not error")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{4, 1, 3, 2})
	got, err := e.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("Quantile(0.5) = %v, want 2.5", got)
	}
}
