package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, tc := range cases {
		if got := NormalCDF(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %.15f, want %.15f", tc.x, got, tc.want)
		}
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	check := func(x float64) bool {
		x = math.Mod(x, 10)
		return math.Abs(NormalCDF(x)+NormalCDF(-x)-1) < 1e-14
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.9986501019683699, 3},
		{1e-10, -6.361340902404056},
	}
	for _, tc := range cases {
		if got := NormalQuantile(tc.p); math.Abs(got-tc.want) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %.12f, want %.12f", tc.p, got, tc.want)
		}
	}
}

func TestNormalQuantileEndpoints(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) is not -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) is not +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Errorf("NormalQuantile(%v) is not NaN", p)
		}
	}
}

// TestNormalQuantileRoundTrip checks Φ(Φ⁻¹(p)) = p across the full range,
// including the tail branches of the approximation.
func TestNormalQuantileRoundTrip(t *testing.T) {
	check := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-12 || p > 1-1e-12 {
			return true
		}
		back := NormalCDF(NormalQuantile(p))
		return math.Abs(back-p) < 1e-11
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Deterministic sweep over both tails.
	for _, p := range []float64{1e-9, 1e-6, 0.001, 0.01, 0.02425, 0.3, 0.5, 0.7, 0.97575, 0.99, 0.999999} {
		back := NormalCDF(NormalQuantile(p))
		if math.Abs(back-p) > 1e-11 {
			t.Errorf("round trip at p=%v drifted to %v", p, back)
		}
	}
}

func TestNormalQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		cur := NormalQuantile(p)
		if cur <= prev {
			t.Fatalf("not strictly increasing at p=%v", p)
		}
		prev = cur
	}
}
