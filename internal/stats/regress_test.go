package stats

import (
	"math"
	"testing"

	"lvmajority/internal/rng"
)

func TestLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-12 {
		t.Errorf("Slope = %v, want 3", fit.Slope)
	}
	if math.Abs(fit.Intercept+7) > 1e-12 {
		t.Errorf("Intercept = %v, want -7", fit.Intercept)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	src := rng.New(13)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*xs[i] + 5 + 0.5*src.Norm()
	}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.02 {
		t.Errorf("Slope = %v, want ~2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{2}); err == nil {
		t.Error("Linear with one point did not error")
	}
	if _, err := Linear([]float64{1, 2}, []float64{3}); err == nil {
		t.Error("Linear with mismatched lengths did not error")
	}
	if _, err := Linear([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Error("Linear with constant x did not error")
	}
}

func TestLinearConstantY(t *testing.T) {
	fit, err := Linear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 {
		t.Errorf("Slope = %v, want 0", fit.Slope)
	}
	if fit.R2 != 1 {
		t.Errorf("R2 = %v, want 1 for perfectly explained constant data", fit.R2)
	}
}

func TestPowerLawExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 0.5)
	}
	fit, err := PowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-0.5) > 1e-10 {
		t.Errorf("Exponent = %v, want 0.5", fit.Exponent)
	}
	if math.Abs(fit.Constant-3) > 1e-10 {
		t.Errorf("Constant = %v, want 3", fit.Constant)
	}
}

func TestPowerLawDetectsPolylog(t *testing.T) {
	// A polylog curve fitted as a power law over a wide range should give
	// a small exponent — this is exactly how the harness classifies the
	// self-destructive threshold growth.
	var xs, ys []float64
	for n := 256.0; n <= 1<<20; n *= 4 {
		xs = append(xs, n)
		l := math.Log2(n)
		ys = append(ys, l*l)
	}
	fit, err := PowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Exponent > 0.3 {
		t.Errorf("Exponent = %v for log^2 data, want well below linear-in-sqrt", fit.Exponent)
	}
}

func TestPowerLawErrors(t *testing.T) {
	if _, err := PowerLaw([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("PowerLaw with mismatched lengths did not error")
	}
	if _, err := PowerLaw([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("PowerLaw with negative x did not error")
	}
	if _, err := PowerLaw([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("PowerLaw with zero y did not error")
	}
}
