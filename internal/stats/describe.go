// Package stats provides the statistical machinery used by the experiment
// harness and the test suite: streaming moments, quantiles, empirical CDFs,
// binomial confidence intervals, regression for scaling-exponent fits, and
// the concentration-bound helpers (Chernoff, Hoeffding) that the paper's
// proofs rely on and that our tests use as oracles.
//
// The pieces the rest of the repository builds on: Running (streaming
// mean/variance/extrema without storing samples), Quantile and NewECDF
// (order statistics and domination checks for the Lemma 9 experiments),
// WilsonInterval and BernoulliEstimate (the confidence intervals behind
// every ρ estimate and the early-stopping threshold probes), PowerLaw
// (the scaling-exponent fits classifying Table 1 thresholds), and the
// normal CDF used by the diffusion approximation. Everything is
// deterministic: no function here draws randomness, so the statistics
// layer never participates in the seed-derivation contract.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming sample moments using Welford's algorithm.
// The zero value is an empty accumulator ready for use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 if no samples were added.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean, or 0 if no samples were
// added.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Min returns the smallest sample, or 0 if no samples were added.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 if no samples were added.
func (r *Running) Max() float64 { return r.max }

// Merge combines another accumulator into r using the parallel variant of
// Welford's update, so statistics can be accumulated per worker and merged.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	nA, nB := float64(r.n), float64(other.n)
	delta := other.mean - r.mean
	total := nA + nB
	r.mean += delta * nB / total
	r.m2 += other.m2 + delta*delta*nA*nB/total
	r.n += other.n
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
}

// String summarizes the accumulator for logs and tables.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error for an empty
// input or q outside [0, 1]. The input slice is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: Quantile called with q=%v outside [0, 1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the sample median of xs. It returns an error for an empty
// input.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicNumber returns H_n = sum_{i=1..n} 1/i, the quantity that bounds the
// expected birth count of the paper's nice chains (Lemma 6). It returns 0 for
// n <= 0.
func HarmonicNumber(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
