package stats

import (
	"math"
	"testing"

	"lvmajority/internal/rng"
)

func TestWilsonIntervalBasic(t *testing.T) {
	e, err := WilsonInterval(50, 100, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if e.P() != 0.5 {
		t.Errorf("P = %v, want 0.5", e.P())
	}
	if e.Lo >= 0.5 || e.Hi <= 0.5 {
		t.Errorf("interval [%v, %v] does not contain 0.5", e.Lo, e.Hi)
	}
	// Known Wilson values for 50/100 at z=1.96: approximately
	// [0.404, 0.596].
	if math.Abs(e.Lo-0.404) > 0.005 || math.Abs(e.Hi-0.596) > 0.005 {
		t.Errorf("interval [%v, %v], want ~[0.404, 0.596]", e.Lo, e.Hi)
	}
}

func TestWilsonIntervalExtremes(t *testing.T) {
	zero, err := WilsonInterval(0, 100, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Lo != 0 {
		t.Errorf("Lo = %v for 0 successes, want 0", zero.Lo)
	}
	if zero.Hi <= 0 || zero.Hi > 0.1 {
		t.Errorf("Hi = %v for 0/100, want small positive", zero.Hi)
	}
	full, err := WilsonInterval(100, 100, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if full.Hi != 1 {
		t.Errorf("Hi = %v for all successes, want 1", full.Hi)
	}
	if full.Lo >= 1 || full.Lo < 0.9 {
		t.Errorf("Lo = %v for 100/100, want slightly below 1", full.Lo)
	}
}

func TestWilsonIntervalErrors(t *testing.T) {
	cases := []struct {
		s, n int
		z    float64
	}{
		{0, 0, Z95},
		{-1, 10, Z95},
		{11, 10, Z95},
		{5, 10, 0},
		{5, 10, -1},
	}
	for _, tc := range cases {
		if _, err := WilsonInterval(tc.s, tc.n, tc.z); err == nil {
			t.Errorf("WilsonInterval(%d, %d, %v) did not error", tc.s, tc.n, tc.z)
		}
	}
}

func TestWilsonIntervalCoverage(t *testing.T) {
	// The 95% interval should cover the true p in roughly 95% of repeated
	// experiments; demand at least 90% to keep the test robust.
	src := rng.New(7)
	const p = 0.3
	const experiments = 2000
	const trialsPer = 200
	covered := 0
	for e := 0; e < experiments; e++ {
		successes := 0
		for i := 0; i < trialsPer; i++ {
			if src.Bernoulli(p) {
				successes++
			}
		}
		est, err := WilsonInterval(successes, trialsPer, Z95)
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo <= p && p <= est.Hi {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.90 {
		t.Errorf("coverage = %v, want >= 0.90", rate)
	}
}

func TestWilsonIntervalMonotoneWidth(t *testing.T) {
	// More trials at the same proportion must not widen the interval.
	prev := math.Inf(1)
	for _, n := range []int{10, 100, 1000, 10000} {
		e, err := WilsonInterval(n/2, n, Z95)
		if err != nil {
			t.Fatal(err)
		}
		if e.Width() > prev {
			t.Errorf("width grew from %v to %v at n=%d", prev, e.Width(), n)
		}
		prev = e.Width()
	}
}

func TestBernoulliEstimateZeroTrials(t *testing.T) {
	var e BernoulliEstimate
	if e.P() != 0 {
		t.Errorf("P of zero-value estimate = %v, want 0", e.P())
	}
}
