package stats

import "testing"

// FuzzWilsonInterval checks the interval's structural guarantees for all
// accepted inputs.
func FuzzWilsonInterval(f *testing.F) {
	f.Add(50, 100)
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(-1, 10)
	f.Add(11, 10)
	f.Fuzz(func(t *testing.T, successes, trials int) {
		est, err := WilsonInterval(successes, trials, Z95)
		if err != nil {
			return
		}
		if est.Lo < 0 || est.Hi > 1 || est.Lo > est.Hi {
			t.Fatalf("malformed interval %+v", est)
		}
		p := est.P()
		if p < est.Lo-1e-12 || p > est.Hi+1e-12 {
			t.Fatalf("point estimate %v outside its own interval %+v", p, est)
		}
	})
}

// FuzzP2Quantile checks the p² estimator's structural guarantees on
// arbitrary streams: the estimate stays inside the observed sample range,
// the marker heights stay sorted, and the observation count is faithful.
func FuzzP2Quantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(128))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(0))
	f.Add([]byte{255, 0, 255, 0, 255, 0}, uint8(255))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(64))
	f.Fuzz(func(t *testing.T, raw []byte, qRaw uint8) {
		if len(raw) == 0 {
			return
		}
		q := float64(qRaw) / 255
		p, err := NewP2(q)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := 255.0, 0.0
		for _, b := range raw {
			x := float64(b)
			p.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if p.N() != len(raw) {
			t.Fatalf("N=%d after %d adds", p.N(), len(raw))
		}
		v, err := p.Quantile()
		if err != nil {
			t.Fatal(err)
		}
		if v < lo || v > hi {
			t.Fatalf("p² quantile %v outside sample range [%v, %v]", v, lo, hi)
		}
		if p.Min() != lo || p.Max() != hi {
			t.Fatalf("extremes (%v, %v), want (%v, %v)", p.Min(), p.Max(), lo, hi)
		}
		if p.N() >= 5 {
			for i := 0; i < 4; i++ {
				if p.heights[i] > p.heights[i+1] {
					t.Fatalf("marker heights out of order: %v", p.heights)
				}
			}
		}
	})
}

// FuzzQuantile checks ordering and range guarantees.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(128))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, qRaw uint8) {
		if len(raw) == 0 {
			return
		}
		xs := make([]float64, len(raw))
		lo, hi := 255.0, 0.0
		for i, b := range raw {
			xs[i] = float64(b)
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		q := float64(qRaw) / 255
		v, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if v < lo || v > hi {
			t.Fatalf("quantile %v outside sample range [%v, %v]", v, lo, hi)
		}
	})
}
