package stats

import "testing"

// FuzzWilsonInterval checks the interval's structural guarantees for all
// accepted inputs.
func FuzzWilsonInterval(f *testing.F) {
	f.Add(50, 100)
	f.Add(0, 1)
	f.Add(1, 1)
	f.Add(-1, 10)
	f.Add(11, 10)
	f.Fuzz(func(t *testing.T, successes, trials int) {
		est, err := WilsonInterval(successes, trials, Z95)
		if err != nil {
			return
		}
		if est.Lo < 0 || est.Hi > 1 || est.Lo > est.Hi {
			t.Fatalf("malformed interval %+v", est)
		}
		p := est.P()
		if p < est.Lo-1e-12 || p > est.Hi+1e-12 {
			t.Fatalf("point estimate %v outside its own interval %+v", p, est)
		}
	})
}

// FuzzQuantile checks ordering and range guarantees.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(128))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, qRaw uint8) {
		if len(raw) == 0 {
			return
		}
		xs := make([]float64, len(raw))
		lo, hi := 255.0, 0.0
		for i, b := range raw {
			xs[i] = float64(b)
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		q := float64(qRaw) / 255
		v, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if v < lo || v > hi {
			t.Fatalf("quantile %v outside sample range [%v, %v]", v, lo, hi)
		}
	})
}
