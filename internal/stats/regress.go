package stats

import (
	"fmt"
	"math"
)

// LinearFit is an ordinary least-squares fit y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Linear fits y ≈ a·x + b by ordinary least squares. It returns an error if
// fewer than two points are supplied, the lengths differ, or all x values
// coincide.
func Linear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: Linear with %d xs and %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: Linear needs at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/n, sumY/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - meanX
		dy := ys[i] - meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: Linear with constant x values")
	}
	slope := sxy / sxx
	intercept := meanY - slope*meanX
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			resid := ys[i] - (slope*xs[i] + intercept)
			ssRes += resid * resid
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// PowerLawFit is a fit y ≈ C·x^Exponent obtained by regressing log y on
// log x.
type PowerLawFit struct {
	Exponent float64
	Constant float64
	R2       float64
}

// PowerLaw fits y ≈ C·x^k on strictly positive data by log–log least
// squares. This is the tool used to classify empirical threshold growth
// (exponent ~0 for polylog thresholds, ~0.5 for √n thresholds, ~1 for linear
// thresholds). It returns an error on length mismatch, short input, or
// non-positive values.
func PowerLaw(xs, ys []float64) (PowerLawFit, error) {
	if len(xs) != len(ys) {
		return PowerLawFit{}, fmt.Errorf("stats: PowerLaw with %d xs and %d ys", len(xs), len(ys))
	}
	logX := make([]float64, len(xs))
	logY := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerLawFit{}, fmt.Errorf("stats: PowerLaw needs positive data, got (%v, %v) at index %d", xs[i], ys[i], i)
		}
		logX[i] = math.Log(xs[i])
		logY[i] = math.Log(ys[i])
	}
	fit, err := Linear(logX, logY)
	if err != nil {
		return PowerLawFit{}, err
	}
	return PowerLawFit{
		Exponent: fit.Slope,
		Constant: math.Exp(fit.Intercept),
		R2:       fit.R2,
	}, nil
}

// String renders the power-law fit.
func (f PowerLawFit) String() string {
	return fmt.Sprintf("y ~ %.3g * x^%.3f (R2=%.3f)", f.Constant, f.Exponent, f.R2)
}
