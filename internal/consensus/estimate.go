package consensus

import (
	"fmt"
	"runtime"
	"sync"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// EstimateOptions configures EstimateWinProbability.
type EstimateOptions struct {
	// Trials is the number of Monte-Carlo trials (default 1000).
	Trials int
	// Z is the normal quantile of the Wilson interval (default stats.Z99).
	Z float64
	// Workers is the number of parallel workers (default GOMAXPROCS).
	Workers int
	// Seed determines every random stream; the same options always
	// reproduce the same estimate bit-for-bit.
	Seed uint64
}

func (o *EstimateOptions) normalize() {
	if o.Trials <= 0 {
		o.Trials = 1000
	}
	if o.Z <= 0 {
		o.Z = stats.Z99
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Trials {
		o.Workers = o.Trials
	}
}

// EstimateWinProbability estimates ρ — the probability that the protocol
// reaches majority consensus — for total population n and initial gap delta,
// running trials in parallel. The result is deterministic in (protocol
// behaviour, options): worker streams are pre-split from the seed, so
// scheduling cannot change the outcome.
func EstimateWinProbability(p Protocol, n, delta int, opts EstimateOptions) (stats.BernoulliEstimate, error) {
	if p == nil {
		return stats.BernoulliEstimate{}, fmt.Errorf("consensus: nil protocol")
	}
	opts.normalize()
	// Validate the configuration once, up front, so workers cannot race
	// on the same configuration error.
	if _, _, err := SplitInitial(n, delta); err != nil {
		return stats.BernoulliEstimate{}, err
	}

	root := rng.New(opts.Seed)
	sources := make([]*rng.Source, opts.Workers)
	for i := range sources {
		sources[i] = root.Split()
	}

	// Distribute trials across workers as evenly as possible.
	per := opts.Trials / opts.Workers
	extra := opts.Trials % opts.Workers

	type result struct {
		wins int
		err  error
	}
	results := make([]result, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		trials := per
		if w < extra {
			trials++
		}
		wg.Add(1)
		go func(w, trials int) {
			defer wg.Done()
			src := sources[w]
			for i := 0; i < trials; i++ {
				won, err := p.Trial(n, delta, src)
				if err != nil {
					results[w].err = err
					return
				}
				if won {
					results[w].wins++
				}
			}
		}(w, trials)
	}
	wg.Wait()

	wins := 0
	for _, r := range results {
		if r.err != nil {
			return stats.BernoulliEstimate{}, fmt.Errorf("consensus: trial failed: %w", r.err)
		}
		wins += r.wins
	}
	return stats.WilsonInterval(wins, opts.Trials, opts.Z)
}
