package consensus

import (
	"fmt"

	"lvmajority/internal/mc"
	"lvmajority/internal/progress"
	"lvmajority/internal/stats"
)

// EstimateOptions configures EstimateWinProbability.
type EstimateOptions struct {
	// Trials is the number of Monte-Carlo trials (default 1000).
	Trials int
	// Workers is the number of parallel workers (default GOMAXPROCS). It
	// affects scheduling only: every trial draws from its own stream keyed
	// by the trial index, so the estimate is bit-identical for every
	// worker count.
	Workers int
	// Z is the normal quantile of the Wilson interval (default stats.Z99).
	Z float64
	// Seed determines every random stream; the same options always
	// reproduce the same estimate bit-for-bit.
	Seed uint64
	// Interrupt, when non-nil, is polled between trials; a non-nil return
	// aborts the estimate with that error (see mc.Options.Interrupt). It
	// never affects results while it returns nil.
	Interrupt func() error
	// Progress, when non-nil, receives trial and estimate snapshots from
	// the underlying pool (see mc.Options.Progress). Observation-only:
	// attaching a hook never changes the estimate.
	Progress progress.Hook
}

func (o *EstimateOptions) normalize() {
	if o.Trials <= 0 {
		o.Trials = 1000
	}
	if o.Z <= 0 {
		o.Z = stats.Z99
	}
}

// EstimateWinProbability estimates ρ — the probability that the protocol
// reaches majority consensus — for total population n and initial gap delta,
// running trials on the shared mc worker pool. The result is deterministic
// in (protocol behaviour, Trials, Seed): per-trial streams are keyed by the
// trial index, so neither scheduling nor the worker count can change the
// outcome.
func EstimateWinProbability(p Protocol, n, delta int, opts EstimateOptions) (stats.BernoulliEstimate, error) {
	if p == nil {
		return stats.BernoulliEstimate{}, fmt.Errorf("consensus: nil protocol")
	}
	opts.normalize()
	// Validate the configuration once, up front, so workers cannot race
	// on the same configuration error.
	if _, _, err := SplitInitial(n, delta); err != nil {
		return stats.BernoulliEstimate{}, err
	}
	return estimateBernoulli(p, n, delta, mc.BernoulliOptions{
		Options: mc.Options{Replicates: opts.Trials, Workers: opts.Workers, Seed: opts.Seed, Interrupt: opts.Interrupt, Progress: opts.Progress},
		Z:       opts.Z,
	})
}
