package consensus

import (
	"fmt"

	"lvmajority/internal/mc"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// BlockTrialer is the optional capability of protocols whose engines can
// advance many trials per call — the lockstep population kernel. When a
// Protocol also implements BlockTrialer and TrialBlockLanes returns a
// positive width, the estimators run it on the block pool: each worker
// builds one block runner via NewTrialBlock and receives contiguous trial
// ranges of that width. Trial rep of a block must draw only from
// rng.NewStream(seed, rep) — the same stream the scalar Trial would use —
// so a protocol's estimate is identical whether or not it opts in.
type BlockTrialer interface {
	Protocol
	// TrialBlockLanes returns the preferred trials-per-call width, or 0
	// when the protocol's current configuration wants trial-at-a-time.
	TrialBlockLanes() int
	// NewTrialBlock validates the (n, delta) configuration and returns a
	// stateful single-goroutine block runner (see mc.BlockFunc).
	NewTrialBlock(n, delta int) (func(seed uint64, lo, hi int, wins []bool) error, error)
}

// CountWins runs the protocol's trials [lo, hi) and returns the number of
// consensus wins in that window, dispatching to the block pool when the
// protocol opts in via BlockTrialer — the same capability check the
// estimators make, so a window counted here agrees trial-for-trial with the
// window an estimator would run. Trial rep draws only from
// rng.NewStream(opts.Seed, rep): the count is a pure function of (protocol
// behaviour, n, delta, seed, window), independent of worker count and of
// which process executes it. This is the unit of work a fabric worker
// executes for the coordinator.
func CountWins(p Protocol, n, delta, lo, hi int, opts EstimateOptions) (int, error) {
	if p == nil {
		return 0, fmt.Errorf("consensus: nil protocol")
	}
	if _, _, err := SplitInitial(n, delta); err != nil {
		return 0, err
	}
	mopts := mc.Options{Workers: opts.Workers, Seed: opts.Seed, Interrupt: opts.Interrupt, Progress: opts.Progress}
	if bt, ok := p.(BlockTrialer); ok {
		if lanes := bt.TrialBlockLanes(); lanes > 0 {
			wins, err := mc.CountWinsBlocks(lo, hi, mopts, lanes, func() (mc.BlockFunc, error) {
				return bt.NewTrialBlock(n, delta)
			})
			if err != nil {
				return 0, fmt.Errorf("consensus: trial block failed: %w", err)
			}
			return wins, nil
		}
	}
	wins, err := mc.CountWins(lo, hi, mopts, func(_ int, src *rng.Source) (bool, error) {
		return p.Trial(n, delta, src)
	})
	if err != nil {
		return 0, fmt.Errorf("consensus: trial failed: %w", err)
	}
	return wins, nil
}

// estimateBernoulli runs the protocol's trials under opts, dispatching to
// the block pool when the protocol opts in via BlockTrialer. Both
// EstimateWinProbability and EstimateWithEarlyStop funnel through here, so
// the capability check lives in exactly one place.
func estimateBernoulli(p Protocol, n, delta int, opts mc.BernoulliOptions) (stats.BernoulliEstimate, error) {
	if bt, ok := p.(BlockTrialer); ok {
		if lanes := bt.TrialBlockLanes(); lanes > 0 {
			est, err := mc.EstimateBernoulliBlocks(opts, lanes, func() (mc.BlockFunc, error) {
				return bt.NewTrialBlock(n, delta)
			})
			if err != nil {
				return stats.BernoulliEstimate{}, fmt.Errorf("consensus: trial block failed: %w", err)
			}
			return est, nil
		}
	}
	est, err := mc.EstimateBernoulli(opts, func(_ int, src *rng.Source) (bool, error) {
		return p.Trial(n, delta, src)
	})
	if err != nil {
		return stats.BernoulliEstimate{}, fmt.Errorf("consensus: trial failed: %w", err)
	}
	return est, nil
}
