package consensus

import (
	"sync/atomic"
	"testing"

	"lvmajority/internal/rng"
)

// fakeBlockTrialer is a protocol that can run either path: a scalar Trial
// and a block runner that replays the identical index-keyed streams. lanes
// controls whether it opts into block dispatch.
type fakeBlockTrialer struct {
	lanes       int
	blockBuilds atomic.Int32
	blockCalls  atomic.Int32
}

func (f *fakeBlockTrialer) Name() string { return "fake-block" }

func (f *fakeBlockTrialer) trialFrom(src *rng.Source, n, delta int) bool {
	// An arbitrary but stream-determined outcome with a delta-dependent
	// bias, so wrong stream keying or lane packing shows up as a
	// different estimate.
	return src.Float64() < 0.5+float64(delta)/float64(2*n)
}

func (f *fakeBlockTrialer) Trial(n, delta int, src *rng.Source) (bool, error) {
	return f.trialFrom(src, n, delta), nil
}

func (f *fakeBlockTrialer) TrialBlockLanes() int { return f.lanes }

func (f *fakeBlockTrialer) NewTrialBlock(n, delta int) (func(seed uint64, lo, hi int, wins []bool) error, error) {
	f.blockBuilds.Add(1)
	return func(seed uint64, lo, hi int, wins []bool) error {
		f.blockCalls.Add(1)
		var src rng.Source
		for rep := lo; rep < hi; rep++ {
			src.ReseedStream(seed, uint64(rep))
			wins[rep-lo] = f.trialFrom(&src, n, delta)
		}
		return nil
	}, nil
}

// TestBlockTrialerDispatch pins the capability protocol: a positive lane
// width routes the estimators through the block pool, a zero width keeps
// them on the scalar pool, and both paths return the identical estimate.
func TestBlockTrialerDispatch(t *testing.T) {
	opts := EstimateOptions{Trials: 2000, Workers: 4, Seed: 7}

	scalar := &fakeBlockTrialer{lanes: 0}
	want, err := EstimateWinProbability(scalar, 100, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scalar.blockBuilds.Load() != 0 {
		t.Fatalf("lanes=0 built %d block runners, want scalar path", scalar.blockBuilds.Load())
	}

	blocked := &fakeBlockTrialer{lanes: 128}
	got, err := EstimateWinProbability(blocked, 100, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.blockCalls.Load() == 0 {
		t.Fatal("lanes=128 never called the block runner")
	}
	if got != want {
		t.Fatalf("block estimate %+v, scalar %+v", got, want)
	}
}

// TestBlockTrialerEarlyStopDispatch covers the second estimator entry
// point: early stopping must dispatch to blocks and agree with the scalar
// sequential run trial for trial.
func TestBlockTrialerEarlyStopDispatch(t *testing.T) {
	opts := EstimateOptions{Trials: 50000, Workers: 4, Seed: 7}

	want, err := EstimateWithEarlyStop(&fakeBlockTrialer{lanes: 0}, 100, 80, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Trials >= 50000 {
		t.Fatalf("scalar run did not stop early: %+v", want)
	}

	blocked := &fakeBlockTrialer{lanes: 64}
	got, err := EstimateWithEarlyStop(blocked, 100, 80, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.blockCalls.Load() == 0 {
		t.Fatal("early-stop estimator never called the block runner")
	}
	if got != want {
		t.Fatalf("block early stop %+v, scalar %+v", got, want)
	}
}
