// Package consensus provides the measurement machinery for majority
// consensus: a protocol abstraction, a parallel Monte-Carlo estimator of the
// majority-consensus probability ρ with Wilson confidence intervals, and the
// threshold search that computes the empirical majority consensus threshold
// Ψ(n) — the smallest initial gap Δ₀ for which ρ ≥ 1 − 1/n — which is the
// quantity tabulated in Table 1 of the paper.
package consensus

import (
	"fmt"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// Protocol is one majority-consensus protocol. A Protocol must be safe for
// concurrent Trial calls with distinct Source values.
type Protocol interface {
	// Name identifies the protocol in tables and logs.
	Name() string
	// Trial runs one experiment with total initial population n and
	// initial gap delta (same parity as n) and reports whether the
	// initial majority won.
	Trial(n, delta int, src *rng.Source) (bool, error)
}

// SplitInitial splits a population of size n into majority and minority
// counts (a, b) with a + b = n and a − b = delta. It returns an error when
// the parity of n and delta differ (no integer solution), when delta is
// negative or at least n, or when the minority would be empty (the paper
// assumes a > b > 0).
func SplitInitial(n, delta int) (a, b int, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("consensus: non-positive population %d", n)
	}
	if delta < 0 {
		return 0, 0, fmt.Errorf("consensus: negative gap %d", delta)
	}
	if (n-delta)%2 != 0 {
		return 0, 0, fmt.Errorf("consensus: n=%d and delta=%d have different parity", n, delta)
	}
	b = (n - delta) / 2
	a = n - b
	if b <= 0 {
		return 0, 0, fmt.Errorf("consensus: gap %d leaves no minority in population %d", delta, n)
	}
	return a, b, nil
}

// MatchParity returns the smallest gap >= delta with the same parity as n,
// so that SplitInitial succeeds. Threshold searches use it to stay on the
// feasible gap grid.
func MatchParity(n, delta int) int {
	if (n-delta)%2 != 0 {
		return delta + 1
	}
	return delta
}

// TieBreak selects how a trial that ends in double extinction (both species
// simultaneously dead, reachable under self-destructive competition) is
// scored.
type TieBreak int

const (
	// TieIsLoss scores double extinction as a failure, matching the
	// paper's strict definition: majority consensus requires the initial
	// majority to have positive count at the consensus time.
	TieIsLoss TieBreak = iota
	// TieIsCoinFlip scores double extinction as a fair coin flip. Under
	// this scoring the exact solution ρ(a,b) = a/(a+b) of Theorems 20
	// and 23 holds at every state including those that reach (1,1).
	TieIsCoinFlip
)

// LVProtocol adapts a Lotka–Volterra chain to the Protocol interface.
type LVProtocol struct {
	// Params are the LV rate constants.
	Params lv.Params
	// Ties selects the double-extinction scoring (default TieIsLoss).
	Ties TieBreak
	// MaxSteps bounds each trial; 0 uses lv.DefaultMaxSteps. Trials that
	// exhaust the budget without consensus count as failures.
	MaxSteps int
	// Label overrides the generated name when non-empty.
	Label string
}

// Name implements Protocol.
func (p LVProtocol) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Params.String()
}

// CacheKey identifies the protocol's dynamics for persistent probe caches
// (see internal/sweep): unlike Name, it ignores the cosmetic Label and
// encodes every field that changes trial outcomes, so redefining a labelled
// protocol invalidates its cached probes.
func (p LVProtocol) CacheKey() string {
	return fmt.Sprintf("%s|ties=%d|maxsteps=%d", p.Params.String(), p.Ties, p.MaxSteps)
}

// Trial implements Protocol.
func (p LVProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	a, b, err := SplitInitial(n, delta)
	if err != nil {
		return false, err
	}
	out, err := lv.Run(p.Params, lv.State{X0: a, X1: b}, src, lv.RunOptions{MaxSteps: p.MaxSteps})
	if err != nil {
		return false, err
	}
	if !out.Consensus {
		return false, nil
	}
	if out.MajorityWon {
		return true, nil
	}
	if out.Winner == -1 && p.Ties == TieIsCoinFlip {
		return src.Bernoulli(0.5), nil
	}
	return false, nil
}
