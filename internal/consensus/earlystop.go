package consensus

import (
	"fmt"

	"lvmajority/internal/mc"
	"lvmajority/internal/stats"
)

// EstimateWithEarlyStop estimates the success probability like
// EstimateWinProbability, but samples in batches and stops as soon as the
// Wilson interval excludes the target on either side — typically a large
// saving at gaps far from the threshold, where a few hundred trials already
// settle the comparison. The final estimate uses however many trials were
// actually run (at most opts.Trials).
//
// The procedure is deterministic for fixed options: batch boundaries are
// fixed and per-trial streams are keyed by the global trial index, so the
// worker count cannot change the outcome. Because the interval is inspected
// repeatedly, its coverage is nominally optimistic (sequential testing);
// callers that need calibrated intervals should use the fixed-size
// estimator. Threshold searches only need the accept/reject side, for which
// the repeated-look optimism is acceptable and symmetric across probed gaps.
func EstimateWithEarlyStop(p Protocol, n, delta int, target float64, opts EstimateOptions) (stats.BernoulliEstimate, error) {
	if p == nil {
		return stats.BernoulliEstimate{}, fmt.Errorf("consensus: nil protocol")
	}
	if target <= 0 || target >= 1 {
		return stats.BernoulliEstimate{}, fmt.Errorf("consensus: early-stop target %v outside (0, 1)", target)
	}
	opts.normalize()
	if _, _, err := SplitInitial(n, delta); err != nil {
		return stats.BernoulliEstimate{}, err
	}
	return estimateBernoulli(p, n, delta, mc.BernoulliOptions{
		Options:   mc.Options{Replicates: opts.Trials, Workers: opts.Workers, Seed: opts.Seed, Interrupt: opts.Interrupt, Progress: opts.Progress},
		Z:         opts.Z,
		EarlyStop: true,
		Target:    target,
	})
}
