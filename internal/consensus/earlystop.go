package consensus

import (
	"fmt"

	"lvmajority/internal/stats"
)

// EstimateWithEarlyStop estimates the success probability like
// EstimateWinProbability, but samples in batches and stops as soon as the
// Wilson interval excludes the target on either side — typically a large
// saving at gaps far from the threshold, where a few hundred trials already
// settle the comparison. The final estimate uses however many trials were
// actually run (at most opts.Trials).
//
// The procedure is deterministic for fixed options: batch seeds derive from
// opts.Seed and the batch index. Because the interval is inspected
// repeatedly, its coverage is nominally optimistic (sequential testing);
// callers that need calibrated intervals should use the fixed-size
// estimator. Threshold searches only need the accept/reject side, for which
// the repeated-look optimism is acceptable and symmetric across probed gaps.
func EstimateWithEarlyStop(p Protocol, n, delta int, target float64, opts EstimateOptions) (stats.BernoulliEstimate, error) {
	if p == nil {
		return stats.BernoulliEstimate{}, fmt.Errorf("consensus: nil protocol")
	}
	if target <= 0 || target >= 1 {
		return stats.BernoulliEstimate{}, fmt.Errorf("consensus: early-stop target %v outside (0, 1)", target)
	}
	opts.normalize()

	batch := opts.Trials / 10
	if batch < 200 {
		batch = 200
	}
	if batch > opts.Trials {
		batch = opts.Trials
	}

	successes, trials := 0, 0
	for batchIdx := 0; trials < opts.Trials; batchIdx++ {
		size := batch
		if trials+size > opts.Trials {
			size = opts.Trials - trials
		}
		batchOpts := opts
		batchOpts.Trials = size
		batchOpts.Seed = opts.Seed + 0x9e3779b97f4a7c15*uint64(batchIdx+1)
		est, err := EstimateWinProbability(p, n, delta, batchOpts)
		if err != nil {
			return stats.BernoulliEstimate{}, err
		}
		successes += est.Successes
		trials += est.Trials

		combined, err := stats.WilsonInterval(successes, trials, opts.Z)
		if err != nil {
			return stats.BernoulliEstimate{}, err
		}
		if combined.Lo > target || combined.Hi < target {
			return combined, nil
		}
	}
	return stats.WilsonInterval(successes, trials, opts.Z)
}
