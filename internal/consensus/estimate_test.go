package consensus

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// fixedProtocol wins each trial independently with probability p.
type fixedProtocol struct {
	p float64
}

func (f fixedProtocol) Name() string { return fmt.Sprintf("fixed(%v)", f.p) }

func (f fixedProtocol) Trial(_, _ int, src *rng.Source) (bool, error) {
	return src.Bernoulli(f.p), nil
}

// failingProtocol errors after a number of trials.
type failingProtocol struct{}

func (failingProtocol) Name() string { return "failing" }

func (failingProtocol) Trial(_, _ int, _ *rng.Source) (bool, error) {
	return false, errors.New("boom")
}

func TestEstimateNilProtocol(t *testing.T) {
	if _, err := EstimateWinProbability(nil, 100, 10, EstimateOptions{}); err == nil {
		t.Error("nil protocol accepted")
	}
}

func TestEstimateInvalidSplit(t *testing.T) {
	if _, err := EstimateWinProbability(fixedProtocol{0.5}, 100, 3, EstimateOptions{}); err == nil {
		t.Error("parity mismatch accepted")
	}
}

func TestEstimatePropagatesTrialErrors(t *testing.T) {
	_, err := EstimateWinProbability(failingProtocol{}, 100, 10, EstimateOptions{Trials: 100, Workers: 4})
	if err == nil {
		t.Error("trial error swallowed")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.93} {
		est, err := EstimateWinProbability(fixedProtocol{p}, 100, 10, EstimateOptions{
			Trials:  20000,
			Workers: 8,
			Seed:    42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.P()-p) > 0.015 {
			t.Errorf("estimate for p=%v: %v", p, est)
		}
		if est.Lo > p || est.Hi < p {
			t.Errorf("CI %v does not contain %v", est, p)
		}
		if est.Trials != 20000 {
			t.Errorf("trials = %d, want 20000", est.Trials)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	// Identical options must give bit-identical results regardless of
	// scheduling, because worker streams are pre-split.
	opts := EstimateOptions{Trials: 5000, Workers: 7, Seed: 99}
	a, err := EstimateWinProbability(fixedProtocol{0.42}, 100, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateWinProbability(fixedProtocol{0.42}, 100, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes {
		t.Errorf("non-deterministic estimates: %d vs %d successes", a.Successes, b.Successes)
	}
}

func TestEstimateWorkerCountIndependence(t *testing.T) {
	// Per-trial streams are keyed by the trial index, so the estimate must
	// be bit-identical for every worker count — not merely statistically
	// equivalent. This pins down the old bug where trials were partitioned
	// per worker and the output depended on the worker count.
	baseline, err := EstimateWinProbability(fixedProtocol{0.7}, 100, 10, EstimateOptions{
		Trials:  10000,
		Workers: 1,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(baseline.P()-0.7) > 0.02 {
		t.Errorf("workers=1: estimate %v far from 0.7", baseline)
	}
	for _, workers := range []int{3, 8, 16} {
		est, err := EstimateWinProbability(fixedProtocol{0.7}, 100, 10, EstimateOptions{
			Trials:  10000,
			Workers: workers,
			Seed:    7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if est.Successes != baseline.Successes || est.Trials != baseline.Trials {
			t.Errorf("workers=%d: %d/%d successes, workers=1: %d/%d — estimate depends on worker count",
				workers, est.Successes, est.Trials, baseline.Successes, baseline.Trials)
		}
	}
}

func TestEstimateWorkerCountIndependenceLV(t *testing.T) {
	// The same contract end-to-end through a real simulation protocol.
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	one, err := EstimateWinProbability(p, 64, 8, EstimateOptions{Trials: 400, Workers: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := EstimateWinProbability(p, 64, 8, EstimateOptions{Trials: 400, Workers: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if one.Successes != eight.Successes {
		t.Errorf("Workers=1 gives %d successes, Workers=8 gives %d", one.Successes, eight.Successes)
	}
}

func TestEstimateMoreWorkersThanTrials(t *testing.T) {
	est, err := EstimateWinProbability(fixedProtocol{1}, 100, 10, EstimateOptions{
		Trials:  3,
		Workers: 64,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Successes != 3 || est.Trials != 3 {
		t.Errorf("estimate = %v, want 3/3", est)
	}
}

func TestEstimateWithLVProtocol(t *testing.T) {
	// End-to-end: a large gap at small n should give a high estimate.
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	est, err := EstimateWinProbability(p, 64, 48, EstimateOptions{Trials: 1500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if est.P() < 0.9 {
		t.Errorf("estimate %v unexpectedly low for a huge gap", est)
	}
}
