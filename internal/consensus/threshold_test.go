package consensus

import (
	"fmt"
	"math"
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// stepProtocol succeeds deterministically once delta reaches its cutoff.
type stepProtocol struct {
	cutoff int
}

func (s stepProtocol) Name() string { return fmt.Sprintf("step(%d)", s.cutoff) }

func (s stepProtocol) Trial(_, delta int, _ *rng.Source) (bool, error) {
	return delta >= s.cutoff, nil
}

// noisyRampProtocol has success probability ramping linearly from 0 at
// delta=0 to 1 at delta=ramp.
type noisyRampProtocol struct {
	ramp int
}

func (s noisyRampProtocol) Name() string { return fmt.Sprintf("ramp(%d)", s.ramp) }

func (s noisyRampProtocol) Trial(_, delta int, src *rng.Source) (bool, error) {
	p := float64(delta) / float64(s.ramp)
	return src.Bernoulli(p), nil
}

func TestFindThresholdValidation(t *testing.T) {
	if _, err := FindThreshold(nil, 100, ThresholdOptions{}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := FindThreshold(stepProtocol{1}, 2, ThresholdOptions{}); err == nil {
		t.Error("tiny population accepted")
	}
	if _, err := FindThreshold(stepProtocol{1}, 100, ThresholdOptions{Target: 1.5}); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestFindThresholdExactStep(t *testing.T) {
	for _, cutoff := range []int{2, 6, 20, 60} {
		res, err := FindThreshold(stepProtocol{cutoff}, 100, ThresholdOptions{
			Trials: 50,
			Seed:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("cutoff %d: threshold not found", cutoff)
		}
		want := MatchParity(100, cutoff)
		if res.Threshold != want {
			t.Errorf("cutoff %d: threshold = %d, want %d", cutoff, res.Threshold, want)
		}
	}
}

func TestFindThresholdOddPopulation(t *testing.T) {
	res, err := FindThreshold(stepProtocol{10}, 101, ThresholdOptions{Trials: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("threshold not found")
	}
	// Parity grid for odd n is odd gaps; smallest feasible >= 10 is 11.
	if res.Threshold != 11 {
		t.Errorf("threshold = %d, want 11", res.Threshold)
	}
}

func TestFindThresholdNotFound(t *testing.T) {
	// A protocol that never succeeds has no threshold.
	res, err := FindThreshold(stepProtocol{1 << 30}, 100, ThresholdOptions{Trials: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Threshold != -1 {
		t.Errorf("result = %+v, want not found", res)
	}
	if len(res.Evaluations) == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestFindThresholdAtMaximalGap(t *testing.T) {
	// Succeeds only at the largest feasible gap (n−2 for even n).
	res, err := FindThreshold(stepProtocol{98}, 100, ThresholdOptions{Trials: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Threshold != 98 {
		t.Errorf("result = %+v, want threshold 98", res)
	}
}

func TestFindThresholdImmediateSuccess(t *testing.T) {
	// Succeeds at every feasible gap: the threshold is the smallest one.
	res, err := FindThreshold(stepProtocol{0}, 100, ThresholdOptions{Trials: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Threshold != 2 {
		t.Errorf("result = %+v, want threshold 2 (smallest probed even gap)", res)
	}
}

func TestFindThresholdNoisyRamp(t *testing.T) {
	// With target 0.9 and a linear ramp to 1 at delta=50, the true
	// 0.9-threshold is 45; allow a small statistical neighborhood.
	res, err := FindThreshold(noisyRampProtocol{50}, 200, ThresholdOptions{
		Target: 0.9,
		Trials: 4000,
		Seed:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("threshold not found")
	}
	if res.Threshold < 40 || res.Threshold > 50 {
		t.Errorf("threshold = %d, want ~45", res.Threshold)
	}
}

func TestFindThresholdDeterministic(t *testing.T) {
	opts := ThresholdOptions{Trials: 500, Seed: 7}
	a, err := FindThreshold(noisyRampProtocol{30}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindThreshold(noisyRampProtocol{30}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Threshold != b.Threshold || len(a.Evaluations) != len(b.Evaluations) {
		t.Errorf("non-deterministic search: %+v vs %+v", a, b)
	}
}

func TestFindThresholdProbeCountLogarithmic(t *testing.T) {
	res, err := FindThreshold(stepProtocol{513}, 1<<14, ThresholdOptions{Trials: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("threshold not found")
	}
	if len(res.Evaluations) > 40 {
		t.Errorf("search used %d probes, want O(log n)", len(res.Evaluations))
	}
}

func TestFindThresholdLVEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	res, err := FindThreshold(p, 256, ThresholdOptions{Trials: 800, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no threshold found for SD LV at n=256")
	}
	// The SD threshold is polylogarithmic: it must sit far below √n·log n.
	if float64(res.Threshold) > ShapeSqrtLog(256) {
		t.Errorf("SD threshold %d at n=256 unexpectedly above √(n log n) = %v", res.Threshold, ShapeSqrtLog(256))
	}
}

func TestFitCurve(t *testing.T) {
	points := []CurvePoint{
		{N: 100, Threshold: 10, Found: true},
		{N: 400, Threshold: 20, Found: true},
		{N: 1600, Threshold: 40, Found: true},
		{N: 6400, Threshold: -1, Found: false}, // skipped
	}
	fit, err := FitCurve(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-0.5) > 1e-9 {
		t.Errorf("exponent = %v, want 0.5", fit.Exponent)
	}
}

func TestFitCurveTooFewPoints(t *testing.T) {
	if _, err := FitCurve([]CurvePoint{{N: 10, Threshold: 5, Found: true}}); err == nil {
		t.Error("single point accepted")
	}
}

func TestNormalizedAgainst(t *testing.T) {
	points := []CurvePoint{
		{N: 16, Threshold: 4, Found: true},
		{N: 64, Threshold: 8, Found: true},
		{N: 100, Threshold: -1, Found: false},
	}
	vals := NormalizedAgainst(points, ShapeSqrt)
	if len(vals) != 2 {
		t.Fatalf("got %d values, want 2", len(vals))
	}
	if vals[0] != 1 || vals[1] != 1 {
		t.Errorf("normalized = %v, want [1 1]", vals)
	}
}

func TestShapes(t *testing.T) {
	if got := ShapeSqrt(64); got != 8 {
		t.Errorf("ShapeSqrt(64) = %v", got)
	}
	if got := ShapeLog2(256); got != 64 {
		t.Errorf("ShapeLog2(256) = %v, want 64", got)
	}
	if got := ShapeSqrtLog(256); math.Abs(got-math.Sqrt(256*8)) > 1e-12 {
		t.Errorf("ShapeSqrtLog(256) = %v", got)
	}
}
