package consensus

import (
	"fmt"
	"math"
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// stepProtocol succeeds deterministically once delta reaches its cutoff.
type stepProtocol struct {
	cutoff int
}

func (s stepProtocol) Name() string { return fmt.Sprintf("step(%d)", s.cutoff) }

func (s stepProtocol) Trial(_, delta int, _ *rng.Source) (bool, error) {
	return delta >= s.cutoff, nil
}

// noisyRampProtocol has success probability ramping linearly from 0 at
// delta=0 to 1 at delta=ramp.
type noisyRampProtocol struct {
	ramp int
}

func (s noisyRampProtocol) Name() string { return fmt.Sprintf("ramp(%d)", s.ramp) }

func (s noisyRampProtocol) Trial(_, delta int, src *rng.Source) (bool, error) {
	p := float64(delta) / float64(s.ramp)
	return src.Bernoulli(p), nil
}

func TestFindThresholdValidation(t *testing.T) {
	if _, err := FindThreshold(nil, 100, ThresholdOptions{}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := FindThreshold(stepProtocol{1}, 2, ThresholdOptions{}); err == nil {
		t.Error("tiny population accepted")
	}
	if _, err := FindThreshold(stepProtocol{1}, 100, ThresholdOptions{Target: 1.5}); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestFindThresholdExactStep(t *testing.T) {
	for _, cutoff := range []int{2, 6, 20, 60} {
		res, err := FindThreshold(stepProtocol{cutoff}, 100, ThresholdOptions{
			Trials: 50,
			Seed:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("cutoff %d: threshold not found", cutoff)
		}
		want := MatchParity(100, cutoff)
		if res.Threshold != want {
			t.Errorf("cutoff %d: threshold = %d, want %d", cutoff, res.Threshold, want)
		}
	}
}

func TestFindThresholdOddPopulation(t *testing.T) {
	res, err := FindThreshold(stepProtocol{10}, 101, ThresholdOptions{Trials: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("threshold not found")
	}
	// Parity grid for odd n is odd gaps; smallest feasible >= 10 is 11.
	if res.Threshold != 11 {
		t.Errorf("threshold = %d, want 11", res.Threshold)
	}
}

func TestFindThresholdNotFound(t *testing.T) {
	// A protocol that never succeeds has no threshold.
	res, err := FindThreshold(stepProtocol{1 << 30}, 100, ThresholdOptions{Trials: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Threshold != -1 {
		t.Errorf("result = %+v, want not found", res)
	}
	if len(res.Evaluations) == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestFindThresholdAtMaximalGap(t *testing.T) {
	// Succeeds only at the largest feasible gap (n−2 for even n).
	res, err := FindThreshold(stepProtocol{98}, 100, ThresholdOptions{Trials: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Threshold != 98 {
		t.Errorf("result = %+v, want threshold 98", res)
	}
}

func TestFindThresholdImmediateSuccess(t *testing.T) {
	// Succeeds at every feasible gap: the threshold is the smallest one.
	res, err := FindThreshold(stepProtocol{0}, 100, ThresholdOptions{Trials: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Threshold != 2 {
		t.Errorf("result = %+v, want threshold 2 (smallest probed even gap)", res)
	}
}

func TestFindThresholdNoisyRamp(t *testing.T) {
	// With target 0.9 and a linear ramp to 1 at delta=50, the true
	// 0.9-threshold is 45; allow a small statistical neighborhood.
	res, err := FindThreshold(noisyRampProtocol{50}, 200, ThresholdOptions{
		Target: 0.9,
		Trials: 4000,
		Seed:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("threshold not found")
	}
	if res.Threshold < 40 || res.Threshold > 50 {
		t.Errorf("threshold = %d, want ~45", res.Threshold)
	}
}

func TestFindThresholdDeterministic(t *testing.T) {
	opts := ThresholdOptions{Trials: 500, Seed: 7}
	a, err := FindThreshold(noisyRampProtocol{30}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindThreshold(noisyRampProtocol{30}, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Threshold != b.Threshold || len(a.Evaluations) != len(b.Evaluations) {
		t.Errorf("non-deterministic search: %+v vs %+v", a, b)
	}
}

func TestFindThresholdProbeCountLogarithmic(t *testing.T) {
	res, err := FindThreshold(stepProtocol{513}, 1<<14, ThresholdOptions{Trials: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("threshold not found")
	}
	if len(res.Evaluations) > 40 {
		t.Errorf("search used %d probes, want O(log n)", len(res.Evaluations))
	}
}

func TestFindThresholdLVEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	res, err := FindThreshold(p, 256, ThresholdOptions{Trials: 800, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no threshold found for SD LV at n=256")
	}
	// The SD threshold is polylogarithmic: it must sit far below √n·log n.
	if float64(res.Threshold) > ShapeSqrtLog(256) {
		t.Errorf("SD threshold %d at n=256 unexpectedly above √(n log n) = %v", res.Threshold, ShapeSqrtLog(256))
	}
}

// countingEstimator wraps the default estimator and records how many times
// each gap was estimated.
func countingEstimator(p Protocol, n int, target float64, earlyStop bool, calls map[int]int) ProbeEstimator {
	inner := DefaultEstimator(p, n, target, earlyStop)
	return func(delta int, opts EstimateOptions) (stats.BernoulliEstimate, error) {
		calls[delta]++
		return inner(delta, opts)
	}
}

func TestFindThresholdHint(t *testing.T) {
	const cutoff = 20
	want := MatchParity(100, cutoff)
	cold, err := FindThreshold(stepProtocol{cutoff}, 100, ThresholdOptions{Trials: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Threshold != want {
		t.Fatalf("cold threshold = %d, want %d", cold.Threshold, want)
	}
	for _, hint := range []int{1, 2, 10, want - 2, want, want + 2, 40, 97, 1 << 20} {
		res, err := FindThreshold(stepProtocol{cutoff}, 100, ThresholdOptions{
			Trials: 20, Seed: 1, Hint: hint,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Threshold != want {
			t.Errorf("hint %d: threshold = %d (found=%v), want %d", hint, res.Threshold, res.Found, want)
		}
		if hint == want && len(res.Evaluations) != 2 {
			t.Errorf("exact hint settled in %d probes, want 2 (confirm + adjacent)", len(res.Evaluations))
		}
		if len(res.Evaluations) > len(cold.Evaluations)+1 {
			t.Errorf("hint %d used %d probes, cold used %d", hint, len(res.Evaluations), len(cold.Evaluations))
		}
	}
}

func TestFindThresholdHintOddPopulation(t *testing.T) {
	// Odd n: the parity grid is odd; an even hint must be clamped onto it.
	for _, hint := range []int{1, 8, 11, 50} {
		res, err := FindThreshold(stepProtocol{10}, 101, ThresholdOptions{Trials: 20, Seed: 2, Hint: hint})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Threshold != 11 {
			t.Errorf("hint %d: threshold = %d, want 11", hint, res.Threshold)
		}
	}
}

func TestFindThresholdHintNotFound(t *testing.T) {
	res, err := FindThreshold(stepProtocol{1 << 30}, 100, ThresholdOptions{Trials: 20, Seed: 3, Hint: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Threshold != -1 {
		t.Errorf("result = %+v, want not found", res)
	}
}

func TestFindThresholdNoDuplicateEstimates(t *testing.T) {
	// No configuration — cold, hinted high, hinted low, odd or even n —
	// may estimate the same gap twice or append duplicate Evaluations.
	for _, n := range []int{100, 101, 1000} {
		for _, hint := range []int{0, 1, 7, 29, 30, 31, 64, 99, 1 << 15} {
			for _, cutoff := range []int{2, 29, 30, 98} {
				calls := make(map[int]int)
				res, err := FindThreshold(stepProtocol{cutoff}, n, ThresholdOptions{
					Trials:    20,
					Seed:      4,
					Hint:      hint,
					Estimator: countingEstimator(stepProtocol{cutoff}, n, 0, false, calls),
				})
				if err != nil {
					t.Fatal(err)
				}
				for delta, c := range calls {
					if c != 1 {
						t.Errorf("n=%d hint=%d cutoff=%d: delta %d estimated %d times", n, hint, cutoff, delta, c)
					}
				}
				seen := make(map[int]bool)
				for _, ev := range res.Evaluations {
					if seen[ev.Delta] {
						t.Errorf("n=%d hint=%d cutoff=%d: duplicate evaluation at delta %d", n, hint, cutoff, ev.Delta)
					}
					seen[ev.Delta] = true
				}
				if len(calls) != len(res.Evaluations) {
					t.Errorf("n=%d hint=%d cutoff=%d: %d estimator calls but %d evaluations", n, hint, cutoff, len(calls), len(res.Evaluations))
				}
			}
		}
	}
}

func TestFindThresholdEstimatorOverride(t *testing.T) {
	// A synthetic estimator fully determines the search: succeed from
	// gap 12 with a fabricated estimate, without running any trials.
	var called int
	res, err := FindThreshold(stepProtocol{1}, 100, ThresholdOptions{
		Trials: 20,
		Seed:   5,
		Estimator: func(delta int, opts EstimateOptions) (stats.BernoulliEstimate, error) {
			called++
			if opts.Trials != 20 {
				t.Errorf("estimator got %d trials, want 20", opts.Trials)
			}
			if delta >= 12 {
				return stats.BernoulliEstimate{Successes: 20, Trials: 20, Lo: 0.9, Hi: 1}, nil
			}
			return stats.BernoulliEstimate{Successes: 0, Trials: 20, Lo: 0, Hi: 0.1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if called == 0 {
		t.Fatal("estimator override never called")
	}
	if !res.Found || res.Threshold != 12 {
		t.Errorf("threshold = %d (found=%v), want 12", res.Threshold, res.Found)
	}
}

func TestFindThresholdEarlyStopMatchesFixed(t *testing.T) {
	// For a protocol far from the target at every probed gap the
	// sequential estimator settles the same threshold as the fixed-size
	// one, with no more probes.
	fixed, err := FindThreshold(noisyRampProtocol{50}, 200, ThresholdOptions{Target: 0.9, Trials: 4000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	early, err := FindThreshold(noisyRampProtocol{50}, 200, ThresholdOptions{Target: 0.9, Trials: 4000, Seed: 6, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if !early.Found {
		t.Fatal("early-stop search found no threshold")
	}
	if d := early.Threshold - fixed.Threshold; d < -4 || d > 4 {
		t.Errorf("early-stop threshold %d, fixed %d — outside the statistical neighborhood", early.Threshold, fixed.Threshold)
	}
	var earlyTrials, fixedTrials int
	for _, ev := range early.Evaluations {
		earlyTrials += ev.Estimate.Trials
	}
	for _, ev := range fixed.Evaluations {
		fixedTrials += ev.Estimate.Trials
	}
	if earlyTrials >= fixedTrials {
		t.Errorf("early stop spent %d trials, fixed %d — no saving", earlyTrials, fixedTrials)
	}
}

func TestFitCurve(t *testing.T) {
	points := []CurvePoint{
		{N: 100, Threshold: 10, Found: true},
		{N: 400, Threshold: 20, Found: true},
		{N: 1600, Threshold: 40, Found: true},
		{N: 6400, Threshold: -1, Found: false}, // skipped
	}
	fit, err := FitCurve(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-0.5) > 1e-9 {
		t.Errorf("exponent = %v, want 0.5", fit.Exponent)
	}
}

func TestFitCurveTooFewPoints(t *testing.T) {
	if _, err := FitCurve([]CurvePoint{{N: 10, Threshold: 5, Found: true}}); err == nil {
		t.Error("single point accepted")
	}
}

func TestNormalizedAgainst(t *testing.T) {
	points := []CurvePoint{
		{N: 16, Threshold: 4, Found: true},
		{N: 64, Threshold: 8, Found: true},
		{N: 100, Threshold: -1, Found: false},
	}
	vals := NormalizedAgainst(points, ShapeSqrt)
	if len(vals) != 2 {
		t.Fatalf("got %d values, want 2", len(vals))
	}
	if vals[0] != 1 || vals[1] != 1 {
		t.Errorf("normalized = %v, want [1 1]", vals)
	}
}

func TestShapes(t *testing.T) {
	if got := ShapeSqrt(64); got != 8 {
		t.Errorf("ShapeSqrt(64) = %v", got)
	}
	if got := ShapeLog2(256); got != 64 {
		t.Errorf("ShapeLog2(256) = %v, want 64", got)
	}
	if got := ShapeSqrtLog(256); math.Abs(got-math.Sqrt(256*8)) > 1e-12 {
		t.Errorf("ShapeSqrtLog(256) = %v", got)
	}
}
