package consensus

import (
	"testing"

	"lvmajority/internal/lv"
)

// BenchmarkEstimateWinProbability measures the full estimator path — trial
// fan-out, per-trial chain simulation, and aggregation — for a small LV-SD
// instance. Run with -benchmem to track per-replicate allocation.
func BenchmarkEstimateWinProbability(b *testing.B) {
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	for i := 0; i < b.N; i++ {
		_, err := EstimateWinProbability(p, 128, 16, EstimateOptions{
			Trials:  1000,
			Workers: 4,
			Seed:    42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
