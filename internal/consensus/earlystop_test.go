package consensus

import (
	"math"
	"testing"

	"lvmajority/internal/lv"
)

func TestEarlyStopValidation(t *testing.T) {
	if _, err := EstimateWithEarlyStop(nil, 100, 10, 0.9, EstimateOptions{}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := EstimateWithEarlyStop(fixedProtocol{0.5}, 100, 10, 0, EstimateOptions{}); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := EstimateWithEarlyStop(fixedProtocol{0.5}, 100, 10, 1, EstimateOptions{}); err == nil {
		t.Error("target 1 accepted")
	}
}

func TestEarlyStopStopsEarlyOnClearCases(t *testing.T) {
	// p = 0.99 vs target 0.5: the first batch should settle it.
	est, err := EstimateWithEarlyStop(fixedProtocol{0.99}, 100, 10, 0.5, EstimateOptions{
		Trials: 100000,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials >= 100000 {
		t.Errorf("used all %d trials on a trivially clear case", est.Trials)
	}
	if est.Lo <= 0.5 {
		t.Errorf("estimate %v does not exclude the target", est)
	}

	// Symmetric: p = 0.01 vs target 0.5 rejects quickly.
	est, err = EstimateWithEarlyStop(fixedProtocol{0.01}, 100, 10, 0.5, EstimateOptions{
		Trials: 100000,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials >= 100000 {
		t.Errorf("used all %d trials on a trivially clear rejection", est.Trials)
	}
	if est.Hi >= 0.5 {
		t.Errorf("estimate %v does not exclude the target", est)
	}
}

func TestEarlyStopRunsFullBudgetOnBoundaryCases(t *testing.T) {
	// p exactly at the target: no early stop should trigger reliably, so
	// the full budget is consumed.
	est, err := EstimateWithEarlyStop(fixedProtocol{0.5}, 100, 10, 0.5, EstimateOptions{
		Trials: 3000,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials < 3000 {
		// Possible but rare (a lucky CI excursion); tolerate only a
		// near-full run.
		if est.Trials < 1500 {
			t.Errorf("stopped after %d trials at the boundary", est.Trials)
		}
	}
	if math.Abs(est.P()-0.5) > 0.05 {
		t.Errorf("estimate %v far from truth 0.5", est)
	}
}

func TestEarlyStopDeterministic(t *testing.T) {
	opts := EstimateOptions{Trials: 5000, Seed: 9, Workers: 3}
	a, err := EstimateWithEarlyStop(fixedProtocol{0.7}, 100, 10, 0.6, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateWithEarlyStop(fixedProtocol{0.7}, 100, 10, 0.6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes || a.Trials != b.Trials {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestFindThresholdEarlyStopAgrees(t *testing.T) {
	// On a steep ramp, the early-stop search must land on (nearly) the
	// same threshold as the exhaustive one, with fewer total trials.
	slow, err := FindThreshold(noisyRampProtocol{40}, 200, ThresholdOptions{
		Target: 0.9, Trials: 4000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := FindThreshold(noisyRampProtocol{40}, 200, ThresholdOptions{
		Target: 0.9, Trials: 4000, Seed: 11, EarlyStop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slow.Found || !fast.Found {
		t.Fatal("threshold not found")
	}
	if d := fast.Threshold - slow.Threshold; d < -4 || d > 4 {
		t.Errorf("early-stop threshold %d vs exhaustive %d", fast.Threshold, slow.Threshold)
	}
	totalTrials := func(r ThresholdResult) int {
		sum := 0
		for _, ev := range r.Evaluations {
			sum += ev.Estimate.Trials
		}
		return sum
	}
	if totalTrials(fast) >= totalTrials(slow) {
		t.Errorf("early stop used %d trials, exhaustive %d", totalTrials(fast), totalTrials(slow))
	}
}

func TestFindThresholdEarlyStopLV(t *testing.T) {
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	res, err := FindThreshold(p, 256, ThresholdOptions{Trials: 2000, Seed: 13, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no threshold found")
	}
	if res.Threshold < 2 || res.Threshold > 64 {
		t.Errorf("threshold = %d, outside the plausible SD band at n=256", res.Threshold)
	}
}
