package consensus

import "testing"

// FuzzSplitInitial checks the splitter's arithmetic invariants for arbitrary
// inputs: whenever it succeeds, the parts reconstruct (n, delta) exactly and
// the minority is non-empty.
func FuzzSplitInitial(f *testing.F) {
	f.Add(100, 10)
	f.Add(101, 1)
	f.Add(3, 1)
	f.Add(2, 0)
	f.Add(-5, 2)
	f.Add(1000000, 999998)
	f.Fuzz(func(t *testing.T, n, delta int) {
		a, b, err := SplitInitial(n, delta)
		if err != nil {
			return // rejected inputs are fine; we check accepted ones
		}
		if a+b != n {
			t.Fatalf("SplitInitial(%d, %d): a+b = %d", n, delta, a+b)
		}
		if a-b != delta {
			t.Fatalf("SplitInitial(%d, %d): a-b = %d", n, delta, a-b)
		}
		if b <= 0 || a < b {
			t.Fatalf("SplitInitial(%d, %d): (a, b) = (%d, %d)", n, delta, a, b)
		}
	})
}

// FuzzMatchParity checks that the returned gap is feasible and minimal.
func FuzzMatchParity(f *testing.F) {
	f.Add(100, 10)
	f.Add(101, 10)
	f.Add(7, 0)
	f.Fuzz(func(t *testing.T, n, delta int) {
		if n < 1 || delta < 0 || delta > 1<<30 {
			return
		}
		got := MatchParity(n, delta)
		if got < delta || got > delta+1 {
			t.Fatalf("MatchParity(%d, %d) = %d", n, delta, got)
		}
		if (n-got)%2 != 0 {
			t.Fatalf("MatchParity(%d, %d) = %d has wrong parity", n, delta, got)
		}
	})
}
