package consensus_test

import (
	"fmt"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
)

// ExampleEstimateWinProbability estimates ρ for a large gap, where the
// majority almost surely wins.
func ExampleEstimateWinProbability() {
	protocol := consensus.LVProtocol{
		Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
	}
	est, err := consensus.EstimateWinProbability(protocol, 128, 96, consensus.EstimateOptions{
		Trials:  500,
		Workers: 1,
		Seed:    7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("high:", est.P() > 0.95)
	fmt.Println("trials:", est.Trials)
	// Output:
	// high: true
	// trials: 500
}

// ExampleSplitInitial splits a population into majority and minority counts.
func ExampleSplitInitial() {
	a, b, err := consensus.SplitInitial(100, 10)
	fmt.Println(a, b, err)
	_, _, err = consensus.SplitInitial(100, 11)
	fmt.Println(err != nil)
	// Output:
	// 55 45 <nil>
	// true
}
