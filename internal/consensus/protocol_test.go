package consensus

import (
	"testing"
	"testing/quick"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

func TestSplitInitial(t *testing.T) {
	cases := []struct {
		n, delta int
		a, b     int
		wantErr  bool
	}{
		{100, 10, 55, 45, false},
		{100, 0, 50, 50, false},
		{101, 1, 51, 50, false},
		{100, 98, 99, 1, false},
		{100, 100, 0, 0, true}, // empty minority
		{100, 11, 0, 0, true},  // parity mismatch
		{100, -2, 0, 0, true},  // negative gap
		{0, 0, 0, 0, true},     // empty population
		{101, 101, 0, 0, true}, // gap too large
	}
	for _, tc := range cases {
		a, b, err := SplitInitial(tc.n, tc.delta)
		if tc.wantErr {
			if err == nil {
				t.Errorf("SplitInitial(%d, %d) did not error", tc.n, tc.delta)
			}
			continue
		}
		if err != nil {
			t.Errorf("SplitInitial(%d, %d): %v", tc.n, tc.delta, err)
			continue
		}
		if a != tc.a || b != tc.b {
			t.Errorf("SplitInitial(%d, %d) = (%d, %d), want (%d, %d)", tc.n, tc.delta, a, b, tc.a, tc.b)
		}
	}
}

func TestSplitInitialProperty(t *testing.T) {
	err := quick.Check(func(nRaw, dRaw uint16) bool {
		n := int(nRaw)%1000 + 3
		delta := MatchParity(n, int(dRaw)%(n-2))
		if delta > n-2 {
			delta -= 2
		}
		if delta < 0 {
			return true
		}
		a, b, err := SplitInitial(n, delta)
		if err != nil {
			return false
		}
		return a+b == n && a-b == delta && b > 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMatchParity(t *testing.T) {
	cases := []struct {
		n, delta, want int
	}{
		{100, 10, 10},
		{100, 11, 12},
		{101, 11, 11},
		{101, 10, 11},
		{100, 0, 0},
		{101, 0, 1},
	}
	for _, tc := range cases {
		if got := MatchParity(tc.n, tc.delta); got != tc.want {
			t.Errorf("MatchParity(%d, %d) = %d, want %d", tc.n, tc.delta, got, tc.want)
		}
	}
}

func TestLVProtocolName(t *testing.T) {
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	if p.Name() == "" {
		t.Error("empty generated name")
	}
	labeled := LVProtocol{Label: "sd-lv"}
	if labeled.Name() != "sd-lv" {
		t.Errorf("Name = %q, want sd-lv", labeled.Name())
	}
}

func TestLVProtocolTrial(t *testing.T) {
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	src := rng.New(3)
	wins := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		won, err := p.Trial(100, 80, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if wins < trials*9/10 {
		t.Errorf("overwhelming majority won only %d/%d", wins, trials)
	}
}

func TestLVProtocolTrialParityError(t *testing.T) {
	p := LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	if _, err := p.Trial(100, 3, rng.New(1)); err == nil {
		t.Error("parity mismatch did not error")
	}
}

func TestLVProtocolMaxStepsFailureCounting(t *testing.T) {
	// A chain without any reactions cannot reach consensus; every trial
	// must count as a failure rather than hanging.
	p := LVProtocol{
		Params:   lv.Neutral(0, 0, 0, 0, lv.SelfDestructive),
		MaxSteps: 10,
	}
	won, err := p.Trial(10, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if won {
		t.Error("non-converging trial counted as win")
	}
}

func TestLVProtocolTieBreaks(t *testing.T) {
	// A pure SD competition chain from (1, 1) — n = 2, delta = 0 —
	// always ends in double extinction (one interspecific event reaches
	// (0, 0)). TieIsLoss must always lose; TieIsCoinFlip must win about
	// half the time.
	params := lv.Neutral(0, 0, 1, 0, lv.SelfDestructive)
	src := rng.New(5)

	loss := LVProtocol{Params: params, Ties: TieIsLoss}
	for i := 0; i < 100; i++ {
		won, err := loss.Trial(2, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			t.Fatal("double extinction scored as a win under TieIsLoss")
		}
	}

	coin := LVProtocol{Params: params, Ties: TieIsCoinFlip}
	heads := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		won, err := coin.Trial(2, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			heads++
		}
	}
	if heads < trials*45/100 || heads > trials*55/100 {
		t.Errorf("coin-flip tie break won %d/%d, want ~half", heads, trials)
	}
}
