package consensus

import (
	"fmt"
	"math"

	"lvmajority/internal/progress"
	"lvmajority/internal/stats"
)

// ThresholdOptions configures FindThreshold.
type ThresholdOptions struct {
	// Target is the success probability the threshold must reach; zero
	// defaults to 1 − 1/n, the paper's high-probability criterion.
	Target float64
	// Trials is the Monte-Carlo sample size per evaluated gap (default
	// 2000).
	Trials int
	// Workers is passed through to the estimator.
	Workers int
	// Seed determines all randomness (per-gap streams are derived from
	// it, so re-running reproduces the same search path).
	Seed uint64
	// MaxDelta caps the search (default n−2, the largest feasible gap
	// with a non-empty minority).
	MaxDelta int
	// EarlyStop probes each gap with the sequential estimator, which
	// stops as soon as the confidence interval settles the comparison
	// against the target — often an order of magnitude fewer trials at
	// gaps far from the threshold. See EstimateWithEarlyStop for the
	// sequential-testing caveat.
	EarlyStop bool
	// Hint warm-starts the search with a guess for the threshold —
	// typically the threshold found at the previous, smaller n of a
	// sweep, since Ψ(n) is monotone in n. The search probes the hint
	// first and brackets outward from it, so an accurate hint replaces
	// the exponential bracketing phase with one or two confirmation
	// probes. Zero (or an infeasible value) falls back to the cold
	// exponential search. When the probe outcomes are monotone in the
	// gap — which the whole search already assumes — the returned
	// threshold is identical to the cold search's.
	Hint int
	// Estimator overrides the per-gap estimator. internal/sweep uses it
	// to layer memoized and persistent caching over the default
	// estimators; nil selects EstimateWinProbability, or
	// EstimateWithEarlyStop when EarlyStop is set. The override must be
	// deterministic in its arguments.
	Estimator ProbeEstimator
	// Interrupt, when non-nil, is polled between trials of every probe; a
	// non-nil return aborts the search with that error. It never affects
	// results while it returns nil.
	Interrupt func() error
	// Progress, when non-nil, is forwarded into every probe's estimator
	// options so trial and estimate snapshots flow out of the search.
	// Probe-level events (start, settle, cache provenance) are emitted by
	// internal/sweep, which owns the cache. Observation-only.
	Progress progress.Hook
}

// ProbeEstimator evaluates one gap during a threshold search. The options
// carry the resolved trial count and the derived per-gap seed, so equal
// arguments must always produce the same estimate.
type ProbeEstimator func(delta int, opts EstimateOptions) (stats.BernoulliEstimate, error)

// DefaultEstimator returns the estimator FindThreshold uses when
// ThresholdOptions.Estimator is nil: the fixed-size estimator, or the
// sequential early-stopping estimator when earlyStop is set.
func DefaultEstimator(p Protocol, n int, target float64, earlyStop bool) ProbeEstimator {
	return func(delta int, opts EstimateOptions) (stats.BernoulliEstimate, error) {
		if earlyStop {
			return EstimateWithEarlyStop(p, n, delta, target, opts)
		}
		return EstimateWinProbability(p, n, delta, opts)
	}
}

// Evaluation records one probed gap during a threshold search.
type Evaluation struct {
	Delta    int
	Estimate stats.BernoulliEstimate
}

// ThresholdResult is the outcome of a threshold search.
type ThresholdResult struct {
	// N is the total initial population.
	N int
	// Target is the success probability that defined the threshold.
	Target float64
	// Threshold is the smallest probed gap whose estimated ρ reached
	// Target, or −1 if no feasible gap reached it (Found = false).
	Threshold int
	// Found reports whether any feasible gap reached the target.
	Found bool
	// Evaluations lists every probed gap in probe order.
	Evaluations []Evaluation
}

// FindThreshold locates the empirical majority-consensus threshold Ψ(n): the
// smallest gap Δ (on the parity-feasible grid) whose estimated success
// probability reaches the target. It assumes ρ is non-decreasing in Δ —
// true for every protocol in this repository — and uses exponential search
// to bracket the threshold followed by binary search, so the number of
// estimator calls is O(log n).
func FindThreshold(p Protocol, n int, opts ThresholdOptions) (ThresholdResult, error) {
	if p == nil {
		return ThresholdResult{}, fmt.Errorf("consensus: nil protocol")
	}
	if n < 3 {
		return ThresholdResult{}, fmt.Errorf("consensus: population %d too small for a threshold search", n)
	}
	target := opts.Target
	if target <= 0 {
		target = 1 - 1/float64(n)
	}
	if target >= 1 {
		return ThresholdResult{}, fmt.Errorf("consensus: unreachable target %v", target)
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 2000
	}
	maxDelta := opts.MaxDelta
	if maxDelta <= 0 || maxDelta > n-2 {
		maxDelta = n - 2
	}
	maxDelta = MatchParity(n, maxDelta)
	if maxDelta > n-2 {
		maxDelta -= 2
	}
	if maxDelta < MatchParity(n, 0) {
		return ThresholdResult{}, fmt.Errorf("consensus: no feasible gap for n=%d", n)
	}

	res := ThresholdResult{N: n, Target: target, Threshold: -1}

	estimator := opts.Estimator
	if estimator == nil {
		estimator = DefaultEstimator(p, n, target, opts.EarlyStop)
	}

	// Deterministic per-gap seeds: mix the root seed with the gap so the
	// same gap is always evaluated with the same stream, which keeps the
	// bisection self-consistent. Results are memoized so no gap is ever
	// estimated twice in one search (warm-started bracketing and the
	// parity clamp in the binary search can both revisit a gap) and
	// Evaluations never holds duplicates.
	memo := make(map[int]bool)
	probe := func(delta int) (bool, error) {
		if ok, seen := memo[delta]; seen {
			return ok, nil
		}
		est, err := estimator(delta, EstimateOptions{
			Trials:    trials,
			Workers:   opts.Workers,
			Seed:      opts.Seed ^ (uint64(delta)*0x9e3779b97f4a7c15 + 0x1234567),
			Interrupt: opts.Interrupt,
			Progress:  opts.Progress,
		})
		if err != nil {
			// Wrap with the probe's coordinates so a failure deep in an
			// engine (a panic recovered by mc, an injected fault) reports
			// which point of the search died, while %w keeps the underlying
			// error reachable for errors.Is/As.
			return false, fmt.Errorf("consensus: probe n=%d delta=%d failed: %w", n, delta, err)
		}
		res.Evaluations = append(res.Evaluations, Evaluation{Delta: delta, Estimate: est})
		ok := est.P() >= target
		memo[delta] = ok
		return ok, nil
	}

	minFeasible := MatchParity(n, 0) // smallest feasible gap (2 or 1)
	if minFeasible == 0 {
		minFeasible = 2 // a gap of zero cannot define a majority
	}
	lo := minFeasible
	var hi int
	found := false

	// expand runs the exponential bracketing phase from start, with grow
	// picking each successive gap, until a probe passes (hi found) or
	// maxDelta fails (no threshold). It maintains the invariant that
	// every feasible gap below lo failed or is assumed to fail by
	// monotonicity.
	expand := func(start int, grow func(delta int) int) error {
		delta := start
		for {
			if delta > maxDelta {
				delta = maxDelta
			}
			ok, err := probe(delta)
			if err != nil {
				return err
			}
			if ok {
				hi = delta
				found = true
				return nil
			}
			if delta == maxDelta {
				return nil
			}
			lo = delta + 2 // threshold is strictly above delta on the parity grid
			next := grow(delta)
			if next <= delta {
				next = delta + 2
			}
			delta = MatchParity(n, next)
		}
	}
	doubling := func(delta int) int { return delta * 2 }

	if hint := MatchParity(n, opts.Hint); opts.Hint > 0 {
		// Warm start: confirm the hinted threshold with one or two
		// probes, falling into bisection or exponential expansion only
		// when the hint is off.
		if hint > maxDelta {
			hint = maxDelta
		}
		if hint < minFeasible {
			hint = minFeasible
		}
		ok, err := probe(hint)
		if err != nil {
			return res, err
		}
		if ok {
			hi = hint
			found = true
			if hint > minFeasible {
				below, err := probe(hint - 2)
				if err != nil {
					return res, err
				}
				if below {
					// Hint overshot: the threshold is lower;
					// bisect down to the smallest feasible gap.
					hi = hint - 2
				} else {
					lo = hint // bracket collapsed: threshold is exactly the hint
				}
			}
		} else {
			// The hint failed, so the threshold is strictly above
			// it — usually only slightly, since the hint tracks a
			// slowly growing monotone curve. Expand the offset from
			// the hint geometrically (hint+2, hint+6, hint+14, …)
			// rather than doubling the gap itself, which would
			// overshoot and inflate the bisection range.
			lo = hint + 2
			inc := 2
			if err := expand(MatchParity(n, hint+2), func(delta int) int {
				inc *= 2
				return delta + inc
			}); err != nil {
				return res, err
			}
		}
	} else if err := expand(lo, doubling); err != nil {
		return res, err
	}
	if !found {
		return res, nil
	}

	// Binary search in [lo, hi] on the parity grid; every gap below lo is
	// known to fail and hi is known to succeed.
	for lo < hi {
		mid := (lo + hi) / 2
		// Round down onto the parity grid so mid stays strictly
		// below hi.
		if (n-mid)%2 != 0 {
			mid--
		}
		if mid < lo {
			mid = lo
		}
		ok, err := probe(mid)
		if err != nil {
			return res, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 2
		}
	}
	res.Threshold = hi
	res.Found = true
	return res, nil
}

// CurvePoint is one (n, threshold) pair of a threshold scaling curve.
type CurvePoint struct {
	N         int
	Threshold int
	// Found is false when no feasible gap reached the target at this n;
	// Threshold is then −1.
	Found bool
}

// FitCurve fits Ψ(n) ≈ C·n^k through the found points of a threshold curve
// and returns the power-law fit. Points with Found == false or non-positive
// thresholds are skipped; at least two usable points are required.
func FitCurve(points []CurvePoint) (stats.PowerLawFit, error) {
	var xs, ys []float64
	for _, pt := range points {
		if !pt.Found || pt.Threshold <= 0 {
			continue
		}
		xs = append(xs, float64(pt.N))
		ys = append(ys, float64(pt.Threshold))
	}
	if len(xs) < 2 {
		return stats.PowerLawFit{}, fmt.Errorf("consensus: need >= 2 found points to fit, have %d", len(xs))
	}
	return stats.PowerLaw(xs, ys)
}

// NormalizedAgainst returns the threshold values divided by the reference
// shape f(n), e.g. f = log²n or √n. A roughly flat sequence indicates the
// thresholds scale like f.
func NormalizedAgainst(points []CurvePoint, f func(n float64) float64) []float64 {
	out := make([]float64, 0, len(points))
	for _, pt := range points {
		if !pt.Found || pt.Threshold <= 0 {
			continue
		}
		out = append(out, float64(pt.Threshold)/f(float64(pt.N)))
	}
	return out
}

// ShapeLog2 is the reference shape log₂²(n) for the self-destructive upper
// bound (Theorem 14).
func ShapeLog2(n float64) float64 {
	l := math.Log2(n)
	return l * l
}

// ShapeSqrtLog is the reference shape √(n·log₂ n), matching the dominant
// Hoeffding term t = √((k+1)·c·n·ln n) in the non-self-destructive upper
// bound (Theorem 18).
func ShapeSqrtLog(n float64) float64 {
	return math.Sqrt(n * math.Log2(n))
}

// ShapeSqrt is the reference shape √n, the non-self-destructive lower bound
// (Theorem 19).
func ShapeSqrt(n float64) float64 { return math.Sqrt(n) }
