package consensus

import (
	"errors"
	"strings"
	"testing"

	"lvmajority/internal/mc"
	"lvmajority/internal/rng"
)

// panickyProtocol panics on a specific trial pattern — a stand-in for an
// engine invariant violation deep inside a threshold search.
type panickyProtocol struct{}

func (panickyProtocol) Name() string { return "panicky" }

func (panickyProtocol) Trial(_, delta int, src *rng.Source) (bool, error) {
	if delta >= 8 {
		panic("state table corrupted")
	}
	return src.Bernoulli(0.5), nil
}

// TestFindThresholdPanicBecomesError: an engine panic inside a probe must
// surface from FindThreshold as an error that (a) names the failing probe
// coordinates and (b) still unwraps to mc.TrialPanicError — not crash the
// search.
func TestFindThresholdPanicBecomesError(t *testing.T) {
	_, err := FindThreshold(panickyProtocol{}, 100, ThresholdOptions{
		Trials: 50, Workers: 4, Seed: 17,
	})
	if err == nil {
		t.Fatal("panic inside probe did not fail the search")
	}
	var tp *mc.TrialPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("error %v does not unwrap to a TrialPanicError", err)
	}
	if !strings.Contains(err.Error(), "probe n=100") {
		t.Errorf("error %q lacks probe coordinates", err)
	}
}
