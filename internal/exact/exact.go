// Package exact computes exact (up to truncation and iteration tolerance)
// absorption quantities of the two-species Lotka–Volterra chains by solving
// the first-step recurrences on a truncated state grid:
//
//   - Rho(a, b): the probability that species 0 is the sole survivor,
//     the quantity ρ(S) whose recurrence Eq. (8) of the paper analyzes
//     (Lemmas 21–22, Theorems 20 and 23); and
//   - Steps(a, b): the expected consensus time E[T(S)].
//
// The grid truncates both counts at a ceiling M, disabling birth moves out
// of the boundary (their probability mass becomes holding, which the jump
// chain renormalizes away). For chains whose population drifts down —
// everything with competition, and β ≤ δ without — the truncation error
// vanishes as M grows; ErrorBound gives a crude a-posteriori check.
//
// The package is the deterministic oracle used to validate the Monte-Carlo
// pipeline and the paper's exact-probability theorems without sampling
// error.
package exact

import (
	"fmt"
	"math"

	"lvmajority/internal/lv"
)

// Options configures a solve.
type Options struct {
	// Max is the grid ceiling M: states (a, b) with a, b <= M.
	Max int
	// TieValue is the value assigned to the double-extinction state
	// (0,0) in the ρ system. The paper's strict definition scores it 0
	// (no species has positive count at T(S)); 0.5 recovers the clean
	// a/(a+b) solution of Theorems 20/23 (measured side by side in the
	// E-EXACT record of the generated EXPERIMENTS.md).
	TieValue float64
	// Tol is the Gauss–Seidel convergence tolerance (default 1e-12).
	Tol float64
	// MaxSweeps caps the iteration count (default 200000).
	MaxSweeps int
}

func (o *Options) normalize() error {
	if o.Max < 1 {
		return fmt.Errorf("exact: grid ceiling %d < 1", o.Max)
	}
	if o.TieValue < 0 || o.TieValue > 1 {
		return fmt.Errorf("exact: tie value %v outside [0, 1]", o.TieValue)
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 200000
	}
	return nil
}

// Solution holds the solved grids.
type Solution struct {
	params lv.Params
	max    int
	tie    float64
	// rho[a][b] = Pr[species 0 wins | start (a, b)].
	rho [][]float64
	// steps[a][b] = E[consensus time | start (a, b)]; nil unless solved.
	steps [][]float64
}

// Max returns the grid ceiling.
func (s *Solution) Max() int { return s.max }

// Rho returns the exact win probability of species 0 from (a, b). States
// outside the solved grid return an error.
func (s *Solution) Rho(a, b int) (float64, error) {
	if a < 0 || b < 0 || a > s.max || b > s.max {
		return 0, fmt.Errorf("exact: state (%d, %d) outside grid [0, %d]^2", a, b, s.max)
	}
	return s.rho[a][b], nil
}

// Steps returns the expected consensus time from (a, b). It errors if the
// solve was run without WithSteps or the state is outside the grid.
func (s *Solution) Steps(a, b int) (float64, error) {
	if s.steps == nil {
		return 0, fmt.Errorf("exact: steps grid not solved (use SolveWithSteps)")
	}
	if a < 0 || b < 0 || a > s.max || b > s.max {
		return 0, fmt.Errorf("exact: state (%d, %d) outside grid [0, %d]^2", a, b, s.max)
	}
	return s.steps[a][b], nil
}

// transition captures one enabled jump from a grid state.
type transition struct {
	prob   float64
	a2, b2 int
}

// transitionsInto fills dst with the jump-chain transitions from (a, b) on
// the truncated grid and returns the filled slice. Births that would leave
// the grid are disabled (renormalized away by the jump chain).
func transitionsInto(dst []transition, p lv.Params, a, b, max int) []transition {
	dst = dst[:0]
	s := lv.State{X0: a, X1: b}
	props, _ := lv.PropensitiesFor(p, s)
	var total float64
	for k, v := range props {
		if v <= 0 {
			continue
		}
		kind := lv.EventKind(k)
		next := lv.ApplyEvent(p, s, kind)
		if next.X0 > max || next.X1 > max {
			continue // truncated birth
		}
		dst = append(dst, transition{prob: v, a2: next.X0, b2: next.X1})
		total += v
	}
	for i := range dst {
		dst[i].prob /= total
	}
	if total == 0 {
		return dst[:0]
	}
	return dst
}

// Solve computes the ρ grid for the given chain parameters.
func Solve(params lv.Params, opts Options) (*Solution, error) {
	return solve(params, opts, false)
}

// SolveWithSteps computes both the ρ grid and the expected consensus-time
// grid.
func SolveWithSteps(params lv.Params, opts Options) (*Solution, error) {
	return solve(params, opts, true)
}

func solve(params lv.Params, opts Options, withSteps bool) (*Solution, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	m := opts.Max

	sol := &Solution{params: params, max: m, tie: opts.TieValue}
	sol.rho = newGrid(m)
	// Boundary conditions: species 0 has won on the b = 0 edge (a > 0),
	// lost on the a = 0 edge, and the double-extinction corner takes the
	// tie value.
	for a := 1; a <= m; a++ {
		sol.rho[a][0] = 1
	}
	sol.rho[0][0] = opts.TieValue

	if err := gaussSeidel(sol.rho, params, m, opts, func(trs []transition, a, b int) (float64, bool) {
		if len(trs) == 0 {
			// No enabled moves from an interior state: all rates
			// zero; the chain never reaches consensus. Treat as
			// losing (ρ contribution 0) — matches the Monte-Carlo
			// convention of scoring non-convergence as failure.
			return 0, true
		}
		var v float64
		for _, tr := range trs {
			v += tr.prob * sol.rho[tr.a2][tr.b2]
		}
		return v, true
	}); err != nil {
		return nil, err
	}

	if withSteps {
		sol.steps = newGrid(m)
		if err := gaussSeidel(sol.steps, params, m, opts, func(trs []transition, a, b int) (float64, bool) {
			if len(trs) == 0 {
				return 0, false // undefined; leave zero
			}
			v := 1.0
			for _, tr := range trs {
				v += tr.prob * sol.steps[tr.a2][tr.b2]
			}
			return v, true
		}); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

func newGrid(m int) [][]float64 {
	g := make([][]float64, m+1)
	cells := make([]float64, (m+1)*(m+1))
	for a := range g {
		g[a], cells = cells[:m+1], cells[m+1:]
	}
	return g
}

// gaussSeidel sweeps the interior states (a, b >= 1) until the update
// callback's values stabilize.
func gaussSeidel(grid [][]float64, params lv.Params, m int, opts Options, update func(trs []transition, a, b int) (float64, bool)) error {
	scratch := make([]transition, 0, lv.NumEventKinds)
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		var maxDelta float64
		for a := 1; a <= m; a++ {
			for b := 1; b <= m; b++ {
				scratch = transitionsInto(scratch, params, a, b, m)
				v, ok := update(scratch, a, b)
				if !ok {
					continue
				}
				if d := math.Abs(v - grid[a][b]); d > maxDelta {
					maxDelta = d
				}
				grid[a][b] = v
			}
		}
		if maxDelta < opts.Tol {
			return nil
		}
	}
	return fmt.Errorf("exact: Gauss–Seidel did not converge within %d sweeps", opts.MaxSweeps)
}

// ErrorBound estimates the truncation sensitivity at (a, b) by re-solving on
// a smaller grid and reporting |ρ_M(a,b) − ρ_{M'}(a,b)| for M' = 3M/4. A
// small value indicates the ceiling no longer matters at (a, b).
func ErrorBound(params lv.Params, a, b int, opts Options) (float64, error) {
	full, err := Solve(params, opts)
	if err != nil {
		return 0, err
	}
	smaller := opts
	smaller.Max = opts.Max * 3 / 4
	if a > smaller.Max || b > smaller.Max {
		return 0, fmt.Errorf("exact: state (%d, %d) outside the reduced grid %d", a, b, smaller.Max)
	}
	reduced, err := Solve(params, smaller)
	if err != nil {
		return 0, err
	}
	vFull, err := full.Rho(a, b)
	if err != nil {
		return 0, err
	}
	vReduced, err := reduced.Rho(a, b)
	if err != nil {
		return 0, err
	}
	return math.Abs(vFull - vReduced), nil
}
