package exact

import (
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
)

func TestThresholdValidation(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	sol, err := Solve(params, Options{Max: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sol.Threshold(2, 0); err == nil {
		t.Error("tiny population accepted")
	}
	if _, _, err := sol.Threshold(100, 0); err == nil {
		t.Error("population beyond grid accepted")
	}
	if _, _, err := sol.Threshold(20, 1.5); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestThresholdMonotoneRho(t *testing.T) {
	// The returned gap must actually reach the target while the previous
	// feasible gap does not.
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	sol, err := Solve(params, Options{Max: 120})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	thr, found, err := sol.Threshold(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no exact threshold found at n=40")
	}
	target := 1 - 1.0/n
	atThr, err := sol.Rho((n+thr)/2, (n-thr)/2)
	if err != nil {
		t.Fatal(err)
	}
	if atThr < target {
		t.Errorf("rho at threshold = %v below target %v", atThr, target)
	}
	if thr > 2 {
		below, err := sol.Rho((n+thr-2)/2, (n-thr+2)/2)
		if err != nil {
			t.Fatal(err)
		}
		if below >= target {
			t.Errorf("rho below threshold = %v already reaches target", below)
		}
	}
}

func TestThresholdNoCompetitionEdge(t *testing.T) {
	// α = γ = 0, β = δ: ρ = a/(a+b) (up to the tie state and a small
	// truncation bias from the critical random-walk population), so a
	// target of 0.94 is reached first at minority 1 (gap 18 for n = 20,
	// where ρ ≈ 0.95) and not at minority 2 (ρ ≈ 0.90). The exact 1−1/n
	// target sits exactly on the a/(a+b) boundary and is therefore
	// truncation-sensitive; probing strictly inside the boundary keeps
	// the test meaningful and robust.
	params := lv.Neutral(1, 1, 0, 0, lv.SelfDestructive)
	sol, err := Solve(params, Options{Max: 60, TieValue: 0.5, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	thr, found, err := sol.Threshold(20, 0.94)
	if err != nil {
		t.Fatal(err)
	}
	if !found || thr != 18 {
		t.Errorf("threshold = %d (found=%v), want 18 = n-2", thr, found)
	}
}

func TestThresholdCurveMatchesMonteCarlo(t *testing.T) {
	// The exact thresholds at small n must agree with the Monte-Carlo
	// threshold search within the sampling slack of the latter.
	if testing.Short() {
		t.Skip("statistical test")
	}
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	ns := []int{24, 48, 96}
	curve, err := ThresholdCurve(params, ns, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	proto := consensus.LVProtocol{Params: params}
	for _, n := range ns {
		res, err := consensus.FindThreshold(proto, n, consensus.ThresholdOptions{
			Trials: 20000,
			Seed:   uint64(n),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("MC search found no threshold at n=%d", n)
		}
		exactThr := curve[n]
		if exactThr < 0 {
			t.Fatalf("exact threshold not found at n=%d", n)
		}
		// The MC criterion (p̂ >= 1-1/n on finite trials) is noisy
		// around the exact boundary; allow one grid step either way.
		if diff := res.Threshold - exactThr; diff < -2 || diff > 2 {
			t.Errorf("n=%d: MC threshold %d vs exact %d", n, res.Threshold, exactThr)
		}
	}
}

func TestThresholdCurveValidation(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	if _, err := ThresholdCurve(params, nil, 0, Options{}); err == nil {
		t.Error("empty population list accepted")
	}
}
