package exact

import (
	"fmt"

	"lvmajority/internal/lv"
)

// Threshold computes the exact majority-consensus threshold Ψ(n) for the
// given chain at total population n: the smallest gap Δ (with n−Δ even and
// a non-empty minority) such that ρ((n+Δ)/2, (n−Δ)/2) >= target, evaluated
// on the solved grid with no sampling error. A target of 0 means the
// paper's 1 − 1/n. It returns found = false when no feasible gap reaches
// the target.
//
// The grid must have been solved with Max >= n (ideally a few times larger
// so truncation is negligible); Threshold returns an error otherwise.
func (s *Solution) Threshold(n int, target float64) (threshold int, found bool, err error) {
	if n < 3 {
		return 0, false, fmt.Errorf("exact: population %d too small for a threshold", n)
	}
	if n > s.max {
		return 0, false, fmt.Errorf("exact: population %d beyond the solved grid %d", n, s.max)
	}
	if target <= 0 {
		target = 1 - 1/float64(n)
	}
	if target >= 1 {
		return 0, false, fmt.Errorf("exact: unreachable target %v", target)
	}
	start := n % 2 // smallest gap with matching parity
	if start == 0 {
		start = 2 // gap 0 defines no majority
	}
	for delta := start; delta <= n-2; delta += 2 {
		a := (n + delta) / 2
		b := n - a
		rho, err := s.Rho(a, b)
		if err != nil {
			return 0, false, err
		}
		if rho >= target {
			return delta, true, nil
		}
	}
	return -1, false, nil
}

// ThresholdCurve computes exact thresholds for each population size using a
// single solved grid sized to the largest n.
func ThresholdCurve(params lv.Params, ns []int, target float64, opts Options) (map[int]int, error) {
	if len(ns) == 0 {
		return nil, fmt.Errorf("exact: empty population list")
	}
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	if opts.Max < maxN {
		opts.Max = 3 * maxN
	}
	sol, err := Solve(params, opts)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int, len(ns))
	for _, n := range ns {
		thr, found, err := sol.Threshold(n, target)
		if err != nil {
			return nil, err
		}
		if !found {
			thr = -1
		}
		out[n] = thr
	}
	return out, nil
}
