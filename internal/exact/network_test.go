package exact

import (
	"math"
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/crn"
	"lvmajority/internal/lv"
	"lvmajority/internal/protocols"
)

func TestSolveNetworkValidation(t *testing.T) {
	if _, err := SolveNetwork(nil, Options{Max: 10}); err == nil {
		t.Error("nil network accepted")
	}
	three, err := crn.NewNetwork("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveNetwork(three, Options{Max: 10}); err == nil {
		t.Error("3-species network accepted")
	}
	two, err := protocols.FromNeutral(lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)).Network()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveNetwork(two, Options{Max: 0}); err == nil {
		t.Error("zero ceiling accepted")
	}
}

// TestSolveNetworkMatchesSolve is the equivalence check between the two
// solver front ends: the CRN formulation of the neutral LV chain must yield
// the same ρ grid as the specialized lv.Params solver, cell by cell.
func TestSolveNetworkMatchesSolve(t *testing.T) {
	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		params := lv.Neutral(1, 1, 1, 0, comp)
		const m = 24
		direct, err := Solve(params, Options{Max: m})
		if err != nil {
			t.Fatal(err)
		}
		net, err := protocols.FromNeutral(params).Network()
		if err != nil {
			t.Fatal(err)
		}
		viaNetwork, err := SolveNetwork(net, Options{Max: m})
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for a := 0; a <= m; a++ {
			for b := 0; b <= m; b++ {
				v1, err1 := direct.Rho(a, b)
				v2, err2 := viaNetwork.Rho(a, b)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if d := math.Abs(v1 - v2); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-9 {
			t.Errorf("%s: solvers disagree by %v", comp, worst)
		}
	}
}

// TestSolveNetworkNonNeutralVsMonteCarlo validates the general solver in a
// regime the lv.Params front end cannot express: per-species birth rates.
func TestSolveNetworkNonNeutralVsMonteCarlo(t *testing.T) {
	params := protocols.FromNeutral(lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive))
	params.Beta[1] = 2 // minority reproduces twice as fast
	net, err := params.Network()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveNetwork(net, Options{Max: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Start (14, 10): n = 24, delta = 4 on the protocol's grid.
	exactRho, err := sol.Rho(14, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, err := consensus.EstimateWinProbability(
		&protocols.GeneralLVProtocol{Params: params}, 24, 4,
		consensus.EstimateOptions{Trials: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if exactRho < est.Lo || exactRho > est.Hi {
		t.Errorf("exact rho %.4f outside MC CI [%.4f, %.4f]", exactRho, est.Lo, est.Hi)
	}
	// The fitness handicap must show: rho below the neutral value at the
	// same state.
	neutralNet, err := protocols.FromNeutral(lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)).Network()
	if err != nil {
		t.Fatal(err)
	}
	neutralSol, err := SolveNetwork(neutralNet, Options{Max: 60})
	if err != nil {
		t.Fatal(err)
	}
	neutralRho, err := neutralSol.Rho(14, 10)
	if err != nil {
		t.Fatal(err)
	}
	if exactRho >= neutralRho {
		t.Errorf("minority fitness advantage did not lower rho: %.4f vs neutral %.4f", exactRho, neutralRho)
	}
}

// TestSolveNetworkMonotone checks structural sanity of the solved grid:
// with positive competition, ρ is nondecreasing in a and nonincreasing in b.
func TestSolveNetworkMonotone(t *testing.T) {
	net, err := protocols.FromNeutral(lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)).Network()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveNetwork(net, Options{Max: 20})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	for a := 1; a < 20; a++ {
		for b := 1; b < 20; b++ {
			cur, _ := sol.Rho(a, b)
			upA, _ := sol.Rho(a+1, b)
			upB, _ := sol.Rho(a, b+1)
			if upA < cur-eps {
				t.Fatalf("rho decreasing in a at (%d, %d): %v -> %v", a, b, cur, upA)
			}
			if upB > cur+eps {
				t.Fatalf("rho increasing in b at (%d, %d): %v -> %v", a, b, cur, upB)
			}
		}
	}
}

// TestSolveNetworkWithSteps sanity-checks the expected consensus times of
// the general solver against the drift picture: more competition means
// faster consensus.
func TestSolveNetworkWithSteps(t *testing.T) {
	strong := protocols.FromNeutral(lv.Neutral(1, 1, 4, 0, lv.SelfDestructive))
	weak := protocols.FromNeutral(lv.Neutral(1, 1, 0.5, 0, lv.SelfDestructive))
	solve := func(p protocols.GeneralLVParams) float64 {
		t.Helper()
		net, err := p.Network()
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveNetworkWithSteps(net, Options{Max: 40})
		if err != nil {
			t.Fatal(err)
		}
		v, err := sol.Steps(12, 12)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if fast, slow := solve(strong), solve(weak); fast >= slow {
		t.Errorf("stronger competition should reach consensus faster: %v vs %v", fast, slow)
	}
}

func TestSolveNetworkRejectsNoOpReaction(t *testing.T) {
	net, err := crn.Parse("species: X0 X1\nX0 -> X0 @ 1\nX0 + X1 -> 0 @ 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveNetwork(net, Options{Max: 10}); err == nil {
		t.Error("no-op reaction accepted")
	}
}
