package exact_test

import (
	"fmt"

	"lvmajority/internal/exact"
	"lvmajority/internal/lv"
)

// ExampleSolve reproduces the Theorem 20 closed form ρ(a,b) = a/(a+b) for
// the self-destructive chain with α = γ, using the fair tiebreak at (0,0).
func ExampleSolve() {
	params := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5}, // total interspecific constant α = 1
		Gamma:       [2]float64{1, 1},     // γ = 1 = α
		Competition: lv.SelfDestructive,
	}
	sol, err := exact.Solve(params, exact.Options{Max: 60, TieValue: 0.5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	v, err := sol.Rho(10, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("rho(10,5) = %.4f (closed form %.4f)\n", v, 10.0/15)
	// Output:
	// rho(10,5) = 0.6667 (closed form 0.6667)
}
