package exact

import (
	"math"
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func TestOptionsValidation(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	if _, err := Solve(params, Options{Max: 0}); err == nil {
		t.Error("zero ceiling accepted")
	}
	if _, err := Solve(params, Options{Max: 10, TieValue: 1.5}); err == nil {
		t.Error("tie value > 1 accepted")
	}
	if _, err := Solve(lv.Params{Beta: -1, Competition: lv.SelfDestructive}, Options{Max: 10}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestBoundaryConditions(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	sol, err := Solve(params, Options{Max: 20, TieValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= 20; a++ {
		if v, err := sol.Rho(a, 0); err != nil || v != 1 {
			t.Errorf("Rho(%d, 0) = %v, %v; want 1", a, v, err)
		}
		if v, err := sol.Rho(0, a); err != nil || v != 0 {
			t.Errorf("Rho(0, %d) = %v, %v; want 0", a, v, err)
		}
	}
	if v, _ := sol.Rho(0, 0); v != 0.5 {
		t.Errorf("Rho(0,0) = %v, want the tie value 0.5", v)
	}
	if _, err := sol.Rho(21, 0); err == nil {
		t.Error("out-of-grid state accepted")
	}
}

func TestTheorem20ExactGrid(t *testing.T) {
	// SD with total interspecific constant alpha = gamma: with the fair
	// tiebreak, rho(a,b) = a/(a+b) exactly at every state.
	params := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5},
		Gamma:       [2]float64{1, 1},
		Competition: lv.SelfDestructive,
	}
	sol, err := Solve(params, Options{Max: 60, TieValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Check away from the truncation boundary.
	for a := 1; a <= 20; a++ {
		for b := 1; b <= 20; b++ {
			want := float64(a) / float64(a+b)
			got, err := sol.Rho(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 2e-3 {
				t.Errorf("Rho(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestTheorem23ExactGrid(t *testing.T) {
	// NSD with gamma = 2*alpha (sum convention): rho(a,b) = a/(a+b). NSD
	// chains cannot reach (0,0), so the tie value is irrelevant.
	params := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5},
		Gamma:       [2]float64{1, 1},
		Competition: lv.NonSelfDestructive,
	}
	sol, err := Solve(params, Options{Max: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range [][2]int{{1, 1}, {3, 1}, {10, 5}, {20, 15}} {
		want := float64(st[0]) / float64(st[0]+st[1])
		got, err := sol.Rho(st[0], st[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("Rho(%d,%d) = %v, want %v", st[0], st[1], got, want)
		}
	}
}

func TestStrictTieValueMatchesMonteCarlo(t *testing.T) {
	// With TieValue = 0 the grid solution must match the strict
	// Monte-Carlo estimate (the paper's definition).
	if testing.Short() {
		t.Skip("statistical test")
	}
	params := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5},
		Gamma:       [2]float64{1, 1},
		Competition: lv.SelfDestructive,
	}
	sol, err := Solve(params, Options{Max: 60, TieValue: 0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sol.Rho(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	const trials = 30000
	wins := 0
	for i := 0; i < trials; i++ {
		out, err := lv.Run(params, lv.State{X0: 10, X1: 5}, src, lv.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Consensus && out.MajorityWon {
			wins++
		}
	}
	est, err := stats.WilsonInterval(wins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	if est.Lo > want || est.Hi < want {
		t.Errorf("exact rho = %v outside Monte-Carlo CI %v", want, est)
	}
}

func TestNeutralSymmetry(t *testing.T) {
	// For a neutral chain with the fair tiebreak, rho(a,b) + rho(b,a) = 1.
	params := lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)
	sol, err := Solve(params, Options{Max: 40, TieValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= 12; a++ {
		for b := 1; b <= 12; b++ {
			ab, err := sol.Rho(a, b)
			if err != nil {
				t.Fatal(err)
			}
			ba, err := sol.Rho(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ab+ba-1) > 1e-6 {
				t.Errorf("rho(%d,%d)+rho(%d,%d) = %v, want 1", a, b, b, a, ab+ba)
			}
		}
	}
}

func TestRhoMonotoneInGap(t *testing.T) {
	// rho should be non-decreasing in a and non-increasing in b.
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	sol, err := Solve(params, Options{Max: 40, TieValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= 15; a++ {
		for b := 1; b <= 15; b++ {
			v, _ := sol.Rho(a, b)
			up, _ := sol.Rho(a+1, b)
			if up < v-1e-9 {
				t.Errorf("rho not monotone in a at (%d,%d): %v -> %v", a, b, v, up)
			}
			down, _ := sol.Rho(a, b+1)
			if down > v+1e-9 {
				t.Errorf("rho not anti-monotone in b at (%d,%d): %v -> %v", a, b, v, down)
			}
		}
	}
}

func TestSolveWithSteps(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	sol, err := SolveWithSteps(params, Options{Max: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Expected consensus time must be positive and increasing along the
	// diagonal.
	prev := 0.0
	for k := 1; k <= 12; k++ {
		v, err := sol.Steps(k, k)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Errorf("E[T(%d,%d)] = %v not increasing (prev %v)", k, k, v, prev)
		}
		prev = v
	}
	// Steps from (1,1): under beta=delta=1, alpha=1 each: compute a loose
	// sanity band rather than an exact value.
	v, err := sol.Steps(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 || v > 20 {
		t.Errorf("E[T(1,1)] = %v, outside sanity band", v)
	}
}

func TestStepsRequiresSolveWithSteps(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	sol, err := Solve(params, Options{Max: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.Steps(2, 2); err == nil {
		t.Error("Steps on a rho-only solution did not error")
	}
}

func TestStepsMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	params := lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)
	sol, err := SolveWithSteps(params, Options{Max: 80})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sol.Steps(15, 10)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	var acc stats.Running
	for i := 0; i < 20000; i++ {
		out, err := lv.Run(params, lv.State{X0: 15, X1: 10}, src, lv.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(float64(out.Steps))
	}
	if math.Abs(acc.Mean()-want) > 5*acc.StdErr()+0.01*want {
		t.Errorf("mean T = %v, exact %v", acc.Mean(), want)
	}
}

func TestErrorBoundSmallAwayFromCeiling(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	bound, err := ErrorBound(params, 8, 5, Options{Max: 60, TieValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if bound > 1e-6 {
		t.Errorf("truncation sensitivity %v at (8,5) with ceiling 60", bound)
	}
	if _, err := ErrorBound(params, 59, 5, Options{Max: 60}); err == nil {
		t.Error("state outside reduced grid accepted")
	}
}

func TestMaxAccessor(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	sol, err := Solve(params, Options{Max: 17})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Max() != 17 {
		t.Errorf("Max = %d, want 17", sol.Max())
	}
}
