package exact

import (
	"fmt"
	"math"

	"lvmajority/internal/crn"
)

// SolveNetwork computes the ρ grid (and optionally the expected
// consensus-time grid) for an arbitrary *two-species* chemical reaction
// network: ρ(a, b) is the probability that species 0 is the sole survivor
// of the jump chain started at counts (a, b). It generalizes Solve from
// the paper's Lotka–Volterra parameterization to any two-species model
// built on internal/crn — in particular the non-neutral (per-species
// birth/death) chains of internal/protocols, which gives the Monte-Carlo
// pipeline for those models a sampling-free oracle.
//
// Truncation follows Solve: moves that would push either count above
// opts.Max are disabled and the jump chain renormalizes over the remaining
// channels. The double-extinction state (0, 0) takes opts.TieValue.
// Reactions must change the state (a two-species network with a
// no-op channel would make the jump chain ill-defined on the grid); such
// networks are rejected.
func SolveNetwork(net *crn.Network, opts Options) (*Solution, error) {
	return solveNetwork(net, opts, false)
}

// SolveNetworkWithSteps additionally solves the expected consensus-time
// grid.
func SolveNetworkWithSteps(net *crn.Network, opts Options) (*Solution, error) {
	return solveNetwork(net, opts, true)
}

func solveNetwork(net *crn.Network, opts Options, withSteps bool) (*Solution, error) {
	if net == nil {
		return nil, fmt.Errorf("exact: nil network")
	}
	if net.NumSpecies() != 2 {
		return nil, fmt.Errorf("exact: grid solver needs exactly 2 species, network has %d", net.NumSpecies())
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	for r := 0; r < net.NumReactions(); r++ {
		if net.Delta(r, 0) == 0 && net.Delta(r, 1) == 0 && net.Reaction(r).Rate > 0 {
			return nil, fmt.Errorf("exact: reaction %q does not change the state", net.Reaction(r).Name)
		}
	}
	m := opts.Max

	sol := &Solution{max: m, tie: opts.TieValue}
	sol.rho = newGrid(m)
	for a := 1; a <= m; a++ {
		sol.rho[a][0] = 1
	}
	sol.rho[0][0] = opts.TieValue

	trans := func(dst []transition, a, b int) []transition {
		return networkTransitionsInto(dst, net, a, b, m)
	}
	if err := sweepGrid(sol.rho, m, opts, trans, func(trs []transition, a, b int) (float64, bool) {
		if len(trs) == 0 {
			return 0, true
		}
		var v float64
		for _, tr := range trs {
			v += tr.prob * sol.rho[tr.a2][tr.b2]
		}
		return v, true
	}); err != nil {
		return nil, err
	}

	if withSteps {
		sol.steps = newGrid(m)
		if err := sweepGrid(sol.steps, m, opts, trans, func(trs []transition, a, b int) (float64, bool) {
			if len(trs) == 0 {
				return 0, false
			}
			v := 1.0
			for _, tr := range trs {
				v += tr.prob * sol.steps[tr.a2][tr.b2]
			}
			return v, true
		}); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// networkTransitionsInto fills dst with the truncated jump-chain
// transitions of the network from (a, b).
func networkTransitionsInto(dst []transition, net *crn.Network, a, b, max int) []transition {
	dst = dst[:0]
	state := []int{a, b}
	var total float64
	for r := 0; r < net.NumReactions(); r++ {
		v := net.Propensity(r, state)
		if v <= 0 {
			continue
		}
		a2 := a + net.Delta(r, 0)
		b2 := b + net.Delta(r, 1)
		if a2 < 0 || b2 < 0 || a2 > max || b2 > max {
			continue // impossible or truncated move
		}
		dst = append(dst, transition{prob: v, a2: a2, b2: b2})
		total += v
	}
	if total == 0 {
		return dst[:0]
	}
	for i := range dst {
		dst[i].prob /= total
	}
	return dst
}

// sweepGrid is the Gauss–Seidel iteration shared by the network solver; it
// mirrors gaussSeidel but takes an explicit transition generator.
func sweepGrid(grid [][]float64, m int, opts Options, trans func(dst []transition, a, b int) []transition, update func(trs []transition, a, b int) (float64, bool)) error {
	scratch := make([]transition, 0, 16)
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		var maxDelta float64
		for a := 1; a <= m; a++ {
			for b := 1; b <= m; b++ {
				scratch = trans(scratch, a, b)
				v, ok := update(scratch, a, b)
				if !ok {
					continue
				}
				if d := math.Abs(v - grid[a][b]); d > maxDelta {
					maxDelta = d
				}
				grid[a][b] = v
			}
		}
		if maxDelta < opts.Tol {
			return nil
		}
	}
	return fmt.Errorf("exact: Gauss–Seidel did not converge within %d sweeps", opts.MaxSweeps)
}
