package benchgate

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Main is the cmd/benchgate entry point, split out for testing.
func Main(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		snapshot   = fs.String("snapshot", "", "write a standalone JSON snapshot of the parsed benchmarks to this file")
		update     = fs.String("update", "", "append one record to this committed trajectory file")
		pr         = fs.Int("pr", 0, "PR number stamped on the -update record")
		note       = fs.String("note", "", "free-form note stamped on the -update record")
		check      = fs.String("check", "", "gate the parsed benchmarks against this committed trajectory file")
		baseline   = fs.String("baseline", "", "benchmark whose ns/event normalizes the regression comparison")
		maxRegress = fs.Float64("max-regress", 0.25, "allowed relative increase of the normalized ns/event cost")
		zeroAlloc  = fs.String("zero-alloc", "", "comma-separated benchmarks that must report 0 allocs/op")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, m := range []string{*snapshot, *update, *check} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -snapshot, -update, or -check is required")
	}

	current, err := Parse(stdin)
	if err != nil {
		return err
	}

	switch {
	case *snapshot != "":
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*snapshot, append(data, '\n'), 0o644)

	case *update != "":
		if *pr <= 0 {
			return fmt.Errorf("-update needs a positive -pr")
		}
		t, err := Load(*update)
		if os.IsNotExist(err) {
			t, err = &Trajectory{}, nil
		}
		if err != nil {
			return err
		}
		if err := t.Append(*update, Record{PR: *pr, Note: *note, Benchmarks: current}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d benchmarks as PR %d in %s (%d records)\n",
			len(current), *pr, *update, len(t.History))
		return nil

	default:
		t, err := Load(*check)
		if err != nil {
			return err
		}
		opts := CheckOptions{Baseline: *baseline, MaxRegress: *maxRegress}
		if *zeroAlloc != "" {
			opts.ZeroAlloc = strings.Split(*zeroAlloc, ",")
		}
		errs := Check(current, t.Latest(), opts)
		for _, e := range errs {
			fmt.Fprintln(stdout, "FAIL:", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d benchmark gate violation(s) against %s (PR %d record)", len(errs), *check, t.Latest().PR)
		}
		fmt.Fprintf(stdout, "ok: %d benchmarks within the committed trajectory (%s, PR %d record)\n",
			len(current), *check, t.Latest().PR)
		return nil
	}
}
