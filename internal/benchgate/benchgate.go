// Package benchgate parses `go test -bench` output and maintains the
// committed benchmark trajectory under results/bench/: one JSON record per
// PR, checked by CI against the current build (see cmd/benchgate).
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics are the measurements of one benchmark. Pointers distinguish
// "absent" from zero: allocs/op of 0 is a meaningful, gated value.
type Metrics struct {
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	NsPerEvent  *float64 `json:"ns_per_event,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	// Latency quantiles and throughput, reported by cmd/loadgen in its
	// go-bench-style output (p50-ns, p99-ns, runs/s units). Latencies keep
	// the repeatable floor like the other metrics; throughput keeps the
	// maximum, since higher is better.
	P50Ns      *float64 `json:"p50_ns,omitempty"`
	P99Ns      *float64 `json:"p99_ns,omitempty"`
	RunsPerSec *float64 `json:"runs_per_sec,omitempty"`
}

// Record is one trajectory entry: the benchmark set of one PR.
type Record struct {
	PR         int                `json:"pr"`
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Trajectory is a committed benchmark history, oldest first.
type Trajectory struct {
	History []Record `json:"history"`
}

// benchLine matches one benchmark result line. The -N GOMAXPROCS suffix is
// stripped from the name so records are stable across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// Parse extracts benchmark metrics from `go test -bench` text output.
// Value/unit pairs other than the tracked ones are ignored. When the same
// benchmark appears more than once (e.g. -count > 1), the minimum of each
// metric is kept — the repeatable floor, not the noise.
func Parse(r io.Reader) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		got := out[name]
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "ns/op":
				got.NsPerOp = minMetric(got.NsPerOp, v)
			case "ns/event":
				got.NsPerEvent = minMetric(got.NsPerEvent, v)
			case "allocs/op":
				got.AllocsPerOp = minMetric(got.AllocsPerOp, v)
			case "B/op":
				got.BytesPerOp = minMetric(got.BytesPerOp, v)
			case "p50-ns":
				got.P50Ns = minMetric(got.P50Ns, v)
			case "p99-ns":
				got.P99Ns = minMetric(got.P99Ns, v)
			case "runs/s":
				got.RunsPerSec = maxMetric(got.RunsPerSec, v)
			}
		}
		out[name] = got
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	return out, nil
}

func minMetric(cur *float64, v float64) *float64 {
	if cur == nil || v < *cur {
		return &v
	}
	return cur
}

func maxMetric(cur *float64, v float64) *float64 {
	if cur == nil || v > *cur {
		return &v
	}
	return cur
}

// Load reads a trajectory file.
func Load(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(t.History) == 0 {
		return nil, fmt.Errorf("%s: empty trajectory", path)
	}
	return &t, nil
}

// Latest returns the newest record.
func (t *Trajectory) Latest() *Record { return &t.History[len(t.History)-1] }

// Append adds a record and writes the trajectory back to path.
func (t *Trajectory) Append(path string, rec Record) error {
	t.History = append(t.History, rec)
	return t.write(path)
}

func (t *Trajectory) write(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckOptions configure Check.
type CheckOptions struct {
	// Baseline names the benchmark whose ns/event normalizes all others
	// in the same run before regression comparison. Empty disables the
	// regression check (set-completeness and allocs are still enforced).
	Baseline string
	// MaxRegress is the allowed relative increase of the normalized
	// ns/event cost versus the committed record (e.g. 0.25 = 25%).
	MaxRegress float64
	// ZeroAlloc names benchmarks whose allocs/op must be exactly 0.
	ZeroAlloc []string
}

// Check gates the current benchmark output against the latest committed
// record. It returns every violation, not only the first, so a failing CI
// run reports the full picture.
func Check(current map[string]Metrics, committed *Record, opts CheckOptions) []error {
	var errs []error

	// Set completeness, both directions, over the gated family (the
	// benchmarks sharing the baseline's path prefix when a baseline is
	// set, every ns/event benchmark otherwise). A kernel added without a
	// committed trajectory entry — or one that silently vanished from the
	// build — fails here.
	family := func(name string, m Metrics) bool {
		if m.NsPerEvent == nil {
			return false
		}
		if opts.Baseline == "" {
			return true
		}
		prefix := opts.Baseline[:strings.LastIndex(opts.Baseline, "/")+1]
		return strings.HasPrefix(name, prefix)
	}
	for _, name := range sortedNames(committed.Benchmarks) {
		if family(name, committed.Benchmarks[name]) {
			if _, ok := current[name]; !ok {
				errs = append(errs, fmt.Errorf("%s: in committed trajectory but missing from current benchmarks", name))
			}
		}
	}
	for _, name := range sortedNames(current) {
		if family(name, current[name]) {
			if _, ok := committed.Benchmarks[name]; !ok {
				errs = append(errs, fmt.Errorf("%s: benchmarked but absent from the committed trajectory — record it with benchgate -update", name))
			}
		}
	}

	if opts.Baseline != "" {
		curBase, okC := nsPerEvent(current[opts.Baseline])
		comBase, okR := nsPerEvent(committed.Benchmarks[opts.Baseline])
		if !okC || !okR {
			errs = append(errs, fmt.Errorf("baseline %s: ns/event missing (current %v, committed %v)", opts.Baseline, okC, okR))
		} else {
			names := make([]string, 0, len(current))
			for name := range current {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if name == opts.Baseline || !family(name, current[name]) {
					continue
				}
				cur, okC := nsPerEvent(current[name])
				com, okR := nsPerEvent(committed.Benchmarks[name])
				if !okC || !okR {
					continue // completeness errors already reported
				}
				rel, relCommitted := cur/curBase, com/comBase
				if rel > relCommitted*(1+opts.MaxRegress) {
					errs = append(errs, fmt.Errorf(
						"%s: %.2f ns/event = %.2fx of %s, committed trajectory has %.2fx (limit +%.0f%%)",
						name, cur, rel, opts.Baseline, relCommitted, opts.MaxRegress*100))
				}
			}
		}
	}

	for _, name := range opts.ZeroAlloc {
		m, ok := current[name]
		switch {
		case !ok:
			errs = append(errs, fmt.Errorf("%s: named in -zero-alloc but missing from current benchmarks", name))
		case m.AllocsPerOp == nil:
			errs = append(errs, fmt.Errorf("%s: no allocs/op reported; run the benchmark with -benchmem", name))
		case *m.AllocsPerOp != 0:
			errs = append(errs, fmt.Errorf("%s: %v allocs/op, want 0", name, *m.AllocsPerOp))
		}
	}
	return errs
}

func nsPerEvent(m Metrics) (float64, bool) {
	if m.NsPerEvent == nil {
		return 0, false
	}
	return *m.NsPerEvent, true
}

// sortedNames returns the benchmark names in sorted order, so gate errors
// list in the same order every run.
func sortedNames(m map[string]Metrics) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
