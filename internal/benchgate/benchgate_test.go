package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: lvmajority/internal/protocols
cpu: AMD EPYC
BenchmarkPopulationKernel/old-16         	      39	  31294021 ns/op	        27.40 ns/event	     120 B/op	       3 allocs/op
BenchmarkPopulationKernel/batch-16       	     459	   2698116 ns/op	        12.49 ns/event	      58 B/op	       2 allocs/op
BenchmarkPopulationKernel/lockstep-16    	       5	 275622152 ns/op	         8.36 ns/event	       0 B/op	       0 allocs/op
BenchmarkThresholdSweep/cold-16          	       3	 700000000 ns/op
PASS
`

func parseSample(t *testing.T) map[string]Metrics {
	t.Helper()
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseStripsSuffixAndReadsMetrics(t *testing.T) {
	got := parseSample(t)
	ls, ok := got["BenchmarkPopulationKernel/lockstep"]
	if !ok {
		t.Fatalf("lockstep missing (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if ls.NsPerEvent == nil || *ls.NsPerEvent != 8.36 {
		t.Errorf("lockstep ns/event = %v, want 8.36", ls.NsPerEvent)
	}
	if ls.AllocsPerOp == nil || *ls.AllocsPerOp != 0 {
		t.Errorf("lockstep allocs/op = %v, want explicit 0", ls.AllocsPerOp)
	}
	if sweep := got["BenchmarkThresholdSweep/cold"]; sweep.NsPerOp == nil || *sweep.NsPerOp != 7e8 {
		t.Errorf("sweep ns/op = %v, want 7e8", sweep.NsPerOp)
	}
	if sweep := got["BenchmarkThresholdSweep/cold"]; sweep.NsPerEvent != nil {
		t.Errorf("sweep has ns/event %v, want none", *sweep.NsPerEvent)
	}
}

func TestParseKeepsMinimumAcrossCounts(t *testing.T) {
	in := `BenchmarkX/a-8   10  100 ns/op  5.0 ns/event
BenchmarkX/a-8   10  90 ns/op  4.0 ns/event
BenchmarkX/a-8   10  95 ns/op  4.5 ns/event
`
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if *got["BenchmarkX/a"].NsPerEvent != 4.0 {
		t.Errorf("ns/event = %v, want min 4.0", *got["BenchmarkX/a"].NsPerEvent)
	}
}

func f(v float64) *float64 { return &v }

func committedRecord() *Record {
	return &Record{PR: 6, Benchmarks: map[string]Metrics{
		"BenchmarkPopulationKernel/old":      {NsPerEvent: f(27.4)},
		"BenchmarkPopulationKernel/batch":    {NsPerEvent: f(12.49)},
		"BenchmarkPopulationKernel/lockstep": {NsPerEvent: f(8.36), AllocsPerOp: f(0)},
	}}
}

func checkOpts() CheckOptions {
	return CheckOptions{
		Baseline:   "BenchmarkPopulationKernel/batch",
		MaxRegress: 0.25,
		ZeroAlloc:  []string{"BenchmarkPopulationKernel/lockstep"},
	}
}

func TestCheckPassesWithinTrajectory(t *testing.T) {
	if errs := Check(parseSample(t), committedRecord(), checkOpts()); len(errs) != 0 {
		t.Fatalf("unexpected violations: %v", errs)
	}
}

func TestCheckNormalizesByBaseline(t *testing.T) {
	// Twice the absolute time everywhere (a slower CI machine) keeps the
	// ratios intact and must pass.
	current := map[string]Metrics{
		"BenchmarkPopulationKernel/old":      {NsPerEvent: f(54.8)},
		"BenchmarkPopulationKernel/batch":    {NsPerEvent: f(24.98)},
		"BenchmarkPopulationKernel/lockstep": {NsPerEvent: f(16.72), AllocsPerOp: f(0)},
	}
	if errs := Check(current, committedRecord(), checkOpts()); len(errs) != 0 {
		t.Fatalf("uniform slowdown flagged as regression: %v", errs)
	}
	// The lockstep kernel regressing relative to batch by more than 25%
	// must fail even though its absolute number beats the committed one.
	current["BenchmarkPopulationKernel/lockstep"] = Metrics{NsPerEvent: f(22.0), AllocsPerOp: f(0)}
	errs := Check(current, committedRecord(), checkOpts())
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "lockstep") {
		t.Fatalf("want one lockstep regression violation, got %v", errs)
	}
}

func TestCheckFlagsMissingAndUnrecordedKernels(t *testing.T) {
	current := parseSample(t)
	delete(current, "BenchmarkPopulationKernel/old")
	current["BenchmarkPopulationKernel/simd"] = Metrics{NsPerEvent: f(2.0)}
	errs := Check(current, committedRecord(), checkOpts())
	var missing, unrecorded bool
	for _, e := range errs {
		if strings.Contains(e.Error(), "old") && strings.Contains(e.Error(), "missing from current") {
			missing = true
		}
		if strings.Contains(e.Error(), "simd") && strings.Contains(e.Error(), "absent from the committed") {
			unrecorded = true
		}
	}
	if !missing || !unrecorded {
		t.Fatalf("want missing-kernel and unrecorded-kernel violations, got %v", errs)
	}
}

func TestCheckZeroAlloc(t *testing.T) {
	current := parseSample(t)
	m := current["BenchmarkPopulationKernel/lockstep"]
	m.AllocsPerOp = f(2)
	current["BenchmarkPopulationKernel/lockstep"] = m
	errs := Check(current, committedRecord(), checkOpts())
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "allocs/op") {
		t.Fatalf("want one allocs violation, got %v", errs)
	}
}

func TestCheckIgnoresOtherFamilies(t *testing.T) {
	// ns/event benchmarks outside the baseline's family (another package's
	// kernel suite) are not gated by this trajectory file.
	current := parseSample(t)
	current["BenchmarkIncrementalSSA/new"] = Metrics{NsPerEvent: f(1.0)}
	if errs := Check(current, committedRecord(), checkOpts()); len(errs) != 0 {
		t.Fatalf("foreign family gated: %v", errs)
	}
}

func TestMainUpdateThenCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_kernel.json")
	var out strings.Builder
	err := Main([]string{"-update", path, "-pr", "6", "-note", "seed"},
		strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Latest().PR != 6 || len(tr.Latest().Benchmarks) != 4 {
		t.Fatalf("bad record: %+v", tr.Latest())
	}

	err = Main([]string{"-check", path,
		"-baseline", "BenchmarkPopulationKernel/batch",
		"-zero-alloc", "BenchmarkPopulationKernel/lockstep"},
		strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatalf("self-check against the just-recorded trajectory: %v", err)
	}

	// A second -update appends rather than overwrites.
	err = Main([]string{"-update", path, "-pr", "7"}, strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.History) != 2 || tr.Latest().PR != 7 {
		t.Fatalf("append failed: %d records, latest PR %d", len(tr.History), tr.Latest().PR)
	}
}

func TestMainCheckFailsOnViolation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_kernel.json")
	slow := strings.ReplaceAll(sampleOutput, "8.36 ns/event", "30.00 ns/event")
	var out strings.Builder
	if err := Main([]string{"-update", path, "-pr", "6"}, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	err := Main([]string{"-check", path, "-baseline", "BenchmarkPopulationKernel/batch"},
		strings.NewReader(slow), &out)
	if err == nil || !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("regression not flagged: err=%v out=%q", err, out.String())
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatal(statErr)
	}
}
