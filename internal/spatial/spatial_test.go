package spatial

import (
	"testing"
	"testing/quick"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func neutralSD() lv.Params { return lv.Neutral(1, 1, 1, 0, lv.SelfDestructive) }

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Local: neutralSD(), Sites: 0},
		{Local: neutralSD(), Sites: 2, Migration: -1},
		{Local: neutralSD(), Sites: 2, Topology: Topology(9)},
		{Local: lv.Params{Beta: -1, Competition: lv.SelfDestructive}, Sites: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
	good := Params{Local: neutralSD(), Sites: 4, Migration: 1, Topology: Cycle}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
}

func TestNewSystemValidation(t *testing.T) {
	p := Params{Local: neutralSD(), Sites: 2, Migration: 1}
	src := rng.New(1)
	if _, err := NewSystem(p, []lv.State{{X0: 1, X1: 1}}, src); err == nil {
		t.Error("wrong deme count accepted")
	}
	if _, err := NewSystem(p, []lv.State{{X0: -1, X1: 1}, {}}, src); err == nil {
		t.Error("negative deme state accepted")
	}
	if _, err := NewSystem(p, []lv.State{{}, {}}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestTopologyString(t *testing.T) {
	if Cycle.String() != "cycle" || Complete.String() != "complete" {
		t.Error("topology names wrong")
	}
	if Topology(7).String() == "" {
		t.Error("unknown topology renders empty")
	}
}

func TestMigrationConservesTotals(t *testing.T) {
	// With all reaction rates zero and migration positive, every event is
	// a migration: global totals must be invariant and deme counts
	// non-negative.
	p := Params{
		Local:     lv.Neutral(0, 0, 0, 0, lv.SelfDestructive),
		Sites:     5,
		Migration: 1,
	}
	initial := []lv.State{{X0: 10, X1: 0}, {X0: 0, X1: 10}, {}, {}, {X0: 3, X1: 4}}
	sys, err := NewSystem(p, initial, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	want := sys.GlobalState()
	for i := 0; i < 5000; i++ {
		if !sys.Step() {
			t.Fatal("migration-only system stalled")
		}
		if got := sys.GlobalState(); got != want {
			t.Fatalf("totals changed: %+v -> %+v", want, got)
		}
		for d := 0; d < p.Sites; d++ {
			s := sys.Deme(d)
			if s.X0 < 0 || s.X1 < 0 {
				t.Fatalf("negative deme count at %d: %+v", d, s)
			}
		}
	}
}

func TestMigrationMixesUniformly(t *testing.T) {
	// After many migrations on a cycle, individuals should be spread
	// roughly evenly.
	p := Params{
		Local:     lv.Neutral(0, 0, 0, 0, lv.SelfDestructive),
		Sites:     4,
		Migration: 1,
	}
	initial := []lv.State{{X0: 400}, {}, {}, {}}
	sys, err := NewSystem(p, initial, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40000; i++ {
		if !sys.Step() {
			t.Fatal("stalled")
		}
	}
	for d := 0; d < p.Sites; d++ {
		if c := sys.Deme(d).X0; c < 50 || c > 150 {
			t.Errorf("deme %d holds %d of 400 after mixing, want ~100", d, c)
		}
	}
}

func TestSingleDemeMatchesWellMixed(t *testing.T) {
	// L = 1 is exactly the well-mixed chain: win probabilities must
	// agree within CI.
	if testing.Short() {
		t.Skip("statistical test")
	}
	const trials = 4000
	initial := lv.State{X0: 20, X1: 14}

	srcWM := rng.New(7)
	wmWins := 0
	for i := 0; i < trials; i++ {
		out, err := lv.Run(neutralSD(), initial, srcWM, lv.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.MajorityWon {
			wmWins++
		}
	}
	srcSP := rng.New(9)
	p := Params{Local: neutralSD(), Sites: 1, Migration: 5}
	spWins := 0
	for i := 0; i < trials; i++ {
		out, err := Run(p, []lv.State{initial}, srcSP, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if out.MajorityWon {
			spWins++
		}
	}
	wm, err := stats.WilsonInterval(wmWins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := stats.WilsonInterval(spWins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Lo > sp.Hi || sp.Lo > wm.Hi {
		t.Errorf("single-deme spatial %v differs from well-mixed %v", sp, wm)
	}
}

func TestRunReachesConsensus(t *testing.T) {
	p := Params{Local: neutralSD(), Sites: 4, Migration: 1}
	initial := []lv.State{{X0: 15, X1: 10}, {X0: 15, X1: 10}, {X0: 15, X1: 10}, {X0: 15, X1: 10}}
	out, err := Run(p, initial, rng.New(11), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Consensus {
		t.Fatal("no global consensus")
	}
	if out.Winner < -1 || out.Winner > 1 {
		t.Errorf("winner = %d", out.Winner)
	}
	if out.Time <= 0 {
		t.Error("time tracking produced no time")
	}
}

func TestNoMigrationDemesIndependent(t *testing.T) {
	// With m = 0 and SD competition within demes, each deme resolves
	// independently; global consensus requires one species extinct in
	// every deme. Starting every deme biased the same way, the majority
	// should win often.
	p := Params{Local: neutralSD(), Sites: 3, Migration: 0}
	initial := []lv.State{{X0: 30, X1: 10}, {X0: 30, X1: 10}, {X0: 30, X1: 10}}
	src := rng.New(13)
	wins := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		out, err := Run(p, initial, src, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Consensus {
			t.Fatal("no consensus with independent demes")
		}
		if out.MajorityWon {
			wins++
		}
	}
	if wins < trials/2 {
		t.Errorf("majority won only %d/%d with per-deme gap 20", wins, trials)
	}
}

func TestNeighborDistribution(t *testing.T) {
	p := Params{Local: neutralSD(), Sites: 5, Migration: 1, Topology: Cycle}
	sys, err := NewSystem(p, make([]lv.State, 5), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[sys.neighbor(2)]++
	}
	if len(counts) != 2 || counts[1] == 0 || counts[3] == 0 {
		t.Errorf("cycle neighbors of 2 = %v, want {1, 3}", counts)
	}

	p.Topology = Complete
	sys2, err := NewSystem(p, make([]lv.State, 5), rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	counts = map[int]int{}
	for i := 0; i < 10000; i++ {
		v := sys2.neighbor(2)
		if v == 2 {
			t.Fatal("complete topology returned self")
		}
		counts[v]++
	}
	if len(counts) != 4 {
		t.Errorf("complete neighbors of 2 = %v, want all 4 others", counts)
	}
}

func TestProtocolTrial(t *testing.T) {
	p := Protocol{Spatial: Params{Local: neutralSD(), Sites: 4, Migration: 1}}
	src := rng.New(23)
	wins := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		won, err := p.Trial(80, 40, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Errorf("spatial protocol with huge gap won only %d/%d", wins, trials)
	}
	if _, err := p.Trial(10, 3, src); err == nil {
		t.Error("parity mismatch accepted")
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestStepInvariantsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, sitesRaw, popRaw uint8) bool {
		sites := int(sitesRaw%6) + 1
		pop := int(popRaw%30) + 2
		p := Params{Local: neutralSD(), Sites: sites, Migration: 0.5}
		initial := make([]lv.State, sites)
		for i := 0; i < pop; i++ {
			initial[i%sites].X0++
			initial[(i+1)%sites].X1++
		}
		sys, err := NewSystem(p, initial, rng.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			if !sys.Step() {
				break
			}
			for d := 0; d < sites; d++ {
				s := sys.Deme(d)
				if s.X0 < 0 || s.X1 < 0 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestTorusValidation(t *testing.T) {
	p := Params{Local: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), Sites: 16, Topology: Torus}
	if err := p.Validate(); err != nil {
		t.Errorf("16-deme torus rejected: %v", err)
	}
	p.Sites = 12
	if err := p.Validate(); err == nil {
		t.Error("non-square torus accepted")
	}
}

func TestIsqrt(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {4, 2}, {9, 3}, {16, 4}, {2, -1}, {15, -1}, {-4, -1},
	}
	for _, tc := range cases {
		if got := isqrt(tc.n); got != tc.want {
			t.Errorf("isqrt(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestTorusNeighborsAre4Neighborhood checks that migration targets on the
// torus are exactly the four lattice neighbors, each hit with positive
// frequency.
func TestTorusNeighborsAre4Neighborhood(t *testing.T) {
	p := Params{Local: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), Sites: 16, Topology: Torus}
	initial := make([]lv.State, 16)
	for d := range initial {
		initial[d] = lv.State{X0: 1, X1: 1}
	}
	sys, err := NewSystem(p, initial, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	const d = 5 // row 1, col 1 of the 4x4 torus
	want := map[int]bool{1: true, 9: true, 4: true, 6: true}
	seen := map[int]int{}
	for i := 0; i < 4000; i++ {
		v := sys.neighbor(d)
		if !want[v] {
			t.Fatalf("deme %d is not a lattice neighbor of %d", v, d)
		}
		seen[v]++
	}
	for v := range want {
		if seen[v] == 0 {
			t.Errorf("neighbor %d never sampled", v)
		}
	}
}

// TestTorusRunReachesConsensus runs the full spatial chain on a 3x3 torus.
func TestTorusRunReachesConsensus(t *testing.T) {
	p := Params{
		Local:     lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
		Sites:     9,
		Migration: 1,
		Topology:  Torus,
	}
	initial := make([]lv.State, 9)
	for d := range initial {
		initial[d] = lv.State{X0: 12, X1: 8}
	}
	out, err := Run(p, initial, rng.New(7), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Consensus {
		t.Fatal("no global consensus on the torus")
	}
	if !out.MajorityWon {
		t.Error("majority lost from a 60/40 split on every deme")
	}
}
