package spatial_test

import (
	"lvmajority/internal/consensus"
	"lvmajority/internal/spatial"
)

// The Protocol adapter must satisfy consensus.Protocol. The check lives in
// an external test package: consensus now depends on the sim engine layer,
// which adapts spatial, so an in-package import would cycle.
var _ consensus.Protocol = spatial.Protocol{}
