// Package spatial implements the explicitly spatial extension of the
// paper's stochastic Lotka–Volterra model that §1.6/§1.7 name as future
// work: a metapopulation of demes (patches), each running the well-mixed
// two-species LV dynamics locally, coupled by per-capita migration to
// neighboring demes.
//
// Formally, the state is a vector of per-deme configurations
// (x₀ᵈ, x₁ᵈ) for demes d = 1..L. Within each deme every reaction channel of
// the well-mixed model fires with its usual mass-action propensity computed
// from the deme-local counts; in addition every individual migrates at
// per-capita rate m to a uniformly chosen neighboring deme. Setting L = 1
// (or m → ∞ on a complete topology) recovers the paper's well-mixed chain —
// a property the test suite checks.
package spatial

import (
	"fmt"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// Topology selects the deme adjacency structure.
type Topology int

const (
	// Cycle arranges demes on a ring; each deme has two neighbors.
	Cycle Topology = iota + 1
	// Complete connects every pair of demes.
	Complete
	// Torus arranges demes on a √L × √L two-dimensional torus with
	// 4-neighborhoods (the natural geometry for surface-attached
	// communities such as biofilms). Sites must be a perfect square.
	Torus
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case Cycle:
		return "cycle"
	case Complete:
		return "complete"
	case Torus:
		return "torus"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// isqrt returns the integer square root of n, or -1 if n is not a perfect
// square.
func isqrt(n int) int {
	if n < 0 {
		return -1
	}
	r := 0
	for r*r < n {
		r++
	}
	if r*r != n {
		return -1
	}
	return r
}

// Params configures a spatial LV system.
type Params struct {
	// Local is the within-deme LV parameterization.
	Local lv.Params
	// Sites is the number of demes L >= 1.
	Sites int
	// Migration is the per-capita migration rate m >= 0.
	Migration float64
	// Topology is the deme adjacency (default Cycle).
	Topology Topology
}

// Validate checks the configuration.
func (p Params) Validate() error {
	if err := p.Local.Validate(); err != nil {
		return err
	}
	if p.Sites < 1 {
		return fmt.Errorf("spatial: need at least one deme, got %d", p.Sites)
	}
	if p.Migration < 0 {
		return fmt.Errorf("spatial: negative migration rate %v", p.Migration)
	}
	if p.Topology == 0 {
		return nil // default applied by NewSystem
	}
	if p.Topology != Cycle && p.Topology != Complete && p.Topology != Torus {
		return fmt.Errorf("spatial: unknown topology %d", p.Topology)
	}
	if p.Topology == Torus && isqrt(p.Sites) < 0 {
		return fmt.Errorf("spatial: torus needs a square deme count, got %d", p.Sites)
	}
	return nil
}

// System is a running spatial LV chain. It is not safe for concurrent use.
type System struct {
	params Params
	demes  []lv.State
	src    *rng.Source

	time      float64
	steps     int
	trackTime bool

	// totals[d] caches the within-deme total propensity (local reactions
	// + migration pressure) so only touched demes are recomputed.
	totals []float64
	sum    float64
}

// NewSystem creates a spatial system with the given per-deme initial
// configurations (one entry per deme).
func NewSystem(params Params, initial []lv.State, src *rng.Source) (*System, error) {
	if params.Topology == 0 {
		params.Topology = Cycle
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(initial) != params.Sites {
		return nil, fmt.Errorf("spatial: %d initial demes for %d sites", len(initial), params.Sites)
	}
	if src == nil {
		return nil, fmt.Errorf("spatial: nil random source")
	}
	demes := make([]lv.State, len(initial))
	for d, s := range initial {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("spatial: deme %d: %w", d, err)
		}
		demes[d] = s
	}
	sys := &System{
		params: params,
		demes:  demes,
		src:    src,
		totals: make([]float64, len(demes)),
	}
	for d := range demes {
		sys.refresh(d)
	}
	return sys, nil
}

// refresh recomputes deme d's cached propensity total and the global sum.
func (sys *System) refresh(d int) {
	_, local := lv.PropensitiesFor(sys.params.Local, sys.demes[d])
	migration := 0.0
	if sys.params.Sites > 1 {
		migration = sys.params.Migration * float64(sys.demes[d].Total())
	}
	sys.sum += local + migration - sys.totals[d]
	sys.totals[d] = local + migration
}

// SetTrackTime enables continuous-time accounting.
func (sys *System) SetTrackTime(on bool) { sys.trackTime = on }

// Reset returns the system to the given per-deme configurations with a
// fresh random stream, reusing its buffers: the time and step counters
// restart at zero and every deme's cached propensity total is recomputed.
func (sys *System) Reset(initial []lv.State, src *rng.Source) error {
	if len(initial) != sys.params.Sites {
		return fmt.Errorf("spatial: %d initial demes for %d sites", len(initial), sys.params.Sites)
	}
	if src == nil {
		return fmt.Errorf("spatial: nil random source")
	}
	for d, s := range initial {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("spatial: deme %d: %w", d, err)
		}
	}
	copy(sys.demes, initial)
	sys.src = src
	sys.time = 0
	sys.steps = 0
	sys.sum = 0
	for d := range sys.totals {
		sys.totals[d] = 0
	}
	for d := range sys.demes {
		sys.refresh(d)
	}
	return nil
}

// NumDemes returns the number of demes.
func (sys *System) NumDemes() int { return len(sys.demes) }

// Deme returns the configuration of deme d.
func (sys *System) Deme(d int) lv.State { return sys.demes[d] }

// GlobalState returns the per-species totals across all demes.
func (sys *System) GlobalState() lv.State {
	var g lv.State
	for _, s := range sys.demes {
		g.X0 += s.X0
		g.X1 += s.X1
	}
	return g
}

// Time returns the accumulated continuous time (if tracking is enabled).
func (sys *System) Time() float64 { return sys.time }

// Steps returns the number of events fired.
func (sys *System) Steps() int { return sys.steps }

// neighbor returns a uniformly random neighbor of deme d under the
// configured topology.
func (sys *System) neighbor(d int) int {
	l := sys.params.Sites
	switch sys.params.Topology {
	case Complete:
		// Uniform over the other demes.
		v := sys.src.Intn(l - 1)
		if v >= d {
			v++
		}
		return v
	case Torus:
		k := isqrt(l)
		row, col := d/k, d%k
		switch sys.src.Intn(4) {
		case 0:
			row = (row + 1) % k
		case 1:
			row = (row - 1 + k) % k
		case 2:
			col = (col + 1) % k
		default:
			col = (col - 1 + k) % k
		}
		return row*k + col
	default: // Cycle
		if l == 2 {
			return 1 - d
		}
		if sys.src.Bernoulli(0.5) {
			return (d + 1) % l
		}
		return (d - 1 + l) % l
	}
}

// Step fires one event (a local reaction in some deme, or a migration). It
// returns false when the total propensity is zero.
func (sys *System) Step() bool {
	if sys.sum <= 0 {
		return false
	}
	if sys.trackTime {
		sys.time += sys.src.Exp(sys.sum)
	}
	// Pick a deme proportionally to its cached total.
	u := sys.src.Float64() * sys.sum
	d := len(sys.demes) - 1
	acc := 0.0
	for i, t := range sys.totals {
		if t <= 0 {
			continue
		}
		acc += t
		if u < acc {
			d = i
			break
		}
	}

	// Within the deme: local reaction vs migration.
	props, local := lv.PropensitiesFor(sys.params.Local, sys.demes[d])
	migration := 0.0
	if sys.params.Sites > 1 {
		migration = sys.params.Migration * float64(sys.demes[d].Total())
	}
	v := sys.src.Float64() * (local + migration)
	if v < migration {
		// Migration: pick the mover proportionally to counts.
		s := sys.demes[d]
		target := sys.neighbor(d)
		if sys.src.Float64()*float64(s.Total()) < float64(s.X0) {
			sys.demes[d].X0--
			sys.demes[target].X0++
		} else {
			sys.demes[d].X1--
			sys.demes[target].X1++
		}
		sys.refresh(d)
		sys.refresh(target)
	} else {
		// Local reaction: sample a channel proportionally.
		w := sys.src.Float64() * local
		kind := lv.EventKind(lv.NumEventKinds - 1)
		acc := 0.0
		for k, p := range props {
			if p <= 0 {
				continue
			}
			acc += p
			kind = lv.EventKind(k)
			if w < acc {
				break
			}
		}
		sys.demes[d] = lv.ApplyEvent(sys.params.Local, sys.demes[d], kind)
		sys.refresh(d)
	}
	sys.steps++
	return true
}

// Outcome summarizes a run to global consensus.
type Outcome struct {
	// Consensus reports whether one species went globally extinct within
	// the step budget.
	Consensus bool
	// Winner is the surviving species (0/1), or −1 for global double
	// extinction or no consensus.
	Winner int
	// MajorityWon reports whether the global initial majority survived.
	MajorityWon bool
	// Steps is the number of events fired.
	Steps int
	// Time is the continuous time at consensus (if tracked).
	Time float64
}

// Run simulates until global consensus or maxSteps events (0 means
// lv.DefaultMaxSteps).
func Run(params Params, initial []lv.State, src *rng.Source, maxSteps int, trackTime bool) (Outcome, error) {
	sys, err := NewSystem(params, initial, src)
	if err != nil {
		return Outcome{}, err
	}
	sys.SetTrackTime(trackTime)
	if maxSteps <= 0 {
		maxSteps = lv.DefaultMaxSteps
	}
	global := sys.GlobalState()
	majority := 0
	if global.X1 > global.X0 {
		majority = 1
	}
	out := Outcome{Winner: -1}
	for !sys.GlobalState().Consensus() {
		if sys.steps >= maxSteps || !sys.Step() {
			out.Steps = sys.steps
			out.Time = sys.time
			return out, nil
		}
	}
	out.Consensus = true
	out.Steps = sys.steps
	out.Time = sys.time
	out.Winner = sys.GlobalState().Winner()
	out.MajorityWon = out.Winner == majority
	return out, nil
}

// Protocol adapts the spatial system to the consensus.Protocol interface:
// the majority and minority individuals are distributed round-robin across
// the demes.
type Protocol struct {
	// Spatial holds everything except the initial configurations.
	Spatial Params
	// MaxSteps bounds each trial (0 = lv.DefaultMaxSteps).
	MaxSteps int
	// Label overrides the generated name.
	Label string
}

// Name implements consensus.Protocol.
func (p Protocol) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return fmt.Sprintf("spatial LV (%d demes, %s, m=%g)", p.Spatial.Sites, p.Spatial.Topology, p.Spatial.Migration)
}

// Trial implements consensus.Protocol.
func (p Protocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if n < 2 || delta < 0 || (n-delta)%2 != 0 || delta > n-2 {
		return false, fmt.Errorf("spatial: infeasible (n=%d, delta=%d)", n, delta)
	}
	if p.Spatial.Sites < 1 {
		return false, fmt.Errorf("spatial: no demes configured")
	}
	b := (n - delta) / 2
	a := n - b
	initial := make([]lv.State, p.Spatial.Sites)
	for i := 0; i < a; i++ {
		initial[i%p.Spatial.Sites].X0++
	}
	for i := 0; i < b; i++ {
		initial[i%p.Spatial.Sites].X1++
	}
	out, err := Run(p.Spatial, initial, src, p.MaxSteps, false)
	if err != nil {
		return false, err
	}
	return out.Consensus && out.MajorityWon, nil
}
