package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/ioretry"
	"lvmajority/internal/stats"
)

// Key identifies one probe result in the cache: the protocol identity, the
// population and gap, the root seed of the search (the per-gap stream is
// derived from it deterministically), the trial budget, the target the
// early-stopping estimator compares against, and whether early stopping was
// on. Changing any of them invalidates the entry by construction — there is
// no TTL and no explicit invalidation.
//
// The protocol identity is its CacheKey when implemented, else its Name
// (see CacheKeyer). A protocol whose dynamics change while both stay the
// same would replay stale probes — implement CacheKeyer over all
// behaviour-changing parameters (as consensus.LVProtocol does), or point
// such runs at a fresh cache file.
type Key struct {
	Protocol  string  `json:"protocol"`
	N         int     `json:"n"`
	Delta     int     `json:"delta"`
	Seed      uint64  `json:"seed"`
	Trials    int     `json:"trials"`
	Target    float64 `json:"target"`
	EarlyStop bool    `json:"early_stop"`
}

// less orders keys for the on-disk encoding: protocol, then the numeric
// knobs. Any total order would do; this one keeps related probes adjacent.
func (k Key) less(o Key) bool {
	switch {
	case k.Protocol != o.Protocol:
		return k.Protocol < o.Protocol
	case k.N != o.N:
		return k.N < o.N
	case k.Delta != o.Delta:
		return k.Delta < o.Delta
	case k.Seed != o.Seed:
		return k.Seed < o.Seed
	case k.Trials != o.Trials:
		return k.Trials < o.Trials
	case k.Target != o.Target:
		return k.Target < o.Target
	default:
		return !k.EarlyStop && o.EarlyStop
	}
}

// Entry pairs a key with its settled estimate — the unit of the cache's
// persisted and wire encodings.
type Entry struct {
	Key      Key                     `json:"key"`
	Estimate stats.BernoulliEstimate `json:"estimate"`
}

// cacheFile is the JSON document stored on disk and exchanged with a remote
// cache server. Checksum is the SHA-256 of the encoded entries, so a torn
// or bit-flipped file (or HTTP body) is detected as corrupt even when it
// still parses as JSON.
type cacheFile struct {
	Version  int     `json:"version"`
	Checksum string  `json:"checksum,omitempty"`
	Entries  []Entry `json:"entries"`
}

// cacheVersion invalidates every persisted entry when the probe semantics
// change incompatibly (e.g. a new per-gap seed derivation). Version 2 added
// the entries checksum.
const cacheVersion = 2

// entriesChecksum is the integrity hash persisted alongside the entries.
func entriesChecksum(entries []Entry) (string, error) {
	data, err := json.Marshal(entries)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// EncodeEntries renders entries in the cache's canonical encoding — sorted
// by key, version-stamped, checksummed — and returns the document plus the
// checksum. The checksum is content-addressed: equal entry sets encode to
// equal documents with equal checksums, which is what the remote backend's
// ETag validation relies on. The input slice is not modified.
func EncodeEntries(entries []Entry) (data []byte, checksum string, err error) {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key.less(sorted[j].Key) })
	sum, err := entriesChecksum(sorted)
	if err != nil {
		return nil, "", fmt.Errorf("sweep: encoding cache: %w", err)
	}
	data, err = json.Marshal(cacheFile{Version: cacheVersion, Checksum: sum, Entries: sorted})
	if err != nil {
		return nil, "", fmt.Errorf("sweep: encoding cache: %w", err)
	}
	return data, sum, nil
}

// DecodeEntries parses a canonical cache document, verifying its checksum.
// A document whose checksum does not cover its entries — a torn write, a
// truncated response — is an error, never silently partial data. A document
// from an incompatible cache version decodes to no entries: replaying
// probes across a semantics change would be wrong, starting cold is merely
// slow.
func DecodeEntries(data []byte) (entries []Entry, checksum string, err error) {
	var file cacheFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, "", fmt.Errorf("sweep: decoding cache: %w", err)
	}
	if file.Version != cacheVersion {
		return nil, "", nil
	}
	sum, err := entriesChecksum(file.Entries)
	if err != nil {
		return nil, "", fmt.Errorf("sweep: decoding cache: %w", err)
	}
	if file.Checksum != "" && sum != file.Checksum {
		return nil, "", fmt.Errorf("sweep: cache document failed checksum validation")
	}
	return file.Entries, sum, nil
}

// cacheRetry is the retry policy for cache file I/O. The seed is arbitrary
// but fixed: retry timing, like everything else, is reproducible.
var cacheRetry = ioretry.Policy{Seed: 0xcac4e}

// Cache is a concurrency-safe store of settled probe estimates, optionally
// persisted to a JSON file. A Cache with an empty path is memory-only:
// Save and Checkpoint are then no-ops, which is what tests and one-shot
// callers want.
//
// Persistence is crash-safe and non-fatal by design: files are written to a
// temp file, fsynced, and renamed into place, so a kill at any moment
// leaves either the old or the new file, never a torn one; a corrupt file
// is quarantined (renamed aside) at open instead of failing the run; and
// when writes keep failing after retries the cache degrades to memory-only
// for the rest of its life (Degraded reports why) rather than failing a
// computed sweep — persistence is an optimization, never a correctness
// dependency.
type Cache struct {
	mu      sync.Mutex
	path    string
	entries map[Key]stats.BernoulliEstimate
	dirty   bool
	gen     int64
	hits    int64
	misses  int64

	// saveMu serializes persistence so retrying writers never interleave;
	// it is always acquired before mu, and mu is never held across I/O.
	// The remote client is driven only under saveMu as well.
	saveMu      sync.Mutex
	remote      *remoteClient
	degradedErr error
	quarantined string
}

// NewCache returns an empty memory-only cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]stats.BernoulliEstimate)}
}

// OpenCache loads the cache persisted at path, or returns an empty cache
// bound to that path when the file does not exist yet. An empty path
// returns a memory-only cache.
//
// A file that cannot be read (after retries), parsed, or verified against
// its checksum is quarantined: renamed to path+".corrupt" (best-effort) and
// replaced by an empty cache, so a damaged file costs recomputation, never
// the run. Quarantined reports the quarantine path when this happened.
func OpenCache(path string) (*Cache, error) {
	c := NewCache()
	c.path = path
	if path == "" {
		return c, nil
	}
	var data []byte
	err := ioretry.Do(cacheRetry, func() error {
		if err := faultpoint.Hit(faultpoint.CacheRead); err != nil {
			return err
		}
		var rerr error
		data, rerr = os.ReadFile(path)
		if os.IsNotExist(rerr) {
			data = nil
			return nil
		}
		return rerr
	})
	if err != nil {
		c.quarantine()
		return c, nil
	}
	if data == nil {
		return c, nil
	}
	entries, _, err := DecodeEntries(data)
	if err != nil {
		c.quarantine()
		return c, nil
	}
	for _, e := range entries {
		c.entries[e.Key] = e.Estimate
	}
	return c, nil
}

// quarantine moves the cache file aside so the damaged bytes survive for
// diagnosis without being replayed. Best-effort: if even the rename fails
// the next Save simply overwrites the file.
func (c *Cache) quarantine() {
	q := c.path + ".corrupt"
	if err := os.Rename(c.path, q); err == nil {
		c.quarantined = q
	}
}

// Quarantined returns the path the damaged cache file was moved to at open,
// or "" when the file loaded cleanly.
func (c *Cache) Quarantined() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// Degraded returns the persistence error that switched the cache to
// memory-only operation, or nil while persistence is healthy.
func (c *Cache) Degraded() error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	return c.degradedErr
}

// Get returns the cached estimate for k, if any, and counts the lookup as
// a hit or miss (see Counters). A remote-backed cache revalidates against
// the server on a local miss — usually one conditional GET answered 304 —
// so probes another fleet member settled since the last exchange are found
// without a fresh Monte-Carlo run.
func (c *Cache) Get(k Key) (stats.BernoulliEstimate, bool) {
	c.mu.Lock()
	est, ok := c.entries[k]
	if !ok && c.remote != nil {
		c.mu.Unlock()
		c.revalidate()
		c.mu.Lock()
		est, ok = c.entries[k]
	}
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return est, ok
}

// Counters returns the cumulative hit and miss counts of Get over the
// cache's lifetime. Callers wanting per-run accounting (e.g. run manifests)
// snapshot the counters around the run and record the difference.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Put stores a settled estimate under k.
func (c *Cache) Put(k Key, est stats.BernoulliEstimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[k]; ok && old == est {
		return
	}
	c.entries[k] = est
	c.dirty = true
	c.gen++
}

// Len returns the number of cached probes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Entries returns a snapshot of the cache's contents in the canonical key
// order — the form EncodeEntries expects and a cache server serves.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	entries := make([]Entry, 0, len(c.entries))
	for k, est := range c.entries {
		entries = append(entries, Entry{Key: k, Estimate: est})
	}
	c.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.less(entries[j].Key) })
	return entries
}

// MergeEntries adopts every entry whose key the cache does not hold yet and
// returns how many were new. Keys already present keep their local
// estimate: an entry is deterministic in its key, so a conflicting value
// means the peers run incompatible semantics, and first-write-wins keeps
// this cache self-consistent. Adopted entries count as local changes (they
// are persisted by the next Save), which is what a cache server merging
// pushed fleet entries needs.
func (c *Cache) MergeEntries(entries []Entry) int {
	return c.adopt(entries, true)
}

// adopt merges entries, optionally marking the cache dirty. The remote
// revalidation path adopts without dirtying: entries fetched from the
// server are already on the server, so pushing them back would be churn.
func (c *Cache) adopt(entries []Entry, markDirty bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, e := range entries {
		if _, ok := c.entries[e.Key]; ok {
			continue
		}
		c.entries[e.Key] = e.Estimate
		added++
	}
	if added > 0 && markDirty {
		c.dirty = true
		c.gen++
	}
	return added
}

// Save atomically persists the cache to its path. It is a no-op for
// memory-only caches, when nothing changed since the last Save, and once
// the cache has degraded (the error that degraded it was already returned).
//
// Failed attempts are retried with backoff; if every attempt fails the
// cache degrades to memory-only and the error is returned once. Callers
// treat it as a lost optimization, not a failed run.
func (c *Cache) Save() error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	return c.saveLocked()
}

// Checkpoint persists the cache at a probe boundary. It is Save plus the
// probe-flush fault point, which chaos tests arm to simulate a process
// killed mid-sweep with only the checkpointed probes on disk.
func (c *Cache) Checkpoint() error {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	if c.path == "" && c.remote == nil {
		return nil
	}
	if err := faultpoint.Hit(faultpoint.ProbeFlush); err != nil {
		return err
	}
	return c.saveLocked()
}

// saveLocked implements Save; the caller holds saveMu (never mu — the
// entries snapshot takes mu briefly, and no I/O happens under it).
func (c *Cache) saveLocked() error {
	if (c.path == "" && c.remote == nil) || c.degradedErr != nil {
		return nil
	}
	c.mu.Lock()
	if !c.dirty {
		c.mu.Unlock()
		return nil
	}
	gen := c.gen
	entries := make([]Entry, 0, len(c.entries))
	for k, est := range c.entries {
		entries = append(entries, Entry{Key: k, Estimate: est})
	}
	c.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.less(entries[j].Key) })

	// Map order would leak into the persisted JSON, making the cache file
	// byte-different on every save; EncodeEntries sorts (again — the sort
	// above keeps the snapshot deterministic for any reader), keeping the
	// document content-stable.
	data, _, err := EncodeEntries(entries)
	if err != nil {
		return err
	}
	if c.remote != nil {
		err = ioretry.Do(cacheRetry, func() error {
			if err := faultpoint.Hit(faultpoint.CacheWrite); err != nil {
				return err
			}
			return c.remote.push(data)
		})
		if err != nil {
			c.degradedErr = fmt.Errorf("sweep: pushing cache to %s: %w", c.remote.url, err)
			return c.degradedErr
		}
	} else {
		err = ioretry.Do(cacheRetry, func() error {
			if err := faultpoint.Hit(faultpoint.CacheWrite); err != nil {
				return err
			}
			return writeFileAtomic(c.path, data)
		})
		if err != nil {
			c.degradedErr = fmt.Errorf("sweep: persisting cache %s: %w", c.path, err)
			return c.degradedErr
		}
	}
	// Clear dirtiness only if no Put landed after the snapshot was taken —
	// otherwise those entries would silently miss the next Save.
	c.mu.Lock()
	if c.gen == gen {
		c.dirty = false
	}
	c.mu.Unlock()
	return nil
}

// writeFileAtomic installs data at path through a fsynced temp file and
// rename, so a crash at any instant leaves either the previous file or the
// complete new one — never a truncated hybrid.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Fsync the directory so the rename itself survives a power cut.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
