package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"lvmajority/internal/stats"
)

// Key identifies one probe result in the cache: the protocol identity, the
// population and gap, the root seed of the search (the per-gap stream is
// derived from it deterministically), the trial budget, the target the
// early-stopping estimator compares against, and whether early stopping was
// on. Changing any of them invalidates the entry by construction — there is
// no TTL and no explicit invalidation.
//
// The protocol identity is its CacheKey when implemented, else its Name
// (see CacheKeyer). A protocol whose dynamics change while both stay the
// same would replay stale probes — implement CacheKeyer over all
// behaviour-changing parameters (as consensus.LVProtocol does), or point
// such runs at a fresh cache file.
type Key struct {
	Protocol  string  `json:"protocol"`
	N         int     `json:"n"`
	Delta     int     `json:"delta"`
	Seed      uint64  `json:"seed"`
	Trials    int     `json:"trials"`
	Target    float64 `json:"target"`
	EarlyStop bool    `json:"early_stop"`
}

// less orders keys for the on-disk encoding: protocol, then the numeric
// knobs. Any total order would do; this one keeps related probes adjacent.
func (k Key) less(o Key) bool {
	switch {
	case k.Protocol != o.Protocol:
		return k.Protocol < o.Protocol
	case k.N != o.N:
		return k.N < o.N
	case k.Delta != o.Delta:
		return k.Delta < o.Delta
	case k.Seed != o.Seed:
		return k.Seed < o.Seed
	case k.Trials != o.Trials:
		return k.Trials < o.Trials
	case k.Target != o.Target:
		return k.Target < o.Target
	default:
		return !k.EarlyStop && o.EarlyStop
	}
}

// cacheEntry pairs a key with its settled estimate in the on-disk encoding.
type cacheEntry struct {
	Key      Key                     `json:"key"`
	Estimate stats.BernoulliEstimate `json:"estimate"`
}

// cacheFile is the JSON document stored on disk.
type cacheFile struct {
	Version int          `json:"version"`
	Entries []cacheEntry `json:"entries"`
}

// cacheVersion invalidates every persisted entry when the probe semantics
// change incompatibly (e.g. a new per-gap seed derivation).
const cacheVersion = 1

// Cache is a concurrency-safe store of settled probe estimates, optionally
// persisted to a JSON file. A Cache with an empty path is memory-only:
// Save is then a no-op, which is what tests and one-shot callers want.
type Cache struct {
	mu      sync.Mutex
	path    string
	entries map[Key]stats.BernoulliEstimate
	dirty   bool
	hits    int64
	misses  int64
}

// NewCache returns an empty memory-only cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]stats.BernoulliEstimate)}
}

// OpenCache loads the cache persisted at path, or returns an empty cache
// bound to that path when the file does not exist yet. An empty path
// returns a memory-only cache.
func OpenCache(path string) (*Cache, error) {
	c := NewCache()
	c.path = path
	if path == "" {
		return c, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: reading cache %s: %w", path, err)
	}
	var file cacheFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("sweep: corrupt cache %s: %w", path, err)
	}
	if file.Version != cacheVersion {
		// Probe semantics changed; start over rather than replay
		// incompatible results.
		return c, nil
	}
	for _, e := range file.Entries {
		c.entries[e.Key] = e.Estimate
	}
	return c, nil
}

// Get returns the cached estimate for k, if any, and counts the lookup as
// a hit or miss (see Counters).
func (c *Cache) Get(k Key) (stats.BernoulliEstimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	est, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return est, ok
}

// Counters returns the cumulative hit and miss counts of Get over the
// cache's lifetime. Callers wanting per-run accounting (e.g. run manifests)
// snapshot the counters around the run and record the difference.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Put stores a settled estimate under k.
func (c *Cache) Put(k Key, est stats.BernoulliEstimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[k]; ok && old == est {
		return
	}
	c.entries[k] = est
	c.dirty = true
}

// Len returns the number of cached probes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Save atomically persists the cache to its path. It is a no-op for
// memory-only caches and when nothing changed since the last Save.
func (c *Cache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.path == "" || !c.dirty {
		return nil
	}
	file := cacheFile{Version: cacheVersion, Entries: make([]cacheEntry, 0, len(c.entries))}
	for k, est := range c.entries {
		file.Entries = append(file.Entries, cacheEntry{Key: k, Estimate: est})
	}
	// Map order would leak into the persisted JSON, making the cache file
	// byte-different on every save; sorted entries keep it content-stable.
	sort.Slice(file.Entries, func(i, j int) bool { return file.Entries[i].Key.less(file.Entries[j].Key) })
	data, err := json.Marshal(file)
	if err != nil {
		return fmt.Errorf("sweep: encoding cache: %w", err)
	}
	if dir := filepath.Dir(c.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("sweep: creating cache directory: %w", err)
		}
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sweep: writing cache: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("sweep: installing cache: %w", err)
	}
	c.dirty = false
	return nil
}
