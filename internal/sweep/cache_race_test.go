package sweep

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"lvmajority/internal/stats"
)

// TestCacheConcurrentSweeps hammers one Cache from many concurrent sweeps —
// the shape of load the process-wide server cache sees: several in-flight
// runs over overlapping and disjoint probe keys, each sweep itself fanning
// out over lanes and workers, interleaved with raw Get/Put/Counters/Len and
// periodic Saves. Run under -race (CI does) this is the satellite guarantee
// that sweep.Cache is safe to share between in-flight runs; without -race it
// still verifies that concurrent sweeps read back exactly the results a
// serial run produces.
func TestCacheConcurrentSweeps(t *testing.T) {
	cache, err := OpenCache(filepath.Join(t.TempDir(), "hammer.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: one sweep per protocol variant on a private cache.
	protos := []sqrtStepProtocol{{c: 1.5}, {c: 2}, {c: 2.5}}
	optsFor := func(seed uint64) Options {
		return Options{Grid: testGrid, Target: 0.9, Trials: 300, Seed: seed, Workers: 2, Lanes: 2}
	}
	want := make([]Result, len(protos))
	for i, p := range protos {
		opts := optsFor(uint64(i + 1))
		res, err := Run(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	// Hammer: every protocol swept several times concurrently, all sharing
	// the one cache, racing with raw cache traffic and Saves.
	const repeats = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(protos)*repeats+2)
	for rep := 0; rep < repeats; rep++ {
		for i, p := range protos {
			wg.Add(1)
			go func(i int, p sqrtStepProtocol) {
				defer wg.Done()
				opts := optsFor(uint64(i + 1))
				opts.Cache = cache
				res, err := Run(p, opts)
				if err != nil {
					errs <- err
					return
				}
				for j, pt := range res.Points {
					if pt.Threshold != want[i].Points[j].Threshold {
						errs <- fmt.Errorf("protocol %d, n=%d: threshold %d under contention, want %d",
							i, pt.N, pt.Threshold, want[i].Points[j].Threshold)
						return
					}
				}
			}(i, p)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Raw traffic on keys disjoint from the sweeps' (protocol "raw").
		for k := 0; k < 500; k++ {
			key := Key{Protocol: "raw", N: k % 7, Delta: k % 5, Seed: 1, Trials: 100, Target: 0.9}
			cache.Put(key, stats.BernoulliEstimate{Successes: k % 101, Trials: 100, Lo: 0, Hi: 1})
			if est, ok := cache.Get(key); ok && est.Trials != 100 {
				errs <- fmt.Errorf("raw key read back %d trials, want 100", est.Trials)
				return
			}
			cache.Counters()
			cache.Len()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			if err := cache.Save(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The persisted file must survive the contention intact.
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := OpenCache(cache.path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != cache.Len() {
		t.Errorf("reloaded cache has %d entries, want %d", reloaded.Len(), cache.Len())
	}
}

// TestCacheInterruptKeepsSettledProbes verifies the Interrupt contract: an
// aborted sweep keeps (and persists) the probes it settled, and a resumed
// sweep replays them without fresh estimator calls.
func TestCacheInterruptKeepsSettledProbes(t *testing.T) {
	cache := NewCache()
	proto := sqrtStepProtocol{c: 2}
	opts := Options{Grid: testGrid, Target: 0.9, Trials: 200, Seed: 9, Cache: cache}

	// Interrupt is polled from every worker goroutine, so the counter must
	// be atomic. The budget lets the first probes settle before aborting.
	var polls atomic.Int64
	stop := fmt.Errorf("stop")
	opts.Interrupt = func() error {
		if polls.Add(1) > 450 {
			return stop
		}
		return nil
	}
	if _, err := Run(proto, opts); err == nil {
		t.Fatal("interrupted sweep returned nil error")
	}
	if cache.Len() == 0 {
		t.Fatal("interrupted sweep settled no probes; the test needs a later interrupt")
	}
	settled := cache.Len()

	opts.Interrupt = nil
	res, err := Run(proto, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits < settled {
		t.Errorf("resumed sweep replayed %d probes, want at least the %d settled before the interrupt",
			res.CacheHits, settled)
	}
}
