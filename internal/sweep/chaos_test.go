package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lvmajority/internal/faultpoint"
)

// chaosOpts is the sweep configuration every chaos scenario runs: small
// enough to be fast, large enough to cross several probe boundaries.
func chaosOpts(cache *Cache) Options {
	return Options{Grid: testGrid, Target: 0.9, Trials: 300, Seed: 21, Workers: 2, Lanes: 2, Cache: cache}
}

// chaosReference computes the uninterrupted sweep once per test: the
// thresholds every faulted variant must still produce.
func chaosReference(t *testing.T) Result {
	t.Helper()
	ref, err := Run(logisticProtocol{}, chaosOpts(NewCache()))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func sameThresholds(t *testing.T, got, want Result, scenario string) {
	t.Helper()
	if len(got.Points) != len(want.Points) {
		t.Fatalf("%s: %d points, want %d", scenario, len(got.Points), len(want.Points))
	}
	for i, pt := range got.Points {
		if pt.Threshold != want.Points[i].Threshold || pt.Found != want.Points[i].Found {
			t.Errorf("%s: n=%d threshold=%d found=%v, want threshold=%d found=%v",
				scenario, pt.N, pt.Threshold, pt.Found, want.Points[i].Threshold, want.Points[i].Found)
		}
	}
}

// TestChaosKillResumeByteIdentical is the crash-safety oracle: a sweep
// killed at an arbitrary probe-flush boundary (simulated by an injected
// panic at the probe-flush site, recovered by the lane) leaves a readable
// checkpoint on disk, and resuming from that checkpoint reproduces the
// uninterrupted sweep exactly — same thresholds, and a byte-identical
// final cache file.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	ref := chaosReference(t)

	// The uninterrupted persisted run pins the expected file bytes.
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	refCache, err := OpenCache(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := Run(logisticProtocol{}, chaosOpts(refCache))
	if err != nil {
		t.Fatal(err)
	}
	sameThresholds(t, refRes, ref, "persisted reference")
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Kill at several distinct checkpoint boundaries, early and late.
	for _, killAt := range []int{0, 3, 9, 20} {
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "probes.json")
			cache, err := OpenCache(path)
			if err != nil {
				t.Fatal(err)
			}
			faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{
				Site: faultpoint.ProbeFlush, After: killAt, Mode: faultpoint.ModePanic, Msg: "kill -9",
			}))
			_, err = Run(logisticProtocol{}, chaosOpts(cache))
			faultpoint.Disarm()
			if err == nil {
				t.Skip("sweep finished before the kill point; grid too small for this boundary")
			}

			// "Restart": reopen the checkpoint from disk — it must load
			// cleanly (atomic writes mean no torn file) — and resume.
			resumed, err := OpenCache(path)
			if err != nil {
				t.Fatalf("checkpoint unreadable after kill: %v", err)
			}
			if q := resumed.Quarantined(); q != "" {
				t.Fatalf("checkpoint quarantined to %s after kill; atomic write failed", q)
			}
			res, err := Run(logisticProtocol{}, chaosOpts(resumed))
			if err != nil {
				t.Fatalf("resumed sweep failed: %v", err)
			}
			sameThresholds(t, res, ref, "resumed sweep")
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refBytes) {
				t.Errorf("resumed cache file differs from uninterrupted run (%d vs %d bytes)", len(got), len(refBytes))
			}
		})
	}
}

// TestChaosWriteErrorsDegradeNotCorrupt: when every cache write fails even
// after retries, the sweep still completes with correct thresholds — the
// cache degrades to memory-only instead of failing the run or leaving a
// torn file behind.
func TestChaosWriteErrorsDegradeNotCorrupt(t *testing.T) {
	ref := chaosReference(t)
	path := filepath.Join(t.TempDir(), "probes.json")
	cache, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{
		Site: faultpoint.CacheWrite, After: 0, Times: 1 << 20, Mode: faultpoint.ModeError, Msg: "disk full",
	}))
	defer faultpoint.Disarm()

	var lines []string
	opts := chaosOpts(cache)
	opts.Log = func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	res, err := Run(logisticProtocol{}, opts)
	if err != nil {
		t.Fatalf("sweep failed on persistence errors: %v", err)
	}
	sameThresholds(t, res, ref, "degraded sweep")
	if cache.Degraded() == nil {
		t.Error("cache did not degrade after exhausted write retries")
	}
	if len(lines) == 0 {
		t.Error("degradation was not logged")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed writes left a cache file behind (stat err %v)", err)
	}
}

// TestChaosCorruptCacheQuarantined: damaged cache files — invalid JSON and
// valid JSON with a checksum mismatch — are quarantined at open and the
// sweep recomputes from scratch, never replaying damaged probes.
func TestChaosCorruptCacheQuarantined(t *testing.T) {
	ref := chaosReference(t)

	t.Run("invalid-json", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "probes.json")
		if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		cache, err := OpenCache(path)
		if err != nil {
			t.Fatalf("corrupt cache open returned error: %v", err)
		}
		if cache.Quarantined() == "" || cache.Len() != 0 {
			t.Fatalf("corrupt file not quarantined (quarantine=%q len=%d)", cache.Quarantined(), cache.Len())
		}
		if data, err := os.ReadFile(path + ".corrupt"); err != nil || string(data) != "{torn" {
			t.Errorf("quarantined bytes not preserved: %q, %v", data, err)
		}
		res, err := Run(logisticProtocol{}, chaosOpts(cache))
		if err != nil {
			t.Fatal(err)
		}
		sameThresholds(t, res, ref, "post-quarantine sweep")
	})

	t.Run("checksum-mismatch", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "probes.json")
		cache, err := OpenCache(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(logisticProtocol{}, chaosOpts(cache)); err != nil {
			t.Fatal(err)
		}
		// Flip estimate bytes without breaking the JSON: parseable but
		// inconsistent with the recorded checksum.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tampered := bytes.Replace(data, []byte(`"Successes":`), []byte(`"Successes":1`), 1)
		if bytes.Equal(tampered, data) {
			t.Fatal("tamper pattern not found; update the test to match the encoding")
		}
		if err := os.WriteFile(path, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, err := OpenCache(path)
		if err != nil {
			t.Fatalf("tampered cache open returned error: %v", err)
		}
		if reopened.Quarantined() == "" || reopened.Len() != 0 {
			t.Errorf("tampered file not quarantined (quarantine=%q len=%d)", reopened.Quarantined(), reopened.Len())
		}
		res, err := Run(logisticProtocol{}, chaosOpts(reopened))
		if err != nil {
			t.Fatal(err)
		}
		sameThresholds(t, res, ref, "post-tamper sweep")
	})
}

// TestChaosReadErrorsStartEmpty: a cache file that cannot be read at all
// (I/O errors through every retry) yields an empty cache and a correct
// sweep — degraded persistence is never allowed to become a wrong result.
func TestChaosReadErrorsStartEmpty(t *testing.T) {
	ref := chaosReference(t)
	path := filepath.Join(t.TempDir(), "probes.json")
	cache, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(logisticProtocol{}, chaosOpts(cache)); err != nil {
		t.Fatal(err)
	}

	faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{
		Site: faultpoint.CacheRead, After: 0, Times: 1 << 20, Mode: faultpoint.ModeError, Msg: "EIO",
	}))
	reopened, err := OpenCache(path)
	faultpoint.Disarm()
	if err != nil {
		t.Fatalf("unreadable cache open returned error: %v", err)
	}
	if reopened.Len() != 0 {
		t.Errorf("unreadable cache loaded %d entries", reopened.Len())
	}
	res, err := Run(logisticProtocol{}, chaosOpts(reopened))
	if err != nil {
		t.Fatal(err)
	}
	sameThresholds(t, res, ref, "post-read-failure sweep")
}
