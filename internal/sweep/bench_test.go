package sweep_test

import (
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/sweep"
)

// benchOptions is the shared Ψ(n) sweep configuration: the Table-1 SD
// protocol on a small grid, sized so the CI bench-smoke step finishes in
// seconds while still exercising every engine mechanism.
func benchOptions() sweep.Options {
	return sweep.Options{
		Grid:   []int{64, 128, 256},
		Trials: 400,
		Seed:   13,
	}
}

func benchProtocol() consensus.Protocol {
	return consensus.LVProtocol{
		Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
		Label:  "lv-sd",
	}
}

func runSweep(b *testing.B, opts sweep.Options) {
	b.Helper()
	p := benchProtocol()
	var probes, fresh int
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		probes = res.Probes
		fresh = res.EstimatorCalls
	}
	b.ReportMetric(float64(probes), "probes/op")
	b.ReportMetric(float64(fresh), "fresh-probes/op")
}

// BenchmarkThresholdSweep compares the three sweep regimes on the same
// curve: cold search per n, warm-started brackets, and full cache replay.
// CI's bench-smoke step records the three timings in BENCH_sweep.json.
func BenchmarkThresholdSweep(b *testing.B) {
	b.Run("Cold", func(b *testing.B) {
		opts := benchOptions()
		opts.Cold = true
		runSweep(b, opts)
	})
	b.Run("Warm", func(b *testing.B) {
		runSweep(b, benchOptions())
	})
	b.Run("CacheHit", func(b *testing.B) {
		opts := benchOptions()
		opts.Cache = sweep.NewCache()
		if _, err := sweep.Run(benchProtocol(), opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		runSweep(b, opts)
	})
}
