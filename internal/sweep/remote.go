package sweep

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/ioretry"
)

// The remote cache backend: a Cache whose persistence target is an HTTP
// cache server (the fabric coordinator's /fabric/v1/cache endpoint) instead
// of a local file, so every member of a worker fleet warm-starts from the
// probes the others already settled.
//
// The exchange is content-addressed on the canonical entries checksum
// (EncodeEntries): the server's ETag is the checksum of the entry set it
// holds, GETs revalidate with If-None-Match (the steady state is a 304 with
// no body), and every full body is verified against both its embedded
// checksum and the ETag that framed it — a torn or proxied-half response is
// detected, never merged. Pushes POST the canonical document; the server
// merges by key, which makes them idempotent.
//
// Failure degrades exactly like the file backend: an exchange that still
// fails after retries switches the cache to memory-only for the rest of its
// life (Degraded reports why) — the fleet cache is an optimization, never a
// correctness dependency, and a flaky cache server must not fail runs.

// maxRemoteBody bounds a cache response body; a server streaming garbage
// must not balloon a worker's memory.
const maxRemoteBody = 64 << 20

// OpenRemoteCache returns a cache backed by the HTTP cache server at
// rawURL, warm-started with the entries the server currently holds. client
// may be nil for a default with a conservative timeout. Only an unusable
// URL is an error; a server that is down merely degrades the cache to
// memory-only operation.
func OpenRemoteCache(rawURL string, client *http.Client) (*Cache, error) {
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("sweep: remote cache URL %q is not an absolute URL", rawURL)
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	c := NewCache()
	c.remote = &remoteClient{url: u.String(), client: client}
	c.revalidate()
	return c, nil
}

// revalidate exchanges state with the remote server: a conditional GET that
// adopts any entries the fleet settled since the last exchange. It holds
// saveMu — the same lock persistence holds — so remote I/O never
// interleaves, and it is a no-op once the cache has degraded.
func (c *Cache) revalidate() {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	if c.remote == nil || c.degradedErr != nil {
		return
	}
	var entries []Entry
	err := ioretry.Do(cacheRetry, func() error {
		if err := faultpoint.Hit(faultpoint.CacheRead); err != nil {
			return err
		}
		var ferr error
		entries, ferr = c.remote.fetch()
		return ferr
	})
	if err != nil {
		c.degradedErr = fmt.Errorf("sweep: fetching remote cache %s: %w", c.remote.url, err)
		return
	}
	// Fetched entries are already on the server; adopt them without
	// dirtying so the next push carries only locally settled probes.
	c.adopt(entries, false)
}

// remoteClient is the HTTP half of the remote backend. It is driven only
// under the owning cache's saveMu, so it needs no locking of its own.
type remoteClient struct {
	url    string
	client *http.Client
	// etag is the validator of the last entry set fetched or pushed — the
	// quoted entries checksum.
	etag string
}

// fetch GETs the server's entry set, revalidating with If-None-Match. It
// returns nil entries on a 304 (the common steady state), and an error for
// any response that cannot be fully verified.
func (r *remoteClient) fetch() ([]Entry, error) {
	req, err := http.NewRequest(http.MethodGet, r.url, nil)
	if err != nil {
		return nil, err
	}
	if r.etag != "" {
		req.Header.Set("If-None-Match", r.etag)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, nil
	case http.StatusOK:
	default:
		return nil, fmt.Errorf("cache server answered %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxRemoteBody {
		return nil, fmt.Errorf("cache response exceeds %d bytes", maxRemoteBody)
	}
	entries, sum, err := DecodeEntries(data)
	if err != nil {
		return nil, err
	}
	// Cross-check the transport validator against the body: an ETag minted
	// for different bytes means the response was torn or rewritten.
	if etag := strings.Trim(resp.Header.Get("Etag"), `"`); etag != "" && sum != "" && etag != sum {
		return nil, fmt.Errorf("cache response body does not match its ETag")
	}
	if sum != "" {
		r.etag = `"` + sum + `"`
	}
	return entries, nil
}

// push POSTs the canonical cache document. The server merges entries by
// key, so a retried or duplicated push converges instead of corrupting.
func (r *remoteClient) push(data []byte) error {
	resp, err := r.client.Post(r.url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("cache server answered %s", resp.Status)
	}
	// The push changed (or confirmed) the server's entry set; drop the
	// validator so the next fetch revalidates against the merged state.
	r.etag = ""
	return nil
}
