// Package sweep computes whole threshold curves Ψ(n) as one orchestrated
// job instead of independent cold searches. Three mechanisms stack on top
// of consensus.FindThreshold:
//
//   - Warm starting. The grid is processed in ascending n along a small
//     number of deterministic lanes; within a lane, the bracket for each n
//     is seeded from the threshold found at the lane's previous n. Since
//     Ψ(n) is monotone in n, an accurate seed replaces the exponential
//     bracketing phase with one or two confirmation probes.
//   - Caching. Every probe is memoized within a search (consensus layer)
//     and recorded in an optional persistent Cache keyed by (protocol, n,
//     delta, seed, trials, target, early-stop), so re-running a sweep —
//     or a CLI — replays settled probes without spending a single trial.
//   - Parallelism. Lanes run concurrently under a shared worker budget,
//     and every probe fans its trials out on the internal/mc pool.
//
// Determinism: probes draw from streams keyed by (seed, gap, trial index),
// so a probe's estimate is bit-identical regardless of worker count, lane
// count, or whether it was replayed from the cache. The search path (and
// with it the probe count) depends on warm starting, but when the probe
// outcomes are monotone in the gap — the assumption FindThreshold is built
// on — the returned thresholds are identical to a cold serial search's.
package sweep

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"lvmajority/internal/consensus"
	"lvmajority/internal/progress"
	"lvmajority/internal/stats"
)

// CacheKeyer lets a protocol provide a cache identity richer than its
// display name. Protocols whose Name can be overridden independently of
// their dynamics (e.g. consensus.LVProtocol's Label) should implement it so
// that changing the underlying parameters invalidates cached probes.
type CacheKeyer interface {
	CacheKey() string
}

// protocolIdentity returns the string identifying p in cache keys: its
// CacheKey when implemented, else its Name. Callers reusing one cache file
// across protocol redefinitions that keep both unchanged must clear the
// cache themselves.
func protocolIdentity(p consensus.Protocol) string {
	if ck, ok := p.(CacheKeyer); ok {
		return ck.CacheKey()
	}
	return p.Name()
}

// Options configure a threshold sweep.
type Options struct {
	// Grid is the set of population sizes; it is sorted ascending and
	// deduplicated before the sweep runs.
	Grid []int
	// Target is the success probability defining the threshold; zero
	// selects the paper's per-n criterion 1 − 1/n.
	Target float64
	// Trials is the Monte-Carlo budget per probed gap (default 2000).
	Trials int
	// TrialsFor overrides Trials per population size when non-nil.
	TrialsFor func(n int) int
	// Workers is the total parallel worker budget shared by all lanes
	// (default GOMAXPROCS).
	Workers int
	// Lanes is the number of concurrent per-n searches. Grid index i is
	// assigned to lane i mod Lanes and warm-started from index i −
	// Lanes, so the dependency structure — and with it the search path —
	// is fixed by Lanes alone, never by scheduling. Default 1 (a single
	// warm chain).
	Lanes int
	// Seed is the root seed.
	Seed uint64
	// SeedFor derives the per-population root seed when non-nil; the
	// default is Seed + n, matching the repository's historical callers.
	SeedFor func(n int) uint64
	// MaxDelta caps each search (0 = n−2, see consensus.ThresholdOptions).
	MaxDelta int
	// Cold disables warm starting: every search brackets from scratch.
	// Useful for diagnostics and benchmarks.
	Cold bool
	// NoEarlyStop disables the sequential estimator, probing every gap
	// with the full fixed-size trial budget.
	NoEarlyStop bool
	// Cache, when non-nil, serves settled probes and records fresh ones.
	// Run saves it before returning.
	Cache *Cache
	// Estimator, when non-nil, builds the per-gap probe estimator for one
	// population size instead of consensus.DefaultEstimator — the seam the
	// distributed fabric uses to farm a probe's trial windows out to a
	// worker fleet. The sweep's memoization and persistent cache layer on
	// top unchanged, so cache keys and replay behaviour are identical to
	// the local estimator's. The returned estimator must be deterministic
	// in its arguments (same contract as consensus.ThresholdOptions
	// .Estimator); target and earlyStop arrive already resolved.
	Estimator func(p consensus.Protocol, n int, target float64, earlyStop bool) consensus.ProbeEstimator
	// Interrupt, when non-nil, is polled between trials of every fresh
	// probe; a non-nil return aborts the sweep with that error. Probes
	// already settled (and cached) are kept, so an interrupted sweep can
	// be resumed without repaying their Monte-Carlo cost. It never affects
	// results while it returns nil.
	Interrupt func() error
	// Log, when non-nil, receives one progress line per settled point.
	Log func(format string, args ...any)
	// Progress, when non-nil, receives the sweep's observation stream:
	// probe-start and probe events around every threshold probe (with cache
	// provenance), a point event per settled population size, and the trial
	// and estimate snapshots of every fresh probe, all annotated with the
	// point's N. Observation-only: attaching a hook never changes results.
	Progress progress.Hook
}

// Point is the sweep result for one population size.
type Point struct {
	consensus.ThresholdResult
	// Probes is the number of distinct gaps the search evaluated.
	Probes int
	// EstimatorCalls counts probes that actually ran trials; probes
	// served by the cache are excluded.
	EstimatorCalls int
	// CacheHits counts probes replayed from the cache.
	CacheHits int
}

// Result is the outcome of a sweep: one Point per grid entry, in grid
// order, plus aggregate probe accounting.
type Result struct {
	// Protocol is the swept protocol's name.
	Protocol string
	// Points holds one entry per grid population size, ascending.
	Points []Point
	// Probes, EstimatorCalls and CacheHits aggregate the per-point
	// counters.
	Probes         int
	EstimatorCalls int
	CacheHits      int
}

// Curve converts the sweep result to the consensus package's curve-point
// representation, e.g. for FitCurve.
func (r Result) Curve() []consensus.CurvePoint {
	pts := make([]consensus.CurvePoint, len(r.Points))
	for i, p := range r.Points {
		pts[i] = consensus.CurvePoint{N: p.N, Threshold: p.Threshold, Found: p.Found}
	}
	return pts
}

func (o Options) trialsFor(n int) int {
	if o.TrialsFor != nil {
		return o.TrialsFor(n)
	}
	if o.Trials > 0 {
		return o.Trials
	}
	return 2000
}

func (o Options) seedFor(n int) uint64 {
	if o.SeedFor != nil {
		return o.SeedFor(n)
	}
	return o.Seed + uint64(n)
}

func (o Options) targetFor(n int) float64 {
	if o.Target > 0 {
		return o.Target
	}
	return 1 - 1/float64(n)
}

// Run sweeps the threshold curve of p over the grid and returns one point
// per population size. The first error aborts the sweep.
func Run(p consensus.Protocol, opts Options) (Result, error) {
	if p == nil {
		return Result{}, fmt.Errorf("sweep: nil protocol")
	}
	if len(opts.Grid) == 0 {
		return Result{}, fmt.Errorf("sweep: empty population grid")
	}
	grid := append([]int(nil), opts.Grid...)
	slices.Sort(grid)
	grid = slices.Compact(grid)

	lanes := opts.Lanes
	if lanes <= 0 {
		lanes = 1
	}
	if lanes > len(grid) {
		lanes = len(grid)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Split the worker budget across lanes, spreading the remainder over
	// the first lanes so none of it idles. Worker counts never affect
	// estimates, only scheduling.
	laneWorkers := func(lane int) int {
		w := workers / lanes
		if lane < workers%lanes {
			w++
		}
		if w < 1 {
			w = 1
		}
		return w
	}

	// Lane goroutines may log concurrently; serialize so callers can pass
	// any log sink without their own locking.
	logf := func(string, ...any) {}
	if opts.Log != nil {
		var logMu sync.Mutex
		logf = func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			opts.Log(format, args...)
		}
	}

	res := Result{Protocol: p.Name(), Points: make([]Point, len(grid))}
	var estimatorCalls, cacheHits atomic.Int64
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			// A panic escaping a search (an engine defect below the mc
			// recovery boundary, or an injected probe-flush fault) must fail
			// the sweep, not the process: the other lanes drain, settled
			// probes stay checkpointed, and the caller gets an error.
			defer func() {
				if v := recover(); v != nil {
					errs[lane] = fmt.Errorf("sweep: panic in lane %d: %v", lane, v)
				}
			}()
			hint := 0
			for i := lane; i < len(grid); i += lanes {
				n := grid[i]
				pt, err := runPoint(p, n, hint, laneWorkers(lane), opts, logf, &estimatorCalls, &cacheHits)
				if err != nil {
					errs[lane] = fmt.Errorf("sweep: threshold search at n=%d: %w", n, err)
					return
				}
				res.Points[i] = pt
				logf("sweep %s: n=%d threshold=%d (%d probes, %d fresh, %d cached)",
					res.Protocol, n, pt.Threshold, pt.Probes, pt.EstimatorCalls, pt.CacheHits)
				if !opts.Cold && pt.Found {
					hint = pt.Threshold
				}
			}
		}(lane)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Best effort: keep the probes the other lanes settled so
			// a retry does not repay their Monte-Carlo cost.
			if opts.Cache != nil {
				if saveErr := opts.Cache.Save(); saveErr != nil {
					err = fmt.Errorf("%w (additionally, saving the probe cache failed: %v)", err, saveErr)
				}
			}
			return res, err
		}
	}
	for _, pt := range res.Points {
		res.Probes += pt.Probes
	}
	res.EstimatorCalls = int(estimatorCalls.Load())
	res.CacheHits = int(cacheHits.Load())
	if opts.Cache != nil {
		// Losing persistence never fails a computed sweep: the results in
		// hand are correct regardless of whether the cache reached disk.
		if err := opts.Cache.Save(); err != nil {
			logf("sweep: saving probe cache failed (results unaffected): %v", err)
		}
	}
	return res, nil
}

// runPoint runs the warm-started, cache-backed threshold search for one
// population size.
func runPoint(p consensus.Protocol, n, hint, workers int, opts Options, logf func(string, ...any), estimatorCalls, cacheHits *atomic.Int64) (Point, error) {
	target := opts.targetFor(n)
	trials := opts.trialsFor(n)
	seed := opts.seedFor(n)
	earlyStop := !opts.NoEarlyStop
	inner := consensus.DefaultEstimator(p, n, target, earlyStop)
	if opts.Estimator != nil {
		inner = opts.Estimator(p, n, target, earlyStop)
	}

	identity := protocolIdentity(p)

	// The sweep owns probe-level observation: it alone knows whether a
	// probe was served by the cache. Nested trial/estimate snapshots from
	// fresh probes are annotated with this point's N on the way out.
	hook := opts.Progress
	var pointHook progress.Hook
	if hook != nil {
		pointHook = func(e progress.Event) {
			if e.N == 0 {
				e.N = n
			}
			hook(e)
		}
	}

	var fresh, hits int
	estimator := func(delta int, eopts consensus.EstimateOptions) (stats.BernoulliEstimate, error) {
		key := Key{
			Protocol:  identity,
			N:         n,
			Delta:     delta,
			Seed:      seed,
			Trials:    trials,
			Target:    target,
			EarlyStop: earlyStop,
		}
		pointHook.Emit(progress.Event{Kind: progress.KindProbeStart, N: n, Delta: delta})
		if opts.Cache != nil {
			if est, ok := opts.Cache.Get(key); ok {
				hits++
				cacheHits.Add(1)
				emitProbe(pointHook, n, delta, est, true)
				return est, nil
			}
		}
		est, err := inner(delta, eopts)
		if err != nil {
			return est, err
		}
		fresh++
		estimatorCalls.Add(1)
		if opts.Cache != nil {
			opts.Cache.Put(key, est)
			// Checkpoint at the probe boundary: a process killed at any
			// instant resumes from the settled probes already on disk. A
			// checkpoint that cannot be persisted (even after retries) is a
			// lost optimization, not a failed probe — the estimate in hand
			// is correct either way.
			if err := opts.Cache.Checkpoint(); err != nil {
				logf("sweep: probe cache checkpoint failed (continuing without persistence): %v", err)
			}
		}
		emitProbe(pointHook, n, delta, est, false)
		return est, nil
	}

	res, err := consensus.FindThreshold(p, n, consensus.ThresholdOptions{
		Target:    target,
		Trials:    trials,
		Workers:   workers,
		Seed:      seed,
		MaxDelta:  opts.MaxDelta,
		EarlyStop: earlyStop,
		Hint:      hint,
		Estimator: estimator,
		Interrupt: opts.Interrupt,
		Progress:  pointHook,
	})
	if err != nil {
		return Point{}, err
	}
	pointHook.Emit(progress.Event{Kind: progress.KindPoint, N: n, Threshold: res.Threshold, Found: res.Found})
	return Point{
		ThresholdResult: res,
		Probes:          len(res.Evaluations),
		EstimatorCalls:  fresh,
		CacheHits:       hits,
	}, nil
}

// emitProbe publishes one settled-probe event with cache provenance.
func emitProbe(h progress.Hook, n, delta int, est stats.BernoulliEstimate, cached bool) {
	if h == nil {
		return
	}
	e := est
	h(progress.Event{Kind: progress.KindProbe, N: n, Delta: delta, Estimate: &e, Cached: cached})
}
