package sweep

import (
	"reflect"
	"sync"
	"testing"

	"lvmajority/internal/progress"
)

// TestSweepUnchangedByProgressHook is the sweep-level determinism contract:
// results with a maximally chatty hook attached equal results without one,
// and the emitted stream is coherent (every event annotated with its point's
// N, one point event per grid entry, probe provenance matching the sweep's
// own counters).
func TestSweepUnchangedByProgressHook(t *testing.T) {
	base := Options{
		Grid:   []int{24, 32, 48, 64},
		Trials: 200,
		Seed:   9,
		Lanes:  2,
		Cache:  NewCache(),
	}
	quiet, err := Run(logisticProtocol{}, base)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []progress.Event
	chatty := base
	chatty.Cache = NewCache() // fresh cache: same cold start as the quiet run
	chatty.Progress = func(e progress.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	loud, err := Run(logisticProtocol{}, chatty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(quiet, loud) {
		t.Errorf("hook perturbed the sweep:\nquiet %+v\nloud  %+v", quiet, loud)
	}

	mu.Lock()
	defer mu.Unlock()
	points := map[int]progress.Event{}
	probeStarts, probes, cached := 0, 0, 0
	for _, e := range events {
		if e.N == 0 {
			t.Fatalf("event missing point annotation: %+v", e)
		}
		switch e.Kind {
		case progress.KindPoint:
			points[e.N] = e
		case progress.KindProbeStart:
			probeStarts++
		case progress.KindProbe:
			probes++
			if e.Cached {
				cached++
			}
			if e.Estimate == nil {
				t.Fatalf("probe event without estimate: %+v", e)
			}
		}
	}
	if len(points) != len(base.Grid) {
		t.Errorf("saw point events for %d sizes, want %d", len(points), len(base.Grid))
	}
	for _, pt := range loud.Points {
		ev, ok := points[pt.N]
		if !ok {
			t.Errorf("no point event for n=%d", pt.N)
			continue
		}
		if ev.Threshold != pt.Threshold || ev.Found != pt.Found {
			t.Errorf("point event %+v disagrees with result %+v", ev, pt)
		}
	}
	if probeStarts != loud.Probes || probes != loud.Probes {
		t.Errorf("probe events %d/%d, want one start and one settle per probe (%d)",
			probeStarts, probes, loud.Probes)
	}
	if cached != loud.CacheHits {
		t.Errorf("cached probe events %d, want %d", cached, loud.CacheHits)
	}
}

// TestSweepCachedProbesEmitProvenance: a warm re-run over a shared cache
// reports every probe as cached.
func TestSweepCachedProbesEmitProvenance(t *testing.T) {
	opts := Options{
		Grid:   []int{24, 32},
		Trials: 150,
		Seed:   5,
		Cache:  NewCache(),
	}
	first, err := Run(logisticProtocol{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var cached, fresh int
	opts.Progress = func(e progress.Event) {
		if e.Kind != progress.KindProbe {
			return
		}
		mu.Lock()
		if e.Cached {
			cached++
		} else {
			fresh++
		}
		mu.Unlock()
	}
	second, err := Run(logisticProtocol{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Curve(), second.Curve()) {
		t.Fatalf("warm re-run changed the curve")
	}
	if fresh != 0 || cached == 0 || cached != second.CacheHits {
		t.Errorf("warm re-run emitted %d fresh / %d cached probe events, want all %d cached",
			fresh, cached, second.CacheHits)
	}
}
