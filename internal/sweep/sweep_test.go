package sweep

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// sqrtStepProtocol succeeds deterministically once the gap reaches
// ceil(c·√n): a noiseless protocol whose threshold curve is monotone in n,
// like Ψ(n) for every protocol in the repository.
type sqrtStepProtocol struct{ c float64 }

func (p sqrtStepProtocol) Name() string { return fmt.Sprintf("sqrt-step(%g)", p.c) }

func (p sqrtStepProtocol) Trial(n, delta int, _ *rng.Source) (bool, error) {
	return float64(delta) >= p.c*math.Sqrt(float64(n)), nil
}

// logisticProtocol is a noisy protocol whose success probability is a steep
// logistic ramp centred at 2·√n — a stochastic stand-in for the LV chains
// that keeps the test fast.
type logisticProtocol struct{}

func (logisticProtocol) Name() string { return "logistic" }

func (logisticProtocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	centre := 2 * math.Sqrt(float64(n))
	p := 1 / (1 + math.Exp(-(float64(delta)-centre)/1.5))
	return src.Bernoulli(p), nil
}

var testGrid = []int{48, 64, 96, 128, 192, 256}

// coldReference runs the plain serial FindThreshold per grid point with the
// same per-point options the sweep derives.
func coldReference(t *testing.T, p consensus.Protocol, opts Options) []consensus.ThresholdResult {
	t.Helper()
	out := make([]consensus.ThresholdResult, 0, len(opts.Grid))
	for _, n := range opts.Grid {
		res, err := consensus.FindThreshold(p, n, consensus.ThresholdOptions{
			Target:    opts.Target,
			Trials:    opts.trialsFor(n),
			Workers:   1,
			Seed:      opts.seedFor(n),
			EarlyStop: !opts.NoEarlyStop,
			Interrupt: opts.Interrupt,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestSweepMatchesColdSerial is the headline regression test: the
// warm-started, cached, parallel sweep must return byte-identical Threshold
// values to the cold serial FindThreshold, for any worker count, any lane
// count, and a warm or cold cache.
func TestSweepMatchesColdSerial(t *testing.T) {
	for _, proto := range []consensus.Protocol{sqrtStepProtocol{c: 1.7}, logisticProtocol{}} {
		for _, earlyStop := range []bool{true, false} {
			base := Options{
				Grid:        testGrid,
				Target:      0.9,
				Trials:      600,
				Seed:        41,
				NoEarlyStop: !earlyStop,
			}
			want := coldReference(t, proto, base)
			cache := NewCache()
			for _, workers := range []int{1, 3, 8} {
				for _, lanes := range []int{1, 2, 3} {
					opts := base
					opts.Workers = workers
					opts.Lanes = lanes
					opts.Cache = cache
					res, err := Run(proto, opts)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Points) != len(want) {
						t.Fatalf("%s: %d points, want %d", proto.Name(), len(res.Points), len(want))
					}
					for i, pt := range res.Points {
						if pt.Threshold != want[i].Threshold || pt.Found != want[i].Found {
							t.Errorf("%s earlyStop=%v workers=%d lanes=%d: n=%d threshold=%d (found=%v), cold serial %d (found=%v)",
								proto.Name(), earlyStop, workers, lanes, pt.N,
								pt.Threshold, pt.Found, want[i].Threshold, want[i].Found)
						}
					}
				}
			}
		}
	}
}

// TestSweepWarmStartFewerProbes asserts the tentpole saving: warm-started
// brackets must issue strictly fewer probes than cold search over the same
// grid.
func TestSweepWarmStartFewerProbes(t *testing.T) {
	base := Options{Grid: testGrid, Target: 0.9, Trials: 400, Seed: 7, Workers: 1}

	cold := base
	cold.Cold = true
	coldRes, err := Run(sqrtStepProtocol{c: 1.7}, cold)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := Run(sqrtStepProtocol{c: 1.7}, base)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Probes >= coldRes.Probes {
		t.Errorf("warm sweep used %d probes, cold %d — warm starting saved nothing", warmRes.Probes, coldRes.Probes)
	}
	// Deep in the grid the hint trails the slowly moving step curve by a
	// couple of grid steps, so a warm point settles in a handful of
	// probes where cold search pays the full exponential phase.
	last := warmRes.Points[len(warmRes.Points)-1]
	lastCold := coldRes.Points[len(coldRes.Points)-1]
	if last.Probes > 4 {
		t.Errorf("warm-started final point used %d probes, want <= 4", last.Probes)
	}
	if last.Probes >= lastCold.Probes {
		t.Errorf("warm-started final point used %d probes, cold used %d", last.Probes, lastCold.Probes)
	}
	for i, pt := range warmRes.Points {
		if pt.Threshold != coldRes.Points[i].Threshold {
			t.Errorf("n=%d: warm threshold %d != cold %d", pt.N, pt.Threshold, coldRes.Points[i].Threshold)
		}
	}
}

// TestSweepWarmCacheZeroEstimatorCalls asserts the acceptance criterion: a
// second run against a warm cache issues zero new estimator calls, and a
// cache persisted to disk serves a fresh process-equivalent run the same
// way.
func TestSweepWarmCacheZeroEstimatorCalls(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep", "cache.json")
	cache, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Grid: testGrid, Target: 0.9, Trials: 500, Seed: 11, Cache: cache}

	first, err := Run(logisticProtocol{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.EstimatorCalls == 0 || first.CacheHits != 0 {
		t.Fatalf("first run: %d estimator calls, %d hits — expected all-fresh", first.EstimatorCalls, first.CacheHits)
	}
	if first.EstimatorCalls != first.Probes {
		t.Errorf("first run: %d estimator calls != %d probes", first.EstimatorCalls, first.Probes)
	}

	second, err := Run(logisticProtocol{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.EstimatorCalls != 0 {
		t.Errorf("second run issued %d estimator calls against a warm cache, want 0", second.EstimatorCalls)
	}
	if second.CacheHits != second.Probes {
		t.Errorf("second run: %d hits != %d probes", second.CacheHits, second.Probes)
	}

	// Same again from disk, as a re-executed CLI would see it.
	reopened, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = reopened
	third, err := Run(logisticProtocol{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.EstimatorCalls != 0 {
		t.Errorf("persisted-cache run issued %d estimator calls, want 0", third.EstimatorCalls)
	}
	for i, pt := range third.Points {
		if pt.Threshold != first.Points[i].Threshold {
			t.Errorf("n=%d: cached threshold %d != fresh %d", pt.N, pt.Threshold, first.Points[i].Threshold)
		}
	}
}

// TestSweepCacheKeyInvalidation asserts that every field of the cache key
// actually invalidates: a run differing in seed, trials, target, estimator
// mode, or protocol must not replay cached probes.
func TestSweepCacheKeyInvalidation(t *testing.T) {
	cache := NewCache()
	base := Options{Grid: []int{64, 96}, Target: 0.9, Trials: 300, Seed: 5, Cache: cache}
	if _, err := Run(logisticProtocol{}, base); err != nil {
		t.Fatal(err)
	}

	mutations := map[string]Options{
		"seed":   {Grid: base.Grid, Target: 0.9, Trials: 300, Seed: 6, Cache: cache},
		"trials": {Grid: base.Grid, Target: 0.9, Trials: 301, Seed: 5, Cache: cache},
		"target": {Grid: base.Grid, Target: 0.91, Trials: 300, Seed: 5, Cache: cache},
		"nostop": {Grid: base.Grid, Target: 0.9, Trials: 300, Seed: 5, Cache: cache, NoEarlyStop: true},
	}
	for name, opts := range mutations {
		res, err := Run(logisticProtocol{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHits != 0 {
			t.Errorf("%s mutation replayed %d cached probes, want 0", name, res.CacheHits)
		}
	}
	res, err := Run(sqrtStepProtocol{c: 1.7}, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Errorf("different protocol replayed %d cached probes, want 0", res.CacheHits)
	}
}

// TestCacheKeyProtocolIdentity asserts that the cache keys a protocol by
// its dynamics, not its display label: two LV protocols sharing a Label but
// differing in rate constants must not replay each other's probes.
func TestCacheKeyProtocolIdentity(t *testing.T) {
	cache := NewCache()
	opts := Options{Grid: []int{32}, Trials: 50, Seed: 3, Cache: cache}
	strong := consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), Label: "same-label"}
	weak := consensus.LVProtocol{Params: lv.Neutral(1, 1, 0.25, 0, lv.SelfDestructive), Label: "same-label"}
	if _, err := Run(strong, opts); err != nil {
		t.Fatal(err)
	}
	res, err := Run(weak, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Errorf("relabelled dynamics replayed %d cached probes, want 0", res.CacheHits)
	}
	again, err := Run(weak, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.EstimatorCalls != 0 {
		t.Errorf("identical dynamics re-ran %d probes, want full replay", again.EstimatorCalls)
	}
}

func TestCachePersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Protocol: "p", N: 64, Delta: 8, Seed: 3, Trials: 100, Target: 0.9, EarlyStop: true}
	est := stats.BernoulliEstimate{Successes: 90, Trials: 100, Lo: 0.82, Hi: 0.94}
	c.Put(key, est)
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	// Saving an unchanged cache must be a no-op (dirty tracking).
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("reopened cache has %d entries, want 1", re.Len())
	}
	got, ok := re.Get(key)
	if !ok || got != est {
		t.Errorf("reopened entry = %+v (ok=%v), want %+v", got, ok, est)
	}
	if _, ok := re.Get(Key{Protocol: "other"}); ok {
		t.Error("missing key reported as present")
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewCache()
	key := Key{Protocol: "p", N: 64}
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key, stats.BernoulliEstimate{Trials: 1})
	if _, ok := c.Get(key); !ok {
		t.Fatal("stored key missing")
	}
	if _, ok := c.Get(Key{Protocol: "other"}); ok {
		t.Fatal("missing key reported as present")
	}
	hits, misses := c.Counters()
	if hits != 1 || misses != 2 {
		t.Errorf("Counters() = %d hits, %d misses; want 1, 2", hits, misses)
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	c := NewCache()
	c.Put(Key{Protocol: "p"}, stats.BernoulliEstimate{Trials: 1})
	if err := c.Save(); err != nil {
		t.Errorf("memory-only Save errored: %v", err)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Run(nil, Options{Grid: []int{64}}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := Run(logisticProtocol{}, Options{}); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestSweepGridSortedDeduped(t *testing.T) {
	res, err := Run(sqrtStepProtocol{c: 1.7}, Options{
		Grid: []int{128, 64, 128, 96}, Target: 0.9, Trials: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{64, 96, 128}
	if len(res.Points) != len(want) {
		t.Fatalf("%d points, want %d", len(res.Points), len(want))
	}
	for i, pt := range res.Points {
		if pt.N != want[i] {
			t.Errorf("point %d has n=%d, want %d", i, pt.N, want[i])
		}
	}
	curve := res.Curve()
	for i, cp := range curve {
		if cp.N != want[i] || cp.Threshold != res.Points[i].Threshold {
			t.Errorf("Curve()[%d] = %+v mismatch", i, cp)
		}
	}
}
