package sweep

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"lvmajority/internal/stats"
)

// The remote-backend chaos suite: a cache server that fails — 500s, torn
// bodies, rewritten validators, incompatible documents — must degrade the
// cache to memory-only operation without ever changing sweep results. The
// remote cache is an optimization; these tests pin that it is never a
// correctness dependency.

// remoteCacheServer is a scriptable stand-in for the coordinator's
// /fabric/v1/cache endpoint. The onGet/onPost hooks run per request; nil
// hooks serve the happy path for an empty entry set.
type remoteCacheServer struct {
	*httptest.Server
	gets, posts atomic.Int64
	onGet       func(w http.ResponseWriter)
	onPost      func(w http.ResponseWriter)
}

func newRemoteCacheServer(t *testing.T) *remoteCacheServer {
	t.Helper()
	s := &remoteCacheServer{}
	s.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			s.gets.Add(1)
			if s.onGet != nil {
				s.onGet(w)
				return
			}
			data, sum, err := EncodeEntries(nil)
			if err != nil {
				t.Error(err)
			}
			w.Header().Set("Etag", `"`+sum+`"`)
			w.Write(data)
		case http.MethodPost:
			s.posts.Add(1)
			if s.onPost != nil {
				s.onPost(w)
				return
			}
			w.Write([]byte(`{"received":0,"merged":0}`))
		}
	}))
	t.Cleanup(s.Close)
	return s
}

// TestRemoteCachePushFailureDegrades: a server that 500s every push must
// degrade the cache after the checkpoint that first needs it — and the
// degrade is sticky: no further exchanges are attempted, the sweep finishes
// on the in-memory entries, and its thresholds match the reference run.
func TestRemoteCachePushFailureDegrades(t *testing.T) {
	ref := chaosReference(t)
	srv := newRemoteCacheServer(t)
	srv.onPost = func(w http.ResponseWriter) {
		http.Error(w, "injected outage", http.StatusInternalServerError)
	}

	cache, err := OpenRemoteCache(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Degraded() != nil {
		t.Fatalf("cache degraded before any push: %v", cache.Degraded())
	}
	got, err := Run(logisticProtocol{}, chaosOpts(cache))
	if err != nil {
		t.Fatalf("sweep must survive a dead cache server: %v", err)
	}
	sameThresholds(t, got, ref, "push-500")
	if cache.Degraded() == nil {
		t.Error("cache not degraded after every push failed")
	}
	postsAtDegrade := srv.posts.Load()
	if postsAtDegrade == 0 {
		t.Error("no push was ever attempted")
	}
	// Sticky: a degraded cache stops talking to the server entirely.
	cache.Put(Key{N: 9999, Target: 0.5, Trials: 1}, stats.BernoulliEstimate{Successes: 1, Trials: 2})
	if err := cache.Checkpoint(); err != nil {
		t.Errorf("checkpoint after degrade must be a no-op, got %v", err)
	}
	if srv.posts.Load() != postsAtDegrade {
		t.Errorf("degraded cache pushed again: %d posts, had %d", srv.posts.Load(), postsAtDegrade)
	}
}

// TestRemoteCacheTornBodyDegrades: a 200 whose body is half a document must
// be detected at open (checksum/parse) and degrade the cache — which still
// works memory-only and still produces reference results.
func TestRemoteCacheTornBodyDegrades(t *testing.T) {
	ref := chaosReference(t)
	srv := newRemoteCacheServer(t)
	srv.onGet = func(w http.ResponseWriter) {
		data, sum, err := EncodeEntries(nil)
		if err != nil {
			t.Error(err)
		}
		w.Header().Set("Etag", `"`+sum+`"`)
		w.Write(data[:len(data)/2])
	}

	cache, err := OpenRemoteCache(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Degraded() == nil {
		t.Fatal("torn fetch body did not degrade the cache")
	}
	got, err := Run(logisticProtocol{}, chaosOpts(cache))
	if err != nil {
		t.Fatal(err)
	}
	sameThresholds(t, got, ref, "torn-body")
	if srv.posts.Load() != 0 {
		t.Errorf("degraded cache pushed %d times", srv.posts.Load())
	}
}

// TestRemoteCacheEtagMismatchDegrades: a body that parses but was framed by
// an ETag minted for different bytes (a rewriting proxy, a half-applied
// server update) must be rejected, not merged.
func TestRemoteCacheEtagMismatchDegrades(t *testing.T) {
	srv := newRemoteCacheServer(t)
	srv.onGet = func(w http.ResponseWriter) {
		data, _, err := EncodeEntries(nil)
		if err != nil {
			t.Error(err)
		}
		w.Header().Set("Etag", `"deadbeef"`)
		w.Write(data)
	}
	cache, err := OpenRemoteCache(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Degraded() == nil {
		t.Fatal("ETag/body mismatch did not degrade the cache")
	}
}

// TestRemoteCacheVersionMismatchAdoptsNothing: a document from an
// incompatible cache version is valid JSON but carries nothing adoptable —
// the cache opens empty and healthy, exactly like the file backend's
// version handling.
func TestRemoteCacheVersionMismatchAdoptsNothing(t *testing.T) {
	srv := newRemoteCacheServer(t)
	srv.onGet = func(w http.ResponseWriter) {
		fmt.Fprint(w, `{"version":999,"entries":[{"key":{"n":8,"target":0.9,"trials":100},"estimate":{"successes":90,"trials":100}}]}`)
	}
	cache, err := OpenRemoteCache(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Degraded(); err != nil {
		t.Fatalf("version mismatch must not degrade, got %v", err)
	}
	if cache.Len() != 0 {
		t.Errorf("adopted %d entries from an incompatible document", cache.Len())
	}
}

// TestRemoteCacheWarmStartAndSteadyState pins the happy-path protocol: a
// second cache warm-starts from what the first pushed, and its misses
// revalidate with If-None-Match so the steady state moves no bodies.
func TestRemoteCacheWarmStartAndSteadyState(t *testing.T) {
	ref := chaosReference(t)
	// A real in-process cache server: entries live in a shared Cache.
	shared := NewCache()
	var gets304 atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		data, sum, err := EncodeEntries(shared.Entries())
		if err != nil {
			t.Error(err)
		}
		switch req.Method {
		case http.MethodGet:
			if req.Header.Get("If-None-Match") == `"`+sum+`"` {
				gets304.Add(1)
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Header().Set("Etag", `"`+sum+`"`)
			w.Write(data)
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			entries, _, err := DecodeEntries(body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			shared.MergeEntries(entries)
			fmt.Fprintf(w, `{"merged":%d}`, len(entries))
		}
	}))
	defer srv.Close()

	first, err := OpenRemoteCache(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Run(logisticProtocol{}, chaosOpts(first))
	if err != nil {
		t.Fatal(err)
	}
	sameThresholds(t, res1, ref, "first fleet member")
	if shared.Len() == 0 {
		t.Fatal("first member pushed nothing to the cache server")
	}

	second, err := OpenRemoteCache(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Len() != shared.Len() {
		t.Fatalf("warm start adopted %d entries, server holds %d", second.Len(), shared.Len())
	}
	res2, err := Run(logisticProtocol{}, chaosOpts(second))
	if err != nil {
		t.Fatal(err)
	}
	sameThresholds(t, res2, ref, "warm-started member")
	if calls := res2.EstimatorCalls; calls != 0 {
		t.Errorf("warm-started sweep ran %d fresh probes; all were cached", calls)
	}
	// Misses on the second cache revalidated conditionally at least once.
	if second.Degraded() != nil {
		t.Errorf("steady-state exchange degraded: %v", second.Degraded())
	}
}
