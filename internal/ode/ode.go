// Package ode provides the small numeric ODE toolkit needed to integrate the
// deterministic mass-action counterpart of the stochastic Lotka–Volterra
// models (Eq. 4 of the paper): a fixed-step classical Runge–Kutta (RK4)
// integrator and an adaptive Runge–Kutta–Fehlberg 4(5) integrator.
//
// The package exists because the reproduction environment has no numeric
// ecosystem; everything is stdlib. The integrators are general-purpose; the
// Lotka–Volterra vector field lives in lotka.go.
package ode

import (
	"fmt"
	"math"
)

// Func is a first-order vector field: it writes dy/dt into dydt given (t, y).
// Implementations must not retain or resize the slices.
type Func func(t float64, y []float64, dydt []float64)

// RK4 integrates dy/dt = f(t, y) from t0 to t1 with the classical
// fourth-order Runge–Kutta method using the given number of equal steps.
// It returns the state at t1. The initial state is not modified.
func RK4(f Func, y0 []float64, t0, t1 float64, steps int) ([]float64, error) {
	if f == nil {
		return nil, fmt.Errorf("ode: nil vector field")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("ode: RK4 needs a positive step count, got %d", steps)
	}
	if len(y0) == 0 {
		return nil, fmt.Errorf("ode: empty initial state")
	}
	if t1 < t0 {
		return nil, fmt.Errorf("ode: t1=%v before t0=%v", t1, t0)
	}
	dim := len(y0)
	y := make([]float64, dim)
	copy(y, y0)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)

	h := (t1 - t0) / float64(steps)
	t := t0
	for s := 0; s < steps; s++ {
		f(t, y, k1)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k1[i]
		}
		f(t+h/2, tmp, k2)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k2[i]
		}
		f(t+h/2, tmp, k3)
		for i := range tmp {
			tmp[i] = y[i] + h*k3[i]
		}
		f(t+h, tmp, k4)
		for i := range y {
			y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t = t0 + float64(s+1)*h
	}
	return y, nil
}

// AdaptiveOptions configures Adaptive.
type AdaptiveOptions struct {
	// AbsTol and RelTol are the per-component error tolerances; zero
	// values default to 1e-9 and 1e-6 respectively.
	AbsTol, RelTol float64
	// InitialStep is the first attempted step size; zero picks
	// (t1−t0)/100.
	InitialStep float64
	// MaxSteps caps the number of accepted steps; zero means 1e6.
	MaxSteps int
	// Stop, if non-nil, is checked after every accepted step; returning
	// true ends the integration early.
	Stop func(t float64, y []float64) bool
}

// rkf45 coefficients (Fehlberg).
var (
	rkfA = [6]float64{0, 1.0 / 4, 3.0 / 8, 12.0 / 13, 1, 1.0 / 2}
	rkfB = [6][5]float64{
		{},
		{1.0 / 4},
		{3.0 / 32, 9.0 / 32},
		{1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197},
		{439.0 / 216, -8, 3680.0 / 513, -845.0 / 4104},
		{-8.0 / 27, 2, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40},
	}
	// 4th-order solution weights.
	rkfC4 = [6]float64{25.0 / 216, 0, 1408.0 / 2565, 2197.0 / 4104, -1.0 / 5, 0}
	// 5th-order solution weights.
	rkfC5 = [6]float64{16.0 / 135, 0, 6656.0 / 12825, 28561.0 / 56430, -9.0 / 50, 2.0 / 55}
)

// Result is the outcome of an adaptive integration.
type Result struct {
	// T is the time reached (t1, or earlier if Stop triggered).
	T float64
	// Y is the state at T.
	Y []float64
	// Steps is the number of accepted steps.
	Steps int
	// Stopped reports whether the Stop predicate ended the run.
	Stopped bool
}

// Adaptive integrates dy/dt = f(t, y) from t0 to t1 with the adaptive
// Runge–Kutta–Fehlberg 4(5) method.
func Adaptive(f Func, y0 []float64, t0, t1 float64, opts AdaptiveOptions) (Result, error) {
	if f == nil {
		return Result{}, fmt.Errorf("ode: nil vector field")
	}
	if len(y0) == 0 {
		return Result{}, fmt.Errorf("ode: empty initial state")
	}
	if t1 < t0 {
		return Result{}, fmt.Errorf("ode: t1=%v before t0=%v", t1, t0)
	}
	absTol := opts.AbsTol
	if absTol <= 0 {
		absTol = 1e-9
	}
	relTol := opts.RelTol
	if relTol <= 0 {
		relTol = 1e-6
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	h := opts.InitialStep
	if h <= 0 {
		h = (t1 - t0) / 100
	}
	if h <= 0 {
		// Degenerate zero-length interval.
		y := make([]float64, len(y0))
		copy(y, y0)
		return Result{T: t0, Y: y}, nil
	}

	dim := len(y0)
	y := make([]float64, dim)
	copy(y, y0)
	var k [6][]float64
	for i := range k {
		k[i] = make([]float64, dim)
	}
	tmp := make([]float64, dim)
	y4 := make([]float64, dim)
	y5 := make([]float64, dim)

	res := Result{T: t0}
	t := t0
	for t < t1 {
		if res.Steps >= maxSteps {
			return res, fmt.Errorf("ode: exceeded %d steps at t=%v", maxSteps, t)
		}
		if t+h > t1 {
			h = t1 - t
		}
		// Compute the six stages.
		for stage := 0; stage < 6; stage++ {
			for i := range tmp {
				tmp[i] = y[i]
				for j := 0; j < stage; j++ {
					tmp[i] += h * rkfB[stage][j] * k[j][i]
				}
			}
			f(t+rkfA[stage]*h, tmp, k[stage])
		}
		// Fourth- and fifth-order estimates and the error norm. A
		// non-finite estimate (possible when the trial step is far too
		// large for a stiff problem) counts as an arbitrarily large
		// error so the step is rejected and retried smaller.
		var errNorm float64
		for i := range y {
			var s4, s5 float64
			for stage := 0; stage < 6; stage++ {
				s4 += rkfC4[stage] * k[stage][i]
				s5 += rkfC5[stage] * k[stage][i]
			}
			y4[i] = y[i] + h*s4
			y5[i] = y[i] + h*s5
			scale := absTol + relTol*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := math.Abs(y5[i]-y4[i]) / scale
			if math.IsNaN(e) || math.IsInf(e, 0) {
				errNorm = math.Inf(1)
				break
			}
			if e > errNorm {
				errNorm = e
			}
		}
		if errNorm <= 1 {
			// Accept the (higher-order) step.
			t += h
			copy(y, y5)
			res.Steps++
			res.T = t
			if opts.Stop != nil && opts.Stop(t, y) {
				res.Stopped = true
				break
			}
		}
		// Step-size update with the usual safety factor and clamps.
		factor := 0.9 * math.Pow(1/math.Max(errNorm, 1e-10), 0.2)
		factor = math.Min(4, math.Max(0.1, factor))
		h *= factor
		if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return res, fmt.Errorf("ode: step size degenerated to %v at t=%v", h, t)
		}
	}
	res.Y = y
	return res, nil
}
