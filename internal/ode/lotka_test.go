package ode

import (
	"math"
	"testing"
)

func TestLotkaVolterraValidate(t *testing.T) {
	if err := (LotkaVolterra{R: 1, AlphaPrime: -1}).Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	if err := (LotkaVolterra{R: -1, AlphaPrime: 1, GammaPrime: 1}).Validate(); err != nil {
		t.Errorf("negative r rejected: %v", err)
	}
}

func TestLotkaVolterraFieldValues(t *testing.T) {
	l := LotkaVolterra{R: 2, AlphaPrime: 0.5, GammaPrime: 0.25}
	dydt := make([]float64, 2)
	l.Field()(0, []float64{4, 2}, dydt)
	// dx0 = 4·(2 − 0.5·2 − 0.25·4) = 4·0 = 0
	// dx1 = 2·(2 − 0.5·4 − 0.25·2) = 2·(−0.5) = −1
	if math.Abs(dydt[0]) > 1e-12 || math.Abs(dydt[1]+1) > 1e-12 {
		t.Errorf("field = %v, want [0 -1]", dydt)
	}
}

func TestDeterministicWinnerMajorityAlwaysWins(t *testing.T) {
	// With α′ > γ′ the species with higher initial density always wins
	// under deterministic dynamics (§2.1), even for tiny initial gaps.
	l := LotkaVolterra{R: 1, AlphaPrime: 1, GammaPrime: 0.1}
	cases := [][2]float64{
		{1.01, 1},
		{1.001, 1},
		{5, 4.999},
	}
	for _, c := range cases {
		res, err := l.DeterministicWinner(c[0], c[1], 1e-6, 1000)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if c[1] > c[0] {
			want = 1
		}
		if res.Winner != want {
			t.Errorf("densities %v: winner = %d, want %d (final %v)", c, res.Winner, want, res.Final)
		}
	}
}

func TestDeterministicWinnerReversedOrientation(t *testing.T) {
	l := LotkaVolterra{R: 1, AlphaPrime: 1, GammaPrime: 0.1}
	res, err := l.DeterministicWinner(1, 1.01, 1e-6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 1 {
		t.Errorf("winner = %d, want 1", res.Winner)
	}
}

func TestCoexistenceWhenIntraspecificDominates(t *testing.T) {
	// γ′ > α′ gives a stable interior equilibrium: neither species dies
	// out, so no winner emerges.
	l := LotkaVolterra{R: 1, AlphaPrime: 0.1, GammaPrime: 1}
	res, err := l.DeterministicWinner(1.2, 1, 1e-6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != -1 {
		t.Errorf("winner = %d, want coexistence (-1)", res.Winner)
	}
	// Both densities should approach the symmetric equilibrium
	// x* = r/(α′+γ′).
	eq := 1.0 / 1.1
	if math.Abs(res.Final[0]-eq) > 0.05 || math.Abs(res.Final[1]-eq) > 0.05 {
		t.Errorf("final densities %v, want both near %v", res.Final, eq)
	}
}

func TestDeterministicWinnerValidation(t *testing.T) {
	l := LotkaVolterra{R: 1, AlphaPrime: 1, GammaPrime: 0.1}
	if _, err := l.DeterministicWinner(-1, 1, 1e-6, 10); err == nil {
		t.Error("negative density accepted")
	}
	if _, err := l.DeterministicWinner(1, 1, 2, 10); err == nil {
		t.Error("threshold >= 1 accepted")
	}
	if _, err := l.DeterministicWinner(1, 1, 1e-6, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := LotkaVolterra{R: 1, AlphaPrime: -1}
	if _, err := bad.DeterministicWinner(1, 1, 1e-6, 10); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestDeterministicWinnerStiffStartLongHorizon(t *testing.T) {
	// Regression test: with large initial densities and a huge time
	// horizon, the default initial step overflows the first trial step;
	// the integrator must reject it (not accept a NaN state) and still
	// decide the winner. r = 0 matches the neutral β = δ chains used in
	// the experiments.
	sys := LotkaVolterra{R: 0, AlphaPrime: 2, GammaPrime: 0}
	res, err := sys.DeterministicWinner(528, 496, 1e-9, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 0 {
		t.Errorf("winner = %d (final %v), want 0", res.Winner, res.Final)
	}
	if math.IsNaN(res.Final[0]) || math.IsNaN(res.Final[1]) {
		t.Errorf("NaN final state: %v", res.Final)
	}
	// The gap is conserved under symmetric SD decay, so species 0 ends
	// near the initial gap of 32.
	if math.Abs(res.Final[0]-32) > 1 {
		t.Errorf("final majority density %v, want ~32", res.Final[0])
	}
}

func TestLogisticGrowthSingleSpecies(t *testing.T) {
	// With the other species extinct, each equation reduces to logistic
	// growth with carrying capacity r/γ′.
	l := LotkaVolterra{R: 2, AlphaPrime: 1, GammaPrime: 0.5}
	res, err := Adaptive(l.Field(), []float64{0.01, 0}, 0, 50, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	capacity := l.R / l.GammaPrime
	if math.Abs(res.Y[0]-capacity) > 1e-3 {
		t.Errorf("x0(∞) = %v, want carrying capacity %v", res.Y[0], capacity)
	}
	if res.Y[1] != 0 {
		t.Errorf("x1 = %v, want 0 (extinct stays extinct)", res.Y[1])
	}
}
