package ode

import "fmt"

// LotkaVolterra is the deterministic two-species competitive Lotka–Volterra
// system of Eq. (4) of the paper (neutral case):
//
//	dx_i/dt = x_i · (r − α′·x_{1−i} − γ′·x_i)
//
// where r = β − δ is the intrinsic growth rate, α′ the interspecific and γ′
// the intraspecific competition rate.
type LotkaVolterra struct {
	// R is the intrinsic growth rate r = β − δ.
	R float64
	// AlphaPrime is the interspecific competition rate α′.
	AlphaPrime float64
	// GammaPrime is the intraspecific competition rate γ′.
	GammaPrime float64
}

// Validate checks that the competition rates are non-negative.
func (l LotkaVolterra) Validate() error {
	if l.AlphaPrime < 0 || l.GammaPrime < 0 {
		return fmt.Errorf("ode: negative competition rate in %+v", l)
	}
	return nil
}

// Field returns the vector field over the densities (x₀, x₁).
func (l LotkaVolterra) Field() Func {
	return func(_ float64, y []float64, dydt []float64) {
		x0, x1 := y[0], y[1]
		dydt[0] = x0 * (l.R - l.AlphaPrime*x1 - l.GammaPrime*x0)
		dydt[1] = x1 * (l.R - l.AlphaPrime*x0 - l.GammaPrime*x1)
	}
}

// WinnerResult describes the outcome of a deterministic winner run.
type WinnerResult struct {
	// Winner is 0 or 1 for the species whose density dominated, or −1 if
	// neither species fell below the extinction threshold within the time
	// horizon (coexistence or too-short horizon).
	Winner int
	// T is the time at which the decision was made.
	T float64
	// Final holds the densities at time T.
	Final [2]float64
}

// DeterministicWinner integrates the system from the given densities until
// one species' density falls below extinctionThreshold times the other's, or
// until maxTime. With α′ > γ′ the deterministic dynamics always drive the
// initially smaller density to extinction, which is exactly the behaviour
// §2.1 of the paper contrasts with the stochastic finite-population model.
func (l LotkaVolterra) DeterministicWinner(x0, x1, extinctionThreshold, maxTime float64) (WinnerResult, error) {
	if err := l.Validate(); err != nil {
		return WinnerResult{}, err
	}
	if x0 < 0 || x1 < 0 {
		return WinnerResult{}, fmt.Errorf("ode: negative initial densities (%v, %v)", x0, x1)
	}
	if extinctionThreshold <= 0 || extinctionThreshold >= 1 {
		return WinnerResult{}, fmt.Errorf("ode: extinction threshold %v outside (0, 1)", extinctionThreshold)
	}
	if maxTime <= 0 {
		return WinnerResult{}, fmt.Errorf("ode: non-positive time horizon %v", maxTime)
	}
	decided := func(_ float64, y []float64) bool {
		return y[0] < extinctionThreshold*y[1] || y[1] < extinctionThreshold*y[0]
	}
	res, err := Adaptive(l.Field(), []float64{x0, x1}, 0, maxTime, AdaptiveOptions{
		Stop: decided,
	})
	if err != nil {
		return WinnerResult{}, err
	}
	out := WinnerResult{Winner: -1, T: res.T, Final: [2]float64{res.Y[0], res.Y[1]}}
	switch {
	case res.Y[1] < extinctionThreshold*res.Y[0]:
		out.Winner = 0
	case res.Y[0] < extinctionThreshold*res.Y[1]:
		out.Winner = 1
	}
	return out, nil
}
