package ode

import (
	"math"
	"testing"
)

func TestRK4Validation(t *testing.T) {
	f := func(t float64, y, dydt []float64) { dydt[0] = 0 }
	if _, err := RK4(nil, []float64{1}, 0, 1, 10); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := RK4(f, []float64{1}, 0, 1, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := RK4(f, nil, 0, 1, 10); err == nil {
		t.Error("empty state accepted")
	}
	if _, err := RK4(f, []float64{1}, 1, 0, 10); err == nil {
		t.Error("reversed interval accepted")
	}
}

func TestRK4ExponentialDecay(t *testing.T) {
	// y' = −2y, y(0) = 3 → y(t) = 3·e^{−2t}.
	f := func(_ float64, y, dydt []float64) { dydt[0] = -2 * y[0] }
	got, err := RK4(f, []float64{3}, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Exp(-2)
	if math.Abs(got[0]-want) > 1e-7 {
		t.Errorf("y(1) = %v, want %v", got[0], want)
	}
}

func TestRK4DoesNotModifyInput(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	y0 := []float64{5}
	if _, err := RK4(f, y0, 0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if y0[0] != 5 {
		t.Errorf("initial state modified: %v", y0)
	}
}

func TestRK4HarmonicOscillatorEnergy(t *testing.T) {
	// y'' = −y as a system; energy (y² + v²)/2 is conserved.
	f := func(_ float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	got, err := RK4(f, []float64{1, 0}, 0, 2*math.Pi, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// One full period returns to the start.
	if math.Abs(got[0]-1) > 1e-8 || math.Abs(got[1]) > 1e-8 {
		t.Errorf("after one period: (%v, %v), want (1, 0)", got[0], got[1])
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	// Halving the step size should reduce the error by roughly 2⁴.
	f := func(_ float64, y, dydt []float64) { dydt[0] = y[0] }
	exact := math.E
	errAt := func(steps int) float64 {
		got, err := RK4(f, []float64{1}, 0, 1, steps)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(got[0] - exact)
	}
	e1 := errAt(10)
	e2 := errAt(20)
	ratio := e1 / e2
	if ratio < 10 || ratio > 25 {
		t.Errorf("error ratio = %v, want ~16 for 4th order", ratio)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 0 }
	if _, err := Adaptive(nil, []float64{1}, 0, 1, AdaptiveOptions{}); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := Adaptive(f, nil, 0, 1, AdaptiveOptions{}); err == nil {
		t.Error("empty state accepted")
	}
	if _, err := Adaptive(f, []float64{1}, 1, 0, AdaptiveOptions{}); err == nil {
		t.Error("reversed interval accepted")
	}
}

func TestAdaptiveExponential(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = y[0] }
	res, err := Adaptive(f, []float64{1}, 0, 5, AdaptiveOptions{AbsTol: 1e-10, RelTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(5)
	if math.Abs(res.Y[0]-want)/want > 1e-7 {
		t.Errorf("y(5) = %v, want %v", res.Y[0], want)
	}
	if res.T != 5 {
		t.Errorf("T = %v, want 5", res.T)
	}
}

func TestAdaptiveLogisticClosedForm(t *testing.T) {
	// y' = y(1−y), y(0)=0.1 → y(t) = 1/(1 + 9e^{−t}).
	f := func(_ float64, y, dydt []float64) { dydt[0] = y[0] * (1 - y[0]) }
	res, err := Adaptive(f, []float64{0.1}, 0, 4, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 + 9*math.Exp(-4))
	if math.Abs(res.Y[0]-want) > 1e-5 {
		t.Errorf("y(4) = %v, want %v", res.Y[0], want)
	}
}

func TestAdaptiveStopPredicate(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	res, err := Adaptive(f, []float64{0}, 0, 100, AdaptiveOptions{
		Stop: func(_ float64, y []float64) bool { return y[0] >= 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("stop predicate did not trigger")
	}
	if res.T >= 100 || res.Y[0] < 1 {
		t.Errorf("stopped at t=%v y=%v", res.T, res.Y[0])
	}
}

func TestAdaptiveZeroLengthInterval(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = 1 }
	res, err := Adaptive(f, []float64{7}, 2, 2, AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y[0] != 7 || res.T != 2 {
		t.Errorf("result = %+v, want unchanged state", res)
	}
}

func TestAdaptiveUsesFewStepsOnSmoothProblems(t *testing.T) {
	f := func(_ float64, y, dydt []float64) { dydt[0] = -y[0] }
	res, err := Adaptive(f, []float64{1}, 0, 10, AdaptiveOptions{AbsTol: 1e-6, RelTol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 300 {
		t.Errorf("adaptive integrator used %d steps on a smooth decay", res.Steps)
	}
}
