package coupling

import (
	"testing"
	"testing/quick"

	"lvmajority/internal/bd"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func domFor(t *testing.T, p lv.Params) *bd.Chain {
	t.Helper()
	dom, err := bd.Dominating(bd.DominatingParams{
		Beta: p.Beta, Delta: p.Delta,
		Alpha0: p.Alpha[0], Alpha1: p.Alpha[1],
	})
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestNewValidation(t *testing.T) {
	p := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	dom := domFor(t, p)
	src := rng.New(1)
	if _, err := New(p, lv.State{X0: 5, X1: 3}, nil, 3, src); err == nil {
		t.Error("nil dominating chain accepted")
	}
	if _, err := New(p, lv.State{X0: 5, X1: 3}, dom, 3, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(p, lv.State{X0: 5, X1: 3}, dom, 2, src); err == nil {
		t.Error("min S0 > N0 accepted")
	}
	if _, err := New(p, lv.State{X0: -1, X1: 3}, dom, 3, src); err == nil {
		t.Error("negative state accepted")
	}
	if _, err := New(lv.Params{Beta: -1, Competition: lv.SelfDestructive}, lv.State{X0: 1, X1: 1}, dom, 1, src); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestLemma10InvariantsSD(t *testing.T) {
	testLemma10Invariants(t, lv.SelfDestructive, 101)
}

func TestLemma10InvariantsNSD(t *testing.T) {
	testLemma10Invariants(t, lv.NonSelfDestructive, 103)
}

// testLemma10Invariants runs the coupled chain and asserts min Ŝ ≤ N̂ and
// J ≤ B at every step (Lemma 10), across many random initial states.
func testLemma10Invariants(t *testing.T, comp lv.Competition, seed uint64) {
	t.Helper()
	p := lv.Neutral(1, 1, 1, 0, comp)
	dom := domFor(t, p)
	src := rng.New(seed)
	for trial := 0; trial < 50; trial++ {
		b := 5 + src.Intn(30)
		a := b + src.Intn(20)
		initial := lv.State{X0: a, X1: b}
		c, err := New(p, initial, dom, initial.Min(), src)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 3000; step++ {
			if err := c.Step(); err != nil {
				t.Fatal(err)
			}
			if err := c.InvariantError(); err != nil {
				t.Fatalf("trial %d from %+v: %v", trial, initial, err)
			}
			if c.NState() == 0 && c.SState().Min() == 0 {
				break
			}
		}
	}
}

func TestLemma10InvariantsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, bRaw, gapRaw uint8, sd bool) bool {
		comp := lv.SelfDestructive
		if !sd {
			comp = lv.NonSelfDestructive
		}
		p := lv.Neutral(0.5, 1.5, 2, 0, comp)
		dom, err := bd.Dominating(bd.DominatingParams{
			Beta: p.Beta, Delta: p.Delta, Alpha0: p.Alpha[0], Alpha1: p.Alpha[1],
		})
		if err != nil {
			return false
		}
		b := int(bRaw%20) + 1
		initial := lv.State{X0: b + int(gapRaw%20), X1: b}
		c, err := New(p, initial, dom, b, rng.New(seed))
		if err != nil {
			return false
		}
		for step := 0; step < 1000; step++ {
			if err := c.Step(); err != nil {
				return false
			}
			if err := c.InvariantError(); err != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestMarginalOfNMatchesDominatingChain(t *testing.T) {
	// Rule (1) must leave N̂ distributed exactly as the dominating chain:
	// compare extinction-time distributions of N̂ (inside the coupling)
	// and of the plain chain via a KS distance.
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	dom := domFor(t, p)
	const n0 = 20
	const trials = 2500

	coupledTimes := make([]float64, 0, trials)
	src := rng.New(107)
	for i := 0; i < trials; i++ {
		c, err := New(p, lv.State{X0: n0 + 5, X1: n0}, dom, n0, src)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for c.NState() > 0 {
			if err := c.Step(); err != nil {
				t.Fatal(err)
			}
			steps++
			if steps > 1_000_000 {
				t.Fatal("N̂ did not go extinct")
			}
		}
		coupledTimes = append(coupledTimes, float64(steps))
	}

	plainTimes := make([]float64, 0, trials)
	src2 := rng.New(109)
	for i := 0; i < trials; i++ {
		res, err := dom.RunToExtinction(n0, src2, 0)
		if err != nil {
			t.Fatal(err)
		}
		plainTimes = append(plainTimes, float64(res.Steps))
	}

	d, err := stats.KSDistance(stats.NewECDF(coupledTimes), stats.NewECDF(plainTimes))
	if err != nil {
		t.Fatal(err)
	}
	// Same distribution: KS distance should be small at this sample size.
	if d > 0.06 {
		t.Errorf("KS distance between coupled and plain N̂ extinction times = %v", d)
	}
}

func TestLemma9DominationEmpirical(t *testing.T) {
	// Lemma 9: T(S) ⪯ E(N) and J(S) ⪯ B(N). Check via independent
	// simulations and the ECDF domination-violation statistic.
	if testing.Short() {
		t.Skip("statistical test")
	}
	p := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	dom := domFor(t, p)
	const trials = 3000
	initial := lv.State{X0: 30, X1: 20}

	tS := make([]float64, 0, trials)
	jS := make([]float64, 0, trials)
	src := rng.New(113)
	for i := 0; i < trials; i++ {
		out, err := lv.Run(p, initial, src, lv.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Consensus {
			t.Fatal("no consensus")
		}
		tS = append(tS, float64(out.Steps))
		jS = append(jS, float64(out.BadNonCompetitive))
	}

	eN := make([]float64, 0, trials)
	bN := make([]float64, 0, trials)
	src2 := rng.New(127)
	for i := 0; i < trials; i++ {
		res, err := dom.RunToExtinction(initial.Min(), src2, 0)
		if err != nil {
			t.Fatal(err)
		}
		eN = append(eN, float64(res.Steps))
		bN = append(bN, float64(res.Births))
	}

	// Domination X ⪯ Y shows up as violation(X, Y) ≲ sampling error.
	vT, err := stats.DominationViolation(stats.NewECDF(tS), stats.NewECDF(eN))
	if err != nil {
		t.Fatal(err)
	}
	if vT > 0.05 {
		t.Errorf("T(S) ⪯ E(N) violated by %v", vT)
	}
	vJ, err := stats.DominationViolation(stats.NewECDF(jS), stats.NewECDF(bN))
	if err != nil {
		t.Fatal(err)
	}
	if vJ > 0.05 {
		t.Errorf("J(S) ⪯ B(N) violated by %v", vJ)
	}
}

func TestMeetingsCounted(t *testing.T) {
	p := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	dom := domFor(t, p)
	initial := lv.State{X0: 8, X1: 5}
	c, err := New(p, initial, dom, initial.Min(), rng.New(131))
	if err != nil {
		t.Fatal(err)
	}
	if c.Meetings() != 1 {
		t.Errorf("initial meetings = %d, want 1 (τ(1) = 0)", c.Meetings())
	}
	for i := 0; i < 500; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Steps() != 500 {
		t.Errorf("steps = %d, want 500", c.Steps())
	}
	if c.Meetings() < 1 {
		t.Error("meetings vanished")
	}
}
