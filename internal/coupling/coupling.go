// Package coupling implements the asynchronous pseudo-coupling of Section
// 5.1 of the paper: a joint Markov chain (Ŝ, N̂) over a two-species
// Lotka–Volterra chain Ŝ and a single-species birth–death chain N̂, driven
// by a shared uniform variable per step. The construction is not a coupling
// in the strict sense — Ŝ only moves at steps where min Ŝ equals N̂ — but it
// preserves the marginal of N̂ and reproduces the marginal of S at the
// stopping times τ(k) (Lemma 11), and it satisfies the pathwise invariants
// of Lemma 10:
//
//	min Ŝ_t ≤ N̂_t   and   J_t(Ŝ) ≤ B_t(N̂)   for all t,
//
// whenever min Ŝ₀ = N̂₀. These invariants are what the test suite checks on
// randomized executions.
package coupling

import (
	"fmt"

	"lvmajority/internal/bd"
	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

// eventClass partitions the LV reaction channels in a given state, following
// the definitions above Lemma 9.
type eventClass int

const (
	// classBadNonCompetitive: an individual (birth/death) reaction that
	// decreases the gap between the current maximum and minimum species
	// while the minimum is positive.
	classBadNonCompetitive eventClass = iota
	// classGoodCompetitive: a competitive reaction under which the
	// current minimum count decreases.
	classGoodCompetitive
	// classOther: everything else.
	classOther
)

// classify assigns the LV channel k in state s to its event class.
func classify(p lv.Params, s lv.State, k lv.EventKind) eventClass {
	next := lv.ApplyEvent(p, s, k)
	if k.IsIndividual() {
		if s.Min() > 0 && next.AbsGap() == s.AbsGap()-1 {
			return classBadNonCompetitive
		}
		return classOther
	}
	if next.Min() < s.Min() {
		return classGoodCompetitive
	}
	return classOther
}

// Coupled is the joint chain (Ŝ, N̂).
type Coupled struct {
	params lv.Params
	dom    *bd.Chain
	src    *rng.Source

	sState lv.State
	nState int

	steps int
	// badEvents is J_t(Ŝ): bad non-competitive events fired in Ŝ.
	badEvents int
	// births is B_t(N̂): birth events fired in N̂.
	births int
	// meetings counts the steps t with min Ŝ_t = N̂_t (the stopping times
	// τ(k) are the times of these meetings).
	meetings int
}

// New creates the coupled chain. The paper's construction requires
// min Ŝ₀ ≤ N̂₀ (with equality for the marginal-recovery property of Lemma
// 11); New enforces min Ŝ₀ ≤ N̂₀ and records the rest.
func New(params lv.Params, initial lv.State, domChain *bd.Chain, n0 int, src *rng.Source) (*Coupled, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if domChain == nil {
		return nil, fmt.Errorf("coupling: nil dominating chain")
	}
	if src == nil {
		return nil, fmt.Errorf("coupling: nil random source")
	}
	if initial.Min() > n0 {
		return nil, fmt.Errorf("coupling: min S0 = %d exceeds N0 = %d", initial.Min(), n0)
	}
	c := &Coupled{params: params, dom: domChain, src: src, sState: initial, nState: n0}
	if initial.Min() == n0 {
		c.meetings = 1
	}
	return c, nil
}

// SState returns the current Ŝ configuration.
func (c *Coupled) SState() lv.State { return c.sState }

// NState returns the current N̂ state.
func (c *Coupled) NState() int { return c.nState }

// BadEvents returns J_t(Ŝ).
func (c *Coupled) BadEvents() int { return c.badEvents }

// Births returns B_t(N̂).
func (c *Coupled) Births() int { return c.births }

// Meetings returns the number of steps so far at which min Ŝ = N̂ held
// before the step was taken (the count of realized stopping times τ(k)).
func (c *Coupled) Meetings() int { return c.meetings }

// Steps returns the number of joint steps taken.
func (c *Coupled) Steps() int { return c.steps }

// Step advances the joint chain by one step using a single shared uniform
// variable, per rules (1a–c) and (2a–c) of §5.1.
func (c *Coupled) Step() error {
	xi := c.src.Float64()
	m := c.nState

	// Rule (1): update N̂.
	p, q := c.dom.Birth(m), c.dom.Death(m)
	if p < 0 || q < 0 || p+q > 1+1e-12 {
		return fmt.Errorf("coupling: invalid dominating probabilities p(%d)=%v q(%d)=%v", m, p, m, q)
	}
	met := c.sState.Min() == c.nState

	switch {
	case xi < p:
		c.nState = m + 1
		c.births++
	case xi >= 1-q:
		c.nState = m - 1
	}

	// Rule (2): update Ŝ only when the chains met before this step.
	if met {
		if err := c.stepS(xi); err != nil {
			return err
		}
	}
	c.steps++
	if c.sState.Min() == c.nState {
		c.meetings++
	}
	return nil
}

// stepS performs the conditional update of Ŝ given the shared uniform xi.
func (c *Coupled) stepS(xi float64) error {
	props, total := lv.PropensitiesFor(c.params, c.sState)
	if total <= 0 {
		// Ŝ is absorbed; it simply stays put.
		return nil
	}

	// Partition the channel propensity mass into the three classes.
	var classSum [3]float64
	for k, v := range props {
		if v <= 0 {
			continue
		}
		classSum[classify(c.params, c.sState, lv.EventKind(k))] += v
	}
	pBad := classSum[classBadNonCompetitive] / total
	qGood := classSum[classGoodCompetitive] / total

	var chosen eventClass
	switch {
	case xi < pBad:
		chosen = classBadNonCompetitive
	case xi >= 1-qGood:
		chosen = classGoodCompetitive
	default:
		chosen = classOther
	}
	if classSum[chosen] <= 0 {
		// The conditional distribution is empty only if its window has
		// zero width, in which case xi cannot land there; floating
		// point can still put xi exactly on a boundary, so treat it as
		// "other".
		chosen = classOther
		if classSum[chosen] <= 0 {
			return nil
		}
	}

	// Sample a channel within the chosen class proportionally to
	// propensity.
	u := c.src.Float64() * classSum[chosen]
	acc := 0.0
	for k, v := range props {
		kind := lv.EventKind(k)
		if v <= 0 || classify(c.params, c.sState, kind) != chosen {
			continue
		}
		acc += v
		if u < acc || acc >= classSum[chosen] {
			if chosen == classBadNonCompetitive {
				c.badEvents++
			}
			c.sState = lv.ApplyEvent(c.params, c.sState, kind)
			return nil
		}
	}
	return fmt.Errorf("coupling: failed to sample within class %d", chosen)
}

// InvariantError checks the Lemma 10 invariants in the current state and
// returns a descriptive error if either is violated. It is intended for
// property tests and assertions; correct executions started with
// min Ŝ₀ = N̂₀ never trip it.
func (c *Coupled) InvariantError() error {
	if c.sState.Min() > c.nState {
		return fmt.Errorf("coupling: min S = %d exceeds N = %d after %d steps", c.sState.Min(), c.nState, c.steps)
	}
	if c.badEvents > c.births {
		return fmt.Errorf("coupling: J = %d exceeds B = %d after %d steps", c.badEvents, c.births, c.steps)
	}
	return nil
}
