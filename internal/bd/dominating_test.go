package bd

import (
	"math"
	"testing"
	"testing/quick"

	"lvmajority/internal/rng"
)

func TestDominatingValidation(t *testing.T) {
	cases := []DominatingParams{
		{Beta: 1, Delta: 1, Alpha0: 0, Alpha1: 1},  // alpha_min = 0
		{Beta: -1, Delta: 1, Alpha0: 1, Alpha1: 1}, // negative beta
		{Beta: 1, Delta: 1, Alpha0: 1, Alpha1: -2}, // negative alpha
	}
	for _, p := range cases {
		if _, err := Dominating(p); err == nil {
			t.Errorf("Dominating(%+v) did not error", p)
		}
	}
}

func TestDominatingFormulas(t *testing.T) {
	p := DominatingParams{Beta: 2, Delta: 1, Alpha0: 0.5, Alpha1: 1.5}
	dom, err := Dominating(p)
	if err != nil {
		t.Fatal(err)
	}
	theta := 3.0
	alpha := 2.0
	alphaMin := 0.5
	for _, m := range []int{1, 2, 10, 1000} {
		wantP := theta / (alpha*float64(m) + theta)
		if got := dom.Birth(m); math.Abs(got-wantP) > 1e-12 {
			t.Errorf("p(%d) = %v, want %v", m, got, wantP)
		}
		wantQ := alphaMin / (alpha + 2*theta)
		if got := dom.Death(m); math.Abs(got-wantQ) > 1e-12 {
			t.Errorf("q(%d) = %v, want %v", m, got, wantQ)
		}
	}
	if dom.Birth(0) != 0 || dom.Death(0) != 0 {
		t.Error("state 0 is not absorbing")
	}
}

func TestDominatingIsNice(t *testing.T) {
	p := DominatingParams{Beta: 1, Delta: 0.5, Alpha0: 2, Alpha1: 1}
	dom, err := Dominating(p)
	if err != nil {
		t.Fatal(err)
	}
	c, d, err := DominatingNiceConstants(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.VerifyNice(c, d, 10000); err != nil {
		t.Errorf("dominating chain not nice with its own constants: %v", err)
	}
}

func TestDominatingProbabilitiesValidProperty(t *testing.T) {
	// For arbitrary positive rates, p(m) + q(m) <= 1 must hold everywhere
	// (the paper argues p(1) + q <= 1; we check a range of states).
	err := quick.Check(func(b, d, a0, a1 uint8, mRaw uint16) bool {
		p := DominatingParams{
			Beta:   float64(b)/16 + 0.01,
			Delta:  float64(d) / 16,
			Alpha0: float64(a0)/16 + 0.01,
			Alpha1: float64(a1)/16 + 0.01,
		}
		dom, err := Dominating(p)
		if err != nil {
			return false
		}
		m := int(mRaw)%1000 + 1
		pm, qm := dom.Birth(m), dom.Death(m)
		return pm >= 0 && qm > 0 && pm+qm <= 1+1e-12
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDominatingPureDeathWhenThetaZero(t *testing.T) {
	// β = δ = 0 means no individual events, so the dominating chain is
	// pure death and extinction takes exactly n steps.
	dom, err := Dominating(DominatingParams{Alpha0: 1, Alpha1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dom.Birth(5) != 0 {
		t.Errorf("p(5) = %v, want 0 for theta=0", dom.Birth(5))
	}
	res, err := dom.RunToExtinction(10, rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Extinct || res.Births != 0 {
		t.Errorf("result = %+v, want extinction with no births", res)
	}
}

func TestDominatingNiceConstantsThetaZero(t *testing.T) {
	c, d, err := DominatingNiceConstants(DominatingParams{Alpha0: 1, Alpha1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || d <= 0 {
		t.Errorf("constants (%v, %v) not positive", c, d)
	}
}
