// Package bd implements the discrete-time birth–death chains of Section 4 of
// the paper: chains on ℕ defined by a birth probability p(n), a death
// probability q(n), and holding probability 1−p(n)−q(n), with 0 the unique
// absorbing state. It provides
//
//   - simulation of the extinction time E(n) and the birth count B(n),
//     the two quantities the paper's chain-domination lemma transfers to the
//     two-species Lotka–Volterra process;
//   - the "nice chain" predicate (p(n) ≤ C/n and q(n) ≥ D, Section 4);
//   - the dominating chain for competitive LV systems (Section 5.2); and
//   - exact expected absorption times and birth counts via first-step
//     recurrences, used as analytic oracles for Lemmas 5 and 6.
package bd

import (
	"fmt"

	"lvmajority/internal/rng"
)

// Chain is a discrete-time birth–death chain on ℕ. Birth and Death give the
// transition probabilities p(n) and q(n); the chain holds with the remaining
// probability. Both functions must return 0 at n = 0 (making 0 absorbing)
// and values with p(n) + q(n) <= 1 elsewhere; Step validates this at every
// state it touches so misconfigured chains fail loudly rather than silently
// skewing statistics.
type Chain struct {
	// Birth returns the probability p(n) of moving n → n+1.
	Birth func(n int) float64
	// Death returns the probability q(n) of moving n → n−1.
	Death func(n int) float64
}

// New returns a Chain with the given birth and death probability functions.
// It returns an error if either function is nil.
func New(birth, death func(int) float64) (*Chain, error) {
	if birth == nil || death == nil {
		return nil, fmt.Errorf("bd: nil probability function")
	}
	return &Chain{Birth: birth, Death: death}, nil
}

// StepKind classifies the outcome of a single chain step.
type StepKind int

// The possible step outcomes.
const (
	StepHold StepKind = iota + 1
	StepBirth
	StepDeath
)

// String returns the name of the step kind.
func (k StepKind) String() string {
	switch k {
	case StepHold:
		return "hold"
	case StepBirth:
		return "birth"
	case StepDeath:
		return "death"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// probs fetches and validates (p, q) at state n.
func (c *Chain) probs(n int) (p, q float64, err error) {
	if n < 0 {
		return 0, 0, fmt.Errorf("bd: negative state %d", n)
	}
	p, q = c.Birth(n), c.Death(n)
	if p < 0 || q < 0 || p+q > 1+1e-12 {
		return 0, 0, fmt.Errorf("bd: invalid probabilities p(%d)=%v, q(%d)=%v", n, p, n, q)
	}
	if n == 0 && (p != 0 || q != 0) {
		return 0, 0, fmt.Errorf("bd: state 0 must be absorbing, got p=%v q=%v", p, q)
	}
	return p, q, nil
}

// Step samples one transition from state n and returns the new state and the
// step kind.
func (c *Chain) Step(n int, src *rng.Source) (int, StepKind, error) {
	p, q, err := c.probs(n)
	if err != nil {
		return 0, 0, err
	}
	u := src.Float64()
	switch {
	case u < p:
		return n + 1, StepBirth, nil
	case u >= 1-q:
		return n - 1, StepDeath, nil
	default:
		return n, StepHold, nil
	}
}

// Result summarizes a run of the chain until extinction.
type Result struct {
	// Extinct reports whether the chain reached state 0 (as opposed to
	// hitting the step budget).
	Extinct bool
	// Steps is the number of steps taken, i.e. the extinction time E(n)
	// when Extinct is true.
	Steps int
	// Births is the number of birth events B(n) that occurred.
	Births int
	// Deaths is the number of death events.
	Deaths int
	// Holds is the number of holding steps.
	Holds int
	// MaxState is the largest state visited.
	MaxState int
}

// RunToExtinction simulates the chain from state n until it is absorbed at 0
// or maxSteps steps have elapsed (maxSteps <= 0 means no limit, which is safe
// only for chains that go extinct almost surely — nice chains do).
func (c *Chain) RunToExtinction(n int, src *rng.Source, maxSteps int) (Result, error) {
	if n < 0 {
		return Result{}, fmt.Errorf("bd: negative start state %d", n)
	}
	res := Result{MaxState: n}
	state := n
	for state > 0 {
		if maxSteps > 0 && res.Steps >= maxSteps {
			return res, nil
		}
		next, kind, err := c.Step(state, src)
		if err != nil {
			return res, err
		}
		res.Steps++
		switch kind {
		case StepBirth:
			res.Births++
		case StepDeath:
			res.Deaths++
		case StepHold:
			res.Holds++
		}
		state = next
		if state > res.MaxState {
			res.MaxState = state
		}
	}
	res.Extinct = true
	return res, nil
}

// VerifyNice checks the paper's nice-chain conditions p(n) <= C/n and
// q(n) >= D for all 1 <= n <= upTo, plus absorption at 0. It returns a
// descriptive error for the first violated state.
func (c *Chain) VerifyNice(cConst, dConst float64, upTo int) error {
	if cConst <= 0 || dConst <= 0 {
		return fmt.Errorf("bd: nice-chain constants must be positive, got C=%v D=%v", cConst, dConst)
	}
	if _, _, err := c.probs(0); err != nil {
		return err
	}
	for n := 1; n <= upTo; n++ {
		p, q, err := c.probs(n)
		if err != nil {
			return err
		}
		if p <= 0 || q <= 0 {
			return fmt.Errorf("bd: nice chain needs p(n), q(n) > 0 for n > 0; state %d has p=%v q=%v", n, p, q)
		}
		if p > cConst/float64(n)+1e-12 {
			return fmt.Errorf("bd: p(%d)=%v exceeds C/n=%v", n, p, cConst/float64(n))
		}
		if q < dConst-1e-12 {
			return fmt.Errorf("bd: q(%d)=%v below D=%v", n, q, dConst)
		}
	}
	return nil
}
