package bd

import (
	"math"
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// denseSolveAbsorption solves the absorption-time system directly by
// Gauss–Seidel iteration on the truncated chain, as an independent oracle
// for the difference-recurrence implementation.
func denseSolveAbsorption(t *testing.T, c *Chain, truncation int, births bool) []float64 {
	t.Helper()
	vals := make([]float64, truncation+1)
	for iter := 0; iter < 200000; iter++ {
		var maxDelta float64
		for i := 1; i <= truncation; i++ {
			p, q, err := c.probs(i)
			if err != nil {
				t.Fatal(err)
			}
			if i == truncation {
				p = 0
			}
			up := 0.0
			if i < truncation {
				up = vals[i+1]
			}
			constant := 1.0
			if births {
				constant = p
			}
			// (p+q)·v(i) = constant + p·v(i+1) + q·v(i−1)
			newVal := (constant + p*up + q*vals[i-1]) / (p + q)
			if d := math.Abs(newVal - vals[i]); d > maxDelta {
				maxDelta = d
			}
			vals[i] = newVal
		}
		if maxDelta < 1e-13 {
			break
		}
	}
	return vals
}

func TestExpectedAbsorptionTimePureDeath(t *testing.T) {
	c := pureDeath(t)
	for _, n := range []int{0, 1, 5, 50} {
		got, err := ExpectedAbsorptionTime(c, n, 100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(n)) > 1e-9 {
			t.Errorf("E[T(%d)] = %v, want %d", n, got, n)
		}
	}
}

func TestExpectedAbsorptionTimeLazyWalk(t *testing.T) {
	c := lazyWalk(t)
	got, err := ExpectedAbsorptionTime(c, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-9 {
		t.Errorf("E[T(10)] = %v, want 20", got)
	}
}

func TestExpectedAbsorptionMatchesDenseSolve(t *testing.T) {
	dom, err := Dominating(DominatingParams{Beta: 1, Delta: 1, Alpha0: 1, Alpha1: 1})
	if err != nil {
		t.Fatal(err)
	}
	const truncation = 60
	wantT := denseSolveAbsorption(t, dom, truncation, false)
	wantB := denseSolveAbsorption(t, dom, truncation, true)
	for _, n := range []int{1, 5, 17, 40, 60} {
		gotT, err := ExpectedAbsorptionTime(dom, n, truncation)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotT-wantT[n]) > 1e-6*(1+wantT[n]) {
			t.Errorf("E[T(%d)] = %v, dense solve gives %v", n, gotT, wantT[n])
		}
		gotB, err := ExpectedBirths(dom, n, truncation)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotB-wantB[n]) > 1e-6*(1+wantB[n]) {
			t.Errorf("E[B(%d)] = %v, dense solve gives %v", n, gotB, wantB[n])
		}
	}
}

func TestExpectedAbsorptionErrors(t *testing.T) {
	c := pureDeath(t)
	if _, err := ExpectedAbsorptionTime(c, 5, 0); err == nil {
		t.Error("truncation < 1 did not error")
	}
	if _, err := ExpectedAbsorptionTime(c, -1, 10); err == nil {
		t.Error("negative state did not error")
	}
	if _, err := ExpectedAbsorptionTime(c, 11, 10); err == nil {
		t.Error("state beyond truncation did not error")
	}
	birthOnly, err := New(
		func(n int) float64 {
			if n == 0 {
				return 0
			}
			return 0.5
		},
		func(n int) float64 { return 0 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedAbsorptionTime(birthOnly, 5, 10); err == nil {
		t.Error("chain with q=0 did not error")
	}
}

func TestSimulationMatchesExactDominating(t *testing.T) {
	// Monte-Carlo extinction times and birth counts of the dominating
	// chain must agree with the exact recurrences.
	params := DominatingParams{Beta: 1, Delta: 1, Alpha0: 1, Alpha1: 1}
	dom, err := Dominating(params)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	const truncation = 400
	wantT, err := ExpectedAbsorptionTime(dom, n, truncation)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := ExpectedBirths(dom, n, truncation)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(12)
	var timeAcc, birthAcc stats.Running
	const trials = 4000
	for i := 0; i < trials; i++ {
		res, err := dom.RunToExtinction(n, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Extinct {
			t.Fatal("dominating chain failed to go extinct")
		}
		timeAcc.Add(float64(res.Steps))
		birthAcc.Add(float64(res.Births))
	}
	if math.Abs(timeAcc.Mean()-wantT) > 5*timeAcc.StdErr()+0.01*wantT {
		t.Errorf("mean extinction time = %v, exact %v", timeAcc.Mean(), wantT)
	}
	if math.Abs(birthAcc.Mean()-wantB) > 5*birthAcc.StdErr()+0.02*wantB {
		t.Errorf("mean births = %v, exact %v", birthAcc.Mean(), wantB)
	}
}

func TestLemma5ExtinctionTimeLinear(t *testing.T) {
	// Lemma 5: E[E(n)] = Θ(n) for nice chains. The exact recurrence lets
	// us check linearity over a wide range without sampling noise.
	dom, err := Dominating(DominatingParams{Beta: 1, Delta: 1, Alpha0: 1, Alpha1: 1})
	if err != nil {
		t.Fatal(err)
	}
	// For this chain q = 1/6 away from small states, so E[T(n)]/n → 6
	// with an O(log n / n) correction. Θ(n) shows up as the ratio staying
	// within constant bounds and the successive changes shrinking.
	var ratios []float64
	for _, n := range []int{100, 400, 1600, 6400, 25600} {
		v, err := ExpectedAbsorptionTime(dom, n, 4*n)
		if err != nil {
			t.Fatal(err)
		}
		if v < float64(n) {
			t.Errorf("E[T(%d)] = %v below the trivial lower bound n", n, v)
		}
		ratios = append(ratios, v/float64(n))
	}
	for _, r := range ratios {
		if r < 1 || r > 20 {
			t.Fatalf("E[T(n)]/n = %v outside constant band: %v", r, ratios)
		}
	}
	for i := 2; i < len(ratios); i++ {
		prevChange := math.Abs(ratios[i-1] - ratios[i-2])
		change := math.Abs(ratios[i] - ratios[i-1])
		if change > prevChange {
			t.Errorf("E[T(n)]/n changes not shrinking: %v", ratios)
		}
	}
	if last := ratios[len(ratios)-1]; math.Abs(last-6) > 0.5 {
		t.Errorf("E[T(n)]/n = %v at the largest n, want ~6 = 1/q", last)
	}
}

func TestLemma6BirthsLogarithmic(t *testing.T) {
	// Lemma 6: E[B(n)] = O(log n). Check that E[B(n)]/H_n is bounded and
	// roughly flat as n grows.
	dom, err := Dominating(DominatingParams{Beta: 1, Delta: 1, Alpha0: 1, Alpha1: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	for _, n := range []int{64, 256, 1024, 4096} {
		v, err := ExpectedBirths(dom, n, 4*n)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, v/stats.HarmonicNumber(n))
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > 2*ratios[0]+1 {
			t.Errorf("E[B(n)]/H_n growing: %v", ratios)
		}
	}
}
