package bd

import (
	"math"
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// pureDeath is the trivial chain that always steps down.
func pureDeath(t *testing.T) *Chain {
	t.Helper()
	c, err := New(
		func(n int) float64 { return 0 },
		func(n int) float64 {
			if n == 0 {
				return 0
			}
			return 1
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// lazyWalk holds with probability 1/2 and otherwise steps down.
func lazyWalk(t *testing.T) *Chain {
	t.Helper()
	c, err := New(
		func(n int) float64 { return 0 },
		func(n int) float64 {
			if n == 0 {
				return 0
			}
			return 0.5
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, func(int) float64 { return 0 }); err == nil {
		t.Error("nil birth function did not error")
	}
	if _, err := New(func(int) float64 { return 0 }, nil); err == nil {
		t.Error("nil death function did not error")
	}
}

func TestStepInvalidProbabilities(t *testing.T) {
	bad, err := New(
		func(n int) float64 { return 0.7 },
		func(n int) float64 { return 0.7 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bad.Step(1, rng.New(1)); err == nil {
		t.Error("p+q > 1 did not error")
	}
	nonAbsorbing, err := New(
		func(n int) float64 { return 0.5 },
		func(n int) float64 { return 0 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nonAbsorbing.Step(0, rng.New(1)); err == nil {
		t.Error("non-absorbing state 0 did not error")
	}
	if _, _, err := pureDeath(t).Step(-1, rng.New(1)); err == nil {
		t.Error("negative state did not error")
	}
}

func TestStepKindString(t *testing.T) {
	cases := map[StepKind]string{
		StepHold:     "hold",
		StepBirth:    "birth",
		StepDeath:    "death",
		StepKind(42): "StepKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestPureDeathExactSteps(t *testing.T) {
	c := pureDeath(t)
	const n = 91
	res, err := c.RunToExtinction(n, rng.New(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Extinct {
		t.Fatal("pure death chain did not go extinct")
	}
	if res.Steps != n || res.Deaths != n || res.Births != 0 || res.Holds != 0 {
		t.Errorf("result = %+v, want exactly %d deaths", res, n)
	}
	if res.MaxState != n {
		t.Errorf("MaxState = %d, want %d", res.MaxState, n)
	}
}

func TestLazyWalkHoldCounting(t *testing.T) {
	c := lazyWalk(t)
	const n = 40
	const trials = 2000
	var steps stats.Running
	src := rng.New(4)
	for i := 0; i < trials; i++ {
		res, err := c.RunToExtinction(n, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Extinct || res.Deaths != n {
			t.Fatalf("unexpected result %+v", res)
		}
		if res.Steps != res.Deaths+res.Holds {
			t.Fatalf("step accounting broken: %+v", res)
		}
		steps.Add(float64(res.Steps))
	}
	// Each level takes Geometric(1/2) steps, so E[steps] = 2n.
	want := float64(2 * n)
	if math.Abs(steps.Mean()-want) > 5*steps.StdErr() {
		t.Errorf("mean steps = %v, want ~%v", steps.Mean(), want)
	}
}

func TestRunToExtinctionFromZero(t *testing.T) {
	c := pureDeath(t)
	res, err := c.RunToExtinction(0, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Extinct || res.Steps != 0 {
		t.Errorf("result from 0 = %+v, want immediate extinction", res)
	}
}

func TestRunToExtinctionNegativeStart(t *testing.T) {
	c := pureDeath(t)
	if _, err := c.RunToExtinction(-1, rng.New(1), 0); err == nil {
		t.Error("negative start did not error")
	}
}

func TestRunToExtinctionMaxSteps(t *testing.T) {
	c := lazyWalk(t)
	res, err := c.RunToExtinction(1000, rng.New(5), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Extinct {
		t.Error("chain claimed extinction despite step budget")
	}
	if res.Steps != 10 {
		t.Errorf("steps = %d, want 10", res.Steps)
	}
}

func TestVerifyNice(t *testing.T) {
	nice, err := New(
		func(n int) float64 {
			if n == 0 {
				return 0
			}
			return 0.5 / float64(n)
		},
		func(n int) float64 {
			if n == 0 {
				return 0
			}
			return 0.25
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := nice.VerifyNice(0.5, 0.25, 1000); err != nil {
		t.Errorf("nice chain failed verification: %v", err)
	}
	// Tighter constants must fail.
	if err := nice.VerifyNice(0.4, 0.25, 1000); err == nil {
		t.Error("C too small did not error")
	}
	if err := nice.VerifyNice(0.5, 0.3, 1000); err == nil {
		t.Error("D too large did not error")
	}
	if err := nice.VerifyNice(-1, 0.25, 10); err == nil {
		t.Error("negative C did not error")
	}
	// A chain with q = 0 somewhere is not nice.
	if err := pureDeath(t).VerifyNice(1, 0.5, 10); err == nil {
		t.Error("pure-death chain (p=0) passed niceness")
	}
}

func TestStepDistribution(t *testing.T) {
	c, err := New(
		func(n int) float64 {
			if n == 0 {
				return 0
			}
			return 0.2
		},
		func(n int) float64 {
			if n == 0 {
				return 0
			}
			return 0.3
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	const trials = 60000
	counts := map[StepKind]int{}
	for i := 0; i < trials; i++ {
		_, kind, err := c.Step(5, src)
		if err != nil {
			t.Fatal(err)
		}
		counts[kind]++
	}
	check := func(kind StepKind, want float64) {
		got := float64(counts[kind]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v frequency = %v, want ~%v", kind, got, want)
		}
	}
	check(StepBirth, 0.2)
	check(StepDeath, 0.3)
	check(StepHold, 0.5)
}
