package bd

import "fmt"

// The functions below solve the first-step recurrences for birth–death
// absorption quantities on a truncated state space {0, ..., truncation}. The
// truncation treats the top state as having no birth move (its birth
// probability mass becomes holding), which converges to the untruncated
// value as the truncation grows because nice chains have p(n) → 0.
//
// Derivation: for T(i) = expected steps to absorption from i,
//
//	T(i) = 1 + p(i)·T(i+1) + q(i)·T(i−1) + (1−p(i)−q(i))·T(i)
//
// so with d(i) = T(i) − T(i−1):
//
//	d(i) = (1 + p(i)·d(i+1)) / q(i),  d(M) = 1/q(M),
//
// solved backwards from the truncation M; then T(n) = Σ_{i=1..n} d(i).
// The analogous recurrence for expected births b(i) uses
// e(i) = p(i)·(1 + e(i+1)) / q(i) with e(M) = 0.

// ExpectedAbsorptionTime returns the exact expected number of steps for the
// chain to reach 0 from state n, computed on the state space truncated at
// the given ceiling. It returns an error if n < 0, truncation < n, or the
// chain has a zero death probability in (0, truncation] (absorption would
// not be guaranteed).
func ExpectedAbsorptionTime(c *Chain, n, truncation int) (float64, error) {
	d, err := differenceSolve(c, truncation, func(p float64) (float64, float64) {
		// d(i) = (1 + p·d(i+1))/q: constant term 1, coefficient p.
		return 1, p
	})
	if err != nil {
		return 0, err
	}
	return prefixSum(d, n)
}

// ExpectedBirths returns the exact expected number of birth events before
// absorption from state n, on the truncated state space.
func ExpectedBirths(c *Chain, n, truncation int) (float64, error) {
	d, err := differenceSolve(c, truncation, func(p float64) (float64, float64) {
		// e(i) = p·(1 + e(i+1))/q: constant term p, coefficient p.
		return p, p
	})
	if err != nil {
		return 0, err
	}
	return prefixSum(d, n)
}

// differenceSolve computes the difference sequence d(1..M) backwards. The
// terms callback maps p(i) to the constant term and the d(i+1) coefficient
// of the recurrence q(i)·d(i) = const + coef·d(i+1).
func differenceSolve(c *Chain, truncation int, terms func(p float64) (constant, coefficient float64)) ([]float64, error) {
	if truncation < 1 {
		return nil, fmt.Errorf("bd: truncation %d < 1", truncation)
	}
	d := make([]float64, truncation+1) // d[0] unused
	for i := truncation; i >= 1; i-- {
		p, q, err := c.probs(i)
		if err != nil {
			return nil, err
		}
		if q <= 0 {
			return nil, fmt.Errorf("bd: q(%d) = 0, absorption not guaranteed", i)
		}
		if i == truncation {
			p = 0 // truncate: no upward move from the ceiling
		}
		constant, coef := terms(p)
		next := 0.0
		if i < truncation {
			next = d[i+1]
		}
		d[i] = (constant + coef*next) / q
	}
	return d, nil
}

func prefixSum(d []float64, n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("bd: negative state %d", n)
	}
	if n >= len(d) {
		return 0, fmt.Errorf("bd: state %d beyond truncation %d", n, len(d)-1)
	}
	var total float64
	for i := 1; i <= n; i++ {
		total += d[i]
	}
	return total, nil
}
