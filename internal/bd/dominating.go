package bd

import "fmt"

// DominatingParams are the Lotka–Volterra rate parameters from which the
// dominating single-species chain of Section 5.2 is constructed.
type DominatingParams struct {
	// Beta and Delta are the individual birth and death rates; the paper
	// writes ϑ = β + δ.
	Beta, Delta float64
	// Alpha0 and Alpha1 are the interspecific competition rates of the two
	// species; the construction uses α = α₀+α₁ and α_min = min(α₀, α₁).
	Alpha0, Alpha1 float64
}

// Validate checks that the parameters admit the §5.2 construction, which
// requires α_min > 0 (some interspecific competition in both directions
// combined) and non-negative rates. The construction also needs ϑ > 0 for
// the chain to have positive birth probabilities (niceness requires
// p(n) > 0); ϑ = 0 is allowed but yields a pure-death dominating chain.
func (p DominatingParams) Validate() error {
	if p.Beta < 0 || p.Delta < 0 || p.Alpha0 < 0 || p.Alpha1 < 0 {
		return fmt.Errorf("bd: negative rate in %+v", p)
	}
	if min(p.Alpha0, p.Alpha1) <= 0 {
		return fmt.Errorf("bd: dominating chain needs alpha_min > 0, got alpha0=%v alpha1=%v", p.Alpha0, p.Alpha1)
	}
	return nil
}

// Dominating returns the nice birth–death chain of Section 5.2 that
// dominates the two-species LV chain with the given rates (and γ = 0):
//
//	p(m) = ϑ/(αm + ϑ),  q(m) = α_min/(α + 2ϑ)  for m > 0,
//	p(0) = q(0) = 0,
//
// with ϑ = β+δ, α = α₀+α₁, α_min = min(α₀, α₁). By Lemma 12 this chain
// satisfies the domination conditions (D1), (D2), so by the chain-domination
// lemma (Lemma 9) its extinction time stochastically dominates the LV
// consensus time and its birth count dominates the LV bad-event count.
func Dominating(params DominatingParams) (*Chain, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	theta := params.Beta + params.Delta
	alpha := params.Alpha0 + params.Alpha1
	alphaMin := min(params.Alpha0, params.Alpha1)
	q := alphaMin / (alpha + 2*theta)
	birth := func(m int) float64 {
		if m <= 0 {
			return 0
		}
		if theta == 0 {
			return 0
		}
		return theta / (alpha*float64(m) + theta)
	}
	death := func(m int) float64 {
		if m <= 0 {
			return 0
		}
		return q
	}
	return New(birth, death)
}

// DominatingNiceConstants returns constants (C, D) witnessing that the
// Dominating chain for params is nice: p(m) <= C/m and q(m) >= D.
func DominatingNiceConstants(params DominatingParams) (cConst, dConst float64, err error) {
	if err := params.Validate(); err != nil {
		return 0, 0, err
	}
	theta := params.Beta + params.Delta
	alpha := params.Alpha0 + params.Alpha1
	alphaMin := min(params.Alpha0, params.Alpha1)
	// p(m) = ϑ/(αm+ϑ) <= ϑ/(αm) = (ϑ/α)/m.
	cConst = theta / alpha
	if cConst == 0 {
		// Pure-death chain: any positive C works.
		cConst = 1
	}
	dConst = alphaMin / (alpha + 2*theta)
	return cConst, dConst, nil
}
