package rng

import (
	"math/bits"
	"testing"
)

// TestLaneStateMatchesScalar pins the state-passing primitives to the
// scalar methods bit for bit: seeding, the raw step, the geometric
// sampler, and the bounded draw including its Lemire rejection path.
func TestLaneStateMatchesScalar(t *testing.T) {
	for stream := uint64(0); stream < 25; stream++ {
		s0, s1, s2, s3 := StreamState4(7, stream)
		oracle := NewStream(7, stream)
		if [4]uint64{s0, s1, s2, s3} != oracle.s {
			t.Fatalf("stream %d: StreamState4 %v, NewStream %v", stream, [4]uint64{s0, s1, s2, s3}, oracle.s)
		}

		for i := 0; i < 100; i++ {
			var u uint64
			u, s0, s1, s2, s3 = Next4(s0, s1, s2, s3)
			if want := oracle.Uint64(); u != want {
				t.Fatalf("stream %d draw %d: Next4 %d, Uint64 %d", stream, i, u, want)
			}
		}

		for i := 0; i < 50; i++ {
			p := 1.0 / float64(2+i%17)
			var n int
			n, s0, s1, s2, s3 = GeometricCapped4(s0, s1, s2, s3, p, 1000)
			if want := oracle.GeometricCapped(p, 1000); n != want {
				t.Fatalf("stream %d geo %d: GeometricCapped4 %d, scalar %d", stream, i, n, want)
			}
		}

		// Bounded draws with huge bounds make Lemire's quick accept fail
		// with probability ~1/2, exercising Uint64NRetry4 many times.
		bounds := []uint64{1, 2, 3, 7, 1 << 40, ^uint64(0), ^uint64(0) - 5}
		for i := 0; i < 200; i++ {
			bound := bounds[i%len(bounds)]
			var u, v uint64
			u, s0, s1, s2, s3 = Next4(s0, s1, s2, s3)
			hi, lo := bits.Mul64(u, bound)
			if lo < bound {
				hi, s0, s1, s2, s3 = Uint64NRetry4(s0, s1, s2, s3, hi, lo, bound)
			}
			v = hi
			if want := oracle.Uint64N(bound); v != want {
				t.Fatalf("stream %d bounded %d (n=%d): got %d, scalar %d", stream, i, bound, v, want)
			}
		}

		if [4]uint64{s0, s1, s2, s3} != oracle.s {
			t.Fatalf("stream %d: final state %v diverged from scalar %v", stream, [4]uint64{s0, s1, s2, s3}, oracle.s)
		}
	}
}
