package rng

import "math"

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0; stochastic-kinetics callers always
// hold a positive total propensity when they draw a holding time.
func (src *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	// -log(U) with U in (0, 1]. Float64 returns [0, 1); use 1-U to avoid
	// log(0).
	return -math.Log(1-src.Float64()) / rate
}

// Norm returns a standard normally distributed value using the Marsaglia
// polar method with a cached spare.
func (src *Source) Norm() float64 {
	if src.hasSpare {
		src.hasSpare = false
		return src.spare
	}
	for {
		u := 2*src.Float64() - 1
		v := 2*src.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		src.spare = v * f
		src.hasSpare = true
		return u * f
	}
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials, i.e. a Geometric(p) value supported on
// {0, 1, 2, ...}. It panics if p <= 0 or p > 1.
func (src *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric called with p outside (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U) / log(1-p)).
	u := 1 - src.Float64() // in (0, 1]
	return int(math.Log(u) / math.Log(1-p))
}

// GeometricCapped returns min(G, max) for G ~ Geometric(p), the number of
// failures before the first success, without ever materializing G: for
// small p the raw inversion value can exceed the integer range, so the
// comparison happens in floating point. Callers that only need "did the
// success happen within my remaining budget" — e.g. the batch population
// kernel skipping null interactions against an interaction budget — use
// this instead of Geometric. It panics if p <= 0 or p > 1, or if max < 0.
func (src *Source) GeometricCapped(p float64, max int) int {
	if p <= 0 || p > 1 {
		panic("rng: GeometricCapped called with p outside (0, 1]")
	}
	if max < 0 {
		panic("rng: GeometricCapped called with negative cap")
	}
	if p == 1 {
		return 0
	}
	d := math.Log(1 - p)
	if d == 0 {
		// p below ~1e-17: 1−p rounds to 1. The geometric mean exceeds
		// 10^16 failures, so any realistic cap is hit with certainty (up
		// to the same rounding). Consume the uniform regardless, so the
		// stream advances identically either way.
		src.Float64()
		return max
	}
	u := 1 - src.Float64() // in (0, 1]
	g := math.Log(u) / d
	if g >= float64(max) {
		return max
	}
	return int(g)
}

// Binomial returns a Binomial(n, p) distributed value.
//
// For small n·p it uses exact inversion by multiplication (BINV). For large
// means, where exact inversion becomes numerically fragile and slow, it falls
// back to a normal approximation with continuity correction, clamped to
// [0, n]. The crossover is far above the regimes exercised by the simulators
// in this repository, which only use small-mean binomials.
func (src *Source) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial called with negative n")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit symmetry so the inversion loop runs over the smaller tail.
	if p > 0.5 {
		return n - src.Binomial(n, 1-p)
	}
	mean := float64(n) * p
	if mean <= 30 {
		return src.binomialInversion(n, p)
	}
	// Normal approximation with continuity correction.
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Floor(mean + sd*src.Norm() + 0.5))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// binomialInversion implements the BINV algorithm: walk the binomial PMF from
// k = 0 upward, subtracting probabilities from a uniform draw.
func (src *Source) binomialInversion(n int, p float64) int {
	q := 1 - p
	s := p / q
	// f = P(X = 0) = q^n, computed in log space for robustness.
	f := math.Exp(float64(n) * math.Log(q))
	u := src.Float64()
	for k := 0; ; k++ {
		if u < f {
			return k
		}
		u -= f
		if k >= n {
			// Floating-point slack: the PMF sums to 1 only up to
			// rounding, so a draw very close to 1 can fall through.
			return n
		}
		f *= s * float64(n-k) / float64(k+1)
	}
}

// Poisson returns a Poisson(mean) distributed value. It panics if mean < 0.
//
// Small means use Knuth's multiplication method; large means use Hörmann's
// PTRS transformed-rejection sampler, which is exact (up to floating point)
// for mean >= 10.
func (src *Source) Poisson(mean float64) int {
	switch {
	case mean < 0:
		panic("rng: Poisson called with negative mean")
	case mean == 0:
		return 0
	case mean < 10:
		return src.poissonKnuth(mean)
	default:
		return src.poissonPTRS(mean)
	}
}

func (src *Source) poissonKnuth(mean float64) int {
	limit := math.Exp(-mean)
	prod := src.Float64()
	k := 0
	for prod > limit {
		prod *= src.Float64()
		k++
	}
	return k
}

// poissonPTRS implements W. Hörmann's "transformed rejection with squeeze"
// sampler (PTRS, 1993), valid for mean >= 10.
func (src *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)

	for {
		u := src.Float64() - 0.5
		v := src.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int(k)
		}
	}
}
