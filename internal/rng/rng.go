// Package rng provides a deterministic, splittable pseudo-random number
// generator and the samplers needed by the stochastic simulators in this
// repository.
//
// The core generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64. It is deliberately not cryptographic: the goal is fast,
// reproducible streams for Monte-Carlo simulation. Streams can be split into
// statistically independent child streams, which makes parallel Monte-Carlo
// estimation deterministic for a fixed root seed regardless of scheduling.
package rng

import "math/bits"

// Source is a xoshiro256++ pseudo-random number generator.
//
// The zero value is not a valid generator; construct one with New or Split.
// A Source is not safe for concurrent use; give each goroutine its own
// Source via Split.
type Source struct {
	s [4]uint64

	// spare holds a cached standard-normal variate produced by the polar
	// method (see Norm), which generates two at a time.
	spare    float64
	hasSpare bool
}

// splitmix64 advances the given state and returns the next splitmix64 output.
// It is the recommended seeding procedure for the xoshiro family and is also
// used to derive child stream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
//
// Distinct seeds yield streams that are, for all simulation purposes,
// statistically independent.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initializes src in place to the exact state of New(seed),
// discarding any cached normal variate. It lets long-lived consumers (e.g.
// Monte-Carlo workers) switch streams without allocating a new Source.
func (src *Source) Reseed(seed uint64) {
	state := seed
	for i := range src.s {
		src.s[i] = splitmix64(&state)
	}
	// The all-zero state is the single invalid state of xoshiro256++. The
	// splitmix64 expansion of any seed cannot produce it in practice, but
	// guard anyway so the invariant is local and obvious.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	src.spare = 0
	src.hasSpare = false
}

// Uint64 returns the next 64 uniformly distributed bits.
//
// The body is above the compiler's inlining budget, so every call pays
// call overhead; scalar simulation loops are additionally latency-bound on
// the serial state recurrence. The lane helpers in lanes.go spell this
// same step inline over banks of Sources for the kernels that need to
// overlap many independent chains.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// NewStream returns the Source for substream stream of the root seed.
// Distinct (seed, stream) pairs yield streams that are, for all simulation
// purposes, statistically independent, and the construction is pure: it
// always returns the same generator for the same pair, no matter which
// goroutine calls it or in what order. Parallel Monte-Carlo replication
// keys each replicate's stream by its replicate index, which makes results
// independent of the worker count and of scheduling.
func NewStream(seed, stream uint64) *Source {
	var src Source
	src.ReseedStream(seed, stream)
	return &src
}

// ReseedStream re-initializes src in place to the exact state of
// NewStream(seed, stream), without allocating.
func (src *Source) ReseedStream(seed, stream uint64) {
	s1, s2 := seed, stream
	a := splitmix64(&s1)
	b := splitmix64(&s2)
	src.Reseed(a ^ bits.RotateLeft64(b, 31))
}

// Split derives a new Source whose stream is independent of the parent's
// future output. The parent advances by a constant number of states, so a
// fixed sequence of Split and sampling calls is fully deterministic.
func (src *Source) Split() *Source {
	// Derive the child seed material by running the parent's next outputs
	// through splitmix64 once more. This decorrelates the child from the
	// parent's state even though both came from the same root seed.
	var child Source
	for i := range child.s {
		state := src.Uint64()
		child.s[i] = splitmix64(&state)
	}
	if child.s == [4]uint64{} {
		child.s[0] = 0x9e3779b97f4a7c15
	}
	return &child
}

// Jump advances the generator by 2^192 steps in O(1), equivalent to that
// many Uint64 calls. Successive Jump calls partition the period into
// non-overlapping streams of length 2^192 — an alternative to Split when a
// caller wants provably disjoint subsequences rather than rehashed seeds.
func (src *Source) Jump() {
	// xoshiro256++ long-jump polynomial (Blackman & Vigna).
	jump := [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= src.s[0]
				s1 ^= src.s[1]
				s2 ^= src.s[2]
				s3 ^= src.s[3]
			}
			src.Uint64()
		}
	}
	src.s = [4]uint64{s0, s1, s2, s3}
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 random bits.
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0,
// mirroring math/rand.Intn; callers are expected to validate n.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(src.Uint64N(uint64(n)))
}

// Uint64N returns a uniformly distributed integer in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
func (src *Source) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64N called with zero n")
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped to that range.
func (src *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return src.Float64() < p
}

// Shuffle pseudo-randomizes the order of n elements using the Fisher–Yates
// algorithm. swap swaps the elements with indexes i and j.
func (src *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		swap(i, j)
	}
}
