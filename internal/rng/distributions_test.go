package rng

import (
	"math"
	"testing"
)

func TestExpMean(t *testing.T) {
	src := New(31)
	for _, rate := range []float64{0.5, 1, 4, 100} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += src.Exp(rate)
		}
		got := sum / n
		want := 1 / rate
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("Exp(%v) mean = %v, want ~%v", rate, got, want)
		}
	}
}

func TestExpPositive(t *testing.T) {
	src := New(37)
	for i := 0; i < 100000; i++ {
		if v := src.Exp(2); v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	src := New(1)
	for _, rate := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Exp(%v) did not panic", rate)
				}
			}()
			src.Exp(rate)
		}()
	}
}

func TestNormMoments(t *testing.T) {
	src := New(41)
	const n = 400000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestNormTails(t *testing.T) {
	src := New(43)
	const n = 200000
	beyond2 := 0
	for i := 0; i < n; i++ {
		if math.Abs(src.Norm()) > 2 {
			beyond2++
		}
	}
	// P(|Z| > 2) ~ 0.0455.
	got := float64(beyond2) / n
	if math.Abs(got-0.0455) > 0.005 {
		t.Errorf("P(|Z|>2) = %v, want ~0.0455", got)
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(47)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(src.Geometric(p))
		}
		got := sum / n
		want := (1 - p) / p
		if math.Abs(got-want) > 0.05*(want+1) {
			t.Errorf("Geometric(%v) mean = %v, want ~%v", p, got, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	src := New(53)
	for i := 0; i < 100; i++ {
		if g := src.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricCappedMatchesGeometric(t *testing.T) {
	// With an unreachable cap, GeometricCapped consumes one uniform and
	// returns exactly Geometric's inversion value.
	for _, p := range []float64{0.05, 0.3, 0.8, 1} {
		a, b := New(61), New(61)
		for i := 0; i < 2000; i++ {
			if got, want := a.GeometricCapped(p, 1<<40), b.Geometric(p); got != want {
				t.Fatalf("GeometricCapped(%v, big) = %d, Geometric = %d", p, got, want)
			}
		}
	}
}

func TestGeometricCappedCap(t *testing.T) {
	src := New(67)
	// Tiny success probability: essentially every draw hits the cap, and
	// none may exceed it or go negative.
	for i := 0; i < 1000; i++ {
		g := src.GeometricCapped(1e-18, 500)
		if g < 0 || g > 500 {
			t.Fatalf("GeometricCapped(1e-18, 500) = %d outside [0, 500]", g)
		}
	}
	if g := src.GeometricCapped(0.5, 0); g != 0 {
		t.Errorf("GeometricCapped(0.5, 0) = %d, want 0", g)
	}
	if g := src.GeometricCapped(1, 100); g != 0 {
		t.Errorf("GeometricCapped(1, 100) = %d, want 0", g)
	}
}

func TestGeometricCappedPanics(t *testing.T) {
	src := New(71)
	for _, fn := range []func(){
		func() { src.GeometricCapped(0, 10) },
		func() { src.GeometricCapped(1.5, 10) },
		func() { src.GeometricCapped(0.5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	src := New(59)
	if got := src.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, 0.5) = %d, want 0", got)
	}
	if got := src.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d, want 0", got)
	}
	if got := src.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d, want 10", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	src := New(61)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5},
		{100, 0.1},
		{100, 0.9}, // exercises the symmetry path
		{10000, 0.3},
		{1000000, 0.5}, // exercises the normal-approximation path
	}
	for _, tc := range cases {
		const trials = 50000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			v := float64(src.Binomial(tc.n, tc.p))
			if v < 0 || v > float64(tc.n) {
				t.Fatalf("Binomial(%d, %v) = %v out of range", tc.n, tc.p, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		wantMean := float64(tc.n) * tc.p
		sd := math.Sqrt(wantMean * (1 - tc.p))
		if math.Abs(mean-wantMean) > 6*sd/math.Sqrt(trials)+0.02*sd {
			t.Errorf("Binomial(%d, %v) mean = %v, want ~%v", tc.n, tc.p, mean, wantMean)
		}
		variance := sumSq/trials - mean*mean
		wantVar := wantMean * (1 - tc.p)
		if math.Abs(variance-wantVar)/wantVar > 0.1 {
			t.Errorf("Binomial(%d, %v) variance = %v, want ~%v", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	src := New(67)
	for _, mean := range []float64{0.5, 3, 9.5, 10, 25, 200} {
		const trials = 100000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			v := float64(src.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%v) returned negative %v", mean, v)
			}
			sum += v
			sumSq += v * v
		}
		got := sum / trials
		if math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
		variance := sumSq/trials - got*got
		if math.Abs(variance-mean)/mean > 0.06 {
			t.Errorf("Poisson(%v) variance = %v, want ~%v", mean, variance, mean)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	src := New(71)
	if got := src.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	src := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Poisson(-1) did not panic")
		}
	}()
	src.Poisson(-1)
}

func BenchmarkExp(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.Exp(1)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.Poisson(100)
	}
}
