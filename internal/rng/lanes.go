package rng

import "math/bits"

// State-passing draw primitives for lockstep simulation kernels.
//
// A kernel that advances many replicates per instruction stream keeps one
// generator per lane in its own lane-indexed storage and needs the
// per-draw step to inline into its fused per-lane loop: a call per draw
// costs more than the draw and forces every generator chain through
// caller-saved register spills. (*Source).Uint64 sits above the compiler's
// inlining budget precisely because it indexes its state through a
// pointer, so these helpers pass the four xoshiro256++ state words as
// plain values instead — Next4 compiles to straight-line register
// arithmetic and inlines anywhere. The cold paths (stream seeding, the
// geometric sampler's logarithm, Lemire rejection) stay out of line and
// round-trip through a stack Source, which guarantees them bit-identical
// to the scalar methods; TestLaneStateMatchesScalar pins all of it.

// Next4 advances one xoshiro256++ state held as four words and returns
// the draw plus the successor state: exactly the value and state
// transition of (*Source).Uint64.
func Next4(s0, s1, s2, s3 uint64) (u, t0, t1, t2, t3 uint64) {
	u = bits.RotateLeft64(s0+s3, 23) + s0
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)
	return u, s0, s1, s2, s3
}

// StreamState4 returns the initial state words of NewStream(seed, stream).
func StreamState4(seed, stream uint64) (s0, s1, s2, s3 uint64) {
	var src Source
	src.ReseedStream(seed, stream)
	return src.s[0], src.s[1], src.s[2], src.s[3]
}

// GeometricCapped4 is GeometricCapped in state-passing form: it returns
// the capped geometric draw plus the successor state.
func GeometricCapped4(s0, s1, s2, s3 uint64, p float64, max int) (n int, t0, t1, t2, t3 uint64) {
	src := Source{s: [4]uint64{s0, s1, s2, s3}}
	n = src.GeometricCapped(p, max)
	return n, src.s[0], src.s[1], src.s[2], src.s[3]
}

// Uint64NRetry4 finishes a bounded draw whose inlined Lemire fast path
// failed its quick accept: hi and lo are the first multiply's halves for
// bound n. Callers replicate the fast path of Uint64N as
//
//	u, s0, s1, s2, s3 = Next4(s0, s1, s2, s3)
//	hi, lo := bits.Mul64(u, n)
//	if lo < n {
//		hi, s0, s1, s2, s3 = Uint64NRetry4(s0, s1, s2, s3, hi, lo, n)
//	}
//
// which consumes the stream exactly as the scalar method does.
func Uint64NRetry4(s0, s1, s2, s3, hi, lo, n uint64) (v, t0, t1, t2, t3 uint64) {
	src := Source{s: [4]uint64{s0, s1, s2, s3}}
	thresh := -n % n
	for lo < thresh {
		hi, lo = bits.Mul64(src.Uint64(), n)
	}
	return hi, src.s[0], src.s[1], src.s[2], src.s[3]
}
