package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with distinct seeds collided %d/%d times", same, n)
	}
}

func TestZeroSeedValid(t *testing.T) {
	src := New(0)
	if src.s == [4]uint64{} {
		t.Fatal("New(0) produced the invalid all-zero state")
	}
	// The generator must not be stuck.
	first := src.Uint64()
	second := src.Uint64()
	if first == second {
		t.Errorf("suspiciously constant output: %d, %d", first, second)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(7)
	for i := 0; i < 100000; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v, want in [0, 1)", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	src := New(11)
	const n = 1 << 20
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := src.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.002 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.002 {
		t.Errorf("variance = %v, want ~1/12", variance)
	}
}

func TestIntnRange(t *testing.T) {
	src := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d, out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	src := New(5)
	const buckets = 8
	const n = 80000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[src.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%.0f", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	src := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			src.Intn(n)
		}()
	}
}

func TestUint64NRange(t *testing.T) {
	src := New(9)
	err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := src.Uint64N(n)
		return v < n
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// Parent and child streams should not be visibly correlated: count
	// exact collisions over a window.
	same := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and child collided %d/%d times", same, n)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(123).Split()
	b := New(123).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split is not deterministic at step %d", i)
		}
	}
}

func TestJumpDisjointStreams(t *testing.T) {
	// Jumped streams must be deterministic and not collide with the
	// original stream over a window.
	a := New(5)
	b := New(5)
	b.Jump()
	same := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("jumped stream collided %d/%d times", same, n)
	}
	// Deterministic.
	c := New(5)
	c.Jump()
	d := New(5)
	d.Jump()
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("Jump is not deterministic")
		}
	}
}

func TestJumpChangesState(t *testing.T) {
	src := New(7)
	before := src.s
	src.Jump()
	if src.s == before {
		t.Error("Jump left the state unchanged")
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	src := New(17)
	for i := 0; i < 100; i++ {
		if src.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !src.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if src.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !src.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	src := New(19)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if src.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("Bernoulli(%v) empirical mean %v, want within %v", p, got, tol)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	src := New(23)
	const n = 100
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	src.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, n)
	for _, v := range vals {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("shuffle is not a permutation: %v", vals)
		}
		seen[v] = true
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	src := New(29)
	const n = 5
	const trials = 50000
	var counts [n]int
	for trial := 0; trial < trials; trial++ {
		vals := [n]int{0, 1, 2, 3, 4}
		src.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		counts[vals[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d first %d times, want ~%.0f", v, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	src := New(1)
	for i := 0; i < b.N; i++ {
		_ = src.Float64()
	}
}
