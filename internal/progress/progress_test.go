package progress

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lvmajority/internal/stats"
)

func TestEmitNilHookIsSafe(t *testing.T) {
	var h Hook
	h.Emit(Event{Kind: KindPhase, Phase: "start"}) // must not panic
}

func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("Tee of nil hooks should collapse to nil")
	}
	var a, b int
	h := Tee(nil, func(Event) { a++ }, func(Event) { b++ })
	h(Event{})
	h(Event{})
	if a != 2 || b != 2 {
		t.Errorf("tee delivered a=%d b=%d events, want 2 each", a, b)
	}
}

// TestThrottledMonotoneAndStale: trial events must come out strictly
// increasing in Done per stream, stale snapshots dropped, and other kinds
// passed through untouched.
func TestThrottledMonotoneAndStale(t *testing.T) {
	var got []Event
	h := Throttled(func(e Event) { got = append(got, e) }, 0)

	h(Event{Kind: KindTrials, Done: 5, Total: 100})
	h(Event{Kind: KindTrials, Done: 3, Total: 100}) // stale: out-of-order worker snapshot
	h(Event{Kind: KindTrials, Done: 5, Total: 100}) // duplicate
	h(Event{Kind: KindTrials, Done: 9, Total: 100})
	h(Event{Kind: KindPhase, Phase: "done"}) // non-trials passes through
	h(Event{Kind: KindTrials, Done: 2, Total: 50, N: 512}) // different stream (new point)

	var dones []int64
	for _, e := range got {
		if e.Kind == KindTrials && e.N == 0 {
			dones = append(dones, e.Done)
		}
	}
	if len(dones) != 2 || dones[0] != 5 || dones[1] != 9 {
		t.Errorf("throttled trial stream %v, want [5 9]", dones)
	}
	last := got[len(got)-1]
	if last.Kind != KindTrials || last.N != 512 || last.Done != 2 {
		t.Errorf("independent stream suppressed: %+v", last)
	}
}

// TestThrottledRateLimitKeepsFinal: within the rate-limit window only the
// budget-completing snapshot passes.
func TestThrottledRateLimitKeepsFinal(t *testing.T) {
	var got []int64
	h := Throttled(func(e Event) { got = append(got, e.Done) }, time.Hour)
	for d := int64(1); d <= 100; d++ {
		h(Event{Kind: KindTrials, Done: d, Total: 100})
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 100 {
		t.Errorf("rate-limited stream %v, want first and final snapshots only", got)
	}
}

func TestRendererLines(t *testing.T) {
	var sb strings.Builder
	h := Renderer(&sb)
	est := &stats.BernoulliEstimate{Successes: 90, Trials: 100, Lo: 0.82, Hi: 0.94}
	h(Event{Kind: KindPhase, Scope: "T1-SD", Phase: "start"})
	h(Event{Kind: KindTrials, Scope: "T1-SD", N: 1024, Delta: 40, Done: 500, Total: 2000, Wins: 400})
	h(Event{Kind: KindEstimate, Scope: "T1-SD", N: 1024, Delta: 40, Done: 2000, Total: 2000, Estimate: est})
	h(Event{Kind: KindProbeStart, Scope: "T1-SD", N: 1024, Delta: 40})
	h(Event{Kind: KindProbe, Scope: "T1-SD", N: 1024, Delta: 40, Estimate: est, Cached: true})
	h(Event{Kind: KindPoint, Scope: "T1-SD", N: 1024, Threshold: 42, Found: true})
	h(Event{Kind: KindPoint, Scope: "T1-SD", N: 2048})
	out := sb.String()
	for _, want := range []string{
		"T1-SD: start",
		"trials 500/2000 (running p=0.8000)",
		"estimate 0.9000 [0.8200, 0.9400] (90/100) after 2000/2000 trials",
		"probe n=1024 delta=40",
		"(cached)",
		"point n=1024 threshold=42",
		"point n=2048 threshold not found",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderer output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 7 {
		t.Errorf("renderer wrote %d lines, want 7", lines)
	}
}

// TestBroadcasterReplayAndLive: a subscriber sees history then live events;
// Close terminates the channel.
func TestBroadcasterReplayAndLive(t *testing.T) {
	b := NewBroadcaster()
	b.Publish(Event{Kind: KindPhase, Phase: "queued"})
	b.Publish(Event{Kind: KindPhase, Phase: "running"})

	ch, cancel := b.Subscribe()
	defer cancel()
	b.Publish(Event{Kind: KindTrials, Done: 10, Total: 100})
	b.Publish(Event{Kind: KindPhase, Phase: "done"})
	b.Close()

	var phases []string
	var trials int
	for e := range ch {
		switch e.Kind {
		case KindPhase:
			phases = append(phases, e.Phase)
		case KindTrials:
			trials++
		}
	}
	want := []string{"queued", "running", "done"}
	if len(phases) != len(want) {
		t.Fatalf("phases %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases %v, want %v", phases, want)
		}
	}
	if trials != 1 {
		t.Errorf("saw %d trial events, want 1", trials)
	}
}

func TestBroadcasterSubscribeAfterClose(t *testing.T) {
	b := NewBroadcaster()
	b.Publish(Event{Kind: KindPhase, Phase: "done"})
	b.Close()
	b.Publish(Event{Kind: KindPhase, Phase: "after"}) // dropped: closed

	ch, cancel := b.Subscribe()
	defer cancel()
	var got []Event
	for e := range ch { // closed immediately after replay
		got = append(got, e)
	}
	if len(got) != 1 || got[0].Phase != "done" {
		t.Errorf("post-close subscription replayed %+v, want the pre-close history", got)
	}
}

func TestBroadcasterCancelReapsSubscriber(t *testing.T) {
	b := NewBroadcaster()
	ch, cancel := b.Subscribe()
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers %d, want 1", b.Subscribers())
	}
	cancel()
	cancel() // idempotent
	if b.Subscribers() != 0 {
		t.Errorf("subscribers %d after cancel, want 0", b.Subscribers())
	}
	if _, ok := <-ch; ok {
		t.Error("cancelled subscription channel not closed")
	}
	b.Publish(Event{Kind: KindHeartbeat}) // must not panic or deliver
	b.Close()
}

// TestBroadcasterConcurrent exercises publish/subscribe/cancel/close under
// the race detector.
func TestBroadcasterConcurrent(t *testing.T) {
	b := NewBroadcaster()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish(Event{Kind: KindTrials, Done: int64(i)})
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := b.Subscribe()
			defer cancel()
			for range ch {
			}
		}()
	}
	var wgPub sync.WaitGroup
	wgPub.Add(1)
	go func() {
		defer wgPub.Done()
		time.Sleep(5 * time.Millisecond)
		b.Close()
	}()
	wg.Wait()
	wgPub.Wait()
}

// TestBroadcasterHistoryBounded: the replay buffer cannot grow without
// bound under a long event stream.
func TestBroadcasterHistoryBounded(t *testing.T) {
	b := NewBroadcaster()
	for i := 0; i < 10*historyLimit; i++ {
		b.Publish(Event{Kind: KindTrials, Done: int64(i)})
	}
	ch, cancel := b.Subscribe()
	defer cancel()
	b.Close()
	n := 0
	var last int64
	for e := range ch {
		n++
		last = e.Done
	}
	if n > historyLimit {
		t.Errorf("replayed %d events, want <= %d", n, historyLimit)
	}
	if last != 10*historyLimit-1 {
		t.Errorf("replay tail ends at %d, want the most recent event", last)
	}
}
