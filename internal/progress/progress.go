// Package progress is the observation layer of the run pipeline: engines
// report what they are doing — trial completion, running estimates, sweep
// probes, task phases — through a Hook, and sinks (a stderr renderer, the
// server's SSE broadcaster, tests) consume the resulting Events.
//
// The contract that makes the layer safe to thread everywhere is that hooks
// are observation-only by construction: an Event carries copies of values
// the emitting computation already produced, emission happens outside
// kernel inner loops (at trial, block, batch, probe, and phase boundaries),
// and nothing an observer does can flow back into an estimate. The
// determinism regression tests (internal/mc, internal/scenario) hold the
// layer to that contract: every committed manifest reproduces byte-for-byte
// with a maximally chatty hook attached.
//
// Emission is lock-cheap by design. Engine packages never read the wall
// clock or take locks to emit — they publish snapshots built from atomic
// counters, which means events from concurrent workers may arrive slightly
// out of order. Sinks that need monotone counters (the SSE stream, the
// renderer) wrap themselves with Throttled, which serializes, rate-limits,
// and drops stale snapshots.
package progress

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lvmajority/internal/stats"
)

// Kind classifies an Event.
type Kind string

const (
	// KindPhase marks a lifecycle transition: the scenario runner emits
	// one per task start and completion, and the server emits one per run
	// state change (queued, running, done, failed, cancelled).
	KindPhase Kind = "phase"
	// KindTrials reports Monte-Carlo trial completion: Done of Total
	// trials finished, with the running success count in Wins when the
	// trials are Bernoulli.
	KindTrials Kind = "trials"
	// KindEstimate carries a running Bernoulli estimate with its Wilson
	// interval, emitted at the estimator's batch boundaries.
	KindEstimate Kind = "estimate"
	// KindProbeStart marks the start of one threshold-search probe at
	// (N, Delta).
	KindProbeStart Kind = "probe-start"
	// KindProbe marks a settled probe: Estimate holds its result and
	// Cached reports whether it was replayed from the probe cache.
	KindProbe Kind = "probe"
	// KindPoint marks a settled sweep point: the threshold found (or not)
	// at population size N.
	KindPoint Kind = "point"
	// KindHeartbeat is a liveness tick. Engines never emit it; sinks with
	// idle-timeout consumers (the SSE stream) synthesize it.
	KindHeartbeat Kind = "heartbeat"
)

// Lifecycle phases of KindPhase events, and the failure classes carried in
// Detail on a failed phase. They are plain strings so external consumers
// (SSE clients, logs) need no mapping; the constants exist so emitters and
// tests agree on spelling.
const (
	PhaseStart  = "start"
	PhaseDone   = "done"
	PhaseFailed = "failed"

	// DetailPanic marks a failure caused by a recovered panic (see
	// mc.TrialPanicError), DetailTimeout one caused by an expired run
	// deadline, and DetailInterrupted one caused by an external
	// cancellation — including a serve process restart that orphaned the
	// run.
	DetailPanic       = "panic"
	DetailTimeout     = "timeout"
	DetailInterrupted = "interrupted"
)

// Event is one observation from a running computation. Only the fields
// meaningful for the Kind are set; every field is a copy, so holding an
// Event cannot alias live engine state.
type Event struct {
	Kind Kind `json:"kind"`
	// Phase is the lifecycle stage for KindPhase events ("start", "done",
	// or a server run state).
	Phase string `json:"phase,omitempty"`
	// Scope names the emitting computation: a task name, an experiment
	// ID, or the server's run identifier.
	Scope string `json:"scope,omitempty"`
	// N and Delta identify the population size and initial gap of the
	// sweep point or probe the event belongs to, when known.
	N     int `json:"n,omitempty"`
	Delta int `json:"delta,omitempty"`
	// Done and Total count completed trials against the configured
	// budget. Early stopping may finish a run with Done < Total.
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// Wins is the running Bernoulli success count over the Done trials.
	// It is a concurrent snapshot: it may lag Done by in-flight trials.
	Wins int64 `json:"wins,omitempty"`
	// Estimate is the running (KindEstimate) or settled (KindProbe)
	// Bernoulli estimate with its confidence interval.
	Estimate *stats.BernoulliEstimate `json:"estimate,omitempty"`
	// Cached reports that a KindProbe result was replayed from the probe
	// cache without spending trials.
	Cached bool `json:"cached,omitempty"`
	// Threshold and Found carry a settled sweep point's result.
	Threshold int  `json:"threshold,omitempty"`
	Found     bool `json:"found,omitempty"`
	// Err carries a failure message on terminal KindPhase events.
	Err string `json:"error,omitempty"`
	// Detail classifies a failed KindPhase event (DetailPanic,
	// DetailTimeout, DetailInterrupted) so consumers can distinguish
	// failure modes without parsing Err.
	Detail string `json:"detail,omitempty"`
}

// Hook receives Events. A nil Hook is valid everywhere and costs one nil
// check. Hooks threaded into replicated engines (internal/mc and above) are
// called concurrently from worker goroutines and must be safe for
// concurrent use; Throttled and Broadcaster both are.
type Hook func(Event)

// Emit calls the hook if it is non-nil. It is the nil-safe emission helper
// every engine uses.
func (h Hook) Emit(e Event) {
	if h != nil {
		h(e)
	}
}

// Tee fans every event out to each non-nil hook in order. It returns nil
// when no hook survives, so the result stays free to thread.
func Tee(hooks ...Hook) Hook {
	live := make([]Hook, 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, h := range live {
			h(e)
		}
	}
}

// scopeKey identifies the progress stream an event belongs to for
// throttling and monotonicity: one per (kind, scope, point, probe).
type scopeKey struct {
	kind     Kind
	scope    string
	n, delta int
}

// throttleState is the per-stream memory of a Throttled hook.
type throttleState struct {
	lastDone int64
	lastEmit time.Time
}

// Throttled wraps h with the serialization engines deliberately omit: it
// takes one mutex per event, drops KindTrials snapshots that are stale
// (Done not above the last emitted Done of the same stream) or too frequent
// (within min of the last emission, unless the snapshot completes the
// budget), and passes every other kind through unchanged. Downstream of a
// Throttled hook, trial counters are strictly increasing per stream — the
// property the SSE endpoint documents and its tests assert.
func Throttled(h Hook, min time.Duration) Hook {
	if h == nil {
		return nil
	}
	var mu sync.Mutex
	streams := make(map[scopeKey]*throttleState)
	return func(e Event) {
		if e.Kind != KindTrials {
			h(e)
			return
		}
		key := scopeKey{kind: e.Kind, scope: e.Scope, n: e.N, delta: e.Delta}
		mu.Lock()
		st := streams[key]
		if st == nil {
			st = &throttleState{}
			streams[key] = st
		}
		if e.Done <= st.lastDone {
			mu.Unlock()
			return
		}
		now := time.Now()
		final := e.Total > 0 && e.Done >= e.Total
		if !final && now.Sub(st.lastEmit) < min {
			mu.Unlock()
			return
		}
		st.lastDone = e.Done
		st.lastEmit = now
		mu.Unlock()
		h(e)
	}
}

// Renderer returns a hook that writes one human-readable line per event to
// w, serialized by an internal mutex so engines can call it concurrently.
// It is what `cmd/experiments -progress` attaches to stderr; wrap it with
// Throttled to keep high-frequency trial events readable.
func Renderer(w io.Writer) Hook {
	var mu sync.Mutex
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintln(w, renderLine(e))
	}
}

// renderLine formats one event the way the stderr renderer prints it.
func renderLine(e Event) string {
	prefix := "progress"
	if e.Scope != "" {
		prefix = e.Scope
	}
	switch e.Kind {
	case KindPhase:
		phase := e.Phase
		if e.Detail != "" {
			phase += "/" + e.Detail
		}
		if e.Err != "" {
			return fmt.Sprintf("%s: %s (%s)", prefix, phase, e.Err)
		}
		return fmt.Sprintf("%s: %s", prefix, phase)
	case KindTrials:
		at := where(e)
		if e.Wins > 0 && e.Done > 0 {
			return fmt.Sprintf("%s:%s trials %d/%d (running p=%.4f)",
				prefix, at, e.Done, e.Total, float64(e.Wins)/float64(e.Done))
		}
		return fmt.Sprintf("%s:%s trials %d/%d", prefix, at, e.Done, e.Total)
	case KindEstimate:
		return fmt.Sprintf("%s:%s estimate %v after %d/%d trials", prefix, where(e), e.Estimate, e.Done, e.Total)
	case KindProbeStart:
		return fmt.Sprintf("%s: probe n=%d delta=%d", prefix, e.N, e.Delta)
	case KindProbe:
		src := "fresh"
		if e.Cached {
			src = "cached"
		}
		return fmt.Sprintf("%s: probe n=%d delta=%d settled %v (%s)", prefix, e.N, e.Delta, e.Estimate, src)
	case KindPoint:
		if !e.Found {
			return fmt.Sprintf("%s: point n=%d threshold not found", prefix, e.N)
		}
		return fmt.Sprintf("%s: point n=%d threshold=%d", prefix, e.N, e.Threshold)
	case KindHeartbeat:
		return fmt.Sprintf("%s: heartbeat", prefix)
	}
	return fmt.Sprintf("%s: %s event", prefix, e.Kind)
}

// where renders the point/probe coordinates of a trial-level event, or ""
// when the event is not attached to a sweep point.
func where(e Event) string {
	switch {
	case e.N > 0 && e.Delta > 0:
		return fmt.Sprintf(" n=%d delta=%d", e.N, e.Delta)
	case e.N > 0:
		return fmt.Sprintf(" n=%d", e.N)
	}
	return ""
}
