package progress

import "sync"

// historyLimit bounds the replay buffer of a Broadcaster: a late subscriber
// receives at most this many recent events before the live stream. Recent
// events summarize the run state (running estimates and counters supersede
// older ones), so a bounded tail loses only superseded snapshots.
const historyLimit = 128

// subscriber is one live subscription: delivery channel plus identity for
// cancellation.
type subscriber struct {
	id int
	ch chan Event
}

// Broadcaster fans one event stream out to any number of subscribers. The
// server keeps one per run: the run's Progress hook publishes into it and
// each SSE client subscribes. Publish never blocks — a subscriber whose
// buffer is full misses that event (progress events are snapshots, so a
// later event supersedes it) — and Close terminates every subscription, so
// a finished run cannot leak goroutines waiting on it.
type Broadcaster struct {
	mu      sync.Mutex
	subs    []subscriber
	nextID  int
	history []Event
	closed  bool
}

// NewBroadcaster returns an open Broadcaster with no subscribers.
func NewBroadcaster() *Broadcaster { return &Broadcaster{} }

// Publish delivers e to every subscriber and appends it to the bounded
// replay history. It is a valid Hook (`hook := b.Publish`), safe for
// concurrent use, and never blocks: slow subscribers skip events instead of
// stalling the publisher. Publishing to a closed Broadcaster is a no-op.
func (b *Broadcaster) Publish(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if len(b.history) >= historyLimit {
		// Drop the oldest half in one copy instead of sliding every
		// event, keeping Publish amortized O(1).
		b.history = append(b.history[:0], b.history[historyLimit/2:]...)
	}
	b.history = append(b.history, e)
	for _, s := range b.subs {
		select {
		case s.ch <- e:
		default:
		}
	}
}

// Subscribe registers a new subscriber and returns its delivery channel
// plus a cancel function. The channel first replays the bounded history,
// then streams live events; it is closed when the Broadcaster closes (or
// immediately after the replay when it already has). cancel is idempotent
// and safe to call concurrently with Publish and Close; the channel is
// closed in all paths, so ranging over it always terminates.
func (b *Broadcaster) Subscribe() (<-chan Event, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Size the buffer to hold the full replay plus a live cushion so the
	// replay loop below can never block while holding the lock.
	ch := make(chan Event, len(b.history)+historyLimit)
	for _, e := range b.history {
		ch <- e
	}
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs = append(b.subs, subscriber{id: id, ch: ch})
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		for i, s := range b.subs {
			if s.id == id {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				close(s.ch)
				return
			}
		}
	}
	return ch, cancel
}

// Close terminates the stream: every subscriber's channel is closed after
// the events already delivered, and future Publish and Subscribe calls see
// a closed Broadcaster. Close is idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.subs {
		close(s.ch)
	}
	b.subs = nil
}

// Subscribers reports the current number of live subscriptions; tests use
// it to assert disconnected clients are reaped.
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
