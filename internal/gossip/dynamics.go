package gossip

import "lvmajority/internal/rng"

// Voter is the synchronous pull voter model: each agent adopts the opinion
// of one uniformly sampled agent. On the complete graph this coincides with
// the neutral two-allele Wright–Fisher model of population genetics (the
// next opinion-0 count is Binomial(n, p₀)). The fraction of opinion-0
// agents is a martingale, so — exactly like the paper's no-competition LV
// regime (Table 1 row 5) and the neutral Moran process — the initial
// majority wins with probability a/n only, and no sublinear gap can give
// majority consensus with high probability.
type Voter struct{}

// Name implements Dynamics.
func (Voter) Name() string { return "voter" }

// Undecided implements Dynamics.
func (Voter) Undecided() bool { return false }

// Step implements Dynamics: every agent's next opinion is an independent
// Bernoulli(p₀) draw with p₀ the current opinion-0 fraction.
func (Voter) Step(c Counts, src *rng.Source) Counts {
	n := c.N()
	p0 := float64(c.C0) / float64(n)
	c0 := src.Binomial(n, p0)
	return Counts{C0: c0, C1: n - c0}
}

// MeanStep implements Dynamics.
func (Voter) MeanStep(c Counts) (float64, float64, float64) {
	n := float64(c.N())
	return float64(c.C0), n - float64(c.C0), 0
}

// TwoChoices is synchronous two-choices voting: each agent samples two
// agents and adopts their opinion iff they agree, keeping its own opinion
// otherwise. The mean-field map p ↦ p² + p(1 − p² − q²) (q = 1 − p) has an
// unstable fixed point at 1/2, giving an Θ(√(n log n)) gap threshold and
// O(log n)-round convergence.
type TwoChoices struct{}

// Name implements Dynamics.
func (TwoChoices) Name() string { return "two-choices" }

// Undecided implements Dynamics.
func (TwoChoices) Undecided() bool { return false }

// Step implements Dynamics.
func (TwoChoices) Step(c Counts, src *rng.Source) Counts {
	n := c.N()
	p0 := float64(c.C0) / float64(n)
	p1 := float64(c.C1) / float64(n)
	q0, q1 := p0*p0, p1*p1
	// An opinion-0 agent switches to 1 iff both samples are 1; an
	// opinion-1 agent switches to 0 iff both samples are 0.
	defections := src.Binomial(c.C0, q1)
	recruits := src.Binomial(c.C1, q0)
	c0 := c.C0 - defections + recruits
	return Counts{C0: c0, C1: n - c0}
}

// MeanStep implements Dynamics.
func (TwoChoices) MeanStep(c Counts) (float64, float64, float64) {
	n := float64(c.N())
	p0 := float64(c.C0) / n
	p1 := float64(c.C1) / n
	e0 := float64(c.C0) - float64(c.C0)*p1*p1 + float64(c.C1)*p0*p0
	return e0, n - e0, 0
}

// ThreeMajority is synchronous 3-majority: each agent samples three agents
// and adopts the majority opinion among the three samples (with two
// opinions a three-sample majority always exists). The mean-field map
// p ↦ p³ + 3p²(1 − p) again has an unstable fixed point at 1/2 with the
// same Θ(√(n log n)) threshold scale.
type ThreeMajority struct{}

// Name implements Dynamics.
func (ThreeMajority) Name() string { return "3-majority" }

// Undecided implements Dynamics.
func (ThreeMajority) Undecided() bool { return false }

// threeMajorityAdopt0 is the probability that the majority among three
// independent samples is opinion 0 when the opinion-0 fraction is p.
func threeMajorityAdopt0(p float64) float64 {
	return p*p*p + 3*p*p*(1-p)
}

// Step implements Dynamics: every agent's next opinion is an independent
// draw from the three-sample majority distribution, which depends only on
// the current fractions.
func (ThreeMajority) Step(c Counts, src *rng.Source) Counts {
	n := c.N()
	p := threeMajorityAdopt0(float64(c.C0) / float64(n))
	c0 := src.Binomial(n, p)
	return Counts{C0: c0, C1: n - c0}
}

// MeanStep implements Dynamics.
func (ThreeMajority) MeanStep(c Counts) (float64, float64, float64) {
	n := float64(c.N())
	e0 := n * threeMajorityAdopt0(float64(c.C0)/n)
	return e0, n - e0, 0
}

// Undecided is the undecided-state dynamics (USD): each agent samples one
// agent; a decided agent that samples the opposite decided opinion becomes
// undecided, and an undecided agent adopts the sampled opinion if the
// sample is decided. The same cancellation idea drives the paper's
// interference-competition protocols and the 3-state population protocol of
// Angluin et al.; here it runs in the synchronous gossip model.
type Undecided struct{}

// Name implements Dynamics.
func (Undecided) Name() string { return "undecided-state dynamics" }

// Undecided implements Dynamics.
func (Undecided) Undecided() bool { return true }

// Step implements Dynamics.
func (Undecided) Step(c Counts, src *rng.Source) Counts {
	n := c.N()
	p0 := float64(c.C0) / float64(n)
	p1 := float64(c.C1) / float64(n)
	// Decided agents: sampling the opposite decided opinion sends them
	// to the undecided state.
	loss0 := src.Binomial(c.C0, p1)
	loss1 := src.Binomial(c.C1, p0)
	// Undecided agents: multinomial over (adopt 0, adopt 1, stay
	// undecided), sampled as a binomial followed by a conditional
	// binomial.
	gain0 := src.Binomial(c.U, p0)
	rest := c.U - gain0
	gain1 := 0
	if rest > 0 && p0 < 1 {
		gain1 = src.Binomial(rest, p1/(1-p0))
	}
	return Counts{
		C0: c.C0 - loss0 + gain0,
		C1: c.C1 - loss1 + gain1,
		U:  c.U + loss0 + loss1 - gain0 - gain1,
	}
}

// MeanStep implements Dynamics.
func (Undecided) MeanStep(c Counts) (float64, float64, float64) {
	n := float64(c.N())
	p0 := float64(c.C0) / n
	p1 := float64(c.C1) / n
	e0 := float64(c.C0) - float64(c.C0)*p1 + float64(c.U)*p0
	e1 := float64(c.C1) - float64(c.C1)*p0 + float64(c.U)*p1
	return e0, e1, n - e0 - e1
}

// All returns every dynamics in this package, in presentation order.
func All() []Dynamics {
	return []Dynamics{Voter{}, TwoChoices{}, ThreeMajority{}, Undecided{}}
}
