// Package gossip implements synchronous gossip ("pull") opinion dynamics on
// the complete graph: the voter model, two-choices voting, 3-majority, and
// the undecided-state dynamics. These are the classic majority/plurality
// consensus dynamics with a *static* population that the paper contrasts
// with its ecological Lotka–Volterra protocols (§2.2, [9, 11, 23, 33, 39]).
//
// In each synchronous round every agent independently samples one or more
// agents uniformly at random (with replacement, possibly itself) from the
// current configuration and updates its opinion according to the dynamics;
// all updates are applied simultaneously. On the complete graph the next
// configuration depends on the current one only through the per-opinion
// counts, so the engine represents a configuration by its counts and
// advances a round with a constant number of binomial draws, which is exact
// and runs in O(1) time per round independent of the population size.
package gossip

import (
	"fmt"

	"lvmajority/internal/rng"
)

// Counts is a configuration of a two-opinion gossip system: C0 agents hold
// opinion 0 (the initial majority by convention), C1 hold opinion 1, and U
// are undecided (always zero for dynamics without an undecided state).
type Counts struct {
	C0, C1, U int
}

// N returns the total number of agents.
func (c Counts) N() int { return c.C0 + c.C1 + c.U }

// Decided reports whether one decided opinion is extinct. Once a decided
// opinion reaches count zero it can never reappear under any of the dynamics
// in this package (every rule copies opinions from sampled agents), so this
// is the natural consensus criterion; undecided agents subsequently drain
// into the surviving opinion.
func (c Counts) Decided() (done bool, winner int) {
	switch {
	case c.C1 == 0 && c.C0 > 0:
		return true, 0
	case c.C0 == 0 && c.C1 > 0:
		return true, 1
	case c.C0 == 0 && c.C1 == 0:
		// All agents undecided: neither opinion can ever reappear.
		return true, -1
	default:
		return false, -1
	}
}

// String renders the configuration compactly.
func (c Counts) String() string {
	return fmt.Sprintf("(%d, %d, %d undecided)", c.C0, c.C1, c.U)
}

// Dynamics is one synchronous opinion dynamics on the complete graph.
type Dynamics interface {
	// Name identifies the dynamics in tables and logs.
	Name() string
	// Step advances one synchronous round, consuming randomness from src.
	// It must preserve the total agent count.
	Step(c Counts, src *rng.Source) Counts
	// MeanStep returns the expected counts after one round from c. It is
	// the mean-field map used by tests as an oracle for Step and by the
	// drift analysis in the experiments.
	MeanStep(c Counts) (e0, e1, eU float64)
	// Undecided reports whether the dynamics uses the undecided state.
	Undecided() bool
}

// Outcome describes one gossip execution.
type Outcome struct {
	// Winner is 0 if the initial majority's opinion won, 1 if the
	// minority's won, and −1 if the execution ended undecided (both
	// opinions extinct, or the round budget was exhausted).
	Winner int
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Final is the final configuration.
	Final Counts
}

// RunOptions configures Run.
type RunOptions struct {
	// MaxRounds bounds the execution; zero defaults to 200·n + 4096,
	// generous for the drift-based dynamics (which converge in O(log n)
	// rounds) and sufficient for the driftless voter model (which needs
	// Θ(n) rounds on the complete graph).
	MaxRounds int
}

// Run executes the dynamics from the given configuration until one decided
// opinion goes extinct or the round budget is exhausted.
func Run(d Dynamics, initial Counts, src *rng.Source, opts RunOptions) (Outcome, error) {
	if initial.C0 < 0 || initial.C1 < 0 || initial.U < 0 {
		return Outcome{}, fmt.Errorf("gossip: negative counts %v", initial)
	}
	if initial.N() == 0 {
		return Outcome{}, fmt.Errorf("gossip: empty population")
	}
	if initial.U > 0 && !d.Undecided() {
		return Outcome{}, fmt.Errorf("gossip: %s has no undecided state but initial %v has undecided agents", d.Name(), initial)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200*initial.N() + 4096
	}
	c := initial
	for round := 0; round < maxRounds; round++ {
		if done, winner := c.Decided(); done {
			return Outcome{Winner: winner, Rounds: round, Final: c}, nil
		}
		next := d.Step(c, src)
		if next.N() != c.N() {
			return Outcome{}, fmt.Errorf("gossip: %s changed the population size %d -> %d", d.Name(), c.N(), next.N())
		}
		c = next
	}
	if done, winner := c.Decided(); done {
		return Outcome{Winner: winner, Rounds: maxRounds, Final: c}, nil
	}
	return Outcome{Winner: -1, Rounds: maxRounds, Final: c}, nil
}

// Protocol adapts a Dynamics to the consensus.Protocol interface: a trial
// starts with a = (n+Δ)/2 agents holding opinion 0 and b = (n−Δ)/2 holding
// opinion 1 and succeeds iff opinion 0 wins.
type Protocol struct {
	// Dynamics is the opinion dynamics to run.
	Dynamics Dynamics
	// MaxRoundsFor bounds trials as a function of n; nil uses the Run
	// default.
	MaxRoundsFor func(n int) int
}

// Name implements consensus.Protocol.
func (p *Protocol) Name() string { return p.Dynamics.Name() }

// Trial implements consensus.Protocol.
func (p *Protocol) Trial(n, delta int, src *rng.Source) (bool, error) {
	if n < 2 {
		return false, fmt.Errorf("gossip: population %d too small", n)
	}
	if delta < 0 || delta > n-2 || (n-delta)%2 != 0 {
		return false, fmt.Errorf("gossip: infeasible gap %d for n=%d", delta, n)
	}
	b := (n - delta) / 2
	initial := Counts{C0: n - b, C1: b}
	opts := RunOptions{}
	if p.MaxRoundsFor != nil {
		opts.MaxRounds = p.MaxRoundsFor(n)
	}
	out, err := Run(p.Dynamics, initial, src, opts)
	if err != nil {
		return false, err
	}
	return out.Winner == 0, nil
}
