package gossip

import (
	"math"
	"testing"
	"testing/quick"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func TestCountsDecided(t *testing.T) {
	cases := []struct {
		c      Counts
		done   bool
		winner int
	}{
		{Counts{C0: 5, C1: 3}, false, -1},
		{Counts{C0: 5, C1: 0}, true, 0},
		{Counts{C0: 0, C1: 3}, true, 1},
		{Counts{C0: 0, C1: 0, U: 7}, true, -1},
		{Counts{C0: 5, C1: 0, U: 2}, true, 0},
		{Counts{C0: 1, C1: 1, U: 100}, false, -1},
	}
	for _, tc := range cases {
		done, winner := tc.c.Decided()
		if done != tc.done || winner != tc.winner {
			t.Errorf("Decided(%v) = (%v, %d), want (%v, %d)", tc.c, done, winner, tc.done, tc.winner)
		}
	}
}

func TestRunValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Run(Voter{}, Counts{}, src, RunOptions{}); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := Run(Voter{}, Counts{C0: -1, C1: 2}, src, RunOptions{}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Run(Voter{}, Counts{C0: 2, C1: 2, U: 1}, src, RunOptions{}); err == nil {
		t.Error("undecided agents accepted by a dynamics without an undecided state")
	}
	if _, err := Run(Undecided{}, Counts{C0: 2, C1: 2, U: 1}, src, RunOptions{}); err != nil {
		t.Errorf("USD rejected undecided agents: %v", err)
	}
}

// frozenDynamics never changes the configuration; Run must exhaust its
// round budget and report an undecided outcome.
type frozenDynamics struct{}

func (frozenDynamics) Name() string                        { return "frozen" }
func (frozenDynamics) Undecided() bool                     { return false }
func (frozenDynamics) Step(c Counts, _ *rng.Source) Counts { return c }
func (frozenDynamics) MeanStep(c Counts) (float64, float64, float64) {
	return float64(c.C0), float64(c.C1), float64(c.U)
}

func TestRunExhaustsBudgetUndecided(t *testing.T) {
	out, err := Run(frozenDynamics{}, Counts{C0: 3, C1: 3}, rng.New(7), RunOptions{MaxRounds: 11})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != -1 || out.Rounds != 11 {
		t.Errorf("got winner=%d rounds=%d, want undecided after 11 rounds", out.Winner, out.Rounds)
	}
}

// leakyDynamics violates population conservation; Run must detect it.
type leakyDynamics struct{ frozenDynamics }

func (leakyDynamics) Step(c Counts, _ *rng.Source) Counts {
	return Counts{C0: c.C0 + 1, C1: c.C1}
}

func TestRunDetectsPopulationChange(t *testing.T) {
	if _, err := Run(leakyDynamics{}, Counts{C0: 3, C1: 3}, rng.New(7), RunOptions{}); err == nil {
		t.Error("population change not detected")
	}
}

func TestRunStopsImmediatelyAtConsensus(t *testing.T) {
	for _, d := range All() {
		out, err := Run(d, Counts{C0: 9, C1: 0}, rng.New(3), RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if out.Winner != 0 || out.Rounds != 0 {
			t.Errorf("%s: got winner=%d rounds=%d from consensus start", d.Name(), out.Winner, out.Rounds)
		}
	}
}

// TestStepConservesPopulation is the core engine invariant: for every
// dynamics and any configuration, one synchronous round preserves the
// population size and keeps all counts non-negative.
func TestStepConservesPopulation(t *testing.T) {
	src := rng.New(42)
	for _, d := range All() {
		d := d
		check := func(a, b, u uint16) bool {
			c := Counts{C0: int(a % 512), C1: int(b % 512), U: 0}
			if d.Undecided() {
				c.U = int(u % 512)
			}
			if c.N() == 0 {
				return true
			}
			next := d.Step(c, src)
			return next.N() == c.N() && next.C0 >= 0 && next.C1 >= 0 && next.U >= 0
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

// TestStepMatchesMeanStep verifies the binomial sampling in Step against
// the analytic mean-field map MeanStep: the empirical average of many
// one-round updates must match the expected counts to within a few
// standard errors.
func TestStepMatchesMeanStep(t *testing.T) {
	src := rng.New(1234)
	const trials = 20000
	for _, d := range All() {
		start := Counts{C0: 300, C1: 180}
		if d.Undecided() {
			start.U = 120
		}
		var s0, s1, su stats.Running
		for i := 0; i < trials; i++ {
			next := d.Step(start, src)
			s0.Add(float64(next.C0))
			s1.Add(float64(next.C1))
			su.Add(float64(next.U))
		}
		e0, e1, eu := d.MeanStep(start)
		for _, ch := range []struct {
			name string
			got  *stats.Running
			want float64
		}{{"C0", &s0, e0}, {"C1", &s1, e1}, {"U", &su, eu}} {
			tol := 5*ch.got.StdErr() + 1e-9
			if math.Abs(ch.got.Mean()-ch.want) > tol {
				t.Errorf("%s %s: empirical mean %.3f vs analytic %.3f (tol %.3f)",
					d.Name(), ch.name, ch.got.Mean(), ch.want, tol)
			}
		}
	}
}

// TestConsensusStatesAreFixedPoints checks that every dynamics' mean-field
// map fixes the two consensus states.
func TestConsensusStatesAreFixedPoints(t *testing.T) {
	for _, d := range All() {
		for _, c := range []Counts{{C0: 100}, {C1: 100}} {
			e0, e1, eu := d.MeanStep(c)
			if e0 != float64(c.C0) || e1 != float64(c.C1) || eu != 0 {
				t.Errorf("%s: consensus %v not fixed: (%g, %g, %g)", d.Name(), c, e0, e1, eu)
			}
		}
	}
}

// TestVoterMartingale verifies the classic voter-model result: the win
// probability of opinion 0 equals its initial fraction a/n, mirroring the
// paper's ρ = a/(a+b) regimes (Table 1 rows 2 and 5).
func TestVoterMartingale(t *testing.T) {
	const (
		a, b   = 40, 20
		trials = 3000
	)
	src := rng.New(99)
	wins := 0
	for i := 0; i < trials; i++ {
		out, err := Run(Voter{}, Counts{C0: a, C1: b}, src, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Winner == 0 {
			wins++
		}
	}
	est, err := stats.WilsonInterval(wins, trials, stats.Z99)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(a) / float64(a+b)
	if want < est.Lo || want > est.Hi {
		t.Errorf("voter win probability CI [%.4f, %.4f] misses a/n = %.4f", est.Lo, est.Hi, want)
	}
}

// TestDriftDynamicsAmplifyMajority checks that the drift-based dynamics
// (two-choices, 3-majority, USD) reach consensus on the initial majority
// essentially always from a 60/40 split of a large population — the regime
// in which the voter model would still fail 40% of the time.
func TestDriftDynamicsAmplifyMajority(t *testing.T) {
	const (
		n      = 4096
		trials = 200
	)
	src := rng.New(2024)
	for _, d := range []Dynamics{TwoChoices{}, ThreeMajority{}, Undecided{}} {
		wins := 0
		var maxRounds int
		for i := 0; i < trials; i++ {
			out, err := Run(d, Counts{C0: 6 * n / 10, C1: n - 6*n/10}, src, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if out.Winner == 0 {
				wins++
			}
			if out.Rounds > maxRounds {
				maxRounds = out.Rounds
			}
		}
		if wins < trials-1 {
			t.Errorf("%s: only %d/%d wins from a 60/40 split of n=%d", d.Name(), wins, trials, n)
		}
		// All three dynamics converge in O(log n) rounds; 40·log₂ n
		// is a very generous ceiling (log₂ 4096 = 12).
		if maxRounds > 40*12 {
			t.Errorf("%s: slowest trial took %d rounds, want O(log n)", d.Name(), maxRounds)
		}
	}
}

// TestTieIsUnbiased verifies that from an exact tie the symmetric dynamics
// pick either opinion with probability 1/2.
func TestTieIsUnbiased(t *testing.T) {
	const (
		n      = 256
		trials = 2000
	)
	src := rng.New(5)
	for _, d := range []Dynamics{TwoChoices{}, ThreeMajority{}, Undecided{}} {
		wins := 0
		for i := 0; i < trials; i++ {
			out, err := Run(d, Counts{C0: n / 2, C1: n / 2}, src, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if out.Winner == 0 {
				wins++
			}
		}
		est, err := stats.WilsonInterval(wins, trials, stats.Z99)
		if err != nil {
			t.Fatal(err)
		}
		if 0.5 < est.Lo || 0.5 > est.Hi {
			t.Errorf("%s: tie win probability CI [%.4f, %.4f] misses 1/2", d.Name(), est.Lo, est.Hi)
		}
	}
}

func TestProtocolValidation(t *testing.T) {
	p := &Protocol{Dynamics: ThreeMajority{}}
	src := rng.New(1)
	if _, err := p.Trial(1, 0, src); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := p.Trial(100, 3, src); err == nil {
		t.Error("odd gap for even n accepted")
	}
	if _, err := p.Trial(100, 100, src); err == nil {
		t.Error("gap beyond n-2 accepted")
	}
	if _, err := p.Trial(100, 20, src); err != nil {
		t.Errorf("feasible trial rejected: %v", err)
	}
}

// TestProtocolDeterministic checks that identical seeds reproduce identical
// trial outcomes, the property the parallel estimator relies on.
func TestProtocolDeterministic(t *testing.T) {
	p := &Protocol{Dynamics: Undecided{}}
	for seed := uint64(0); seed < 10; seed++ {
		r1, err1 := p.Trial(512, 16, rng.New(seed))
		r2, err2 := p.Trial(512, 16, rng.New(seed))
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1 != r2 {
			t.Fatalf("seed %d: non-deterministic trial", seed)
		}
	}
}

func TestThreeMajorityAdoptProbability(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0, 0}, {1, 1}, {0.5, 0.5},
	}
	for _, tc := range cases {
		if got := threeMajorityAdopt0(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("threeMajorityAdopt0(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	// The map must amplify: strictly above the diagonal on (1/2, 1).
	for _, p := range []float64{0.55, 0.7, 0.9} {
		if got := threeMajorityAdopt0(p); got <= p {
			t.Errorf("threeMajorityAdopt0(%g) = %g does not amplify", p, got)
		}
	}
}

// TestUSDDrainsUndecided checks that with one opinion extinct the engine
// declares consensus immediately, and that an all-undecided configuration
// is reported as permanently undecided.
func TestUSDDrainsUndecided(t *testing.T) {
	out, err := Run(Undecided{}, Counts{C0: 5, U: 20}, rng.New(8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != 0 {
		t.Errorf("winner = %d, want 0 with the other opinion extinct", out.Winner)
	}
	out, err = Run(Undecided{}, Counts{U: 10}, rng.New(8), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != -1 || out.Rounds != 0 {
		t.Errorf("all-undecided start: got winner=%d rounds=%d, want immediate undecided", out.Winner, out.Rounds)
	}
}

func TestAllListsEveryDynamicsOnce(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.Name()] {
			t.Errorf("duplicate dynamics %q", d.Name())
		}
		seen[d.Name()] = true
	}
	if len(seen) != 4 {
		t.Errorf("All() has %d dynamics, want 4", len(seen))
	}
}
