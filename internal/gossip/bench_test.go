package gossip

import (
	"testing"

	"lvmajority/internal/rng"
)

// BenchmarkStep measures one synchronous round of each dynamics; the
// count-based engine makes this O(1) in the population size.
func BenchmarkStep(b *testing.B) {
	for _, d := range All() {
		b.Run(d.Name(), func(b *testing.B) {
			src := rng.New(1)
			c := Counts{C0: 600_000, C1: 400_000}
			if d.Undecided() {
				c = Counts{C0: 500_000, C1: 400_000, U: 100_000}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c = d.Step(c, src)
				if c.N() != 1_000_000 {
					b.Fatal("population changed")
				}
			}
		})
	}
}

// BenchmarkRunThreeMajority measures a full drift-dynamics execution from a
// 60/40 split of a large population.
func BenchmarkRunThreeMajority(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run(ThreeMajority{}, Counts{C0: 60_000, C1: 40_000}, src, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Winner == -1 {
			b.Fatal("undecided")
		}
	}
}
