package gossip_test

import (
	"fmt"

	"lvmajority/internal/gossip"
	"lvmajority/internal/rng"
)

// Run three-majority dynamics from a 60/40 split: the drift toward the
// majority decides the execution in a handful of rounds.
func ExampleRun() {
	out, err := gossip.Run(gossip.ThreeMajority{}, gossip.Counts{C0: 600, C1: 400}, rng.New(1), gossip.RunOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("winner: opinion %d\n", out.Winner)
	fmt.Printf("rounds: fewer than 20: %v\n", out.Rounds < 20)
	// Output:
	// winner: opinion 0
	// rounds: fewer than 20: true
}

// The mean-field map of the undecided-state dynamics: from a tie with no
// undecided agents, half of each opinion's supporters expect to sample the
// opposite opinion and become undecided.
func ExampleDynamics() {
	var usd gossip.Undecided
	e0, e1, eu := usd.MeanStep(gossip.Counts{C0: 100, C1: 100})
	fmt.Printf("expected next counts: %.0f / %.0f, %.0f undecided\n", e0, e1, eu)
	// Output:
	// expected next counts: 50 / 50, 100 undecided
}
