package mc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lvmajority/internal/progress"
	"lvmajority/internal/stats"
)

// BlockFunc advances one whole block of Bernoulli trials: indices [lo, hi)
// of the run, writing trial rep's outcome to wins[rep-lo]. Trial rep must
// draw its randomness only from rng.NewStream(seed, rep) — the same
// index-keyed stream contract as the scalar pool — so block boundaries and
// worker counts can never change results. A BlockFunc may be stateful (the
// lockstep engines own their lane planes) and is never called concurrently;
// the pool builds one per worker via newWorker.
type BlockFunc func(seed uint64, lo, hi int, wins []bool) error

// EstimateBernoulliBlocks is EstimateBernoulli for trial sources that
// advance whole blocks of trials per call, such as the lockstep population
// kernel. lanes is the preferred block width: the pool hands each worker
// contiguous index ranges of size min(lanes, remaining), so every block but
// the last is full-width.
//
// The block-size heuristic interacts with early stopping as follows: the
// sequential estimator's batch boundaries are identical to the scalar
// path's (they depend only on Replicates and BatchSize), and each batch is
// subdivided into blocks of at most lanes trials. A batch therefore costs
// at most ⌈size/lanes⌉ block calls, and the estimator still inspects the
// Wilson interval at exactly the scalar batch boundaries — early stopping
// terminates at the same trial count, with the same estimate, as the
// scalar path, never more than one batch beyond the stopping point.
func EstimateBernoulliBlocks(opts BernoulliOptions, lanes int, newWorker func() (BlockFunc, error)) (stats.BernoulliEstimate, error) {
	if lanes <= 0 {
		return stats.BernoulliEstimate{}, fmt.Errorf("mc: non-positive block width %d", lanes)
	}
	return estimateBernoulli(opts, func(lo, hi int, opts Options) (int, error) {
		return countWinsBlocks(lo, hi, opts, lanes, newWorker)
	})
}

// countWinsBlocks runs trials [lo, hi) in blocks of at most lanes trials
// and counts successes. Like runPool, index ranges are handed out through
// an atomic cursor, so the assignment of blocks to workers is
// scheduling-dependent while results are not.
func countWinsBlocks(lo, hi int, opts Options, lanes int, newWorker func() (BlockFunc, error)) (int, error) {
	n := hi - lo
	if n <= 0 {
		return 0, nil
	}
	wins := make([]bool, n)
	interrupted := func() error {
		if opts.Interrupt == nil {
			return nil
		}
		return opts.Interrupt()
	}
	report := blockReporter(lo, n, opts, wins)
	workers := opts.Workers
	if blocks := (n + lanes - 1) / lanes; workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		fn, err := newWorkerSafe(newWorker, opts.Seed)
		if err != nil {
			return 0, err
		}
		for b := lo; b < hi; b += lanes {
			if err := interrupted(); err != nil {
				return 0, err
			}
			end := b + lanes
			if end > hi {
				end = hi
			}
			if err := callBlock(fn, opts.Seed, b, end, wins[b-lo:end-lo]); err != nil {
				return 0, err
			}
			report(b, end)
		}
		return countTrue(wins), nil
	}

	var next atomic.Int64
	next.Store(int64(lo))
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn, err := newWorkerSafe(newWorker, opts.Seed)
			if err != nil {
				errs[w] = err
				failed.Store(true)
				return
			}
			for !failed.Load() {
				if err := interrupted(); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				b := int(next.Add(int64(lanes))) - lanes
				if b >= hi {
					return
				}
				end := b + lanes
				if end > hi {
					end = hi
				}
				if err := callBlock(fn, opts.Seed, b, end, wins[b-lo:end-lo]); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				report(b, end)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return countTrue(wins), nil
}

// blockReporter returns the per-block completion callback: it publishes one
// trials snapshot per settled block, counting that block's wins into an
// atomic so the snapshot carries a running success count. Blocks are coarse
// enough that no stride is needed. Observation-only: the pool's return value
// never reads the atomic.
func blockReporter(lo, n int, opts Options, wins []bool) func(b, end int) {
	if opts.Progress == nil {
		return func(int, int) {}
	}
	var done, won atomic.Int64
	return func(b, end int) {
		blockWins := 0
		for _, w := range wins[b-lo : end-lo] {
			if w {
				blockWins++
			}
		}
		d := done.Add(int64(end - b))
		wn := won.Add(int64(blockWins))
		opts.Progress(progress.Event{
			Kind:  progress.KindTrials,
			Done:  int64(lo) + d,
			Total: int64(opts.Replicates),
			Wins:  wn,
		})
	}
}

func countTrue(wins []bool) int {
	total := 0
	for _, w := range wins {
		if w {
			total++
		}
	}
	return total
}
