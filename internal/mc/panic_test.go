package mc

import (
	"errors"
	"fmt"
	"testing"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/rng"
	"lvmajority/internal/testutil"
)

// TestRunPanicIsolated: an engine panic in one replicate must come back
// as a structured *TrialPanicError carrying the trial index and seed —
// never crash the pool — for every worker count.
func TestRunPanicIsolated(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := Run(Options{Replicates: 200, Workers: workers, Seed: 99},
				func(rep int, src *rng.Source) (int, error) {
					if rep == 137 {
						panic("engine blew up")
					}
					return rep, nil
				})
			var tp *TrialPanicError
			if !errors.As(err, &tp) {
				t.Fatalf("error %v is not a TrialPanicError", err)
			}
			if tp.Trial != 137 || tp.Seed != 99 {
				t.Errorf("TrialPanicError{Trial: %d, Seed: %d}, want trial 137 seed 99", tp.Trial, tp.Seed)
			}
			if tp.Value != "engine blew up" || tp.Stack == "" {
				t.Errorf("panic value %v / empty stack not captured", tp.Value)
			}
		})
	}
}

// TestRunPanicErrorValueUnwraps: a panic with an error value stays
// reachable through errors.Is across the recovery boundary.
func TestRunPanicErrorValueUnwraps(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	sentinel := errors.New("invariant violated")
	_, err := Run(Options{Replicates: 10, Workers: 2, Seed: 1},
		func(rep int, src *rng.Source) (int, error) {
			if rep == 5 {
				panic(sentinel)
			}
			return 0, nil
		})
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not unwrap to the panic value", err)
	}
}

// TestWorkerSetupPanicIsolated: a panic during per-worker engine
// construction reports Trial == -1.
func TestWorkerSetupPanicIsolated(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	err := runPool(0, 100, Options{Replicates: 100, Workers: 4, Seed: 7}.normalized(),
		func() (replicateFunc, error) {
			panic("bad engine config")
		})
	var tp *TrialPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("error %v is not a TrialPanicError", err)
	}
	if tp.Trial != -1 {
		t.Errorf("Trial = %d, want -1 for setup panic", tp.Trial)
	}
}

// TestBlockPanicIsolated: the block pool recovers a panicking BlockFunc
// into a TrialPanicError naming the block's first trial.
func TestBlockPanicIsolated(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := countWinsBlocks(0, 256, Options{Replicates: 256, Workers: workers, Seed: 3}.normalized(), 64,
				func() (BlockFunc, error) {
					return func(seed uint64, lo, hi int, wins []bool) error {
						if lo == 128 {
							panic("lane plane corrupted")
						}
						return nil
					}, nil
				})
			var tp *TrialPanicError
			if !errors.As(err, &tp) {
				t.Fatalf("error %v is not a TrialPanicError", err)
			}
			if tp.Trial != 128 {
				t.Errorf("Trial = %d, want block start 128", tp.Trial)
			}
		})
	}
}

// TestChaosTrialStartPanic: a fault plan arming the trial-start site with
// a panic flows through the same recovery path as a real engine panic,
// and results after Disarm are untainted.
func TestChaosTrialStartPanic(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{
		Site: faultpoint.TrialStart, After: 10, Mode: faultpoint.ModePanic, Msg: "chaos",
	}))
	_, err := Run(Options{Replicates: 100, Workers: 4, Seed: 11},
		func(rep int, src *rng.Source) (int, error) { return rep, nil })
	faultpoint.Disarm()
	var tp *TrialPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("injected panic surfaced as %v, not TrialPanicError", err)
	}
	if _, ok := tp.Value.(faultpoint.InjectedPanic); !ok {
		t.Errorf("panic value %#v is not the injected one", tp.Value)
	}

	// Disarmed rerun: clean, deterministic results.
	out, err := Run(Options{Replicates: 100, Workers: 4, Seed: 11},
		func(rep int, src *rng.Source) (int, error) { return rep, nil })
	if err != nil || len(out) != 100 {
		t.Fatalf("post-chaos run failed: %v", err)
	}
}

// TestChaosTrialStartError: an injected error at trial-start fails the
// run with the InjectedError intact through the pool's error path.
func TestChaosTrialStartError(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	faultpoint.Arm(faultpoint.NewPlan(faultpoint.Rule{
		Site: faultpoint.TrialStart, After: 3, Mode: faultpoint.ModeError, Msg: "chaos io",
	}))
	defer faultpoint.Disarm()
	_, err := Run(Options{Replicates: 50, Workers: 2, Seed: 5},
		func(rep int, src *rng.Source) (int, error) { return rep, nil })
	var inj *faultpoint.InjectedError
	if !errors.As(err, &inj) || inj.Site != faultpoint.TrialStart {
		t.Fatalf("error %v is not the injected trial-start error", err)
	}
}
