package mc

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// blockOfTrial wraps a scalar trial as a BlockFunc obeying the block
// contract: trial rep draws only from rng.NewStream(seed, rep).
func blockOfTrial(trial func(rep int, src *rng.Source) (bool, error)) BlockFunc {
	return func(seed uint64, lo, hi int, wins []bool) error {
		var src rng.Source
		for rep := lo; rep < hi; rep++ {
			src.ReseedStream(seed, uint64(rep))
			won, err := trial(rep, &src)
			if err != nil {
				return err
			}
			wins[rep-lo] = won
		}
		return nil
	}
}

func coin(p float64) func(rep int, src *rng.Source) (bool, error) {
	return func(_ int, src *rng.Source) (bool, error) {
		return src.Bernoulli(p), nil
	}
}

// TestBlocksMatchScalarEstimator pins the central equivalence: for a trial
// source obeying the index-keyed stream contract, the block estimator
// returns exactly the scalar estimator's result — same successes, same
// trials — for every block width, including widths that do not divide the
// replicate count (the last block of each batch is then partial: the
// block-size heuristic is block = min(remaining, lanes)).
func TestBlocksMatchScalarEstimator(t *testing.T) {
	opts := BernoulliOptions{Options: Options{Replicates: 5000, Workers: 4, Seed: 11}}
	want, err := EstimateBernoulli(opts, coin(0.42))
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 7, 64, 128, 999, 5000, 9000} {
		got, err := EstimateBernoulliBlocks(opts, lanes, func() (BlockFunc, error) {
			return blockOfTrial(coin(0.42)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("lanes=%d: %+v, scalar %+v", lanes, got, want)
		}
	}
}

func TestBlocksWorkerCountInvariance(t *testing.T) {
	estimate := func(workers int) stats.BernoulliEstimate {
		est, err := EstimateBernoulliBlocks(BernoulliOptions{
			Options: Options{Replicates: 3000, Workers: workers, Seed: 9},
		}, 128, func() (BlockFunc, error) {
			return blockOfTrial(coin(0.42)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	want := estimate(1)
	for _, workers := range []int{2, 8} {
		if got := estimate(workers); got != want {
			t.Fatalf("workers=%d: %+v, workers=1: %+v", workers, got, want)
		}
	}
}

// TestBlocksEarlyStopMatchesScalar checks that early stopping inspects the
// same batch boundaries as the scalar path: the block run must terminate
// with the identical trial count and estimate, never running past the
// scalar stopping point (the batches are subdivided into blocks, so no
// block extends beyond the batch that settles the comparison).
func TestBlocksEarlyStopMatchesScalar(t *testing.T) {
	opts := BernoulliOptions{
		Options:   Options{Replicates: 100000, Seed: 3, Workers: 4},
		EarlyStop: true,
		Target:    0.5,
	}
	want, err := EstimateBernoulli(opts, coin(0.95))
	if err != nil {
		t.Fatal(err)
	}
	if want.Trials >= 100000 {
		t.Fatalf("scalar run did not stop early: %+v", want)
	}
	var mu sync.Mutex
	maxRep := -1
	trialTracked := func(rep int, src *rng.Source) (bool, error) {
		mu.Lock()
		if rep > maxRep {
			maxRep = rep
		}
		mu.Unlock()
		return src.Bernoulli(0.95), nil
	}
	got, err := EstimateBernoulliBlocks(opts, 64, func() (BlockFunc, error) {
		return blockOfTrial(trialTracked), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("block early stop %+v, scalar %+v", got, want)
	}
	if maxRep >= want.Trials {
		t.Fatalf("block run executed trial %d beyond the scalar stopping point %d", maxRep, want.Trials)
	}
}

// TestBlocksPartialLastBlock pins the heuristic directly: every call the
// pool makes is full-width except the final one, which gets the remainder.
func TestBlocksPartialLastBlock(t *testing.T) {
	var mu sync.Mutex
	var widths []int
	_, err := EstimateBernoulliBlocks(BernoulliOptions{
		Options: Options{Replicates: 1000, Workers: 1, Seed: 1},
	}, 300, func() (BlockFunc, error) {
		return func(seed uint64, lo, hi int, wins []bool) error {
			mu.Lock()
			widths = append(widths, hi-lo)
			mu.Unlock()
			return blockOfTrial(coin(0.5))(seed, lo, hi, wins)
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(widths) != 4 || widths[0] != 300 || widths[1] != 300 || widths[2] != 300 || widths[3] != 100 {
		t.Fatalf("block widths %v, want [300 300 300 100]", widths)
	}
}

func TestBlocksPropagateErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := EstimateBernoulliBlocks(BernoulliOptions{
		Options: Options{Replicates: 1000, Workers: 4, Seed: 1},
	}, 64, func() (BlockFunc, error) {
		return func(seed uint64, lo, hi int, wins []bool) error {
			if lo >= 512 {
				return boom
			}
			return blockOfTrial(coin(0.5))(seed, lo, hi, wins)
		}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	if _, err := EstimateBernoulliBlocks(BernoulliOptions{
		Options: Options{Replicates: 10},
	}, 0, func() (BlockFunc, error) { return nil, nil }); err == nil || !strings.Contains(err.Error(), "block width") {
		t.Fatalf("lanes=0 accepted: %v", err)
	}
}

func TestBlocksInterrupt(t *testing.T) {
	stop := errors.New("stop")
	calls := 0
	_, err := EstimateBernoulliBlocks(BernoulliOptions{
		Options: Options{Replicates: 1000, Workers: 1, Seed: 1, Interrupt: func() error {
			calls++
			if calls > 2 {
				return stop
			}
			return nil
		}},
	}, 100, func() (BlockFunc, error) {
		return blockOfTrial(coin(0.5)), nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
}
