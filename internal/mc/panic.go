package mc

import (
	"fmt"
	"runtime/debug"

	"lvmajority/internal/faultpoint"
	"lvmajority/internal/rng"
)

// TrialPanicError is the structured failure a pool returns when a
// replicate (or a worker's engine construction) panics. The pool never
// crashes the process on an engine panic: the panic is recovered at the
// replicate boundary, annotated with enough context to reproduce it —
// the trial index and the root seed pin the exact rng stream — and the
// run fails like any other errored run, with the remaining workers
// draining cleanly.
type TrialPanicError struct {
	// Trial is the replicate index that panicked (the first index of the
	// block for block pools), or -1 when worker setup itself panicked.
	Trial int
	// Seed is the run's root seed; rng.NewStream(Seed, Trial) is the
	// panicking replicate's stream.
	Seed uint64
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack string
}

func (e *TrialPanicError) Error() string {
	if e.Trial < 0 {
		return fmt.Sprintf("mc: panic during worker setup (seed %d): %v", e.Seed, e.Value)
	}
	return fmt.Sprintf("mc: panic in trial %d (seed %d): %v", e.Trial, e.Seed, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so callers can
// errors.Is/As through the recovery boundary.
func (e *TrialPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recovered converts a recover() value into a *TrialPanicError.
func recovered(trial int, seed uint64, v any) *TrialPanicError {
	return &TrialPanicError{Trial: trial, Seed: seed, Value: v, Stack: string(debug.Stack())}
}

// callReplicate runs one replicate inside the panic-isolation boundary.
// The trial-start fault point sits inside the boundary, so an injected
// panic exercises exactly the recovery path a real engine panic takes.
func callReplicate(fn replicateFunc, rep int, seed uint64, src *rng.Source) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = recovered(rep, seed, v)
		}
	}()
	if err := faultpoint.Hit(faultpoint.TrialStart); err != nil {
		return err
	}
	return fn(rep, src)
}

// callBlock is callReplicate for block pools; the block's first trial
// index identifies the failure.
func callBlock(fn BlockFunc, seed uint64, lo, hi int, wins []bool) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = recovered(lo, seed, v)
		}
	}()
	if err := faultpoint.Hit(faultpoint.TrialStart); err != nil {
		return err
	}
	return fn(seed, lo, hi, wins)
}

// newWorkerSafe isolates panics in per-worker setup (engine construction
// allocates model state that can legitimately validate-and-panic).
func newWorkerSafe[F any](newWorker func() (F, error), seed uint64) (fn F, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = recovered(-1, seed, v)
		}
	}()
	return newWorker()
}
