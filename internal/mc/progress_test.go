package mc

import (
	"sync"
	"testing"

	"lvmajority/internal/progress"
	"lvmajority/internal/rng"
)

// coinTrial is a deterministic Bernoulli trial: success iff the replicate's
// own stream opens below p.
func coinTrial(p float64) func(rep int, src *rng.Source) (bool, error) {
	return func(rep int, src *rng.Source) (bool, error) {
		return src.Float64() < p, nil
	}
}

// collector is a concurrency-safe event sink for tests.
type collector struct {
	mu     sync.Mutex
	events []progress.Event
}

func (c *collector) hook() progress.Hook {
	return func(e progress.Event) {
		c.mu.Lock()
		c.events = append(c.events, e)
		c.mu.Unlock()
	}
}

func (c *collector) snapshot() []progress.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]progress.Event(nil), c.events...)
}

// TestEstimateUnchangedByProgressHook is the mc-level determinism contract:
// the estimate with a maximally chatty hook attached equals the estimate
// with no hook, replicate for replicate, on both the fixed and early-stop
// paths and for serial and parallel pools.
func TestEstimateUnchangedByProgressHook(t *testing.T) {
	for _, tc := range []struct {
		name      string
		workers   int
		earlyStop bool
	}{
		{"serial-fixed", 1, false},
		{"parallel-fixed", 8, false},
		{"serial-earlystop", 1, true},
		{"parallel-earlystop", 8, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := BernoulliOptions{
				Options:   Options{Replicates: 4000, Workers: tc.workers, Seed: 42},
				EarlyStop: tc.earlyStop,
				Target:    0.5,
			}
			quiet, err := EstimateBernoulli(base, coinTrial(0.9))
			if err != nil {
				t.Fatal(err)
			}
			var c collector
			chatty := base
			chatty.Progress = c.hook()
			loud, err := EstimateBernoulli(chatty, coinTrial(0.9))
			if err != nil {
				t.Fatal(err)
			}
			if quiet != loud {
				t.Errorf("hook perturbed the estimate: %+v vs %+v", quiet, loud)
			}
			if len(c.snapshot()) == 0 {
				t.Error("chatty run emitted no events")
			}
		})
	}
}

// TestRunPoolEmitsTrialsSnapshots: the pool publishes snapshots whose Done
// never exceeds the budget and whose final snapshot completes it, and win
// counts never exceed trial counts.
func TestRunPoolEmitsTrialsSnapshots(t *testing.T) {
	var c collector
	opts := BernoulliOptions{
		Options: Options{Replicates: 2000, Workers: 4, Seed: 7, Progress: c.hook()},
	}
	if _, err := EstimateBernoulli(opts, coinTrial(0.5)); err != nil {
		t.Fatal(err)
	}
	events := c.snapshot()
	sawFinalTrials, sawEstimate := false, false
	for _, e := range events {
		switch e.Kind {
		case progress.KindTrials:
			if e.Total != 2000 {
				t.Fatalf("trials snapshot total %d, want 2000", e.Total)
			}
			if e.Done < 1 || e.Done > e.Total {
				t.Fatalf("trials snapshot done %d outside (0, %d]", e.Done, e.Total)
			}
			if e.Wins > e.Done {
				t.Fatalf("snapshot wins %d > done %d", e.Wins, e.Done)
			}
			if e.Done == e.Total {
				sawFinalTrials = true
			}
		case progress.KindEstimate:
			sawEstimate = true
			if e.Estimate == nil {
				t.Fatal("estimate event with nil estimate")
			}
			if e.Estimate.Trials != 2000 || e.Done != 2000 {
				t.Fatalf("estimate event %+v, want 2000 trials", e)
			}
		}
	}
	if !sawFinalTrials {
		t.Error("no budget-completing trials snapshot")
	}
	if !sawEstimate {
		t.Error("no estimate event")
	}
}

// TestEarlyStopEmitsCumulativeWins: estimate events at batch boundaries
// carry cumulative (not per-batch) success counts.
func TestEarlyStopEmitsCumulativeWins(t *testing.T) {
	var c collector
	opts := BernoulliOptions{
		Options:   Options{Replicates: 10000, Workers: 2, Seed: 3, Progress: c.hook()},
		EarlyStop: true,
		Target:    0.5, // stays inside the interval at p=0.5: all batches run
		BatchSize: 1000,
	}
	est, err := EstimateBernoulli(opts, coinTrial(0.5))
	if err != nil {
		t.Fatal(err)
	}
	var lastEstimate *progress.Event
	var estimates int
	for _, e := range c.snapshot() {
		if e.Kind == progress.KindEstimate {
			estimates++
			cp := e
			lastEstimate = &cp
			if e.Done%1000 != 0 {
				t.Fatalf("estimate event at done=%d, want a batch boundary", e.Done)
			}
		}
	}
	if estimates != 10 {
		t.Errorf("saw %d estimate events, want one per batch (10)", estimates)
	}
	if lastEstimate == nil || lastEstimate.Estimate == nil {
		t.Fatal("no estimate events")
	}
	if *lastEstimate.Estimate != est {
		t.Errorf("final estimate event %+v does not match returned estimate %+v", lastEstimate.Estimate, est)
	}
	if lastEstimate.Wins != int64(est.Successes) {
		t.Errorf("final estimate event wins %d, want cumulative %d", lastEstimate.Wins, est.Successes)
	}
}

// TestBlocksUnchangedByProgressHook: the block pool's estimate with a hook
// equals the scalar pool's without one, and block snapshots carry coherent
// win counts.
func TestBlocksUnchangedByProgressHook(t *testing.T) {
	const lanes = 64
	blockWorker := func() (BlockFunc, error) {
		return func(seed uint64, lo, hi int, wins []bool) error {
			var src rng.Source
			for rep := lo; rep < hi; rep++ {
				src.ReseedStream(seed, uint64(rep))
				wins[rep-lo] = src.Float64() < 0.7
			}
			return nil
		}, nil
	}
	base := BernoulliOptions{Options: Options{Replicates: 3000, Workers: 4, Seed: 11}}
	quiet, err := EstimateBernoulliBlocks(base, lanes, blockWorker)
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	chatty := base
	chatty.Progress = c.hook()
	loud, err := EstimateBernoulliBlocks(chatty, lanes, blockWorker)
	if err != nil {
		t.Fatal(err)
	}
	if quiet != loud {
		t.Errorf("hook perturbed the block estimate: %+v vs %+v", quiet, loud)
	}
	scalar, err := EstimateBernoulli(base, coinTrial(0.7))
	if err != nil {
		t.Fatal(err)
	}
	if loud != scalar {
		t.Errorf("block estimate %+v diverges from scalar %+v", loud, scalar)
	}
	trials := 0
	for _, e := range c.snapshot() {
		if e.Kind != progress.KindTrials {
			continue
		}
		trials++
		if e.Wins > e.Done || e.Done > e.Total {
			t.Fatalf("incoherent block snapshot %+v", e)
		}
	}
	if trials == 0 {
		t.Error("block pool emitted no trials snapshots")
	}
}
