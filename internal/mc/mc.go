// Package mc is the shared parallel Monte-Carlo replication harness: it
// runs many independent replicates of a stochastic simulation on a worker
// pool with deterministic per-replicate random streams.
//
// Every replicate draws randomness only from its own stream, keyed by the
// replicate index via rng.NewStream — never from a per-worker stream — so
// the results are byte-identical for every worker count, including 1.
// RunEngine additionally reuses one sim.Engine per worker through Reset,
// which keeps the per-replicate hot path free of allocation.
package mc

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lvmajority/internal/progress"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
)

// Options configure a replicated run.
type Options struct {
	// Replicates is the number of independent replicates (default 1000).
	Replicates int
	// Workers is the parallel worker count (default GOMAXPROCS, capped at
	// Replicates). The choice affects scheduling only, never results.
	Workers int
	// Seed is the root seed; replicate i draws from rng.NewStream(Seed, i).
	Seed uint64
	// Interrupt, when non-nil, is polled between replicates; a non-nil
	// return aborts the run with that error. It exists so long runs can be
	// cancelled promptly (e.g. by a server-side context); while it returns
	// nil it never affects results — replicates still draw only from their
	// index-keyed streams.
	Interrupt func() error
	// Progress, when non-nil, receives progress.KindTrials snapshots as
	// replicates complete. Like Interrupt, it is observation-only: events
	// carry copies of counters the pool already maintains, emission sits
	// outside replicate execution, and nothing a hook does can reach the
	// index-keyed streams — so attaching one never changes results. The
	// hook is called concurrently from worker goroutines.
	Progress progress.Hook
}

func (o Options) normalized() Options {
	if o.Replicates <= 0 {
		o.Replicates = 1000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Replicates {
		o.Workers = o.Replicates
	}
	return o
}

// Run executes fn for every replicate index in [0, Replicates) on a worker
// pool and returns the results in replicate order. Each invocation receives
// the replicate's own deterministic stream, so the returned slice is
// identical for every Workers setting. The first error aborts the run.
//
// The Source passed to fn is only valid for that invocation: workers reuse
// one Source across replicates by reseeding it in place, so fn must not
// retain it.
func Run[T any](opts Options, fn func(rep int, src *rng.Source) (T, error)) ([]T, error) {
	opts = opts.normalized()
	out := make([]T, opts.Replicates)
	err := runPool(0, opts.Replicates, opts, func() (replicateFunc, error) {
		return func(rep int, src *rng.Source) error {
			v, err := fn(rep, src)
			if err != nil {
				return err
			}
			out[rep] = v
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunEngine is Run for replicated sim.Engine executions: each worker
// constructs one engine via newEngine and reuses it across its replicates,
// calling Reset with the replicate's stream before each invocation of fn.
// The per-replicate cost is therefore simulation only — engine construction
// and its allocations happen once per worker.
func RunEngine[T any](opts Options, newEngine func() (sim.Engine, error), fn func(rep int, e sim.Engine) (T, error)) ([]T, error) {
	opts = opts.normalized()
	out := make([]T, opts.Replicates)
	err := runPool(0, opts.Replicates, opts, func() (replicateFunc, error) {
		e, err := newEngine()
		if err != nil {
			return nil, err
		}
		return func(rep int, src *rng.Source) error {
			e.Reset(src)
			if err := e.Err(); err != nil {
				return err
			}
			v, err := fn(rep, e)
			if err != nil {
				return err
			}
			out[rep] = v
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// replicateFunc runs one replicate with its deterministic stream.
type replicateFunc func(rep int, src *rng.Source) error

// runPool distributes replicate indices [lo, hi) over opts.Workers workers.
// newWorker is called once per worker to build its (possibly stateful)
// replicate function; index order within a worker is increasing but the
// assignment of indices to workers is scheduling-dependent — which is why
// replicate functions may only draw randomness from the provided stream.
func runPool(lo, hi int, opts Options, newWorker func() (replicateFunc, error)) error {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	interrupted := func() error {
		if opts.Interrupt == nil {
			return nil
		}
		return opts.Interrupt()
	}
	report := trialReporter(lo, n, opts)
	if workers <= 1 {
		fn, err := newWorkerSafe(newWorker, opts.Seed)
		if err != nil {
			return err
		}
		var src rng.Source
		for rep := lo; rep < hi; rep++ {
			if err := interrupted(); err != nil {
				return err
			}
			src.ReseedStream(opts.Seed, uint64(rep))
			if err := callReplicate(fn, rep, opts.Seed, &src); err != nil {
				return err
			}
			report(1)
		}
		return nil
	}

	var next atomic.Int64
	next.Store(int64(lo))
	var failed atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn, err := newWorkerSafe(newWorker, opts.Seed)
			if err != nil {
				errs[w] = err
				failed.Store(true)
				return
			}
			var src rng.Source
			for !failed.Load() {
				if err := interrupted(); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				rep := int(next.Add(1)) - 1
				if rep >= hi {
					return
				}
				src.ReseedStream(opts.Seed, uint64(rep))
				if err := callReplicate(fn, rep, opts.Seed, &src); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
				report(1)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// trialReporter returns the pool's completion callback: workers call it with
// the number of replicates they just finished and it publishes a
// progress.KindTrials snapshot roughly every 1/64th of the span (always at
// completion), built from one atomic counter. With a nil hook it collapses
// to a no-op so the pools pay a single nil check.
func trialReporter(lo, n int, opts Options) func(delta int) {
	if opts.Progress == nil {
		return func(int) {}
	}
	stride := int64(n / 64)
	if stride < 1 {
		stride = 1
	}
	var done atomic.Int64
	return func(delta int) {
		d := done.Add(int64(delta))
		if d/stride != (d-int64(delta))/stride || d == int64(n) {
			opts.Progress(progress.Event{
				Kind:  progress.KindTrials,
				Done:  int64(lo) + d,
				Total: int64(opts.Replicates),
			})
		}
	}
}
