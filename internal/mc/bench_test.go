package mc

import (
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
)

// The benchmark pair below isolates the allocation effect of engine reuse:
// both run the same 1000-replicate LV-SD workload (n=128, gap 16) on the
// same pool; the "fresh" variant constructs one engine per replicate — the
// historical per-trial pattern of consensus.EstimateWinProbability — while
// the "reused" variant resets one engine per worker.

func benchOptions() Options {
	return Options{Replicates: 1000, Workers: 4, Seed: 42}
}

func lvWorkload() (lv.Params, lv.State) {
	return lv.Neutral(1, 1, 1, 0, lv.SelfDestructive), lv.State{X0: 72, X1: 56}
}

func BenchmarkReplicateFreshEngine(b *testing.B) {
	params, initial := lvWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(benchOptions(), func(_ int, src *rng.Source) (bool, error) {
			e, err := sim.NewLV(params, initial, false, src)
			if err != nil {
				return false, err
			}
			if _, err := sim.Run(e, sim.LVConsensus, sim.Limits{}); err != nil {
				return false, err
			}
			st := e.State()
			return st[0] > 0 && st[1] == 0, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicateReusedEngine(b *testing.B) {
	params, initial := lvWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := RunEngine(benchOptions(),
			func() (sim.Engine, error) { return sim.NewLV(params, initial, false, rng.New(0)) },
			func(_ int, e sim.Engine) (bool, error) {
				if _, err := sim.Run(e, sim.LVConsensus, sim.Limits{}); err != nil {
					return false, err
				}
				st := e.State()
				return st[0] > 0 && st[1] == 0, nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}
