package mc

import (
	"errors"
	"math"
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
	"lvmajority/internal/sim"
	"lvmajority/internal/stats"
)

// TestRunWorkerCountInvariance is the core determinism contract: the
// result slice must be byte-identical for every worker count, because
// replicate streams are keyed by index, not by worker.
func TestRunWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Run(Options{Replicates: 500, Workers: workers, Seed: 42},
			func(rep int, src *rng.Source) (float64, error) {
				// Consume a replicate-dependent amount of randomness so
				// any stream sharing would misalign the outputs.
				v := 0.0
				for i := 0; i <= rep%7; i++ {
					v = src.Float64()
				}
				return v, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: replicate %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Options{Replicates: 100, Workers: 4, Seed: 1},
		func(rep int, _ *rng.Source) (int, error) {
			if rep == 37 {
				return 0, boom
			}
			return rep, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunDefaults(t *testing.T) {
	out, err := Run(Options{}, func(rep int, _ *rng.Source) (int, error) { return rep, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("default replicate count = %d, want 1000", len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("replicate %d stored %d", i, v)
		}
	}
}

// TestRunEngineMatchesFreshEngines verifies that reusing one engine per
// worker through Reset gives exactly the results of constructing a fresh
// engine per replicate — the reuse is purely an allocation optimization.
func TestRunEngineMatchesFreshEngines(t *testing.T) {
	params := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	initial := lv.State{X0: 20, X1: 12}
	opts := Options{Replicates: 300, Workers: 4, Seed: 7}

	type outcome struct {
		steps  int
		winner int
	}
	runOne := func(e sim.Engine) (outcome, error) {
		res, err := sim.Run(e, sim.LVConsensus, sim.Limits{})
		if err != nil {
			return outcome{}, err
		}
		st := e.State()
		w := -1
		switch {
		case st[0] > 0 && st[1] == 0:
			w = 0
		case st[1] > 0 && st[0] == 0:
			w = 1
		}
		return outcome{steps: res.Steps, winner: w}, nil
	}

	reused, err := RunEngine(opts,
		func() (sim.Engine, error) { return sim.NewLV(params, initial, false, rng.New(0)) },
		func(_ int, e sim.Engine) (outcome, error) { return runOne(e) })
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(opts, func(_ int, src *rng.Source) (outcome, error) {
		e, err := sim.NewLV(params, initial, false, src)
		if err != nil {
			return outcome{}, err
		}
		return runOne(e)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reused {
		if reused[i] != fresh[i] {
			t.Fatalf("replicate %d: reused %+v vs fresh %+v", i, reused[i], fresh[i])
		}
	}
}

func TestEstimateBernoulliAccuracy(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.93} {
		est, err := EstimateBernoulli(BernoulliOptions{
			Options: Options{Replicates: 20000, Workers: 8, Seed: 5},
		}, func(_ int, src *rng.Source) (bool, error) {
			return src.Bernoulli(p), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.P()-p) > 0.015 {
			t.Errorf("estimate for p=%v: %v", p, est)
		}
		if est.Lo > p || est.Hi < p {
			t.Errorf("CI %v does not contain %v", est, p)
		}
	}
}

func TestEstimateBernoulliWorkerInvariance(t *testing.T) {
	estimate := func(workers int) stats.BernoulliEstimate {
		est, err := EstimateBernoulli(BernoulliOptions{
			Options: Options{Replicates: 5000, Workers: workers, Seed: 9},
		}, func(_ int, src *rng.Source) (bool, error) {
			return src.Bernoulli(0.42), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	want := estimate(1)
	for _, workers := range []int{2, 8} {
		if got := estimate(workers); got.Successes != want.Successes {
			t.Fatalf("workers=%d: %d successes, workers=1: %d", workers, got.Successes, want.Successes)
		}
	}
}

func TestEstimateBernoulliEarlyStop(t *testing.T) {
	est, err := EstimateBernoulli(BernoulliOptions{
		Options:   Options{Replicates: 100000, Seed: 3},
		EarlyStop: true,
		Target:    0.5,
	}, func(_ int, src *rng.Source) (bool, error) {
		return src.Bernoulli(0.95), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials >= 100000 {
		t.Errorf("no early stop on a clear case: %v", est)
	}
	if est.Lo <= 0.5 {
		t.Errorf("estimate %v does not exclude the target", est)
	}

	if _, err := EstimateBernoulli(BernoulliOptions{
		Options:   Options{Replicates: 100},
		EarlyStop: true,
	}, func(_ int, _ *rng.Source) (bool, error) { return true, nil }); err == nil {
		t.Error("early stop without target accepted")
	}
}
