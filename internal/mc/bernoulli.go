package mc

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"lvmajority/internal/progress"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// BernoulliOptions configure EstimateBernoulli.
type BernoulliOptions struct {
	Options
	// Z is the normal quantile of the Wilson interval (default stats.Z99).
	Z float64
	// EarlyStop enables sequential estimation: trials run in batches and
	// the estimator returns as soon as the Wilson interval excludes Target
	// on either side — often an order of magnitude fewer trials when the
	// true probability is far from Target. Because the interval is
	// inspected repeatedly, its coverage is nominally optimistic
	// (sequential testing); callers that need calibrated intervals should
	// leave EarlyStop off.
	EarlyStop bool
	// Target is the probability the early-stop comparison tests against.
	// Required when EarlyStop is set.
	Target float64
	// BatchSize is the early-stop batch size (default Replicates/10,
	// at least 200).
	BatchSize int
}

// EstimateBernoulli estimates the success probability of trial over
// opts.Replicates replicated trials with a Wilson confidence interval.
// Trial i draws only from its own stream rng.NewStream(Seed, i), so the
// estimate is bit-identical for every worker count, and with EarlyStop the
// batch boundaries are fixed, keeping the sequential path deterministic
// too.
func EstimateBernoulli(opts BernoulliOptions, trial func(rep int, src *rng.Source) (bool, error)) (stats.BernoulliEstimate, error) {
	return estimateBernoulli(opts, func(lo, hi int, opts Options) (int, error) {
		return countWins(lo, hi, opts, trial)
	})
}

// EstimateBernoulliCounted runs the Bernoulli estimator over an arbitrary
// window-count function: count must run trials [lo, hi) — drawing trial
// rep's randomness only from rng.NewStream(opts.Seed, rep) — and return the
// number of successes. This is the seam the distributed fabric plugs into:
// both the fixed-size and the early-stopping control loops (and with them
// the batch boundaries the sequential path inspects) live here, so an
// implementation of count that farms windows out to remote workers yields
// estimates byte-identical to the local pools for any worker count and any
// shard assignment — window sums of wins are order-independent integers.
func EstimateBernoulliCounted(opts BernoulliOptions, count func(lo, hi int, opts Options) (int, error)) (stats.BernoulliEstimate, error) {
	return estimateBernoulli(opts, count)
}

// CountWins runs trials [lo, hi) on the scalar pool and returns the number
// of successes. Trial rep draws only from rng.NewStream(opts.Seed, rep), so
// a window's win count is independent of where — and alongside what — it is
// executed. opts.Replicates is only the progress total; Workers defaults to
// GOMAXPROCS.
func CountWins(lo, hi int, opts Options, trial func(rep int, src *rng.Source) (bool, error)) (int, error) {
	if hi < lo {
		return 0, fmt.Errorf("mc: inverted trial window [%d, %d)", lo, hi)
	}
	return countWins(lo, hi, normalizeWindow(lo, hi, opts), trial)
}

// CountWinsBlocks is CountWins for block trial sources (see
// EstimateBernoulliBlocks): trials [lo, hi) are advanced in blocks of at
// most lanes per call.
func CountWinsBlocks(lo, hi int, opts Options, lanes int, newWorker func() (BlockFunc, error)) (int, error) {
	if hi < lo {
		return 0, fmt.Errorf("mc: inverted trial window [%d, %d)", lo, hi)
	}
	if lanes <= 0 {
		return 0, fmt.Errorf("mc: non-positive block width %d", lanes)
	}
	return countWinsBlocks(lo, hi, normalizeWindow(lo, hi, opts), lanes, newWorker)
}

// normalizeWindow resolves worker and progress-total defaults for an
// explicit-window count: unlike Options.normalized it must not invent a
// 1000-replicate default, because the window bounds are the caller's.
func normalizeWindow(lo, hi int, opts Options) Options {
	if opts.Replicates < hi {
		opts.Replicates = hi
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if n := hi - lo; opts.Workers > n && n > 0 {
		opts.Workers = n
	}
	return opts
}

// estimateBernoulli is the estimator shared by the scalar and block trial
// pools: count runs trials [lo, hi) and returns the number of successes.
// Both the fixed-size and the sequential path depend on the trial source
// only through count, so the batch boundaries the early-stop logic inspects
// are identical however the trials are executed.
func estimateBernoulli(opts BernoulliOptions, count func(lo, hi int, opts Options) (int, error)) (stats.BernoulliEstimate, error) {
	opts.Options = opts.Options.normalized()
	if opts.Z <= 0 {
		opts.Z = stats.Z99
	}
	if !opts.EarlyStop {
		wins, err := count(0, opts.Replicates, opts.Options)
		if err != nil {
			return stats.BernoulliEstimate{}, err
		}
		est, err := stats.WilsonInterval(wins, opts.Replicates, opts.Z)
		if err == nil {
			emitEstimate(opts.Progress, est, opts.Replicates, opts.Replicates)
		}
		return est, err
	}

	if opts.Target <= 0 || opts.Target >= 1 {
		return stats.BernoulliEstimate{}, fmt.Errorf("mc: early-stop target %v outside (0, 1)", opts.Target)
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = opts.Replicates / 10
		if batch < 200 {
			batch = 200
		}
	}
	if batch > opts.Replicates {
		batch = opts.Replicates
	}
	successes, trials := 0, 0
	for trials < opts.Replicates {
		size := batch
		if trials+size > opts.Replicates {
			size = opts.Replicates - trials
		}
		batchOpts := opts.Options
		if h := opts.Progress; h != nil && successes > 0 {
			// Trial snapshots inside this batch carry only the batch's own
			// win counter; re-base them so observers see cumulative wins.
			base := int64(successes)
			batchOpts.Progress = func(e progress.Event) {
				if e.Kind == progress.KindTrials {
					e.Wins += base
				}
				h(e)
			}
		}
		wins, err := count(trials, trials+size, batchOpts)
		if err != nil {
			return stats.BernoulliEstimate{}, err
		}
		successes += wins
		trials += size

		combined, err := stats.WilsonInterval(successes, trials, opts.Z)
		if err != nil {
			return stats.BernoulliEstimate{}, err
		}
		emitEstimate(opts.Progress, combined, trials, opts.Replicates)
		if combined.Lo > opts.Target || combined.Hi < opts.Target {
			return combined, nil
		}
	}
	return stats.WilsonInterval(successes, trials, opts.Z)
}

// emitEstimate publishes one running-estimate snapshot at a batch boundary.
func emitEstimate(h progress.Hook, est stats.BernoulliEstimate, done, total int) {
	if h == nil {
		return
	}
	e := est // copy: the Event must not alias the estimator's value
	h(progress.Event{
		Kind:     progress.KindEstimate,
		Done:     int64(done),
		Total:    int64(total),
		Wins:     int64(est.Successes),
		Estimate: &e,
	})
}

// countWins runs trials [lo, hi) on the pool and counts successes. With a
// hook attached it additionally mirrors the win count into an atomic so the
// pool's trial snapshots can carry it; the mirror is observation-only — the
// returned count still comes from the wins slice alone.
func countWins(lo, hi int, opts Options, trial func(rep int, src *rng.Source) (bool, error)) (int, error) {
	wins := make([]bool, hi-lo)
	var winCount atomic.Int64
	observed := opts.Progress != nil
	if observed {
		h := opts.Progress
		opts.Progress = func(e progress.Event) {
			if e.Kind == progress.KindTrials {
				e.Wins = winCount.Load()
			}
			h(e)
		}
	}
	err := runPool(lo, hi, opts, func() (replicateFunc, error) {
		return func(rep int, src *rng.Source) error {
			won, err := trial(rep, src)
			if err != nil {
				return err
			}
			wins[rep-lo] = won
			if won && observed {
				winCount.Add(1)
			}
			return nil
		}, nil
	})
	if err != nil {
		return 0, err
	}
	return countTrue(wins), nil
}
