package experiment

import (
	"fmt"
	"math"

	"lvmajority/internal/consensus"
	"lvmajority/internal/exact"
	"lvmajority/internal/lv"
	"lvmajority/internal/mc"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// runExactSolver (E-EXACT) cross-validates three independent computations of
// ρ(a, b): the paper's closed forms (Theorems 20/23), the exact grid solver
// (first-step recurrence, Eq. 8), and Monte-Carlo simulation. It also
// quantifies the double-extinction boundary effect that separates the
// strict reading of Theorem 20 from the closed form.
func runExactSolver(cfg Config) ([]*Table, error) {
	trials := 20000
	if cfg.Full {
		trials = 100000
	}
	gridMax := 80
	if cfg.Full {
		gridMax = 160
	}

	sd := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5},
		Gamma:       [2]float64{1, 1},
		Competition: lv.SelfDestructive,
	}
	nsd := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5},
		Gamma:       [2]float64{1, 1},
		Competition: lv.NonSelfDestructive,
	}

	tbl := &Table{
		Title: "E-EXACT: closed form vs grid solver vs Monte Carlo",
		Caption: "Theorems 20/23 closed form a/(a+b) vs the Eq. (8) recurrence solved on a truncated grid " +
			"(fair tiebreak and strict scoring) vs simulation (strict). SD rows show the (1,1)->(0,0) " +
			"boundary effect: strict < closed form; grid(strict) matches simulation to solver precision.",
		Columns: []string{"model", "a", "b", "a/(a+b)", "grid rho (tie 1/2)", "grid rho (strict)", "MC rho (strict)", "MC CI"},
	}

	for _, tc := range []struct {
		name   string
		params lv.Params
	}{
		{"SD alpha=gamma", sd},
		{"NSD gamma=2alpha", nsd},
	} {
		fair, err := exact.Solve(tc.params, exact.Options{Max: gridMax, TieValue: 0.5})
		if err != nil {
			return nil, err
		}
		strictSol, err := exact.Solve(tc.params, exact.Options{Max: gridMax, TieValue: 0})
		if err != nil {
			return nil, err
		}
		for _, st := range []lv.State{{X0: 3, X1: 1}, {X0: 10, X1: 5}, {X0: 24, X1: 8}} {
			closed := lv.ConsensusProbabilityExact(st)
			fairV, err := fair.Rho(st.X0, st.X1)
			if err != nil {
				return nil, err
			}
			strictV, err := strictSol.Rho(st.X0, st.X1)
			if err != nil {
				return nil, err
			}
			est, err := mc.EstimateBernoulli(mc.BernoulliOptions{
				Options: mc.Options{
					Replicates: trials,
					Workers:    cfg.workers(),
					Interrupt:  cfg.Interrupt,
					Progress:   cfg.Progress,
					Seed:       cfg.Seed ^ uint64(st.X0*131+st.X1) ^ uint64(tc.params.Competition),
				},
				Z: stats.Z999,
			}, func(_ int, src *rng.Source) (bool, error) {
				out, err := lv.Run(tc.params, st, src, lv.RunOptions{})
				if err != nil {
					return false, err
				}
				return out.Consensus && out.MajorityWon, nil
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(tc.name, st.X0, st.X1, closed, fairV, strictV, est.P(),
				fmt.Sprintf("[%.4f, %.4f]", est.Lo, est.Hi))
			cfg.logf("E-EXACT %s (%d,%d): closed=%.4f fair=%.4f strict=%.4f mc=%.4f",
				tc.name, st.X0, st.X1, closed, fairV, strictV, est.P())
		}
	}
	return []*Table{tbl}, nil
}

// runNoiseDecomposition (E-NOISE) measures the two components of the
// demographic noise F = F_ind + F_comp introduced in §1.5. The paper's core
// mechanism: under SD competition F_comp ≡ 0 and F_ind is polylogarithmic
// (driving the polylog threshold), while under NSD competition F_comp
// behaves like a √n-scale random walk (driving the √n threshold).
func runNoiseDecomposition(cfg Config) ([]*Table, error) {
	trials := 800
	if cfg.Full {
		trials = 6000
	}
	tbl := &Table{
		Title: "E-NOISE: demographic noise decomposition F = F_ind + F_comp (Section 1.5)",
		Caption: "Started from a tie (a = b = n/2). Under SD, competitive events cannot move the gap: sd(F_comp) = 0 " +
			"and the individual-event noise is polylog. Under NSD, F_comp is a sqrt(n)-scale random walk.",
		Columns: []string{"model", "n", "sd(F_ind)", "sd(F_ind)/log2 n", "sd(F_comp)", "sd(F_comp)/sqrt(n)"},
	}
	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		params := lv.Neutral(1, 1, 1, 0, comp)
		for _, n := range nGrid(cfg) {
			initial := lv.State{X0: n / 2, X1: n - n/2}
			noise, err := mc.Run(mc.Options{
				Replicates: trials,
				Workers:    cfg.workers(),
				Interrupt:  cfg.Interrupt,
				Progress:   cfg.Progress,
				Seed:       cfg.Seed ^ 0xabcdef ^ uint64(n) ^ uint64(comp)<<48,
			}, func(_ int, src *rng.Source) ([2]float64, error) {
				out, err := lv.Run(params, initial, src, lv.RunOptions{})
				if err != nil {
					return [2]float64{}, err
				}
				return [2]float64{float64(out.FInd), float64(out.FComp)}, nil
			})
			if err != nil {
				return nil, err
			}
			var ind, compn stats.Running
			for _, f := range noise {
				ind.Add(f[0])
				compn.Add(f[1])
			}
			fn := float64(n)
			tbl.AddRow(comp.String(), n,
				ind.StdDev(), ind.StdDev()/math.Log2(fn),
				compn.StdDev(), compn.StdDev()/math.Sqrt(fn))
			cfg.logf("E-NOISE %v n=%d sd(F_ind)=%.2f sd(F_comp)=%.2f", comp, n, ind.StdDev(), compn.StdDev())
		}
	}
	return []*Table{tbl}, nil
}

// runGammaTransition (E-GAMMA) explores the open problem of §1.6: with the
// interspecific rate α fixed, at which intraspecific strength γ does the
// majority-consensus threshold leave the polylogarithmic regime? The paper
// pins the endpoints — O(log² n) at γ = 0 and n−1 at γ = α (Theorems 14 and
// 20) — and asks about the transition. We sweep γ/α at fixed n and measure
// ρ at a polylog-scale gap and at a √n-scale gap.
func runGammaTransition(cfg Config) ([]*Table, error) {
	n := 1024
	trials := 3000
	if cfg.Full {
		n = 4096
		trials = 12000
	}
	logGap := consensus.MatchParity(n, int(consensus.ShapeLog2(float64(n))/4))
	sqrtGap := consensus.MatchParity(n, int(3*consensus.ShapeSqrt(float64(n))))

	tbl := &Table{
		Title: fmt.Sprintf("E-GAMMA: threshold transition as intraspecific competition grows (SD, n=%d)", n),
		Caption: fmt.Sprintf("Open problem of Section 1.6. alpha (total interspecific constant) = 1; gamma/alpha swept. "+
			"rho measured at a polylog gap (%d ~ log2(n)^2/4) and a sqrt-scale gap (%d ~ 3*sqrt(n)). Endpoints are "+
			"pinned by Theorem 14 (gamma=0: polylog suffices) and Theorem 20 (gamma=alpha: rho = a/(a+b)).", logGap, sqrtGap),
		Columns: []string{"gamma/alpha", "rho at polylog gap", "rho at sqrt gap", "a/(a+b) at sqrt gap"},
	}

	for _, ratio := range []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 1} {
		params := lv.Params{
			Beta: 1, Delta: 1,
			Alpha:       [2]float64{0.5, 0.5}, // total interspecific constant alpha = 1
			Gamma:       [2]float64{ratio, ratio},
			Competition: lv.SelfDestructive,
		}
		p := consensus.LVProtocol{Params: params}
		estLog, err := consensus.EstimateWinProbability(p, n, logGap, consensus.EstimateOptions{
			Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress,
			Seed: cfg.Seed ^ uint64(math.Float64bits(ratio)),
		})
		if err != nil {
			return nil, err
		}
		estSqrt, err := consensus.EstimateWinProbability(p, n, sqrtGap, consensus.EstimateOptions{
			Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress,
			Seed: cfg.Seed ^ uint64(math.Float64bits(ratio)) ^ 0xffff,
		})
		if err != nil {
			return nil, err
		}
		a := (n + sqrtGap) / 2
		tbl.AddRow(ratio, estLog.P(), estSqrt.P(), float64(a)/float64(n))
		cfg.logf("E-GAMMA gamma/alpha=%.2f rho(log)=%.4f rho(sqrt)=%.4f", ratio, estLog.P(), estSqrt.P())
	}
	return []*Table{tbl}, nil
}
