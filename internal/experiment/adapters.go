package experiment

import (
	"lvmajority/internal/protocols"
	"lvmajority/internal/rng"
)

// choAdapter is the Cho et al. model (δ = 0, self-destructive LV) with unit
// rates, as a consensus.Protocol.
type choAdapter struct{}

// Name implements consensus.Protocol.
func (choAdapter) Name() string { return "Cho et al. (delta=0, SD LV)" }

// Trial implements consensus.Protocol.
func (choAdapter) Trial(n, delta int, src *rng.Source) (bool, error) {
	return protocols.NewChoProtocol(1, 1).Trial(n, delta, src)
}

// andaurAdapter is the Andaur et al. resource-consumer reconstruction with
// the resource capacity tied to the population size (resources scale with
// the experiment, matching their thermodynamically sensible regime).
type andaurAdapter struct{}

// Name implements consensus.Protocol.
func (andaurAdapter) Name() string { return "Andaur et al. (bounded growth, NSD)" }

// Trial implements consensus.Protocol.
func (andaurAdapter) Trial(n, delta int, src *rng.Source) (bool, error) {
	p := protocols.AndaurProtocol{Beta: 1, Alpha: 1, ResourceCap: n}
	return p.Trial(n, delta, src)
}
