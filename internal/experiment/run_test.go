package experiment

import (
	"fmt"
	"strings"
	"testing"

	"lvmajority/internal/sweep"
)

// fmtSscan wraps fmt.Sscan for the fit-exponent extraction.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// TestExperimentSmokeShort keeps a thin end-to-end path through the
// harness alive under -short: one cheap experiment, run to completion with
// rendered tables. The heavy grids stay behind the non-short tests below
// and the Full config flag.
func TestExperimentSmokeShort(t *testing.T) {
	e, err := ByID("T1-INTRA")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Config{Seed: 20240506, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("smoke experiment produced no rows")
	}
	var b strings.Builder
	if err := tables[0].Render(&b); err != nil {
		t.Fatal(err)
	}
}

// TestRunAllExperimentsQuick executes every registered experiment at the
// quick effort level and sanity-checks the resulting tables. This is the
// end-to-end smoke test of the reproduction harness; the heavy quick grids
// are gated behind -short (use go test -run TestRunAllExperimentsQuick
// ./internal/experiment to run them alone, or cmd/experiments -full for
// the recorded grids).
func TestRunAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy quick grids; smoke coverage lives in TestExperimentSmokeShort")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(Config{Seed: 20240506, Workers: 2})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.Title == "" {
					t.Errorf("%s: table without title", e.ID)
				}
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tbl.Title)
				}
				var b strings.Builder
				if err := tbl.Render(&b); err != nil {
					t.Errorf("%s: render %q: %v", e.ID, tbl.Title, err)
				}
				b.Reset()
				if err := tbl.WriteCSV(&b); err != nil {
					t.Errorf("%s: CSV %q: %v", e.ID, tbl.Title, err)
				}
			}
		})
	}
}

// TestTable1SDCacheReplay asserts the Table-1 reproduction path is wired
// through the sweep engine's probe cache: a second run with the same
// configuration replays every threshold probe (zero fresh estimator calls)
// and produces identical rows.
func TestTable1SDCacheReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick T1-SD grid")
	}
	cache := sweep.NewCache()
	cfg := Config{Seed: 20240506, Workers: 2, Cache: cache}

	var log1 strings.Builder
	cfg.Log = &log1
	first, err := runTable1SD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probes := cache.Len()
	if probes == 0 {
		t.Fatal("first run recorded no probes in the cache")
	}

	var log2 strings.Builder
	cfg.Log = &log2
	second, err := runTable1SD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != probes {
		t.Errorf("second run grew the cache from %d to %d probes — not fully replayed", probes, cache.Len())
	}
	for _, line := range strings.Split(log2.String(), "\n") {
		if strings.Contains(line, "probes,") && !strings.Contains(line, " 0 fresh") {
			t.Errorf("second run issued fresh probes: %s", line)
		}
	}
	for i, tbl := range first {
		if fmt.Sprint(tbl.Rows) != fmt.Sprint(second[i].Rows) {
			t.Errorf("cached rerun changed table %q", tbl.Title)
		}
	}
}

// TestExpectedShapesQuick asserts the headline quantitative claims on the
// quick grids: the SD threshold exponent is far below 1/2 and the NSD
// exponent is near 1/2 (Table 1 row 1), which is the core reproduction
// target.
func TestExpectedShapesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	t.Parallel()
	cfg := Config{Seed: 99, Workers: 2}

	sdTables, err := runTable1SD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nsdTables, err := runTable1NSD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sdExp := fitExponent(t, sdTables)
	nsdExp := fitExponent(t, nsdTables)
	if sdExp > 0.35 {
		t.Errorf("SD threshold exponent = %v, want well below 0.5 (polylog)", sdExp)
	}
	if nsdExp < 0.4 || nsdExp > 0.65 {
		t.Errorf("NSD threshold exponent = %v, want ~0.5", nsdExp)
	}
	if nsdExp-sdExp < 0.2 {
		t.Errorf("separation too small: SD %v vs NSD %v", sdExp, nsdExp)
	}
}

// fitExponent extracts the exponent cell from a scaling-fit table produced
// by fitTable.
func fitExponent(t *testing.T, tables []*Table) float64 {
	t.Helper()
	for _, tbl := range tables {
		if !strings.Contains(tbl.Title, "scaling fit") {
			continue
		}
		if len(tbl.Rows) == 0 || len(tbl.Rows[0]) == 0 {
			t.Fatalf("fit table %q empty", tbl.Title)
		}
		var v float64
		if _, err := fmtSscan(tbl.Rows[0][0], &v); err != nil {
			t.Fatalf("parsing exponent from %q: %v", tbl.Rows[0][0], err)
		}
		return v
	}
	t.Fatal("no scaling-fit table found")
	return 0
}
