package experiment

import (
	"fmt"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/plurality"
)

// runPlurality (E-PLURAL) explores the k-species generalization: plurality
// consensus under competitive LV dynamics. The paper treats k = 2; its
// related work (§2.2) surveys plurality consensus in other models. We
// measure the success probability of the initial plurality at a polylog
// gap (SD) and a √n-scale gap (NSD) as k grows, keeping the total
// population fixed. Exploration — no paper claim to verify.
func runPlurality(cfg Config) ([]*Table, error) {
	n := 600
	trials := 1200
	if cfg.Full {
		n = 2400
		trials = 6000
	}

	tbl := &Table{
		Title: fmt.Sprintf("E-PLURAL: k-species plurality consensus (n=%d total)", n),
		Caption: "Initial plurality species leads every other species by the stated gap. SD probed at a polylog-scale " +
			"gap, NSD at a sqrt-scale gap (the two-species sufficient regimes); k = 2 recovers the paper's setting.",
		Columns: []string{"k", "model", "gap", "rho (plurality wins)"},
	}

	for _, k := range []int{2, 3, 5} {
		for _, tc := range []struct {
			comp lv.Competition
			gap  int
		}{
			// MatchParity keeps the gaps on the estimator's feasible
			// grid (it validates against the two-species splitter).
			{lv.SelfDestructive, consensus.MatchParity(n, int(consensus.ShapeLog2(float64(n))/2))},
			{lv.NonSelfDestructive, consensus.MatchParity(n, int(3*consensus.ShapeSqrt(float64(n))))},
		} {
			p := plurality.Protocol{
				Params: plurality.Params{
					Beta: 1, Delta: 1, Alpha: 1,
					Competition: tc.comp,
				},
				K: k,
			}
			est, err := consensus.EstimateWinProbability(p, n, tc.gap, consensus.EstimateOptions{
				Trials:    trials,
				Workers:   cfg.workers(),
				Interrupt: cfg.Interrupt,
				Progress:  cfg.Progress,
				Seed:      cfg.Seed + uint64(k)*97 + uint64(tc.comp),
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(k, tc.comp.String(), tc.gap, est.P())
			cfg.logf("E-PLURAL k=%d %v gap=%d rho=%.4f", k, tc.comp, tc.gap, est.P())
		}
	}
	return []*Table{tbl}, nil
}
