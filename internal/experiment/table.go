package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, a caption tying it to the
// paper artifact, column headers, and string-valued rows.
type Table struct {
	Title   string
	Caption string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0"
	case abs >= 1000 || abs < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table in aligned ASCII form.
func (t *Table) Render(w io.Writer) error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("experiment: table %q has no columns", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("experiment: table %q row has %d cells, want %d", t.Title, len(row), len(t.Columns))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("experiment: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
