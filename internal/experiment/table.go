package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CellKind discriminates the typed value a Cell holds.
type CellKind string

// The cell kinds a Table records. Every AddRow argument is classified into
// one of these; values of any other Go type are rendered with %v and stored
// as KindString, which keeps the rendered output lossless even when the
// original type is not representable.
const (
	KindString CellKind = "string"
	KindInt    CellKind = "int"
	KindFloat  CellKind = "float"
	KindBool   CellKind = "bool"
)

// Cell is one typed table cell: the Go value an experiment reported, kept
// alongside its kind so a serialized table can be re-rendered byte-for-byte
// and consumed numerically without string parsing.
type Cell struct {
	Kind CellKind
	// Exactly one of the following is meaningful, selected by Kind.
	S string
	I int64
	F float64
	B bool
}

// cellOf classifies one AddRow argument. Integer kinds that fit int64 stay
// numeric; everything unclassifiable falls back to the rendered string, so
// Cell.String always reproduces the historical %v formatting.
func cellOf(v any) Cell {
	// float32 deliberately has no case: only float64 was ever formatted
	// through formatFloat, so float32 keeps its historical %v rendering
	// via the string fallback.
	switch x := v.(type) {
	case float64:
		return Cell{Kind: KindFloat, F: x}
	case int:
		return Cell{Kind: KindInt, I: int64(x)}
	case int8:
		return Cell{Kind: KindInt, I: int64(x)}
	case int16:
		return Cell{Kind: KindInt, I: int64(x)}
	case int32:
		return Cell{Kind: KindInt, I: int64(x)}
	case int64:
		return Cell{Kind: KindInt, I: x}
	case uint:
		if uint64(x) <= math.MaxInt64 {
			return Cell{Kind: KindInt, I: int64(x)}
		}
	case uint8:
		return Cell{Kind: KindInt, I: int64(x)}
	case uint16:
		return Cell{Kind: KindInt, I: int64(x)}
	case uint32:
		return Cell{Kind: KindInt, I: int64(x)}
	case uint64:
		if x <= math.MaxInt64 {
			return Cell{Kind: KindInt, I: int64(x)}
		}
	case bool:
		return Cell{Kind: KindBool, B: x}
	case string:
		return Cell{Kind: KindString, S: x}
	}
	return Cell{Kind: KindString, S: fmt.Sprintf("%v", v)}
}

// String renders the cell exactly as AddRow has always rendered the
// underlying value: floats through the table float formatter, integers and
// booleans through their %v forms, strings verbatim.
func (c Cell) String() string {
	switch c.Kind {
	case KindFloat:
		return formatFloat(c.F)
	case KindInt:
		return strconv.FormatInt(c.I, 10)
	case KindBool:
		return strconv.FormatBool(c.B)
	default:
		return c.S
	}
}

// cellJSON is the on-disk encoding of a Cell: a kind tag plus the value.
// Non-finite floats cannot be JSON numbers, so they are carried in the
// string slot and restored by kind on decode.
type cellJSON struct {
	Kind CellKind `json:"t"`
	S    *string  `json:"s,omitempty"`
	I    *int64   `json:"i,omitempty"`
	F    *float64 `json:"f,omitempty"`
	B    *bool    `json:"b,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (c Cell) MarshalJSON() ([]byte, error) {
	enc := cellJSON{Kind: c.Kind}
	switch c.Kind {
	case KindFloat:
		if math.IsNaN(c.F) || math.IsInf(c.F, 0) {
			s := strconv.FormatFloat(c.F, 'g', -1, 64)
			enc.S = &s
		} else {
			f := c.F
			enc.F = &f
		}
	case KindInt:
		i := c.I
		enc.I = &i
	case KindBool:
		b := c.B
		enc.B = &b
	case KindString:
		s := c.S
		enc.S = &s
	default:
		return nil, fmt.Errorf("experiment: unknown cell kind %q", c.Kind)
	}
	return json.Marshal(enc)
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Cell) UnmarshalJSON(data []byte) error {
	var dec cellJSON
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	*c = Cell{Kind: dec.Kind}
	switch dec.Kind {
	case KindFloat:
		switch {
		case dec.F != nil:
			c.F = *dec.F
		case dec.S != nil:
			f, err := strconv.ParseFloat(*dec.S, 64)
			if err != nil {
				return fmt.Errorf("experiment: non-finite float cell %q: %w", *dec.S, err)
			}
			c.F = f
		default:
			return fmt.Errorf("experiment: float cell without value")
		}
	case KindInt:
		if dec.I == nil {
			return fmt.Errorf("experiment: int cell without value")
		}
		c.I = *dec.I
	case KindBool:
		if dec.B == nil {
			return fmt.Errorf("experiment: bool cell without value")
		}
		c.B = *dec.B
	case KindString:
		if dec.S == nil {
			return fmt.Errorf("experiment: string cell without value")
		}
		c.S = *dec.S
	default:
		return fmt.Errorf("experiment: unknown cell kind %q", dec.Kind)
	}
	return nil
}

// Table is a rendered experiment result: a title, a caption tying it to the
// paper artifact, column headers, and the result rows. Rows holds the
// rendered strings every renderer consumes; Cells holds the typed values
// behind them, populated by AddRow, so a table survives JSON serialization
// losslessly (see MarshalJSON) instead of decaying to rendered strings.
type Table struct {
	Title   string
	Caption string
	Columns []string
	Rows    [][]string
	Cells   [][]Cell
}

// AddRow appends a row, recording each cell's typed value and formatting it
// with %v (floats through the table float formatter).
func (t *Table) AddRow(cells ...any) {
	typed := make([]Cell, len(cells))
	row := make([]string, len(cells))
	for i, c := range cells {
		typed[i] = cellOf(c)
		row[i] = typed[i].String()
	}
	t.Cells = append(t.Cells, typed)
	t.Rows = append(t.Rows, row)
}

// tableJSON is the serialized form of a Table: typed cells only — the
// rendered rows are derived, and are rebuilt on decode.
type tableJSON struct {
	Title   string   `json:"title"`
	Caption string   `json:"caption,omitempty"`
	Columns []string `json:"columns"`
	Cells   [][]Cell `json:"cells"`
}

// MarshalJSON implements json.Marshaler: the typed cells are authoritative.
// A table whose rows were built outside AddRow (no typed cells recorded)
// falls back to string cells so nothing rendered is ever lost.
func (t *Table) MarshalJSON() ([]byte, error) {
	cells := t.Cells
	if cells == nil && t.Rows != nil {
		cells = make([][]Cell, len(t.Rows))
		for i, row := range t.Rows {
			cells[i] = make([]Cell, len(row))
			for j, s := range row {
				cells[i][j] = Cell{Kind: KindString, S: s}
			}
		}
	}
	return json.Marshal(tableJSON{
		Title:   t.Title,
		Caption: t.Caption,
		Columns: t.Columns,
		Cells:   cells,
	})
}

// UnmarshalJSON implements json.Unmarshaler, rebuilding the rendered rows
// from the typed cells so Render and WriteCSV reproduce the original
// output byte-for-byte.
func (t *Table) UnmarshalJSON(data []byte) error {
	var dec tableJSON
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	*t = Table{Title: dec.Title, Caption: dec.Caption, Columns: dec.Columns, Cells: dec.Cells}
	for _, cells := range dec.Cells {
		row := make([]string, len(cells))
		for i, c := range cells {
			row[i] = c.String()
		}
		t.Rows = append(t.Rows, row)
	}
	return nil
}

func formatFloat(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0"
	case abs >= 1000 || abs < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table in aligned ASCII form.
func (t *Table) Render(w io.Writer) error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("experiment: table %q has no columns", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("experiment: table %q row has %d cells, want %d", t.Title, len(row), len(t.Columns))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("experiment: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// EscapeMarkdownCell neutralizes the characters that would break a
// Markdown pipe-table cell. The report package shares it so the generated
// documents and the per-table renders always escape identically.
func EscapeMarkdownCell(s string) string {
	s = strings.ReplaceAll(s, "|", `\|`)
	return strings.ReplaceAll(s, "\n", " ")
}

// WriteMarkdown writes the table as a GitHub-flavored Markdown pipe table,
// preceded by its title (as a level-4 heading) and caption.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("experiment: table %q has no columns", t.Title)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "#### %s\n\n", EscapeMarkdownCell(t.Title))
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n\n", EscapeMarkdownCell(t.Caption))
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(EscapeMarkdownCell(cell))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("experiment: table %q row has %d cells, want %d", t.Title, len(row), len(t.Columns))
		}
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
