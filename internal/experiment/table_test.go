package experiment

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Caption: "caption line",
		Columns: []string{"a", "long column"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow(22.5, "yy")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "caption line", "a", "long column", "22.5000", "yy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderErrors(t *testing.T) {
	empty := &Table{Title: "no columns"}
	if err := empty.Render(&strings.Builder{}); err == nil {
		t.Error("empty table rendered without error")
	}
	ragged := &Table{Columns: []string{"a", "b"}}
	ragged.AddRow(1)
	if err := ragged.Render(&strings.Builder{}); err == nil {
		t.Error("ragged table rendered without error")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := &Table{Columns: []string{"v"}}
	tbl.AddRow(0.0)
	tbl.AddRow(0.00001)
	tbl.AddRow(123456.0)
	tbl.AddRow(0.5)
	if tbl.Rows[0][0] != "0" {
		t.Errorf("zero formatted as %q", tbl.Rows[0][0])
	}
	if !strings.Contains(tbl.Rows[1][0], "e-") {
		t.Errorf("tiny value formatted as %q, want scientific", tbl.Rows[1][0])
	}
	if tbl.Rows[3][0] != "0.5000" {
		t.Errorf("0.5 formatted as %q", tbl.Rows[3][0])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"x", "y"}}
	tbl.AddRow(1, "a,b")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "x,y\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("CSV escaping wrong: %q", out)
	}
}

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 24 {
		t.Errorf("registry has %d experiments, want 24", len(seen))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("T1-SD")
	if err != nil || e.ID != "T1-SD" {
		t.Errorf("ByID(T1-SD) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("ids not sorted: %v", ids)
		}
	}
}
