package experiment

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Caption: "caption line",
		Columns: []string{"a", "long column"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow(22.5, "yy")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "caption line", "a", "long column", "22.5000", "yy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderErrors(t *testing.T) {
	empty := &Table{Title: "no columns"}
	if err := empty.Render(&strings.Builder{}); err == nil {
		t.Error("empty table rendered without error")
	}
	ragged := &Table{Columns: []string{"a", "b"}}
	ragged.AddRow(1)
	if err := ragged.Render(&strings.Builder{}); err == nil {
		t.Error("ragged table rendered without error")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := &Table{Columns: []string{"v"}}
	tbl.AddRow(0.0)
	tbl.AddRow(0.00001)
	tbl.AddRow(123456.0)
	tbl.AddRow(0.5)
	if tbl.Rows[0][0] != "0" {
		t.Errorf("zero formatted as %q", tbl.Rows[0][0])
	}
	if !strings.Contains(tbl.Rows[1][0], "e-") {
		t.Errorf("tiny value formatted as %q, want scientific", tbl.Rows[1][0])
	}
	if tbl.Rows[3][0] != "0.5000" {
		t.Errorf("0.5 formatted as %q", tbl.Rows[3][0])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"x", "y"}}
	tbl.AddRow(1, "a,b")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "x,y\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("CSV escaping wrong: %q", out)
	}
}

// roundTripTables returns one table per shape the experiments produce:
// full title+caption with mixed cell types, captionless, titleless, and
// cells that need CSV/Markdown escaping.
func roundTripTables() map[string]*Table {
	mixed := &Table{
		Title:   "mixed types",
		Caption: "every cell kind in one table",
		Columns: []string{"n", "rho", "label", "covers", "big"},
	}
	mixed.AddRow(1024, 0.9375, "SD", true, uint64(1)<<40)
	mixed.AddRow(-3, 1234567.0, "not found", false, int64(-9))
	mixed.AddRow(0, 0.0000004, "-", true, 7)

	captionless := &Table{Title: "captionless", Columns: []string{"k", "v"}}
	captionless.AddRow(1, 0.5)
	captionless.AddRow(2, math.Inf(1))

	titleless := &Table{Columns: []string{"only"}}
	titleless.AddRow("row")

	escaping := &Table{
		Title:   "escaping | tricky",
		Caption: "cells with pipes, commas and quotes",
		Columns: []string{"text", "x"},
	}
	escaping.AddRow("a|b", 1)
	escaping.AddRow(`quote " comma ,`, 2)

	return map[string]*Table{
		"mixed":       mixed,
		"captionless": captionless,
		"titleless":   titleless,
		"escaping":    escaping,
	}
}

// TestTableJSONRoundTrip checks the typed-cell serialization is lossless:
// the decoded table carries identical typed cells and rendered rows, and
// its ASCII and CSV renders are byte-identical to the original's.
func TestTableJSONRoundTrip(t *testing.T) {
	for name, tbl := range roundTripTables() {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(tbl)
			if err != nil {
				t.Fatal(err)
			}
			var back Table
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tbl.Cells, back.Cells) {
				t.Errorf("typed cells not lossless:\n want %+v\n got  %+v", tbl.Cells, back.Cells)
			}
			if !reflect.DeepEqual(tbl.Rows, back.Rows) {
				t.Errorf("rendered rows not rebuilt:\n want %v\n got  %v", tbl.Rows, back.Rows)
			}

			render := func(tb *Table) (ascii, csv string) {
				var a, c strings.Builder
				if err := tb.Render(&a); err != nil {
					t.Fatal(err)
				}
				if err := tb.WriteCSV(&c); err != nil {
					t.Fatal(err)
				}
				return a.String(), c.String()
			}
			wantASCII, wantCSV := render(tbl)
			gotASCII, gotCSV := render(&back)
			if gotASCII != wantASCII {
				t.Errorf("ASCII render changed across round trip:\n want:\n%s\n got:\n%s", wantASCII, gotASCII)
			}
			if gotCSV != wantCSV {
				t.Errorf("CSV output changed across round trip:\n want:\n%s\n got:\n%s", wantCSV, gotCSV)
			}
		})
	}
}

// TestTableCellTypes checks AddRow's classification, including the
// fallback of unrepresentable values to their rendered strings.
func TestTableCellTypes(t *testing.T) {
	tbl := &Table{Columns: []string{"v"}}
	tbl.AddRow(1.5)
	tbl.AddRow(42)
	tbl.AddRow(true)
	tbl.AddRow("s")
	tbl.AddRow(uint64(math.MaxUint64)) // overflows int64: stored as string
	tbl.AddRow([2]int{1, 2})           // unclassifiable: %v fallback
	wantKinds := []CellKind{KindFloat, KindInt, KindBool, KindString, KindString, KindString}
	for i, want := range wantKinds {
		if got := tbl.Cells[i][0].Kind; got != want {
			t.Errorf("row %d: kind = %q, want %q", i, got, want)
		}
	}
	if tbl.Rows[4][0] != "18446744073709551615" {
		t.Errorf("uint64 fallback rendered as %q", tbl.Rows[4][0])
	}
	if tbl.Rows[5][0] != "[1 2]" {
		t.Errorf("%%v fallback rendered as %q", tbl.Rows[5][0])
	}
}

// TestTableMarshalWithoutCells checks the string-cell fallback for tables
// whose rows were not built through AddRow.
func TestTableMarshalWithoutCells(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}, Rows: [][]string{{"x"}}}
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0][0] != "x" {
		t.Errorf("fallback rows lost: %v", back.Rows)
	}
	if back.Cells[0][0].Kind != KindString {
		t.Errorf("fallback cell kind = %q", back.Cells[0][0].Kind)
	}
}

// TestTableMarkdownGolden locks the Markdown render of every table shape.
func TestTableMarkdownGolden(t *testing.T) {
	for name, tbl := range roundTripTables() {
		t.Run(name, func(t *testing.T) {
			var b strings.Builder
			if err := tbl.WriteMarkdown(&b); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "markdown_"+name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if b.String() != string(want) {
				t.Errorf("markdown render differs from %s:\n got:\n%s\n want:\n%s", golden, b.String(), want)
			}
		})
	}
}

func TestTableMarkdownErrors(t *testing.T) {
	empty := &Table{Title: "no columns"}
	if err := empty.WriteMarkdown(&strings.Builder{}); err == nil {
		t.Error("empty table rendered without error")
	}
	ragged := &Table{Columns: []string{"a", "b"}}
	ragged.AddRow(1)
	if err := ragged.WriteMarkdown(&strings.Builder{}); err == nil {
		t.Error("ragged table rendered without error")
	}
}

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if e.QuickGrid == "" || e.FullGrid == "" {
			t.Errorf("experiment %s lacks grid summaries (needed by the DESIGN.md index)", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 24 {
		t.Errorf("registry has %d experiments, want 24", len(seen))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("T1-SD")
	if err != nil || e.ID != "T1-SD" {
		t.Errorf("ByID(T1-SD) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("ids not sorted: %v", ids)
		}
	}
}
