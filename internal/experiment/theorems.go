package experiment

import (
	"fmt"
	"math"

	"lvmajority/internal/bd"
	"lvmajority/internal/coupling"
	"lvmajority/internal/lv"
	"lvmajority/internal/mc"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// runConsensusTime validates Theorem 13(a): E[T(S)] = O(n) and T(S) = O(n)
// with high probability for both competition models with γ = 0.
func runConsensusTime(cfg Config) ([]*Table, error) {
	trials := 400
	if cfg.Full {
		trials = 4000
	}
	tbl := &Table{
		Title:   "E-TIME: consensus time T(S) (beta=delta=1, alpha0=alpha1=1, gamma=0)",
		Caption: "Theorem 13(a): E[T(S)] = O(n) and O(n) whp. Both normalized columns should stay bounded as n grows.",
		Columns: []string{"model", "n", "mean T", "mean T / n", "q99 T / n", "max T / n"},
	}
	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		params := lv.Neutral(1, 1, 1, 0, comp)
		for _, n := range nGrid(cfg) {
			initial := lv.State{X0: n / 2, X1: n - n/2}
			samples, err := mc.Run(mc.Options{
				Replicates: trials,
				Workers:    cfg.workers(),
				Interrupt:  cfg.Interrupt,
				Progress:   cfg.Progress,
				Seed:       cfg.Seed + uint64(n) + uint64(comp)<<32,
			}, func(_ int, src *rng.Source) (float64, error) {
				out, err := lv.Run(params, initial, src, lv.RunOptions{})
				if err != nil {
					return 0, err
				}
				if !out.Consensus {
					return 0, fmt.Errorf("no consensus at n=%d", n)
				}
				return float64(out.Steps), nil
			})
			if err != nil {
				return nil, err
			}
			var acc stats.Running
			for _, s := range samples {
				acc.Add(s)
			}
			q99, err := stats.Quantile(samples, 0.99)
			if err != nil {
				return nil, err
			}
			fn := float64(n)
			tbl.AddRow(comp.String(), n, acc.Mean(), acc.Mean()/fn, q99/fn, acc.Max()/fn)
			cfg.logf("E-TIME %v n=%d mean T/n = %.2f", comp, n, acc.Mean()/fn)
		}
	}
	return []*Table{tbl}, nil
}

// runBadEvents validates Theorem 13(b): E[J(S)] = O(log n) and J(S) =
// O(log² n) with high probability.
func runBadEvents(cfg Config) ([]*Table, error) {
	trials := 600
	if cfg.Full {
		trials = 6000
	}
	tbl := &Table{
		Title:   "E-BAD: bad non-competitive events J(S) (beta=delta=1, alpha0=alpha1=1, gamma=0)",
		Caption: "Theorem 13(b): E[J(S)] = O(log n), J(S) = O(log^2 n) whp. Normalized columns should stay bounded.",
		Columns: []string{"model", "n", "mean J", "mean J / ln n", "q999 J", "q999 J / log2(n)^2"},
	}
	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		params := lv.Neutral(1, 1, 1, 0, comp)
		for _, n := range nGrid(cfg) {
			initial := lv.State{X0: n / 2, X1: n - n/2}
			samples, err := mc.Run(mc.Options{
				Replicates: trials,
				Workers:    cfg.workers(),
				Interrupt:  cfg.Interrupt,
				Progress:   cfg.Progress,
				Seed:       cfg.Seed ^ (uint64(n) * 31) ^ uint64(comp)<<40,
			}, func(_ int, src *rng.Source) (float64, error) {
				out, err := lv.Run(params, initial, src, lv.RunOptions{})
				if err != nil {
					return 0, err
				}
				return float64(out.BadNonCompetitive), nil
			})
			if err != nil {
				return nil, err
			}
			var acc stats.Running
			for _, s := range samples {
				acc.Add(s)
			}
			q999, err := stats.Quantile(samples, 0.999)
			if err != nil {
				return nil, err
			}
			logn := math.Log(float64(n))
			log2sq := math.Log2(float64(n)) * math.Log2(float64(n))
			tbl.AddRow(comp.String(), n, acc.Mean(), acc.Mean()/logn, q999, q999/log2sq)
			cfg.logf("E-BAD %v n=%d mean J/ln n = %.3f", comp, n, acc.Mean()/logn)
		}
	}
	return []*Table{tbl}, nil
}

// runNiceChain validates Lemmas 5–8 on the §5.2 dominating chain: expected
// extinction time Θ(n) (checked against the exact recurrence), expected
// births O(log n), and the with-high-probability versions via quantiles.
func runNiceChain(cfg Config) ([]*Table, error) {
	trials := 2000
	if cfg.Full {
		trials = 20000
	}
	params := bd.DominatingParams{Beta: 1, Delta: 1, Alpha0: 1, Alpha1: 1}
	chain, err := bd.Dominating(params)
	if err != nil {
		return nil, err
	}
	cConst, dConst, err := bd.DominatingNiceConstants(params)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		Title: "E-NICE: dominating chain of Section 5.2 (beta=delta=1, alpha0=alpha1=1)",
		Caption: fmt.Sprintf("Nice with C=%.3g, D=%.3g. Lemma 5: E[E(n)] = Theta(n); Lemma 6: E[B(n)] = O(log n); "+
			"Lemmas 7-8: whp versions. exact columns use the first-step recurrence.", cConst, dConst),
		Columns: []string{"n", "exact E[T]", "sim mean T", "exact E[T]/n", "exact E[B]", "sim mean B", "E[B]/H_n", "q999 B / log2(n)^2"},
	}
	for _, n := range nGrid(cfg) {
		if err := chain.VerifyNice(cConst, dConst, n); err != nil {
			return nil, fmt.Errorf("niceness check failed: %w", err)
		}
		truncation := 4*n + 64
		exactT, err := bd.ExpectedAbsorptionTime(chain, n, truncation)
		if err != nil {
			return nil, err
		}
		exactB, err := bd.ExpectedBirths(chain, n, truncation)
		if err != nil {
			return nil, err
		}
		outs, err := mc.Run(mc.Options{
			Replicates: trials,
			Workers:    cfg.workers(),
			Interrupt:  cfg.Interrupt,
			Progress:   cfg.Progress,
			Seed:       cfg.Seed + 7*uint64(n),
		}, func(_ int, src *rng.Source) ([2]float64, error) {
			res, err := chain.RunToExtinction(n, src, 0)
			if err != nil {
				return [2]float64{}, err
			}
			return [2]float64{float64(res.Steps), float64(res.Births)}, nil
		})
		if err != nil {
			return nil, err
		}
		var tAcc, bAcc stats.Running
		births := make([]float64, 0, trials)
		for _, o := range outs {
			tAcc.Add(o[0])
			bAcc.Add(o[1])
			births = append(births, o[1])
		}
		q999, err := stats.Quantile(births, 0.999)
		if err != nil {
			return nil, err
		}
		log2sq := math.Log2(float64(n)) * math.Log2(float64(n))
		tbl.AddRow(n, exactT, tAcc.Mean(), exactT/float64(n), exactB, bAcc.Mean(),
			exactB/stats.HarmonicNumber(n), q999/log2sq)
		cfg.logf("E-NICE n=%d exact E[T]/n=%.2f E[B]/H_n=%.3f", n, exactT/float64(n), exactB/stats.HarmonicNumber(n))
	}
	return []*Table{tbl}, nil
}

// runDomination validates the chain-domination machinery of Section 5:
// pathwise pseudo-coupling invariants (Lemma 10) and the stochastic
// dominations T(S) ⪯ E(N), J(S) ⪯ B(N) (Lemma 9) via ECDF comparison.
func runDomination(cfg Config) ([]*Table, error) {
	trials := 2000
	if cfg.Full {
		trials = 10000
	}
	couplingSteps := 3000
	if cfg.Full {
		couplingSteps = 20000
	}

	invTbl := &Table{
		Title:   "E-DOM: pseudo-coupling invariants (Lemma 10)",
		Caption: "Joint executions of (S-hat, N-hat); both invariants must hold at every step of every run.",
		Columns: []string{"model", "runs", "steps checked", "violations"},
	}
	domTbl := &Table{
		Title: "E-DOM: stochastic domination (Lemma 9)",
		Caption: "max_x (G(x) - F(x)) over pooled points, where domination F <= G requires the value to be ~0 " +
			"(positive values within a few sampling standard errors are consistent with domination).",
		Columns: []string{"model", "initial (a,b)", "violation T(S) vs E(N)", "violation J(S) vs B(N)", "sampling scale"},
	}

	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		params := lv.Neutral(1, 1, 1, 0, comp)
		dom, err := bd.Dominating(bd.DominatingParams{
			Beta: params.Beta, Delta: params.Delta,
			Alpha0: params.Alpha[0], Alpha1: params.Alpha[1],
		})
		if err != nil {
			return nil, err
		}

		// Pathwise invariants: each replicated joint execution draws its
		// own random initial configuration from its stream.
		const runs = 40
		couplingOuts, err := mc.Run(mc.Options{
			Replicates: runs,
			Workers:    cfg.workers(),
			Interrupt:  cfg.Interrupt,
			Progress:   cfg.Progress,
			Seed:       cfg.Seed ^ 0xd0d0 ^ uint64(comp),
		}, func(_ int, src *rng.Source) ([2]int, error) {
			b := 5 + src.Intn(25)
			initial := lv.State{X0: b + src.Intn(20), X1: b}
			c, err := coupling.New(params, initial, dom, b, src)
			if err != nil {
				return [2]int{}, err
			}
			checked, violations := 0, 0
			for s := 0; s < couplingSteps; s++ {
				if err := c.Step(); err != nil {
					return [2]int{}, err
				}
				checked++
				if c.InvariantError() != nil {
					violations++
				}
			}
			return [2]int{checked, violations}, nil
		})
		if err != nil {
			return nil, err
		}
		violations := 0
		checked := 0
		for _, o := range couplingOuts {
			checked += o[0]
			violations += o[1]
		}
		invTbl.AddRow(comp.String(), runs, checked, violations)

		// Distributional domination.
		initial := lv.State{X0: 30, X1: 20}
		lvOuts, err := mc.Run(mc.Options{
			Replicates: trials,
			Workers:    cfg.workers(),
			Interrupt:  cfg.Interrupt,
			Progress:   cfg.Progress,
			Seed:       cfg.Seed + 11 + uint64(comp),
		}, func(_ int, src *rng.Source) ([2]float64, error) {
			out, err := lv.Run(params, initial, src, lv.RunOptions{})
			if err != nil {
				return [2]float64{}, err
			}
			return [2]float64{float64(out.Steps), float64(out.BadNonCompetitive)}, nil
		})
		if err != nil {
			return nil, err
		}
		domOuts, err := mc.Run(mc.Options{
			Replicates: trials,
			Workers:    cfg.workers(),
			Interrupt:  cfg.Interrupt,
			Progress:   cfg.Progress,
			Seed:       cfg.Seed + 13 + uint64(comp),
		}, func(_ int, src *rng.Source) ([2]float64, error) {
			res, err := dom.RunToExtinction(initial.Min(), src, 0)
			if err != nil {
				return [2]float64{}, err
			}
			return [2]float64{float64(res.Steps), float64(res.Births)}, nil
		})
		if err != nil {
			return nil, err
		}
		tS := make([]float64, 0, trials)
		jS := make([]float64, 0, trials)
		for _, o := range lvOuts {
			tS = append(tS, o[0])
			jS = append(jS, o[1])
		}
		eN := make([]float64, 0, trials)
		bN := make([]float64, 0, trials)
		for _, o := range domOuts {
			eN = append(eN, o[0])
			bN = append(bN, o[1])
		}
		vT, err := stats.DominationViolation(stats.NewECDF(tS), stats.NewECDF(eN))
		if err != nil {
			return nil, err
		}
		vJ, err := stats.DominationViolation(stats.NewECDF(jS), stats.NewECDF(bN))
		if err != nil {
			return nil, err
		}
		scale := 2 / math.Sqrt(float64(trials))
		domTbl.AddRow(comp.String(), fmt.Sprintf("(%d,%d)", initial.X0, initial.X1), vT, vJ, scale)
		cfg.logf("E-DOM %v: violation(T)=%.4f violation(J)=%.4f", comp, vT, vJ)
	}
	return []*Table{invTbl, domTbl}, nil
}
