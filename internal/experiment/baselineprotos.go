package experiment

import (
	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/protocols"
)

// baselineProtocols returns every protocol compared in E-BASE, in
// presentation order. kernel selects the event loop of the population
// protocols; the other entries have a single engine and ignore it.
func baselineProtocols(kernel protocols.PopulationKernel) []consensus.Protocol {
	am := protocols.NewThreeStateAM()
	am.Kernel = kernel
	exact := protocols.NewFourStateExact()
	exact.Kernel = kernel
	return []consensus.Protocol{
		consensus.LVProtocol{
			Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
			Label:  "LV self-destructive",
		},
		consensus.LVProtocol{
			Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive),
			Label:  "LV non-self-destructive",
		},
		choAdapter{},
		andaurAdapter{},
		protocols.CondonProtocol{Variant: protocols.SingleB},
		protocols.CondonProtocol{Variant: protocols.DoubleB},
		protocols.CondonProtocol{Variant: protocols.HeavyB},
		protocols.CondonProtocol{Variant: protocols.TriMajority},
		am,
		exact,
	}
}
