package experiment

import (
	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/protocols"
)

// baselineProtocols returns every protocol compared in E-BASE, in
// presentation order.
func baselineProtocols() []consensus.Protocol {
	return []consensus.Protocol{
		consensus.LVProtocol{
			Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
			Label:  "LV self-destructive",
		},
		consensus.LVProtocol{
			Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive),
			Label:  "LV non-self-destructive",
		},
		choAdapter{},
		andaurAdapter{},
		protocols.CondonProtocol{Variant: protocols.SingleB},
		protocols.CondonProtocol{Variant: protocols.DoubleB},
		protocols.CondonProtocol{Variant: protocols.HeavyB},
		protocols.CondonProtocol{Variant: protocols.TriMajority},
		protocols.NewThreeStateAM(),
		protocols.NewFourStateExact(),
	}
}
