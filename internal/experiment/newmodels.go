package experiment

import (
	"fmt"
	"math"

	"lvmajority/internal/approx"
	"lvmajority/internal/consensus"
	"lvmajority/internal/exploit"
	"lvmajority/internal/gossip"
	"lvmajority/internal/lv"
	"lvmajority/internal/moran"
	"lvmajority/internal/protocols"
	"lvmajority/internal/rng"
)

// runGossip (E-GOSSIP) measures the gap thresholds of the classic
// synchronous gossip dynamics the paper's related work surveys (§2.2):
// two-choices, 3-majority, and the undecided-state dynamics all sit at the
// Θ(√(n log n)) scale — the same scale as the paper's *non*-self-destructive
// LV protocols — while the driftless voter model, like the paper's
// no-competition regime, amplifies only linearly (win probability a/n).
func runGossip(cfg Config) ([]*Table, error) {
	shapes, order := nsdShapes()
	var tables []*Table
	for _, d := range []gossip.Dynamics{gossip.TwoChoices{}, gossip.ThreeMajority{}, gossip.Undecided{}} {
		points, tbl, err := thresholdCurve(cfg, &gossip.Protocol{Dynamics: d},
			fmt.Sprintf("E-GOSSIP: %s (synchronous, complete graph)", d.Name()),
			"Static-population gossip dynamics; literature threshold scale Theta(sqrt(n log n)) — "+
				"thr/sqrt(n log2 n) should stay bounded while thr/log2(n)^2 grows.",
			shapes, order)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl, fitTable(points, fmt.Sprintf("E-GOSSIP: %s scaling fit", d.Name())))
	}

	// The voter model has no drift toward the majority: its win
	// probability is exactly a/n, so no sublinear threshold exists.
	// Verify the martingale prediction at a modest n (voter consensus
	// needs Θ(n) rounds, so large n is pointlessly slow here).
	n := 256
	trials := 400
	if cfg.Full {
		n = 512
		trials = 1500
	}
	voterTbl := &Table{
		Title: fmt.Sprintf("E-GOSSIP: voter model win probability (n=%d)", n),
		Caption: "Driftless baseline: rho = a/n exactly (martingale), mirroring the paper's " +
			"no-competition LV regime. The CI must cover a/n for every gap.",
		Columns: []string{"gap", "a/n", "rho estimate", "CI lo", "CI hi", "covers"},
	}
	for _, frac := range []float64{0.125, 0.25, 0.5} {
		delta := consensus.MatchParity(n, int(frac*float64(n)))
		est, err := consensus.EstimateWinProbability(&gossip.Protocol{Dynamics: gossip.Voter{}}, n, delta,
			consensus.EstimateOptions{Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress, Seed: cfg.Seed + uint64(delta)})
		if err != nil {
			return nil, err
		}
		exactRho := (float64(n) + float64(delta)) / 2 / float64(n)
		voterTbl.AddRow(delta, exactRho, est.P(), est.Lo, est.Hi, est.Lo <= exactRho && exactRho <= est.Hi)
		cfg.logf("E-GOSSIP voter delta=%d rho=%.4f exact=%.4f", delta, est.P(), exactRho)
	}
	return append(tables, voterTbl), nil
}

// runMoran (E-MORAN) validates the Moran-process baseline against its exact
// fixation formula ρ = (1 − r^−a)/(1 − r^−n), including the neutral a/n
// case that also governs the paper's no-competition and balanced-
// competition LV regimes (Table 1 rows 2 and 5, Theorems 20/23).
func runMoran(cfg Config) ([]*Table, error) {
	ns := []int{64, 256}
	trials := 1500
	if cfg.Full {
		ns = []int{64, 256, 1024}
		trials = 5000
	}
	tbl := &Table{
		Title: "E-MORAN: Moran process vs exact fixation probability",
		Caption: "Static-population birth-death baseline. MC estimates must cover the closed form; " +
			"with r = 1 the process matches the paper's rho = a/(a+b) regimes, so majority consensus " +
			"needs a linear gap. A small fitness advantage (r > 1) changes the picture qualitatively.",
		Columns: []string{"n", "gap", "fitness r", "exact rho", "rho estimate", "CI lo", "CI hi", "covers"},
	}
	for _, n := range ns {
		for _, r := range []float64{1, 1.05} {
			for _, frac := range []float64{0.0625, 0.25} {
				delta := consensus.MatchParity(n, int(frac*float64(n)))
				a := n - (n-delta)/2
				exact := moran.FixationProbability(r, n, a)
				est, err := consensus.EstimateWinProbability(&moran.Protocol{Fitness: r}, n, delta,
					consensus.EstimateOptions{Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress,
						Seed: cfg.Seed + uint64(n)*31 + uint64(delta)})
				if err != nil {
					return nil, err
				}
				tbl.AddRow(n, delta, r, exact, est.P(), est.Lo, est.Hi,
					est.Lo <= exact && exact <= est.Hi)
				cfg.logf("E-MORAN n=%d delta=%d r=%g rho=%.4f exact=%.4f", n, delta, r, est.P(), exact)
			}
		}
	}
	return []*Table{tbl}, nil
}

// runExploit (E-EXPLOIT) probes the future-work direction of §1.6:
// exploitative (resource-consumer) competition. Two species sharing a
// chemostat resource exclude each other only by neutral drift — a weak,
// voter-like amplifier — while layering interference competition on top
// restores the strong thresholds of the paper's models.
func runExploit(cfg Config) ([]*Table, error) {
	capacity := 90
	trials := 400
	if cfg.Full {
		capacity = 180
		trials = 1500
	}
	base := exploit.Params{
		Lambda: float64(capacity) + 10, Mu: 1, Beta: 0.1, Delta: 1, R0: 10,
	}
	mixedSD := base
	mixedSD.Alpha = [2]float64{0.5, 0.5}
	mixedSD.Competition = lv.SelfDestructive
	mixedNSD := base
	mixedNSD.Alpha = [2]float64{0.5, 0.5}
	mixedNSD.Competition = lv.NonSelfDestructive

	tbl := &Table{
		Title: fmt.Sprintf("E-EXPLOIT: exploitative vs interference competition (carrying capacity %d)", capacity),
		Caption: "Chemostat model: inflow lambda, dilution mu, consumption-driven birth beta, death delta. " +
			"Pure exploitative competition amplifies weakly (voter-like); adding interference recovers " +
			"strong majority consensus at the same gaps.",
		Columns: []string{"competition", "n", "gap", "rho", "CI lo", "CI hi"},
	}
	n := capacity
	logGap := consensus.MatchParity(n, int(consensus.ShapeLog2(float64(n))/2))
	sqrtGap := consensus.MatchParity(n, int(2*consensus.ShapeSqrt(float64(n))))
	linGap := consensus.MatchParity(n, n/3)
	for _, tc := range []struct {
		name   string
		params exploit.Params
	}{
		{"exploitative only", base},
		{"exploitative + SD interference", mixedSD},
		{"exploitative + NSD interference", mixedNSD},
	} {
		for _, gap := range []int{logGap, sqrtGap, linGap} {
			est, err := consensus.EstimateWinProbability(&exploit.Protocol{Params: tc.params}, n, gap,
				consensus.EstimateOptions{Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress,
					Seed: cfg.Seed + uint64(gap)*131})
			if err != nil {
				return nil, err
			}
			tbl.AddRow(tc.name, n, gap, est.P(), est.Lo, est.Hi)
			cfg.logf("E-EXPLOIT %s gap=%d rho=%.4f", tc.name, gap, est.P())
		}
	}
	return []*Table{tbl}, nil
}

// runDiffusion (E-DIFF) tests the one-parameter diffusion approximation of
// §1.5's noise decomposition: calibrate σ = sd(F) from tie-start pilots,
// then predict the whole ρ(Δ) curve as Φ(Δ/σ) and compare against direct
// Monte-Carlo estimates. Accuracy here is evidence that the paper's
// noise-accounting picture is not just an upper-bound device but the
// actual mechanism.
func runDiffusion(cfg Config) ([]*Table, error) {
	ns := []int{512, 2048}
	pilots := 400
	trials := 1500
	if cfg.Full {
		ns = []int{512, 2048, 8192}
		pilots = 2000
		trials = 6000
	}
	tbl := &Table{
		Title: "E-DIFF: diffusion approximation rho(gap) = Phi(gap/sigma) vs Monte Carlo",
		Caption: "sigma calibrated as sd(F) from tie-start pilot runs (F = F_ind + F_comp, §1.5). " +
			"SD sigma is polylog, NSD sigma is sqrt(n)-scale; predictions should track measurements " +
			"to within a few percentage points.",
		Columns: []string{"model", "n", "sigma", "gap", "predicted rho", "measured rho", "abs err"},
	}
	var worst float64
	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		params := lv.Neutral(1, 1, 1, 0, comp)
		for _, n := range ns {
			src := rng.New(cfg.Seed + uint64(n) + uint64(comp)<<40)
			model, err := approx.Calibrate(params, n, src, approx.CalibrateOptions{Pilots: pilots, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress})
			if err != nil {
				return nil, err
			}
			proto := &consensus.LVProtocol{Params: params}
			for _, mult := range []float64{0.5, 1, 2} {
				delta := consensus.MatchParity(n, int(math.Max(1, model.Sigma*mult)))
				est, err := consensus.EstimateWinProbability(proto, n, delta,
					consensus.EstimateOptions{Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress,
						Seed: cfg.Seed + uint64(n)*7 + uint64(delta)})
				if err != nil {
					return nil, err
				}
				pred := model.Rho(float64(delta))
				errAbs := math.Abs(pred - est.P())
				if errAbs > worst {
					worst = errAbs
				}
				tbl.AddRow(comp.String(), n, model.Sigma, delta, pred, est.P(), errAbs)
				cfg.logf("E-DIFF %v n=%d sigma=%.2f delta=%d pred=%.4f meas=%.4f",
					comp, n, model.Sigma, delta, pred, est.P())
			}
		}
	}
	summary := &Table{
		Title:   "E-DIFF: worst-case prediction error",
		Caption: "Largest |predicted − measured| across all probed (model, n, gap) cells.",
		Columns: []string{"max abs err"},
	}
	summary.AddRow(worst)
	return []*Table{tbl, summary}, nil
}

// runFitness (E-FITNESS) is the non-neutrality ablation: the paper assumes
// neutral communities (identical rates); here the minority species gets a
// birth-rate advantage or handicap and we measure how far the SD amplifier
// tolerates selection against the signal before the threshold picture
// breaks down.
func runFitness(cfg Config) ([]*Table, error) {
	n := 512
	trials := 1000
	if cfg.Full {
		n = 2048
		trials = 4000
	}
	tbl := &Table{
		Title: fmt.Sprintf("E-FITNESS: non-neutral birth rates (n=%d, minority birth rate beta1, beta0 = 1)", n),
		Caption: "General LV chain with per-species birth rates. Each model is probed at a " +
			"near-minimal gap and at its sufficient gap from the neutral theory (polylog for SD, " +
			"sqrt-scale for NSD). Measured effect: at the sufficient gap both amplifiers tolerate " +
			"even a 3x minority birth advantage; selection erodes rho only near the minimal gap.",
		Columns: []string{"model", "gap regime", "gap", "beta1/beta0", "rho", "CI lo", "CI hi"},
	}
	minimalGap := consensus.MatchParity(n, 8)
	for _, comp := range []lv.Competition{lv.SelfDestructive, lv.NonSelfDestructive} {
		sufficient := consensus.MatchParity(n, int(consensus.ShapeLog2(float64(n))/2))
		if comp == lv.NonSelfDestructive {
			sufficient = consensus.MatchParity(n, int(3*consensus.ShapeSqrt(float64(n))))
		}
		for _, probe := range []struct {
			regime string
			gap    int
		}{
			{"near-minimal", minimalGap},
			{"sufficient", sufficient},
		} {
			for _, beta1 := range []float64{1, 1.5, 2, 3} {
				params := protocols.FromNeutral(lv.Neutral(1, 1, 1, 0, comp))
				params.Beta[1] = beta1
				est, err := consensus.EstimateWinProbability(
					&protocols.GeneralLVProtocol{Params: params}, n, probe.gap,
					consensus.EstimateOptions{Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress,
						Seed: cfg.Seed + uint64(comp)<<16 + uint64(probe.gap)<<24 + uint64(beta1*1000)})
				if err != nil {
					return nil, err
				}
				tbl.AddRow(comp.String(), probe.regime, probe.gap, beta1, est.P(), est.Lo, est.Hi)
				cfg.logf("E-FITNESS %v %s gap=%d beta1=%.1f rho=%.4f",
					comp, probe.regime, probe.gap, beta1, est.P())
			}
		}
	}
	return []*Table{tbl}, nil
}
