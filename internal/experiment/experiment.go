// Package experiment implements the reproduction harness: one registered
// experiment per paper artifact (the six rows of Table 1) plus one per
// load-bearing theorem or lemma, as indexed in DESIGN.md §3. Each experiment
// produces tables whose rows mirror what the paper reports, at two effort
// levels (quick for CI/benchmarks, full for the record in EXPERIMENTS.md).
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sort"

	"lvmajority/internal/sweep"
)

// Config controls an experiment run.
type Config struct {
	// Seed determines all randomness; runs are reproducible per seed.
	Seed uint64
	// Workers is the parallel worker count; zero uses GOMAXPROCS.
	Workers int
	// Full selects the heavier parameter grids used for the recorded
	// results; the default (quick) grids keep every experiment in the
	// tens-of-seconds range.
	Full bool
	// Cache, when non-nil, serves and records threshold-search probes
	// across runs (see internal/sweep); it never changes results, only
	// skips already-settled Monte-Carlo work.
	Cache *sweep.Cache
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Experiment is one registered reproduction experiment.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "T1-SD").
	ID string
	// Title is a one-line description.
	Title string
	// Artifact names the paper artifact the experiment reproduces.
	Artifact string
	// Run executes the experiment and returns its tables.
	Run func(cfg Config) ([]*Table, error)
}

// registry returns all experiments in presentation order. A function rather
// than a package-level variable keeps the package free of mutable globals.
func registry() []Experiment {
	return []Experiment{
		{
			ID:       "T1-SD",
			Title:    "Threshold scaling, self-destructive interspecific competition",
			Artifact: "Table 1 row 1 (SD); Theorems 14 and 17",
			Run:      runTable1SD,
		},
		{
			ID:       "T1-NSD",
			Title:    "Threshold scaling, non-self-destructive interspecific competition",
			Artifact: "Table 1 row 1 (NSD); Theorems 18 and 19",
			Run:      runTable1NSD,
		},
		{
			ID:       "T1-BOTH",
			Title:    "Inter- and intraspecific competition: exact rho = a/(a+b)",
			Artifact: "Table 1 row 2; Theorems 20 and 23",
			Run:      runTable1Both,
		},
		{
			ID:       "T1-INTRA",
			Title:    "Intraspecific competition only: no threshold exists",
			Artifact: "Table 1 row 3; Theorem 25",
			Run:      runTable1Intra,
		},
		{
			ID:       "T1-CHO",
			Title:    "delta = 0 special cases (Cho et al., Andaur et al.)",
			Artifact: "Table 1 row 4; Section 2.2",
			Run:      runTable1Cho,
		},
		{
			ID:       "T1-NONE",
			Title:    "No competition: rho = a/(a+b), threshold n-2",
			Artifact: "Table 1 row 5",
			Run:      runTable1None,
		},
		{
			ID:       "E-SEP",
			Title:    "Exponential SD vs NSD separation at fixed n",
			Artifact: "Section 1.4 headline comparison",
			Run:      runSeparation,
		},
		{
			ID:       "E-TIME",
			Title:    "Consensus time T(S) = O(n)",
			Artifact: "Theorem 13(a)",
			Run:      runConsensusTime,
		},
		{
			ID:       "E-BAD",
			Title:    "Bad non-competitive events J(S): O(log n) mean, O(log^2 n) whp",
			Artifact: "Theorem 13(b)",
			Run:      runBadEvents,
		},
		{
			ID:       "E-NICE",
			Title:    "Nice single-species chains: extinction Theta(n), births O(log n)",
			Artifact: "Lemmas 5-8",
			Run:      runNiceChain,
		},
		{
			ID:       "E-DOM",
			Title:    "Chain domination: T(S) <= E(N), J(S) <= B(N) stochastically",
			Artifact: "Lemmas 9-12 (pseudo-coupling)",
			Run:      runDomination,
		},
		{
			ID:       "E-ODE",
			Title:    "Deterministic ODE vs stochastic finite-n behaviour",
			Artifact: "Section 2.1, Eq. (4)",
			Run:      runODEComparison,
		},
		{
			ID:       "E-BASE",
			Title:    "Baseline protocols at matched population size",
			Artifact: "Section 2.2 related-work comparison",
			Run:      runBaselines,
		},
		{
			ID:       "E-ASYM",
			Title:    "Asymmetric competition: minority as the better competitor",
			Artifact: "Theorem 18 (allows alpha0 != alpha1)",
			Run:      runAsymmetric,
		},
		{
			ID:       "E-EXACT",
			Title:    "Closed form vs exact grid solver vs Monte Carlo",
			Artifact: "Eq. (8) recurrence; Theorems 20 and 23",
			Run:      runExactSolver,
		},
		{
			ID:       "E-NOISE",
			Title:    "Demographic noise decomposition F = F_ind + F_comp",
			Artifact: "Section 1.5 (technique overview)",
			Run:      runNoiseDecomposition,
		},
		{
			ID:       "E-GAMMA",
			Title:    "Threshold transition as gamma -> 0 (open problem)",
			Artifact: "Section 1.6 open problems",
			Run:      runGammaTransition,
		},
		{
			ID:       "E-SPATIAL",
			Title:    "Spatial (deme-structured) extension of the SD amplifier",
			Artifact: "Sections 1.6-1.7 future work (explicit spatial dynamics)",
			Run:      runSpatial,
		},
		{
			ID:       "E-PLURAL",
			Title:    "k-species plurality consensus generalization",
			Artifact: "Section 2.2 (plurality consensus related work); exploration",
			Run:      runPlurality,
		},
		{
			ID:       "E-GOSSIP",
			Title:    "Synchronous gossip dynamics thresholds (static population)",
			Artifact: "Section 2.2 (gossip-model majority consensus [9, 11, 23, 33, 39])",
			Run:      runGossip,
		},
		{
			ID:       "E-MORAN",
			Title:    "Moran process vs exact fixation probability",
			Artifact: "Static-population baseline; mirrors Theorems 20/23 (rho = a/(a+b))",
			Run:      runMoran,
		},
		{
			ID:       "E-EXPLOIT",
			Title:    "Exploitative (resource-consumer) competition chemostat",
			Artifact: "Section 1.6 future work (exploitative competition)",
			Run:      runExploit,
		},
		{
			ID:       "E-DIFF",
			Title:    "Diffusion approximation of rho from the noise decomposition",
			Artifact: "Section 1.5 (F = F_ind + F_comp); quantitative model",
			Run:      runDiffusion,
		},
		{
			ID:       "E-FITNESS",
			Title:    "Non-neutral birth rates: selection vs the majority signal",
			Artifact: "Section 1.7 neutrality assumption; ablation",
			Run:      runFitness,
		},
	}
}

// All returns every registered experiment in presentation order.
func All() []Experiment { return registry() }

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	exps := registry()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q (known: %v)", id, IDs())
}
