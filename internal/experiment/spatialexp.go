package experiment

import (
	"fmt"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/spatial"
)

// runSpatial (E-SPATIAL) explores the paper's future-work question (§1.6,
// §1.7): do the predicted computational trade-offs survive when the
// well-mixed assumption is relaxed? We run the SD amplifier on a deme-
// structured metapopulation (cycle topology) and measure ρ at a fixed
// polylog-scale gap while varying the number of demes and the migration
// rate. L = 1 recovers the paper's well-mixed chain; strong migration on
// few demes should approach it, while weak migration on many demes lets
// demes resolve independently (majority per deme decided near-fairly), so
// amplification should degrade.
func runSpatial(cfg Config) ([]*Table, error) {
	n := 512
	trials := 1200
	if cfg.Full {
		n = 2048
		trials = 6000
	}
	gap := consensus.MatchParity(n, int(consensus.ShapeLog2(float64(n))/4))

	tbl := &Table{
		Title: fmt.Sprintf("E-SPATIAL: SD amplifier on a deme-structured population (n=%d, gap=%d)", n, gap),
		Caption: "Paper future work (Sections 1.6-1.7): sensitivity of the polylog SD amplifier to spatial structure. " +
			"L=1 is the paper's well-mixed model. Individuals are spread round-robin across demes.",
		Columns: []string{"demes L", "topology", "migration m", "rho at polylog gap"},
	}

	local := lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)
	type cell struct {
		sites     int
		migration float64
		topology  spatial.Topology
	}
	cells := []cell{
		{1, 0, spatial.Cycle},
		{4, 0.1, spatial.Cycle}, {4, 1, spatial.Cycle}, {4, 10, spatial.Cycle},
		{16, 0.1, spatial.Cycle}, {16, 1, spatial.Cycle}, {16, 10, spatial.Cycle},
		// The same deme counts on a 2D torus (biofilm-like geometry):
		// shorter graph distances than the cycle at equal L, so the
		// same migration rate mixes better.
		{16, 0.1, spatial.Torus}, {16, 1, spatial.Torus},
	}
	if cfg.Full {
		cells = append(cells,
			cell{64, 0.1, spatial.Cycle}, cell{64, 1, spatial.Cycle}, cell{64, 10, spatial.Cycle},
			cell{64, 0.1, spatial.Torus}, cell{64, 1, spatial.Torus})
	}
	for i, c := range cells {
		p := spatial.Protocol{
			Spatial: spatial.Params{
				Local:     local,
				Sites:     c.sites,
				Migration: c.migration,
				Topology:  c.topology,
			},
		}
		est, err := consensus.EstimateWinProbability(p, n, gap, consensus.EstimateOptions{
			Trials:    trials,
			Workers:   cfg.workers(),
			Interrupt: cfg.Interrupt,
			Progress:  cfg.Progress,
			Seed:      cfg.Seed + uint64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(c.sites, c.topology.String(), c.migration, est.P())
		cfg.logf("E-SPATIAL L=%d %s m=%g rho=%.4f", c.sites, c.topology, c.migration, est.P())
	}
	return []*Table{tbl}, nil
}
