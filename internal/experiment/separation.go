package experiment

import (
	"fmt"
	"math"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/mc"
	"lvmajority/internal/ode"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
	"lvmajority/internal/sweep"
)

// runSeparation reproduces the headline comparison of §1.4: at a fixed
// population size, the success probability of the self-destructive protocol
// reaches the 1 − 1/n bar at a gap orders of magnitude below the
// non-self-destructive protocol's.
func runSeparation(cfg Config) ([]*Table, error) {
	n := 1024
	trials := 3000
	if cfg.Full {
		n = 4096
		trials = 20000
	}
	target := 1 - 1/float64(n)

	tbl := &Table{
		Title: fmt.Sprintf("E-SEP: rho vs initial gap at n=%d (beta=delta=1, alpha0=alpha1=1, gamma=0)", n),
		Caption: fmt.Sprintf("Success probability as the gap grows; target bar is 1-1/n = %.6f. "+
			"SD crosses at a polylog gap, NSD only near sqrt(n)*polylog.", target),
		Columns: []string{"gap", "rho SD", "rho NSD"},
	}

	sd := consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	nsd := consensus.LVProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive)}

	crossSD, crossNSD := -1, -1
	for gap := 2; gap <= n/2; gap *= 2 {
		delta := consensus.MatchParity(n, gap)
		estSD, err := consensus.EstimateWinProbability(sd, n, delta, consensus.EstimateOptions{
			Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress, Seed: cfg.Seed + uint64(gap),
		})
		if err != nil {
			return nil, err
		}
		estNSD, err := consensus.EstimateWinProbability(nsd, n, delta, consensus.EstimateOptions{
			Trials: trials, Workers: cfg.workers(), Interrupt: cfg.Interrupt, Progress: cfg.Progress, Seed: cfg.Seed + uint64(gap) + 1<<20,
		})
		if err != nil {
			return nil, err
		}
		if crossSD < 0 && estSD.P() >= target {
			crossSD = delta
		}
		if crossNSD < 0 && estNSD.P() >= target {
			crossNSD = delta
		}
		tbl.AddRow(delta, estSD.P(), estNSD.P())
		cfg.logf("E-SEP gap=%d: SD=%.4f NSD=%.4f", delta, estSD.P(), estNSD.P())
	}

	summary := &Table{
		Title:   "E-SEP: crossing summary",
		Caption: "First probed gap whose estimate reached the 1-1/n bar (-1: not reached on the probed grid).",
		Columns: []string{"model", "crossing gap", "crossing gap / log2(n)^2", "crossing gap / sqrt(n)"},
	}
	addCross := func(name string, cross int) {
		if cross < 0 {
			summary.AddRow(name, -1, "-", "-")
			return
		}
		summary.AddRow(name, cross,
			float64(cross)/consensus.ShapeLog2(float64(n)),
			float64(cross)/consensus.ShapeSqrt(float64(n)))
	}
	addCross("self-destructive", crossSD)
	addCross("non-self-destructive", crossNSD)
	return []*Table{tbl, summary}, nil
}

// runODEComparison contrasts the deterministic ODE dynamics (Eq. 4), under
// which the initially denser species always wins when α′ > γ′, with the
// stochastic finite-n chain, where a tiny gap gives a win probability near
// 1/2 — the finite-population effect the paper's models capture and the
// deterministic ones cannot.
func runODEComparison(cfg Config) ([]*Table, error) {
	trials := 3000
	if cfg.Full {
		trials = 20000
	}
	sys := ode.LotkaVolterra{R: 0, AlphaPrime: 1, GammaPrime: 0}
	params := lv.Neutral(1, 1, 0.5, 0, lv.SelfDestructive) // alpha'=alpha0+alpha1=1, r=beta-delta=0

	tbl := &Table{
		Title: "E-ODE: deterministic Eq. (4) vs stochastic chain, minimal gap",
		Caption: "Deterministic densities with alpha' > gamma': the larger initial density always wins (winner column). " +
			"The stochastic chain at the same ratio wins only with probability rho (last columns).",
		Columns: []string{"n", "initial (a,b)", "ODE winner", "ODE decision time", "stochastic rho", "CI low", "CI high"},
	}
	for _, n := range []int{64, 256, 1024} {
		a := n/2 + 1
		b := n - a // gap 2 for even n
		res, err := sys.DeterministicWinner(float64(a), float64(b), 1e-9, 1e7)
		if err != nil {
			return nil, err
		}
		est, err := mc.EstimateBernoulli(mc.BernoulliOptions{
			Options: mc.Options{
				Replicates: trials,
				Workers:    cfg.workers(),
				Interrupt:  cfg.Interrupt,
				Progress:   cfg.Progress,
				Seed:       cfg.Seed + uint64(n)*17,
			},
			Z: stats.Z999,
		}, func(_ int, src *rng.Source) (bool, error) {
			out, err := lv.Run(params, lv.State{X0: a, X1: b}, src, lv.RunOptions{})
			if err != nil {
				return false, err
			}
			return out.Consensus && out.MajorityWon, nil
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(n, fmt.Sprintf("(%d,%d)", a, b), res.Winner, res.T, est.P(), est.Lo, est.Hi)
		cfg.logf("E-ODE n=%d: ODE winner=%d, stochastic rho=%.4f", n, res.Winner, est.P())
	}
	return []*Table{tbl}, nil
}

// runBaselines compares every implemented protocol at one matched population
// size: LV (both competition modes), the Cho and Andaur models, the Condon
// CRNs, and the population protocols.
func runBaselines(cfg Config) ([]*Table, error) {
	n := 256
	trials := 1000
	if cfg.Full {
		n = 1024
		trials = 8000
	}

	tbl := &Table{
		Title:   fmt.Sprintf("E-BASE: empirical thresholds of all protocols at n=%d (target 1-1/n)", n),
		Caption: "Thresholds normalized by the SD (polylog) and NSD (sqrt) reference shapes.",
		Columns: []string{"protocol", "threshold", "thr/log2(n)^2", "thr/sqrt(n)", "probes"},
	}

	protos := baselineProtocols(cfg.Kernel)
	for i, p := range protos {
		seed := cfg.Seed + uint64(i)*1009
		// One-point sweep: no warm chain at a single n, but the probes
		// run the early-stopping estimator and land in the cache.
		swept, err := sweep.Run(p, sweep.Options{
			Grid:      []int{n},
			Trials:    trials,
			Workers:   cfg.workers(),
			Interrupt: cfg.Interrupt,
			Progress:  cfg.Progress,
			Seed:      seed,
			SeedFor:   func(int) uint64 { return seed }, // historical per-protocol seed, independent of n
			Cache:     cfg.Cache,
			Log:       cfg.logf,
		})
		if err != nil {
			return nil, fmt.Errorf("threshold for %s: %w", p.Name(), err)
		}
		res := swept.Points[0]
		if !res.Found {
			tbl.AddRow(p.Name(), "not found", "-", "-", res.Probes)
			continue
		}
		fn := float64(n)
		tbl.AddRow(p.Name(), res.Threshold,
			float64(res.Threshold)/consensus.ShapeLog2(fn),
			float64(res.Threshold)/consensus.ShapeSqrt(fn),
			res.Probes)
		cfg.logf("E-BASE %s: threshold=%d", p.Name(), res.Threshold)
	}
	return []*Table{tbl}, nil
}

// runAsymmetric probes the remark after Theorem 18 ("the minority species
// can be a better competitor", α₀ ≠ α₁). Under NSD competition each
// competitive event kills a majority individual with probability α₁/(α₀+α₁)
// independent of the state, so for α₁ ≠ α₀ the competitive noise Y has a
// *constant drift* (α₁−α₀)/(α₀+α₁) per event and Θ(n) competitive events
// occur. The measurement shows the consequence:
//
//   - majority-favoring or symmetric asymmetry (α₁ ≤ α₀): thresholds stay
//     within the √(n·polylog) regime of Theorem 18;
//   - minority-favoring asymmetry (α₁ > α₀): the empirical threshold grows
//     linearly, ≈ n·(α₁−α₀)/(α₀+α₁) plus a √n-scale fluctuation term —
//     the drift column is then the flat one.
//
// This is a genuine boundary condition on the paper's remark: the Hoeffding
// step in the proof of Theorem 18 bounds Pr[Y ≥ t] around a mean that is
// only non-positive when the majority competes at least as well (the
// E-ASYM record in the generated EXPERIMENTS.md shows the measurement).
func runAsymmetric(cfg Config) ([]*Table, error) {
	trials := 1500
	if cfg.Full {
		trials = 8000
	}
	tbl := &Table{
		Title: "E-ASYM: asymmetric NSD competition (alpha0 fixed = 1, species 0 = majority)",
		Caption: "drift = (alpha1-alpha0)/(alpha0+alpha1) per competitive event. For alpha1 <= alpha0 the " +
			"sqrt-normalized column is flat (Theorem 18 regime); for alpha1 > alpha0 the threshold tracks " +
			"n*drift + O(sqrt(n)) and the (thr - n*drift)/sqrt(n) column is the bounded one.",
		Columns: []string{"alpha1/alpha0", "n", "threshold", "thr/sqrt(n log2 n)", "n*drift", "(thr - n*drift)/sqrt(n)"},
	}
	grid := nGrid(cfg)
	if len(grid) > 3 {
		grid = grid[:3]
	}
	for _, ratio := range []float64{0.5, 1, 2, 4} {
		params := lv.Params{
			Beta: 1, Delta: 1,
			Alpha:       [2]float64{1, ratio},
			Competition: lv.NonSelfDestructive,
		}
		drift := (ratio - 1) / (ratio + 1)
		p := consensus.LVProtocol{Params: params, Label: fmt.Sprintf("NSD ratio %g", ratio)}
		// One warm-started sweep per ratio: the per-ratio curve is
		// monotone in n, so each search seeds its bracket from the
		// previous population size.
		swept, err := sweep.Run(p, sweep.Options{
			Grid:      grid,
			Trials:    trials,
			Workers:   cfg.workers(),
			Interrupt: cfg.Interrupt,
			Progress:  cfg.Progress,
			Seed:      cfg.Seed,
			SeedFor:   func(n int) uint64 { return cfg.Seed + uint64(n) + uint64(math.Float64bits(ratio)) },
			Cache:     cfg.Cache,
			Log:       cfg.logf,
		})
		if err != nil {
			return nil, err
		}
		for _, res := range swept.Points {
			if !res.Found {
				tbl.AddRow(ratio, res.N, "not found", "-", "-", "-")
				continue
			}
			fn := float64(res.N)
			nDrift := fn * drift
			tbl.AddRow(ratio, res.N, res.Threshold,
				float64(res.Threshold)/consensus.ShapeSqrtLog(fn),
				nDrift,
				(float64(res.Threshold)-nDrift)/consensus.ShapeSqrt(fn))
			cfg.logf("E-ASYM ratio=%g n=%d threshold=%d", ratio, res.N, res.Threshold)
		}
	}
	return []*Table{tbl}, nil
}
