package experiment

import (
	"fmt"
	"math"

	"lvmajority/internal/consensus"
	"lvmajority/internal/lv"
	"lvmajority/internal/mc"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
	"lvmajority/internal/sweep"
)

// nGrid returns the population-size grid for threshold scaling experiments.
func nGrid(cfg Config) []int {
	if cfg.Full {
		return []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	}
	return []int{256, 512, 1024, 2048, 4096}
}

// trialsFor picks the Monte-Carlo sample size per probed gap. The paper's
// criterion is ρ ≥ 1 − 1/n; resolving a failure probability of 1/n needs a
// sample size of order n, capped to keep runtimes bounded.
func trialsFor(cfg Config, n int) int {
	t := 2 * n
	if t < 1000 {
		t = 1000
	}
	limit := 4000
	if cfg.Full {
		limit = 40000
	}
	if t > limit {
		t = limit
	}
	return t
}

// thresholdCurve computes the threshold curve over the n grid on the sweep
// engine — searches warm-started along the monotone curve, probed with the
// early-stopping estimator, and served from the probe cache when one is
// configured — and returns the curve plus a rendered table.
func thresholdCurve(cfg Config, p consensus.Protocol, title, caption string, shapes map[string]func(float64) float64, shapeOrder []string) ([]consensus.CurvePoint, *Table, error) {
	columns := []string{"n", "target", "threshold"}
	columns = append(columns, shapeOrder...)
	tbl := &Table{Title: title, Caption: caption, Columns: columns}

	swept, err := sweep.Run(p, sweep.Options{
		Grid:      nGrid(cfg),
		TrialsFor: func(n int) int { return trialsFor(cfg, n) },
		Workers:   cfg.workers(),
		Interrupt: cfg.Interrupt,
		Progress:  cfg.Progress,
		Seed:      cfg.Seed, // per-n seed defaults to Seed + n, the historical policy
		Cache:     cfg.Cache,
		Log:       cfg.logf,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("threshold sweep: %w", err)
	}

	var points []consensus.CurvePoint
	for _, res := range swept.Points {
		pt := consensus.CurvePoint{N: res.N, Threshold: res.Threshold, Found: res.Found}
		points = append(points, pt)

		cells := []any{res.N, fmt.Sprintf("%.6f", res.Target)}
		if res.Found {
			cells = append(cells, res.Threshold)
			for _, name := range shapeOrder {
				cells = append(cells, float64(res.Threshold)/shapes[name](float64(res.N)))
			}
		} else {
			cells = append(cells, "not found")
			for range shapeOrder {
				cells = append(cells, "-")
			}
		}
		tbl.AddRow(cells...)
	}
	return points, tbl, nil
}

// fitTable renders the power-law classification of a threshold curve.
func fitTable(points []consensus.CurvePoint, title string) *Table {
	tbl := &Table{
		Title:   title,
		Caption: "Power-law fit threshold ~ C*n^k; k ~ 0 indicates polylog growth, k ~ 0.5 indicates sqrt(n) growth.",
		Columns: []string{"exponent k", "constant C", "R^2"},
	}
	fit, err := consensus.FitCurve(points)
	if err != nil {
		tbl.AddRow("-", "-", fmt.Sprintf("fit failed: %v", err))
		return tbl
	}
	tbl.AddRow(fit.Exponent, fit.Constant, fit.R2)
	return tbl
}

func sdShapes() (map[string]func(float64) float64, []string) {
	return map[string]func(float64) float64{
		"thr/log2(n)^2":    consensus.ShapeLog2,
		"thr/sqrt(log2 n)": func(n float64) float64 { return math.Sqrt(math.Log2(n)) },
		"thr/sqrt(n)":      consensus.ShapeSqrt,
	}, []string{"thr/log2(n)^2", "thr/sqrt(log2 n)", "thr/sqrt(n)"}
}

func nsdShapes() (map[string]func(float64) float64, []string) {
	return map[string]func(float64) float64{
		"thr/sqrt(n)":        consensus.ShapeSqrt,
		"thr/sqrt(n log2 n)": consensus.ShapeSqrtLog,
		"thr/log2(n)^2":      consensus.ShapeLog2,
	}, []string{"thr/sqrt(n)", "thr/sqrt(n log2 n)", "thr/log2(n)^2"}
}

// runTable1SD reproduces Table 1 row 1, self-destructive column: the
// empirical threshold must grow polylogarithmically — between Ω(√log n)
// (Theorem 17) and O(log² n) (Theorem 14).
func runTable1SD(cfg Config) ([]*Table, error) {
	p := consensus.LVProtocol{
		Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive),
		Label:  "SD interspecific LV",
	}
	shapes, order := sdShapes()
	points, tbl, err := thresholdCurve(cfg, p,
		"T1-SD: self-destructive interspecific competition (beta=delta=1, alpha0=alpha1=1, gamma=0)",
		"Paper: threshold in [Omega(sqrt(log n)), O(log^2 n)] — thr/log2(n)^2 should be bounded, thr/sqrt(n) should vanish.",
		shapes, order)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl, fitTable(points, "T1-SD: scaling fit")}, nil
}

// runTable1NSD reproduces Table 1 row 1, non-self-destructive column: the
// threshold must grow polynomially — between Ω(√n) (Theorem 19) and
// O(√(n log n)) (Theorem 18).
func runTable1NSD(cfg Config) ([]*Table, error) {
	p := consensus.LVProtocol{
		Params: lv.Neutral(1, 1, 1, 0, lv.NonSelfDestructive),
		Label:  "NSD interspecific LV",
	}
	shapes, order := nsdShapes()
	points, tbl, err := thresholdCurve(cfg, p,
		"T1-NSD: non-self-destructive interspecific competition (beta=delta=1, alpha0=alpha1=1, gamma=0)",
		"Paper: threshold in [Omega(sqrt n), O(sqrt(n log n))] — thr/sqrt(n) should be bounded away from 0, thr/sqrt(n log2 n) bounded above.",
		shapes, order)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl, fitTable(points, "T1-NSD: scaling fit")}, nil
}

// runTable1Both reproduces Table 1 row 2: with both inter- and intraspecific
// competition at the solvable ratios (SD with α = γ, NSD with γ = 2α) the
// majority wins with probability exactly a/(a+b) (Theorems 20 and 23), so
// the threshold is at the edge of the feasible range.
func runTable1Both(cfg Config) ([]*Table, error) {
	trials := 20000
	if cfg.Full {
		trials = 100000
	}
	sd := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5}, // total interspecific constant alpha = 1
		Gamma:       [2]float64{1, 1},     // per-species gamma = 1 = alpha
		Competition: lv.SelfDestructive,
	}
	nsd := lv.Params{
		Beta: 1, Delta: 1,
		Alpha:       [2]float64{0.5, 0.5}, // alpha0+alpha1 = 1
		Gamma:       [2]float64{1, 1},     // gamma0+gamma1 = 2 = 2*(alpha0+alpha1)
		Competition: lv.NonSelfDestructive,
	}

	tbl := &Table{
		Title: "T1-BOTH: inter+intraspecific competition, exact rho = a/(a+b)",
		Caption: "Theorem 20 (SD, alpha=gamma) and Theorem 23 (NSD, gamma=2alpha). " +
			"Tie-adjusted scoring counts SD double extinctions (reached via (1,1)->(0,0)) as half-wins; " +
			"under that scoring the exact solution holds at every state (recorded in EXPERIMENTS.md; see also E-EXACT).",
		Columns: []string{"model", "a", "b", "exact a/(a+b)", "rho (tie-adjusted)", "CI low", "CI high", "rho (strict)"},
	}

	states := []lv.State{
		{X0: 3, X1: 1},
		{X0: 12, X1: 4},
		{X0: 30, X1: 10},
		{X0: 48, X1: 16},
	}
	for _, tc := range []struct {
		name   string
		params lv.Params
	}{
		{"SD alpha=gamma", sd},
		{"NSD gamma=2alpha", nsd},
	} {
		for _, s := range states {
			exact := lv.ConsensusProbabilityExact(s)
			adj, strict, err := estimateBothScorings(cfg, tc.params, s, trials)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(tc.name, s.X0, s.X1, exact, adj.P(), adj.Lo, adj.Hi, strict.P())
			cfg.logf("T1-BOTH %s (%d,%d): exact=%.4f adj=%.4f strict=%.4f", tc.name, s.X0, s.X1, exact, adj.P(), strict.P())
		}
	}

	note := &Table{
		Title:   "T1-BOTH: threshold consequence",
		Caption: "rho = a/(a+b) implies rho >= 1-1/n only when b = 1, i.e. the majority consensus threshold is at the edge of the feasible range (n-2 on our grid; the paper states n-1 with its gap convention).",
		Columns: []string{"n", "needed minority b", "needed gap"},
	}
	for _, n := range []int{64, 256, 1024} {
		note.AddRow(n, 1, n-2)
	}
	return []*Table{tbl, note}, nil
}

// estimateBothScorings estimates the majority-win probability under both
// tie scorings using common per-trial streams, replicated on the mc pool.
func estimateBothScorings(cfg Config, params lv.Params, initial lv.State, trials int) (adjusted, strict stats.BernoulliEstimate, err error) {
	type scoring struct {
		majorityWon bool
		tie         bool
	}
	outs, err := mc.Run(mc.Options{
		Replicates: trials,
		Workers:    cfg.workers(),
		Interrupt:  cfg.Interrupt,
		Progress:   cfg.Progress,
		Seed:       cfg.Seed ^ uint64(initial.X0*1000003+initial.X1),
	}, func(_ int, src *rng.Source) (scoring, error) {
		out, err := lv.Run(params, initial, src, lv.RunOptions{})
		if err != nil {
			return scoring{}, err
		}
		if !out.Consensus {
			return scoring{}, fmt.Errorf("no consensus from %+v", initial)
		}
		return scoring{majorityWon: out.MajorityWon, tie: out.Winner == -1}, nil
	})
	if err != nil {
		return adjusted, strict, err
	}
	winHalves := 0
	strictWins := 0
	for _, s := range outs {
		switch {
		case s.majorityWon:
			winHalves += 2
			strictWins++
		case s.tie:
			winHalves++
		}
	}
	adjusted, err = stats.WilsonInterval(winHalves, 2*trials, stats.Z999)
	if err != nil {
		return adjusted, strict, err
	}
	strict, err = stats.WilsonInterval(strictWins, trials, stats.Z999)
	return adjusted, strict, err
}

// runTable1Intra reproduces Table 1 row 3: with intraspecific competition
// only (α = 0, γ > 0), the chain fails to reach majority consensus with at
// least constant probability for every gap (Theorem 25) — no threshold
// exists.
func runTable1Intra(cfg Config) ([]*Table, error) {
	trials := 4000
	if cfg.Full {
		trials = 20000
	}
	tbl := &Table{
		Title:   "T1-INTRA: intraspecific competition only (alpha=0, gamma=1, beta=delta=1)",
		Caption: "Theorem 25: failure probability is bounded below by a constant for every gap, including the maximal one.",
		Columns: []string{"n", "gap", "rho", "failure prob", "CI low (failure)"},
	}
	p := consensus.LVProtocol{
		Params: lv.Neutral(1, 1, 0, 1, lv.SelfDestructive),
		Label:  "intra-only LV",
	}
	for _, n := range []int{32, 64, 128} {
		for _, frac := range []float64{0.25, 0.5, 1} {
			delta := consensus.MatchParity(n, int(frac*float64(n-2)))
			if delta > n-2 {
				delta = n - 2
			}
			est, err := consensus.EstimateWinProbability(p, n, delta, consensus.EstimateOptions{
				Trials:    trials,
				Workers:   cfg.workers(),
				Interrupt: cfg.Interrupt,
				Progress:  cfg.Progress,
				Seed:      cfg.Seed + uint64(n*1000+delta),
			})
			if err != nil {
				return nil, err
			}
			failure := 1 - est.P()
			tbl.AddRow(n, delta, est.P(), failure, 1-est.Hi)
			cfg.logf("T1-INTRA n=%d gap=%d rho=%.4f", n, delta, est.P())
		}
	}
	return []*Table{tbl}, nil
}

// runTable1Cho reproduces Table 1 row 4: the δ = 0 special cases. The Cho
// et al. model (SD, δ=0) was proven to need only O(√(n log n)) by prior
// work; this paper shows its threshold is actually polylogarithmic. The
// Andaur et al. model (NSD, bounded growth, δ=0) sits in the √n regime.
func runTable1Cho(cfg Config) ([]*Table, error) {
	shapesSD, orderSD := sdShapes()
	choPoints, choTbl, err := thresholdCurve(cfg,
		choAdapter{},
		"T1-CHO: Cho et al. model (delta=0, self-destructive, beta=1, alpha0=alpha1=1)",
		"Prior work proved O(sqrt(n log n)) sufficient; Theorem 14 improves this to O(log^2 n) — the measured threshold should be polylog.",
		shapesSD, orderSD)
	if err != nil {
		return nil, err
	}

	shapesNSD, orderNSD := nsdShapes()
	andaurPoints, andaurTbl, err := thresholdCurve(cfg,
		andaurAdapter{},
		"T1-CHO/ANDAUR: Andaur et al. resource-consumer model (delta=0, NSD, bounded growth)",
		"Their Omega(sqrt(n log n)) upper bound, strengthened to true whp by this paper's technique; measured threshold should scale ~sqrt(n).",
		shapesNSD, orderNSD)
	if err != nil {
		return nil, err
	}
	return []*Table{
		choTbl, fitTable(choPoints, "T1-CHO: Cho scaling fit"),
		andaurTbl, fitTable(andaurPoints, "T1-CHO: Andaur scaling fit"),
	}, nil
}

// runTable1None reproduces Table 1 row 5: without competition and with
// β = δ, the species are two independent critical birth–death chains and
// ρ(a,b) = a/(a+b), so only a minority of size 1 reaches the 1 − 1/n bar.
func runTable1None(cfg Config) ([]*Table, error) {
	trials := 20000
	if cfg.Full {
		trials = 100000
	}
	params := lv.Neutral(1, 1, 0, 0, lv.SelfDestructive)
	tbl := &Table{
		Title:   "T1-NONE: no competition (alpha=gamma=0, beta=delta=1)",
		Caption: "rho = a/(a+b) (prior work); the 1-1/n bar is reached only at minority size 1, threshold n-2.",
		Columns: []string{"a", "b", "exact a/(a+b)", "rho estimate", "CI low", "CI high"},
	}
	states := []lv.State{
		{X0: 7, X1: 1},
		{X0: 9, X1: 3},
		{X0: 15, X1: 1},
		{X0: 24, X1: 8},
	}
	for _, s := range states {
		exact := lv.ConsensusProbabilityExact(s)
		adj, _, err := estimateBothScorings(cfg, params, s, trials)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(s.X0, s.X1, exact, adj.P(), adj.Lo, adj.Hi)
		cfg.logf("T1-NONE (%d,%d): exact=%.4f est=%.4f", s.X0, s.X1, exact, adj.P())
	}
	return []*Table{tbl}, nil
}
