package ioretry

import (
	"errors"
	"testing"
	"time"
)

func TestFirstSuccessNoSleep(t *testing.T) {
	slept := 0
	p := Policy{Sleep: func(time.Duration) { slept++ }}
	calls := 0
	if err := Do(p, func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || slept != 0 {
		t.Errorf("calls=%d slept=%d, want 1 call and no sleeps", calls, slept)
	}
}

func TestRetriesThenSucceeds(t *testing.T) {
	var sleeps []time.Duration
	p := Policy{Attempts: 5, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	calls := 0
	err := Do(p, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(sleeps) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 calls and 2 sleeps", calls, len(sleeps))
	}
	// Jittered into [base<<k / 2, base<<k): bounded both sides.
	for i, d := range sleeps {
		nominal := p.Base << uint(i)
		if d < nominal/2 || d >= nominal {
			t.Errorf("sleep %d = %v outside [%v, %v)", i, d, nominal/2, nominal)
		}
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	sentinel := errors.New("persistent failure")
	p := Policy{Attempts: 3, Sleep: func(time.Duration) {}}
	calls := 0
	err := Do(p, func() error { calls++; return sentinel })
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("exhaustion error %v does not wrap the last error", err)
	}
}

func TestBackoffCappedAtMax(t *testing.T) {
	var sleeps []time.Duration
	p := Policy{Attempts: 8, Base: 10 * time.Millisecond, Max: 25 * time.Millisecond,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	Do(p, func() error { return errors.New("always") })
	for i, d := range sleeps {
		if d >= p.Max {
			t.Errorf("sleep %d = %v not capped below %v", i, d, p.Max)
		}
	}
}

// TestJitterDeterministic: the same policy seed must produce the same
// sleep schedule — retry timing is reproducible like everything else.
func TestJitterDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var sleeps []time.Duration
		p := Policy{Attempts: 4, Seed: seed, Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
		Do(p, func() error { return errors.New("always") })
		return sleeps
	}
	a, b := schedule(42), schedule(42)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("schedules %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sleep %d: %v != %v for identical seeds", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical jitter schedules")
	}
}
