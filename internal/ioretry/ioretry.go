// Package ioretry is the small retry-with-backoff helper behind the
// fault-tolerant file I/O of the execution stack: probe-cache flushes,
// serve journal writes, and any other side-channel persistence that must
// survive transient failures (a busy filesystem, a momentary EIO, an
// injected fault) without ever changing a computed result.
//
// The backoff is jittered but deterministic: the jitter sequence is drawn
// from an internal/rng stream keyed by the policy's seed, never from the
// wall clock or the global math/rand state, so a retried run sleeps the
// same schedule every time — timing is reproducible even where failure
// is simulated.
package ioretry

import (
	"fmt"
	"time"

	"lvmajority/internal/rng"
)

// Policy configures Do. The zero value is usable: 4 attempts, 5ms base
// backoff doubling to a 250ms cap, seed 0, real sleeping.
type Policy struct {
	// Attempts is the total number of times op runs (default 4).
	Attempts int
	// Base is the backoff before the second attempt; it doubles per
	// attempt (default 5ms).
	Base time.Duration
	// Max caps the backoff (default 250ms).
	Max time.Duration
	// Seed keys the deterministic jitter stream.
	Seed uint64
	// Sleep, when non-nil, replaces time.Sleep — tests inject a recorder
	// so retry schedules are asserted without real waiting.
	Sleep func(time.Duration)
}

func (p Policy) normalized() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 5 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 250 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Do runs op up to p.Attempts times, sleeping a jittered exponential
// backoff between attempts, and returns nil on the first success. When
// every attempt fails it returns the last error wrapped with the attempt
// count, so callers can still errors.Is/As through it.
func Do(p Policy, op func() error) error {
	p = p.normalized()
	// One jitter stream per Do call, keyed by the policy seed: the k-th
	// backoff of a given policy is identical across runs.
	src := rng.NewStream(p.Seed, 0x10e7e747)
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt == p.Attempts-1 {
			break
		}
		d := p.Base << uint(attempt)
		if d > p.Max || d <= 0 {
			d = p.Max
		}
		// Jitter into [d/2, d): desynchronizes concurrent retriers while
		// keeping every sleep bounded by the nominal backoff.
		half := d / 2
		d = half + time.Duration(src.Float64()*float64(half))
		p.Sleep(d)
	}
	return fmt.Errorf("ioretry: %d attempts failed: %w", p.Attempts, err)
}
