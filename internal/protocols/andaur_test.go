package protocols

import (
	"testing"

	"lvmajority/internal/lv"
	"lvmajority/internal/rng"
)

func TestAndaurValidation(t *testing.T) {
	cases := []AndaurProtocol{
		{Beta: 1, Alpha: 0, ResourceCap: 10},  // alpha must be positive
		{Beta: -1, Alpha: 1, ResourceCap: 10}, // negative beta
		{Beta: 1, Alpha: 1, ResourceCap: 0},   // cap must be positive
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
		if _, err := p.Trial(10, 2, rng.New(1)); err == nil {
			t.Errorf("Trial accepted %+v", p)
		}
	}
}

func TestAndaurTrialValidation(t *testing.T) {
	p := AndaurProtocol{Beta: 1, Alpha: 1, ResourceCap: 100}
	if _, err := p.Trial(10, 3, rng.New(1)); err == nil {
		t.Error("parity mismatch accepted")
	}
	if _, err := p.Trial(1, 0, rng.New(1)); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestAndaurLargeGapWins(t *testing.T) {
	p := AndaurProtocol{Beta: 1, Alpha: 1, ResourceCap: 50}
	src := rng.New(29)
	const trials = 200
	wins := 0
	for i := 0; i < trials; i++ {
		won, err := p.Trial(100, 80, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if wins < trials*9/10 {
		t.Errorf("Andaur model with huge gap won only %d/%d", wins, trials)
	}
}

func TestAndaurAlwaysTerminates(t *testing.T) {
	// With δ = 0 and NSD competition the total count can only grow via
	// bounded births, while competition fires at rate Θ(x0·x1); every
	// trial must decide (the chain reaches consensus almost surely).
	p := AndaurProtocol{Beta: 1, Alpha: 1, ResourceCap: 20}
	src := rng.New(31)
	for i := 0; i < 100; i++ {
		if _, err := p.Trial(40, 2, src); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAndaurGrowthSaturation(t *testing.T) {
	// Indirect check of the bounded-growth property: with a tiny resource
	// cap, the population cannot explode, so even long executions keep
	// the total far below an unbounded exponential's reach. We proxy this
	// by confirming trials finish quickly under a small step budget.
	p := AndaurProtocol{Beta: 5, Alpha: 0.1, ResourceCap: 5, MaxSteps: 2_000_000}
	src := rng.New(37)
	for i := 0; i < 10; i++ {
		if _, err := p.Trial(30, 2, src); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChoProtocolPreset(t *testing.T) {
	p := NewChoProtocol(1, 1)
	if p.Params.Delta != 0 {
		t.Errorf("Cho preset has delta = %v, want 0", p.Params.Delta)
	}
	if p.Params.Competition != lv.SelfDestructive {
		t.Error("Cho preset is not self-destructive")
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
	src := rng.New(41)
	wins := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		won, err := p.Trial(64, 32, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if wins < trials*85/100 {
		t.Errorf("Cho model with large gap won only %d/%d", wins, trials)
	}
}

func TestLVParamsProtocolValidation(t *testing.T) {
	p := LVParamsProtocol{Params: lv.Neutral(1, 1, 1, 0, lv.SelfDestructive)}
	if _, err := p.Trial(10, 3, rng.New(1)); err == nil {
		t.Error("parity mismatch accepted")
	}
	if p.Name() == "" {
		t.Error("empty generated name")
	}
}
