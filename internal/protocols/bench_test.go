package protocols

import (
	"testing"

	"lvmajority/internal/rng"
)

// benchKernel runs full trials of the 3-state approximate-majority baseline
// at n = 10⁴ through the given trial runner and reports ns per simulated
// interaction — skipped null interactions count, since every runner
// accounts for exactly the same interaction-sequence law.
func benchKernel(b *testing.B, trial func(n, delta int, src *rng.Source) (bool, int, error)) {
	b.Helper()
	src := rng.New(1)
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		_, steps, err := trial(10_000, 400, src)
		if err != nil {
			b.Fatal(err)
		}
		events += int64(steps)
	}
	if events == 0 {
		b.Fatal("no interactions simulated")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

// BenchmarkPopulationKernel compares the historical event loop (re-validate
// per trial, Rule call and range check per interaction, Done on every
// tick) against the compiled per-event kernel and the batch null-skipping
// kernel on the paper's 3-state approximate-majority baseline (experiment
// E-BASE) at n = 10⁴.
func BenchmarkPopulationKernel(b *testing.B) {
	b.Run("old", func(b *testing.B) {
		p := NewThreeStateAM()
		benchKernel(b, func(n, delta int, src *rng.Source) (bool, int, error) {
			return historicalTrial(p, n, delta, src)
		})
	})
	b.Run("perevent", func(b *testing.B) {
		p := NewThreeStateAM()
		p.Kernel = KernelPerEvent
		benchKernel(b, p.run)
	})
	b.Run("batch", func(b *testing.B) {
		p := NewThreeStateAM()
		benchKernel(b, p.run)
	})
}
