package protocols

import (
	"fmt"
	"testing"

	"lvmajority/internal/rng"
)

// benchKernel runs full trials of the 3-state approximate-majority baseline
// at n = 10⁴ through the given trial runner and reports ns per simulated
// interaction — skipped null interactions count, since every runner
// accounts for exactly the same interaction-sequence law.
func benchKernel(b *testing.B, trial func(n, delta int, src *rng.Source) (bool, int, error)) {
	b.Helper()
	src := rng.New(1)
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		_, steps, err := trial(10_000, 400, src)
		if err != nil {
			b.Fatal(err)
		}
		events += int64(steps)
	}
	if events == 0 {
		b.Fatal("no interactions simulated")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
}

// BenchmarkPopulationKernel compares the historical event loop (re-validate
// per trial, Rule call and range check per interaction, Done on every
// tick) against the compiled per-event kernel and the batch null-skipping
// kernel on the paper's 3-state approximate-majority baseline (experiment
// E-BASE) at n = 10⁴.
func BenchmarkPopulationKernel(b *testing.B) {
	b.Run("old", func(b *testing.B) {
		p := NewThreeStateAM()
		benchKernel(b, func(n, delta int, src *rng.Source) (bool, int, error) {
			return historicalTrial(p, n, delta, src)
		})
	})
	b.Run("perevent", func(b *testing.B) {
		p := NewThreeStateAM()
		p.Kernel = KernelPerEvent
		benchKernel(b, p.run)
	})
	b.Run("batch", func(b *testing.B) {
		p := NewThreeStateAM()
		benchKernel(b, p.run)
	})
	b.Run("lockstep", func(b *testing.B) {
		benchLockstep(b, DefaultLockstepLanes)
	})
}

// benchLockstep prices the lockstep block engine on the same workload: one
// op is a full block of `lanes` trials, and ns/event divides by the summed
// per-lane interaction ticks the engine accounts — the same law (and,
// lane for lane, the same byte-exact executions) as the batch kernel
// above. The engine is built once; steady state must not allocate.
func benchLockstep(b *testing.B, lanes int) {
	b.Helper()
	p := NewThreeStateAM()
	p.Kernel = KernelLockstep
	p.Lanes = lanes
	e, err := p.newLockstep(10_000, 400)
	if err != nil {
		b.Fatal(err)
	}
	wins := make([]bool, lanes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.runBlock(1, i*lanes, (i+1)*lanes, wins); err != nil {
			b.Fatal(err)
		}
	}
	if e.ticks == 0 {
		b.Fatal("no interactions simulated")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(e.ticks), "ns/event")
}

// BenchmarkLockstepLanes prices the lane-width knob: ILP across per-lane
// RNG chains saturates well below the maximum width, while wider blocks
// retire stragglers more smoothly.
func BenchmarkLockstepLanes(b *testing.B) {
	for _, lanes := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("R%d", lanes), func(b *testing.B) {
			benchLockstep(b, lanes)
		})
	}
}
