package protocols

import (
	"math"
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// runBatchOracle runs replicate rep the way the scalar batch kernel would
// inside the Monte-Carlo pool: on its own index-keyed stream.
func runBatchOracle(t *testing.T, p *PopulationProtocol, n, delta int, seed uint64, rep int) (bool, int) {
	t.Helper()
	won, steps, err := p.run(n, delta, rng.NewStream(seed, uint64(rep)))
	if err != nil {
		t.Fatal(err)
	}
	return won, steps
}

// TestLockstepByteIdenticalToBatch is the engine's ground truth: every
// lane of a lockstep block must reproduce the scalar batch kernel's
// outcome for the same replicate stream, byte for byte, on every protocol
// shape in the repository — including blocks larger than the lane width
// (exercising refill) and blocks smaller than it (exercising
// swap-compaction of a partially filled engine).
func TestLockstepByteIdenticalToBatch(t *testing.T) {
	makers := []func() *PopulationProtocol{NewThreeStateAM, NewFourStateExact, NewTernarySignaling, newVoterProtocol}
	for _, mk := range makers {
		oracle := mk()
		p := mk()
		p.Kernel = KernelLockstep
		p.Lanes = 8
		for _, tc := range []struct{ n, delta int }{{16, 2}, {40, 4}, {61, 3}, {50, 0}} {
			for _, span := range []struct{ lo, hi int }{{0, 3}, {0, 8}, {5, 32}} {
				block, err := p.NewTrialBlock(tc.n, tc.delta)
				if err != nil {
					t.Fatal(err)
				}
				wins := make([]bool, span.hi-span.lo)
				if err := block(9, span.lo, span.hi, wins); err != nil {
					t.Fatal(err)
				}
				for rep := span.lo; rep < span.hi; rep++ {
					want, _ := runBatchOracle(t, oracle, tc.n, tc.delta, 9, rep)
					if wins[rep-span.lo] != want {
						t.Fatalf("%s n=%d delta=%d rep=%d block [%d,%d): lockstep %v, batch %v",
							p.Name(), tc.n, tc.delta, rep, span.lo, span.hi, wins[rep-span.lo], want)
					}
				}
			}
		}
	}
}

// TestLockstepTickAccounting checks that the engine's interaction-tick
// accounting (the benchmark denominator) equals the scalar kernel's
// reported interaction counts summed over the block.
func TestLockstepTickAccounting(t *testing.T) {
	p := NewThreeStateAM()
	p.Kernel = KernelLockstep
	p.Lanes = 16
	e, err := p.newLockstep(60, 4)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 0, 40
	wins := make([]bool, hi-lo)
	if err := e.runBlock(33, lo, hi, wins); err != nil {
		t.Fatal(err)
	}
	oracle := NewThreeStateAM()
	var want int64
	for rep := lo; rep < hi; rep++ {
		_, steps := runBatchOracle(t, oracle, 60, 4, 33, rep)
		want += int64(steps)
	}
	if e.ticks != want {
		t.Fatalf("lockstep accounted %d ticks, scalar batch kernel %d", e.ticks, want)
	}
}

// TestLockstepLaneCountInvariance pins the ISSUE's determinism contract:
// R = 1, 64, and 256 produce byte-identical per-trial outcomes, because
// every lane draws only from its replicate's index-keyed stream — the lane
// width decides packing, never randomness.
func TestLockstepLaneCountInvariance(t *testing.T) {
	const n, delta, seed = 80, 4, 17
	const reps = 300
	var baseline []bool
	for _, lanes := range []int{1, 64, 256} {
		p := NewThreeStateAM()
		p.Kernel = KernelLockstep
		p.Lanes = lanes
		block, err := p.NewTrialBlock(n, delta)
		if err != nil {
			t.Fatal(err)
		}
		wins := make([]bool, reps)
		if err := block(seed, 0, reps, wins); err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = wins
			continue
		}
		for rep := range wins {
			if wins[rep] != baseline[rep] {
				t.Fatalf("lanes=%d rep=%d: outcome %v differs from lanes=1 outcome %v",
					lanes, rep, wins[rep], baseline[rep])
			}
		}
	}
}

// TestLockstepRetirementExactlyOnce drives a protocol with wildly varying
// per-trial lengths through blocks that force both refill and compaction,
// and checks every replicate contributes exactly once and in its own slot:
// each outcome equals its scalar oracle, and re-running the same engine
// reproduces the block exactly (no state leaks between blocks).
func TestLockstepRetirementExactlyOnce(t *testing.T) {
	p := newVoterProtocol() // absorption time varies over orders of magnitude
	p.Kernel = KernelLockstep
	p.Lanes = 8
	e, err := p.newLockstep(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 3, 3 + 3*8 + 5 // refill across several generations, ragged tail
	first := make([]bool, hi-lo)
	if err := e.runBlock(77, lo, hi, first); err != nil {
		t.Fatal(err)
	}
	oracle := newVoterProtocol()
	for rep := lo; rep < hi; rep++ {
		want, _ := runBatchOracle(t, oracle, 30, 2, 77, rep)
		if first[rep-lo] != want {
			t.Fatalf("rep %d: lockstep %v, scalar oracle %v", rep, first[rep-lo], want)
		}
	}
	second := make([]bool, hi-lo)
	if err := e.runBlock(77, lo, hi, second); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rep %d: engine reuse changed the outcome", lo+i)
		}
	}
}

// TestLockstepInteractionBudgetLaw mirrors the batch kernel's budget test
// through the block path: an all-null protocol exhausts its budget
// undecided in every lane and charges exactly the full budget to the tick
// accounting, and a one-shot protocol decides every lane.
func TestLockstepInteractionBudgetLaw(t *testing.T) {
	stuck := &PopulationProtocol{
		ProtocolName:       "all-null",
		NumStates:          2,
		Rule:               func(a, b int) (int, int) { return a, b },
		MajorityState:      0,
		MinorityState:      1,
		Done:               func([]int) (bool, int) { return false, -1 },
		MaxInteractionsFor: func(int) int { return 1000 },
		Kernel:             KernelLockstep,
		Lanes:              4,
	}
	e, err := stuck.newLockstep(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	wins := make([]bool, 6)
	if err := e.runBlock(1, 0, 6, wins); err != nil {
		t.Fatal(err)
	}
	for rep, won := range wins {
		if won {
			t.Errorf("all-null protocol won replicate %d", rep)
		}
	}
	if want := int64(6 * 1000); e.ticks != want {
		t.Errorf("all-null block accounted %d ticks, want the full budgets %d", e.ticks, want)
	}

	oneShot := &PopulationProtocol{
		ProtocolName:  "one-shot",
		NumStates:     2,
		Rule:          func(a, b int) (int, int) { return 0, 0 },
		MajorityState: 0,
		MinorityState: 1,
		Done: func(counts []int) (bool, int) {
			if counts[1] == 0 {
				return true, 0
			}
			return false, -1
		},
		Kernel: KernelLockstep,
		Lanes:  4,
	}
	e, err = oneShot.newLockstep(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	wins = make([]bool, 9)
	if err := e.runBlock(5, 0, 9, wins); err != nil {
		t.Fatal(err)
	}
	for rep, won := range wins {
		if !won {
			t.Errorf("one-shot protocol lost replicate %d", rep)
		}
	}
	if e.ticks < 9 {
		t.Errorf("one-shot block accounted %d ticks, want at least one per replicate", e.ticks)
	}
}

// TestLockstepKernelThroughEstimator checks the full dispatch stack:
// consensus.EstimateWinProbability must route a lockstep-kernel protocol
// through the block path and — because lanes replay the batch kernel byte
// for byte — return the batch kernel's estimate exactly, for every worker
// and lane count.
func TestLockstepKernelThroughEstimator(t *testing.T) {
	batch := NewThreeStateAM()
	want, err := consensus.EstimateWinProbability(batch, 100, 10, consensus.EstimateOptions{Trials: 500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		for _, lanes := range []int{1, 64, 256} {
			p := NewThreeStateAM()
			p.Kernel = KernelLockstep
			p.Lanes = lanes
			got, err := consensus.EstimateWinProbability(p, 100, 10, consensus.EstimateOptions{
				Trials:  500,
				Workers: workers,
				Seed:    13,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("workers=%d lanes=%d: lockstep estimate %+v, batch estimate %+v",
					workers, lanes, got, want)
			}
		}
	}
}

// TestLockstepKernelMatchesClosedFormVoter extends PR 4's distributional
// suite to the lockstep kernel: the block engine must leave the voter
// model's exact absorption law ρ = a/(a+b) untouched.
func TestLockstepKernelMatchesClosedFormVoter(t *testing.T) {
	for _, tc := range []struct{ n, delta int }{{30, 10}, {24, 4}, {21, 7}} {
		p := newVoterProtocol()
		p.Kernel = KernelLockstep
		est, err := consensus.EstimateWinProbability(p, tc.n, tc.delta, consensus.EstimateOptions{
			Trials: 6000,
			Seed:   101,
			Z:      stats.Z999,
		})
		if err != nil {
			t.Fatal(err)
		}
		a := (tc.n + tc.delta) / 2
		want := float64(a) / float64(tc.n)
		if want < est.Lo || want > est.Hi {
			t.Errorf("voter n=%d delta=%d: lockstep estimate [%v, %v] excludes exact %v",
				tc.n, tc.delta, est.Lo, est.Hi, want)
		}
	}
}

// TestLockstepDistributionallyMatchesPerEvent closes the loop against the
// replay oracle kernel with the same two-proportion z-test the
// batch-vs-per-event suite uses.
func TestLockstepDistributionallyMatchesPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("distributional comparison is slow")
	}
	const trials = 4000
	for _, tc := range []struct{ n, delta int }{{60, 2}, {60, 8}} {
		wins := [2]int{}
		for k, kernel := range []PopulationKernel{KernelPerEvent, KernelLockstep} {
			p := NewThreeStateAM()
			p.Kernel = kernel
			est, err := consensus.EstimateWinProbability(p, tc.n, tc.delta, consensus.EstimateOptions{
				Trials: trials,
				Seed:   31,
			})
			if err != nil {
				t.Fatal(err)
			}
			wins[k] = int(math.Round(est.P() * trials))
		}
		p1 := float64(wins[0]) / trials
		p2 := float64(wins[1]) / trials
		pool := (p1 + p2) / 2
		se := math.Sqrt(2 * pool * (1 - pool) / trials)
		if se == 0 {
			if wins[0] != wins[1] {
				t.Errorf("n=%d delta=%d: degenerate but unequal win counts %v", tc.n, tc.delta, wins)
			}
			continue
		}
		if z := math.Abs(p1-p2) / se; z > 4 {
			t.Errorf("n=%d delta=%d: per-event %.4f vs lockstep %.4f (z=%.2f > 4)",
				tc.n, tc.delta, p1, p2, z)
		}
	}
}

// TestLockstepLaneWidthValidation pins the Lanes contract: zero defaults,
// the maximum is accepted, and out-of-range widths are configuration
// errors, not silent clamps.
func TestLockstepLaneWidthValidation(t *testing.T) {
	p := NewThreeStateAM()
	p.Kernel = KernelLockstep
	if got := p.TrialBlockLanes(); got != DefaultLockstepLanes {
		t.Errorf("default lane width %d, want %d", got, DefaultLockstepLanes)
	}
	p.Lanes = MaxLockstepLanes
	if _, err := p.NewTrialBlock(20, 2); err != nil {
		t.Errorf("maximum lane width rejected: %v", err)
	}
	p.Lanes = MaxLockstepLanes + 1
	if _, err := p.NewTrialBlock(20, 2); err == nil {
		t.Error("lane width above the maximum accepted")
	}
	batch := NewThreeStateAM()
	if got := batch.TrialBlockLanes(); got != 0 {
		t.Errorf("batch kernel advertises block width %d, want 0", got)
	}
}
