package protocols

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/crn"
	"lvmajority/internal/exact"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// newVoterProtocol returns the 2-state voter model: the initiator converts
// the responder. Its gap performs a ±1 unbiased random walk on effective
// interactions, so the exact majority-win probability from (a, b) is
// a/(a+b) — a sampling-free oracle for the kernels.
func newVoterProtocol() *PopulationProtocol {
	return &PopulationProtocol{
		ProtocolName:  "2-state voter",
		NumStates:     2,
		Rule:          func(initiator, _ int) (int, int) { return initiator, initiator },
		MajorityState: 0,
		MinorityState: 1,
		Done: func(counts []int) (bool, int) {
			switch {
			case counts[1] == 0:
				return true, 0
			case counts[0] == 0:
				return true, 1
			default:
				return false, -1
			}
		},
		// Voter needs Θ(n²) effective interactions.
		MaxInteractionsFor: func(n int) int { return 400 * n * n },
	}
}

// historicalTrial replays the per-event Trial loop exactly as it was before
// the compiled kernel: re-validate per trial, call Rule and range-check its
// outputs per interaction, evaluate Done on every tick. It is the
// byte-identity oracle for KernelPerEvent and the "old" side of
// BenchmarkPopulationKernel.
func historicalTrial(p *PopulationProtocol, n, delta int, src *rng.Source) (bool, int, error) {
	if err := p.validate(); err != nil {
		return false, 0, err
	}
	b := (n - delta) / 2
	a := n - b
	counts := make([]int, p.NumStates)
	counts[p.MajorityState] += a
	counts[p.MinorityState] += b

	maxInteractions := 0
	if p.MaxInteractionsFor != nil {
		maxInteractions = p.MaxInteractionsFor(n)
	}
	if maxInteractions <= 0 {
		logN := 1
		for v := n; v > 1; v >>= 1 {
			logN++
		}
		maxInteractions = 400 * n * logN
	}

	for step := 0; step < maxInteractions; step++ {
		if done, winner := p.Done(counts); done {
			return winner == 0, step, nil
		}
		initiator := sampleState(counts, n, src)
		counts[initiator]--
		responder := sampleState(counts, n-1, src)
		counts[initiator]++

		ni, nr := p.Rule(initiator, responder)
		if ni < 0 || ni >= p.NumStates || nr < 0 || nr >= p.NumStates {
			return false, step, fmt.Errorf("rule produced out-of-range states (%d, %d)", ni, nr)
		}
		counts[initiator]--
		counts[responder]--
		counts[ni]++
		counts[nr]++
	}
	return false, maxInteractions, nil
}

// referenceTrial is historicalTrial with test-fatal error handling.
func referenceTrial(t *testing.T, p *PopulationProtocol, n, delta int, src *rng.Source) bool {
	t.Helper()
	won, _, err := historicalTrial(p, n, delta, src)
	if err != nil {
		t.Fatal(err)
	}
	return won
}

// TestPerEventKernelByteIdenticalToSeed drives KernelPerEvent and the
// historical event loop from identical streams: the compiled transition
// table, hoisted validation, and lazy Done evaluation must be invisible at
// the bit level.
func TestPerEventKernelByteIdenticalToSeed(t *testing.T) {
	makers := []func() *PopulationProtocol{NewThreeStateAM, NewFourStateExact, NewTernarySignaling, newVoterProtocol}
	for _, mk := range makers {
		p := mk()
		p.Kernel = KernelPerEvent
		oracle := mk()
		for _, tc := range []struct{ n, delta int }{{16, 2}, {40, 4}, {61, 3}, {50, 0}} {
			for seed := uint64(1); seed <= 40; seed++ {
				got, err := p.Trial(tc.n, tc.delta, rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				want := referenceTrial(t, oracle, tc.n, tc.delta, rng.New(seed))
				if got != want {
					t.Fatalf("%s n=%d delta=%d seed=%d: per-event kernel %v, historical loop %v",
						p.Name(), tc.n, tc.delta, seed, got, want)
				}
			}
		}
	}
}

// TestTrialValidatesOnce is the regression test for the validate-once
// satellite: after the first Trial, further Trials (including concurrent
// ones) must do zero validation/compilation work.
func TestTrialValidatesOnce(t *testing.T) {
	p := NewThreeStateAM()
	for i := 0; i < 10; i++ {
		if _, err := p.Trial(20, 2, rng.New(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if p.compileCalls != 1 {
		t.Fatalf("10 sequential Trials ran the compile step %d times, want 1", p.compileCalls)
	}

	q := NewFourStateExact()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := q.Trial(20, 2, rng.New(uint64(100*w+i))); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if q.compileCalls != 1 {
		t.Fatalf("concurrent Trials ran the compile step %d times, want 1", q.compileCalls)
	}

	// Compile failures must also be sticky.
	bad := &PopulationProtocol{ProtocolName: "bad", NumStates: 1}
	for i := 0; i < 3; i++ {
		if _, err := bad.Trial(10, 2, rng.New(1)); err == nil {
			t.Fatal("one-state protocol accepted")
		}
	}
	if bad.compileCalls != 1 {
		t.Fatalf("failing compile ran %d times, want 1", bad.compileCalls)
	}
}

// TestBatchKernelMatchesClosedFormVoter checks the batch kernel against
// the exact voter-model win probability a/(a+b): the geometric null
// skipping and conditional pair sampling must leave the absorption law
// untouched.
func TestBatchKernelMatchesClosedFormVoter(t *testing.T) {
	for _, tc := range []struct{ n, delta int }{{30, 10}, {24, 4}, {21, 7}} {
		p := newVoterProtocol()
		p.Kernel = KernelBatch
		est, err := consensus.EstimateWinProbability(p, tc.n, tc.delta, consensus.EstimateOptions{
			Trials: 6000,
			Seed:   101,
			Z:      stats.Z999,
		})
		if err != nil {
			t.Fatal(err)
		}
		a := (tc.n + tc.delta) / 2
		want := float64(a) / float64(tc.n)
		if want < est.Lo || want > est.Hi {
			t.Errorf("voter n=%d delta=%d: batch-kernel estimate [%v, %v] excludes exact %v",
				tc.n, tc.delta, est.Lo, est.Hi, want)
		}
	}
}

// TestBatchKernelMatchesExactNetworkOracle cross-checks the batch kernel
// against the internal/exact grid solver: conditioned on effective
// interactions, the voter protocol's count chain is exactly the jump chain
// of the two-species CRN {X+Y → 2X, Y+X → 2Y} at equal rates, whose
// absorption probabilities SolveNetwork computes without sampling.
func TestBatchKernelMatchesExactNetworkOracle(t *testing.T) {
	net, err := crn.NewNetwork("X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	net.MustAddReaction(crn.Reaction{Reactants: []crn.Species{0, 1}, Products: []crn.Species{0, 0}, Rate: 1})
	net.MustAddReaction(crn.Reaction{Reactants: []crn.Species{1, 0}, Products: []crn.Species{1, 1}, Rate: 1})
	sol, err := exact.SolveNetwork(net, exact.Options{Max: 40})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ n, delta int }{{30, 10}, {20, 2}} {
		b := (tc.n - tc.delta) / 2
		a := tc.n - b
		want, err := sol.Rho(a, b)
		if err != nil {
			t.Fatal(err)
		}
		p := newVoterProtocol()
		est, err := consensus.EstimateWinProbability(p, tc.n, tc.delta, consensus.EstimateOptions{
			Trials: 6000,
			Seed:   7,
			Z:      stats.Z999,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want < est.Lo || want > est.Hi {
			t.Errorf("voter n=%d delta=%d: batch estimate [%v, %v] excludes exact grid solution %v",
				tc.n, tc.delta, est.Lo, est.Hi, want)
		}
	}
}

// TestKernelsDistributionallyEquivalent compares per-event and batch win
// frequencies on the repository's real protocols with a two-proportion
// z-test: the kernels consume the random stream differently, so their
// trials differ, but their laws may not.
func TestKernelsDistributionallyEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("distributional comparison is slow")
	}
	const trials = 4000
	makers := []func() *PopulationProtocol{NewThreeStateAM, NewFourStateExact, NewTernarySignaling}
	for _, mk := range makers {
		for _, tc := range []struct{ n, delta int }{{60, 2}, {60, 8}} {
			wins := [2]int{}
			for k, kernel := range []PopulationKernel{KernelPerEvent, KernelBatch} {
				p := mk()
				p.Kernel = kernel
				est, err := consensus.EstimateWinProbability(p, tc.n, tc.delta, consensus.EstimateOptions{
					Trials: trials,
					Seed:   31,
				})
				if err != nil {
					t.Fatal(err)
				}
				wins[k] = int(math.Round(est.P() * trials))
			}
			p1 := float64(wins[0]) / trials
			p2 := float64(wins[1]) / trials
			pool := (p1 + p2) / 2
			se := math.Sqrt(2 * pool * (1 - pool) / trials)
			if se == 0 {
				if wins[0] != wins[1] {
					t.Errorf("%s n=%d delta=%d: degenerate but unequal win counts %v", mk().Name(), tc.n, tc.delta, wins)
				}
				continue
			}
			if z := math.Abs(p1-p2) / se; z > 4 {
				t.Errorf("%s n=%d delta=%d: per-event %.4f vs batch %.4f (z=%.2f > 4)",
					mk().Name(), tc.n, tc.delta, p1, p2, z)
			}
		}
	}
}

// TestBatchKernelWorkerDeterminism checks byte-determinism of the batch
// kernel across worker counts: per-trial streams are keyed by trial index,
// so the estimate may not depend on scheduling.
func TestBatchKernelWorkerDeterminism(t *testing.T) {
	var baseline stats.BernoulliEstimate
	for i, workers := range []int{1, 3, 8} {
		p := NewThreeStateAM()
		est, err := consensus.EstimateWinProbability(p, 100, 10, consensus.EstimateOptions{
			Trials:  500,
			Workers: workers,
			Seed:    13,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseline = est
			continue
		}
		if est != baseline {
			t.Errorf("workers=%d: estimate %+v differs from workers=1 %+v", workers, est, baseline)
		}
	}
}

// TestBatchKernelInteractionBudgetLaw checks the budget edge cases the
// geometric skipping must preserve: a protocol whose pairs are all null
// exhausts its budget undecided, and the interaction counter lines up with
// the per-event loop's tick accounting at the boundary.
func TestBatchKernelInteractionBudgetLaw(t *testing.T) {
	// All-null protocol: nothing can ever change.
	stuck := &PopulationProtocol{
		ProtocolName:       "all-null",
		NumStates:          2,
		Rule:               func(a, b int) (int, int) { return a, b },
		MajorityState:      0,
		MinorityState:      1,
		Done:               func([]int) (bool, int) { return false, -1 },
		MaxInteractionsFor: func(int) int { return 1000 },
	}
	won, steps, err := stuck.run(10, 2, rng.New(1))
	if err != nil || won {
		t.Fatalf("all-null protocol: won=%v err=%v", won, err)
	}
	if steps != 1000 {
		t.Errorf("all-null protocol consumed %d interactions, want the full budget 1000", steps)
	}

	// Per-event and batch kernels must agree exactly on the consumed
	// interaction count's law; with a deterministic protocol (every pair
	// effective, Done after one change) they agree exactly.
	oneShot := func(kernel PopulationKernel) int {
		p := &PopulationProtocol{
			ProtocolName:  "one-shot",
			NumStates:     2,
			Rule:          func(a, b int) (int, int) { return 0, 0 },
			MajorityState: 0,
			MinorityState: 1,
			Done: func(counts []int) (bool, int) {
				if counts[1] == 0 {
					return true, 0
				}
				return false, -1
			},
			Kernel: kernel,
		}
		// n=4, delta=2: three majority agents, one minority. Every
		// interaction converts both participants to state 0, so exactly
		// one effective interaction decides the trial... but pairs
		// (0,0) are also effective-looking no-ops? No: Rule maps every
		// pair to (0,0); pairs already (0,0) are null. The first
		// interaction involving the minority agent ends the trial.
		won, steps, err := p.run(4, 2, rng.New(5))
		if err != nil || !won {
			t.Fatalf("one-shot kernel=%v: won=%v err=%v", kernel, won, err)
		}
		return steps
	}
	// Both kernels must report at least one interaction and stop decided.
	if s := oneShot(KernelPerEvent); s < 1 {
		t.Errorf("per-event one-shot consumed %d interactions", s)
	}
	if s := oneShot(KernelBatch); s < 1 {
		t.Errorf("batch one-shot consumed %d interactions", s)
	}
}

// TestCacheKeyDistinguishesKernels guards the sweep probe cache: the two
// kernels legitimately produce different individual trial outcomes, so
// their cache identities must differ.
func TestCacheKeyDistinguishesKernels(t *testing.T) {
	a := NewThreeStateAM()
	b := NewThreeStateAM()
	b.Kernel = KernelPerEvent
	if a.CacheKey() == b.CacheKey() {
		t.Errorf("batch and per-event kernels share cache key %q", a.CacheKey())
	}
	if a.Name() != b.Name() {
		t.Errorf("kernel choice leaked into the display name: %q vs %q", a.Name(), b.Name())
	}
}
