package protocols

import (
	"testing"

	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

func TestTernaryRuleTable(t *testing.T) {
	p := NewTernarySignaling()
	const (
		s0 = 0
		s1 = 1
		e  = 2
	)
	cases := []struct {
		init, resp         int
		wantInit, wantResp int
	}{
		// Decided initiator meets opposite opinion: initiator undecides.
		{s0, s1, e, s1},
		{s1, s0, e, s0},
		// Undecided initiator pulls the responder's decided opinion.
		{e, s0, s0, s0},
		{e, s1, s1, s1},
		// No-ops: agreement, and decided pulling undecided.
		{s0, s0, s0, s0},
		{s1, s1, s1, s1},
		{s0, e, s0, e},
		{s1, e, s1, e},
		{e, e, e, e},
	}
	for _, tc := range cases {
		gi, gr := p.Rule(tc.init, tc.resp)
		if gi != tc.wantInit || gr != tc.wantResp {
			t.Errorf("Rule(%d, %d) = (%d, %d), want (%d, %d)",
				tc.init, tc.resp, gi, gr, tc.wantInit, tc.wantResp)
		}
	}
}

// TestTernaryResponderNeverChanges is the property distinguishing the
// Perron et al. protocol from the Angluin et al. one: all updates are pulls.
func TestTernaryResponderNeverChanges(t *testing.T) {
	p := NewTernarySignaling()
	for init := 0; init < 3; init++ {
		for resp := 0; resp < 3; resp++ {
			if _, gr := p.Rule(init, resp); gr != resp {
				t.Errorf("Rule(%d, %d) changed the responder to %d", init, resp, gr)
			}
		}
	}
}

// TestTernaryLargeGapSucceeds checks that a linear gap yields near-certain
// majority consensus, the regime analyzed by Perron et al.
func TestTernaryLargeGapSucceeds(t *testing.T) {
	p := NewTernarySignaling()
	src := rng.New(3)
	const (
		n      = 400
		delta  = 100 // a 5:3 split
		trials = 150
	)
	wins := 0
	for i := 0; i < trials; i++ {
		ok, err := p.Trial(n, delta, src)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			wins++
		}
	}
	if wins < trials-2 {
		t.Errorf("only %d/%d wins with a linear gap", wins, trials)
	}
}

// TestTernaryTieUnbiased checks the symmetric tie case.
func TestTernaryTieUnbiased(t *testing.T) {
	p := NewTernarySignaling()
	src := rng.New(4)
	const (
		n      = 100
		trials = 1500
	)
	wins := 0
	for i := 0; i < trials; i++ {
		ok, err := p.Trial(n, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			wins++
		}
	}
	est, err := stats.WilsonInterval(wins, trials, stats.Z99)
	if err != nil {
		t.Fatal(err)
	}
	if 0.5 < est.Lo || 0.5 > est.Hi {
		t.Errorf("tie win CI [%.3f, %.3f] misses 1/2", est.Lo, est.Hi)
	}
}
