package protocols

import (
	"testing"

	"lvmajority/internal/consensus"
	"lvmajority/internal/rng"
	"lvmajority/internal/stats"
)

// Interface compliance checks (Uber style: verify at compile time).
var (
	_ consensus.Protocol = (*PopulationProtocol)(nil)
	_ consensus.Protocol = CondonProtocol{}
	_ consensus.Protocol = AndaurProtocol{}
	_ consensus.Protocol = LVParamsProtocol{}
)

func TestPopulationProtocolValidation(t *testing.T) {
	bad := &PopulationProtocol{ProtocolName: "bad", NumStates: 1}
	if _, err := bad.Trial(10, 2, rng.New(1)); err == nil {
		t.Error("one-state protocol accepted")
	}
	missing := &PopulationProtocol{ProtocolName: "missing", NumStates: 2}
	if _, err := missing.Trial(10, 2, rng.New(1)); err == nil {
		t.Error("protocol without rule accepted")
	}
	am := NewThreeStateAM()
	if _, err := am.Trial(1, 0, rng.New(1)); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := am.Trial(10, 3, rng.New(1)); err == nil {
		t.Error("parity mismatch accepted")
	}
	if _, err := am.Trial(10, 10, rng.New(1)); err == nil {
		t.Error("empty minority accepted")
	}
}

func TestThreeStateAMLargeGapWins(t *testing.T) {
	am := NewThreeStateAM()
	src := rng.New(3)
	const trials = 200
	wins := 0
	for i := 0; i < trials; i++ {
		won, err := am.Trial(100, 60, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	if wins < trials*95/100 {
		t.Errorf("3-state AM with huge gap won only %d/%d", wins, trials)
	}
}

func TestThreeStateAMNeutralFromTie(t *testing.T) {
	// From a tie the protocol picks a side; by symmetry each wins about
	// half the time.
	am := NewThreeStateAM()
	src := rng.New(5)
	const trials = 2000
	wins := 0
	for i := 0; i < trials; i++ {
		won, err := am.Trial(50, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
		}
	}
	est, err := stats.WilsonInterval(wins, trials, stats.Z999)
	if err != nil {
		t.Fatal(err)
	}
	if est.Lo > 0.5 || est.Hi < 0.5 {
		t.Errorf("win rate from tie = %v, CI excludes 0.5", est)
	}
}

func TestThreeStateAMAlwaysConverges(t *testing.T) {
	// The 3-state protocol converges in O(n log n) interactions w.h.p.;
	// within the default budget every trial should decide.
	am := NewThreeStateAM()
	src := rng.New(7)
	undecided := 0
	for i := 0; i < 100; i++ {
		won, err := am.Trial(128, 2, src)
		if err != nil {
			t.Fatal(err)
		}
		_ = won
	}
	// We cannot observe "undecided" directly (it returns false), so run
	// a sanity pair: from an overwhelming gap, failure would indicate
	// non-convergence rather than a wrong decision.
	for i := 0; i < 100; i++ {
		won, err := am.Trial(128, 126, src)
		if err != nil {
			t.Fatal(err)
		}
		if !won {
			undecided++
		}
	}
	if undecided > 2 {
		t.Errorf("%d/100 trials with gap n-2 failed; budget too small or protocol broken", undecided)
	}
}

func TestFourStateExactAlwaysCorrect(t *testing.T) {
	// Exact majority: any positive gap must give the right answer with
	// probability 1 (within the generous interaction budget).
	ex := NewFourStateExact()
	src := rng.New(11)
	for _, tc := range []struct{ n, delta int }{
		{20, 2},
		{21, 1},
		{50, 2},
		{50, 48},
	} {
		for i := 0; i < 40; i++ {
			won, err := ex.Trial(tc.n, tc.delta, src)
			if err != nil {
				t.Fatal(err)
			}
			if !won {
				t.Fatalf("4-state exact majority failed at n=%d delta=%d", tc.n, tc.delta)
			}
		}
	}
}

func TestFourStateExactTieUndecided(t *testing.T) {
	// From an exact tie the strong tokens annihilate completely and the
	// protocol must report no winner (false) rather than hang.
	ex := NewFourStateExact()
	src := rng.New(13)
	for i := 0; i < 20; i++ {
		won, err := ex.Trial(20, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			t.Error("tie produced a majority win for species 0")
		}
	}
}

func TestSampleStateDistribution(t *testing.T) {
	counts := []int{10, 30, 60}
	src := rng.New(17)
	const trials = 60000
	hist := make([]int, 3)
	for i := 0; i < trials; i++ {
		hist[sampleState(counts, 100, src)]++
	}
	for s, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(hist[s]) / trials
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("state %d frequency %v, want ~%v", s, got, want)
		}
	}
}

func TestPopulationConservation(t *testing.T) {
	// Both protocols must preserve the number of agents in every rule.
	for _, p := range []*PopulationProtocol{NewThreeStateAM(), NewFourStateExact()} {
		for a := 0; a < p.NumStates; a++ {
			for b := 0; b < p.NumStates; b++ {
				na, nb := p.Rule(a, b)
				if na < 0 || na >= p.NumStates || nb < 0 || nb >= p.NumStates {
					t.Errorf("%s: rule(%d,%d) out of range", p.Name(), a, b)
				}
			}
		}
	}
}

func TestThreeStateAMWithEstimator(t *testing.T) {
	// The protocol must plug into the consensus estimator directly.
	est, err := consensus.EstimateWinProbability(NewThreeStateAM(), 64, 40, consensus.EstimateOptions{
		Trials: 400,
		Seed:   19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.P() < 0.9 {
		t.Errorf("estimate %v unexpectedly low", est)
	}
}

// TestDoneWhenZeroMatchesDone cross-checks the compiled DoneWhenZero rules
// against the Done closure they restate, exhaustively over every count
// vector of small populations — a superset of the reachable states, which
// is fine because the two forms are meant to agree as functions, not just
// along trajectories.
func TestDoneWhenZeroMatchesDone(t *testing.T) {
	evalRules := func(p *PopulationProtocol, counts []int) (bool, int) {
		for _, rule := range p.DoneWhenZero {
			zero := true
			for _, s := range rule.Zero {
				if counts[s] != 0 {
					zero = false
					break
				}
			}
			if zero {
				return true, rule.Winner
			}
		}
		return false, -1
	}
	var visit func(counts []int, state, left int, f func([]int))
	visit = func(counts []int, state, left int, f func([]int)) {
		if state == len(counts)-1 {
			counts[state] = left
			f(counts)
			return
		}
		for c := 0; c <= left; c++ {
			counts[state] = c
			visit(counts, state+1, left-c, f)
		}
	}
	for _, p := range []*PopulationProtocol{NewThreeStateAM(), NewFourStateExact(), NewTernarySignaling()} {
		if len(p.DoneWhenZero) == 0 {
			t.Fatalf("%s: no DoneWhenZero rules", p.Name())
		}
		for _, n := range []int{1, 2, 3, 7} {
			visit(make([]int, p.NumStates), 0, n, func(counts []int) {
				wantDone, wantWinner := p.Done(counts)
				gotDone, gotWinner := evalRules(p, counts)
				if wantDone != gotDone || (wantDone && wantWinner != gotWinner) {
					t.Errorf("%s counts=%v: Done=(%v,%d), rules=(%v,%d)",
						p.Name(), counts, wantDone, wantWinner, gotDone, gotWinner)
				}
			})
		}
	}
}
